// CRC-32 (IEEE 802.3 polynomial) for wire-format integrity checks.
#pragma once

#include <cstdint>
#include <cstddef>

namespace menos::util {

/// Compute the CRC-32 of a byte span. `seed` allows incremental use:
/// crc32(b, n2, crc32(a, n1)) == crc32(concat(a, b)).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0) noexcept;

}  // namespace menos::util
