#include "core/server.h"

#include <algorithm>

#include "core/batch.h"
#include "util/logging.h"

namespace menos::core {

Server::Server(const ServerConfig& config, gpusim::DeviceManager& devices,
               const nn::TransformerConfig& model)
    : config_(config),
      devices_(&devices),
      model_(model),
      token_rng_(config.token_seed != 0
                     ? config.token_seed
                     : config.base_seed ^ 0x6d656e6f73ULL /* "menos" */) {
  MENOS_CHECK_MSG(devices.gpu_count() >= 1, "server needs at least one GPU");
  model_.validate();
  if (shares_base_model(config_.mode)) {
    // Load the single shared copy up front ("only one copy of the base
    // model is preloaded into the GPU memory in advance" — §3.1). With
    // several GPUs the layers are split contiguously across them.
    store_ = std::make_unique<ParameterStore>(model_, devices,
                                              config_.base_seed);
  }
  // One scheduling pool over the union of all GPUs (Fig 2's "GPU memory"
  // abstraction); the devices themselves remain the hard per-GPU backstop.
  const std::size_t available = devices.total_gpu_available();
  MENOS_CHECK_MSG(available > config_.reserve_bytes,
                  "GPU capacity exhausted by the base model");
  scheduler_ = std::make_unique<sched::Scheduler>(
      available - config_.reserve_bytes, config_.sched_policy);
  if (config_.sched_policy == sched::Policy::SwapOnIdle) {
    // SwapOnIdle evicts per-client A + O through the offload engine; the
    // vanilla baseline swaps whole task copies itself and has no separate
    // persistent unit to evict.
    MENOS_CHECK_MSG(shares_base_model(config_.mode),
                    "SwapOnIdle requires a shared serving mode");
    offload_ = std::make_unique<mem::OffloadEngine>(devices.transfer_model());
    scheduler_->set_reclaim_callback(
        [this](int /*partition*/, std::size_t bytes_needed) {
          // Runs with the scheduler mutex held (reclaim contract); the
          // engine never calls back into the scheduler on this path.
          return offload_->evict_idle(bytes_needed);
        });
  }
  if (config_.sched_policy == sched::Policy::CoalescedBatch &&
      store_ != nullptr) {
    // Cross-client fused trunk compute: the scheduler coalesces compatible
    // requests into group grants; the coordinator stacks their activations
    // and runs one pass over a shared frozen trunk. Vanilla mode has no
    // shared trunk — every session's batch_key is 0 there and the policy
    // degrades to plain FCFS + backfill.
    scheduler_->set_max_group_size(
        std::max<std::size_t>(1, config_.batch_max_group));
    batching_ =
        std::make_unique<BatchCoordinator>(config_, *store_, *scheduler_);
  }
  if (config_.shared_executor != nullptr || config_.shared_poller != nullptr) {
    // Fleet mode: all shards multiplex onto one serving core. Both halves
    // come together — a shard with its own poller but a shared executor
    // (or vice versa) has no sane stop() ordering.
    MENOS_CHECK_MSG(
        config_.shared_executor != nullptr && config_.shared_poller != nullptr,
        "shared_executor and shared_poller must be set together");
    executor_ = config_.shared_executor;
    poller_ = config_.shared_poller;
  } else {
    owned_executor_ = std::make_unique<Executor>(config_.executor_threads);
    owned_poller_ = std::make_unique<net::Poller>();
    executor_ = owned_executor_.get();
    poller_ = owned_poller_.get();
  }
  scheduler_->set_grant_callback([this](const sched::Grant& grant) {
    // Dispatched after the scheduler mutex drops (see sched::Scheduler).
    // Sessions never vanish while registered (cleanup unregisters before
    // the session leaves the table), so the lookup here is safe.
    if (grant.group.size() > 1 && batching_ != nullptr) {
      // Group grant: hand every member to the batch coordinator, which
      // fuses their trunk passes into one computation. Members are looked
      // up under the lock; the joins start after it drops.
      std::vector<std::shared_ptr<ServingSession>> members(
          grant.group.size());
      {
        util::MutexLock lock(sessions_mutex_);
        for (auto& session : sessions_) {
          for (std::size_t i = 0; i < grant.group.size(); ++i) {
            if (session->id() == grant.group[i]) members[i] = session;
          }
        }
      }
      batching_->begin_group(grant, std::move(members));
      return;
    }
    util::MutexLock lock(sessions_mutex_);
    for (auto& session : sessions_) {
      if (session->id() == grant.client_id) {
        session->on_grant(grant);
        return;
      }
    }
  });
}

Server::~Server() { stop(); }

void Server::start_core() {
  MENOS_CHECK_MSG(!started_.exchange(true), "server already started");
  // A shared poller is started by its owner (the fleet) before any shard.
  if (owns_core()) poller_->start();
  if (config_.lease_seconds > 0.0) {
    const double interval = config_.reaper_interval_s > 0.0
                                ? config_.reaper_interval_s
                                : config_.lease_seconds / 4.0;
    reaper_timer_ = poller_->schedule_every(interval, [this] { reap_tick(); });
  }
}

void Server::start() { start_core(); }

void Server::start(net::Acceptor& acceptor) {
  acceptor_ = &acceptor;
  start_core();
  // Infrastructure thread: accept() blocks in ways the poller cannot demux
  // for every Acceptor flavor. One per server, not per client.
  accept_thread_ = std::thread([this] { accept_loop(acceptor_); });  // NOLINT(raw-thread)
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // A concurrent or repeated stop() only needs the accept thread gone;
    // the first caller performs the teardown.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (reaper_timer_ != 0) {
    poller_->cancel_timer(reaper_timer_);
    reaper_timer_ = 0;
  }
  if (acceptor_ != nullptr) acceptor_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wind every session down through its state machine and wait for the
  // executor to run them all to Finished.
  std::vector<std::shared_ptr<ServingSession>> sessions;
  {
    util::MutexLock lock(sessions_mutex_);
    sessions = sessions_;
  }
  for (auto& session : sessions) session->request_stop();
  sessions.clear();
  {
    util::MutexLock lock(live_mutex_);
    while (live_sessions_ > 0) live_cv_.wait(live_mutex_);
  }
  // A shared core keeps running — other shards' sessions live on it; the
  // fleet stops it once every shard has drained.
  if (owns_core()) {
    poller_->stop();
    executor_->stop_and_join();
  }
  util::MutexLock lock(sessions_mutex_);
  sessions_.clear();
}

void Server::install_session_locked(
    const std::shared_ptr<ServingSession>& session) {
  session->set_resume_router(
      [this](std::uint64_t t, std::shared_ptr<net::Connection> conn) {
        return route_resume(t, std::move(conn));
      });
  {
    util::MutexLock live(live_mutex_);
    ++live_sessions_;
  }
  const std::uint64_t token = session->token();
  session->set_on_finished([this, token] {
    // The closed hook runs first, with no server locks held (we are on the
    // session's strand): it may take fleet-level locks freely.
    if (session_closed_hook_) session_closed_hook_(token);
    util::MutexLock live(live_mutex_);
    --live_sessions_;
    live_cv_.notify_all();
  });
  sessions_.push_back(session);
}

void Server::accept_loop(net::Acceptor* acceptor) {
  while (true) {
    std::unique_ptr<net::Connection> connection = acceptor->accept();
    if (connection == nullptr) return;  // acceptor closed
    util::MutexLock lock(sessions_mutex_);
    reap_finished_locked();
    // `| 1` keeps 0 reserved as "no token" (the Hello/HelloAck default).
    const std::uint64_t token = token_rng_.next_u64() | 1;
    auto session = std::make_shared<ServingSession>(
        next_client_id_++, token, std::move(connection), config_,
        store_.get(), model_, *scheduler_, *devices_, profiling_mutex_,
        profile_cache_, *executor_, *poller_, offload_.get());
    install_session_locked(session);
    session->start();
  }
}

std::uint64_t Server::adopt_connection(
    std::unique_ptr<net::Connection> connection) {
  MENOS_CHECK_MSG(connection != nullptr, "adopting a null connection");
  if (stopping_.load()) return 0;
  util::MutexLock lock(sessions_mutex_);
  reap_finished_locked();
  const std::uint64_t token = token_rng_.next_u64() | 1;
  auto session = std::make_shared<ServingSession>(
      next_client_id_++, token, std::move(connection), config_, store_.get(),
      model_, *scheduler_, *devices_, profiling_mutex_, profile_cache_,
      *executor_, *poller_, offload_.get());
  install_session_locked(session);
  session->start();
  return token;
}

std::optional<MigrationTicket> Server::migrate_out(std::uint64_t token) {
  std::shared_ptr<ServingSession> session;
  {
    util::MutexLock lock(sessions_mutex_);
    for (auto& s : sessions_) {
      if (s->token() == token && !s->finished()) {
        session = s;
        break;
      }
    }
  }
  if (session == nullptr) return std::nullopt;
  // Off-lock: the export event runs scheduler calls whose post-unlock grant
  // dispatch takes sessions_mutex_ — waiting under it would deadlock.
  return session->export_for_migration();
}

bool Server::migrate_in(const MigrationTicket& ticket) {
  if (stopping_.load()) return false;
  MENOS_CHECK_MSG(ticket.token != 0, "migration ticket without a token");
  int id = 0;
  {
    util::MutexLock lock(sessions_mutex_);
    reap_finished_locked();
    id = next_client_id_++;
  }
  auto session = std::make_shared<ServingSession>(
      id, ticket.token, nullptr, config_, store_.get(), model_, *scheduler_,
      *devices_, profiling_mutex_, profile_cache_, *executor_, *poller_,
      offload_.get());
  try {
    session->import_migrated(ticket);
  } catch (const Error& e) {
    MENOS_LOG(Warn) << "migrate_in of session token " << ticket.token
                    << " refused: " << e.what();
    return false;
  }
  {
    util::MutexLock lock(sessions_mutex_);
    install_session_locked(session);
    // No start(): the session has no connection yet. The client's
    // ResumeSession attach() installs the watch; until then the session is
    // Parked under its lease.
  }
  // Stop may have raced the publish: either its snapshot (taken under
  // sessions_mutex_) already includes this session, or the stopping_ store
  // is visible here — both orders leave exactly one stop request.
  if (stopping_.load()) session->request_stop();
  return true;
}

std::vector<std::uint64_t> Server::session_tokens() const {
  util::MutexLock lock(sessions_mutex_);
  std::vector<std::uint64_t> tokens;
  tokens.reserve(sessions_.size());
  for (const auto& session : sessions_) {
    if (!session->finished()) tokens.push_back(session->token());
  }
  return tokens;
}

bool Server::route_resume(std::uint64_t token,
                          std::shared_ptr<net::Connection> connection) {
  if (token == 0) return false;
  util::MutexLock lock(sessions_mutex_);
  for (auto& session : sessions_) {
    if (session->token() == token) {
      return session->attach(std::move(connection));
    }
  }
  return false;
}

void Server::reap_tick() {
  util::MutexLock lock(sessions_mutex_);
  for (auto& session : sessions_) session->expire_if_overdue();
  reap_finished_locked();
}

void Server::reap_finished_locked() {
  // No join: a finished session's strand holds no further work (posted
  // events bail out at Finished), so dropping the table reference is
  // enough — the shared_ptr keeps it alive through any stragglers.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t Server::persistent_gpu_bytes() const {
  std::size_t total = store_ != nullptr ? store_->bytes() : 0;
  util::MutexLock lock(sessions_mutex_);
  for (const auto& session : sessions_) {
    total += session->persistent_gpu_bytes();
  }
  return total;
}

int Server::session_count() const {
  util::MutexLock lock(sessions_mutex_);
  int live = 0;
  for (const auto& session : sessions_) {
    if (!session->finished()) ++live;
  }
  return live;
}

std::vector<SessionStats> Server::session_stats() const {
  util::MutexLock lock(sessions_mutex_);
  std::vector<SessionStats> out;
  out.reserve(sessions_.size());
  for (const auto& session : sessions_) out.push_back(session->stats());
  return out;
}

}  // namespace menos::core
