// Adapter checkpointing and greedy generation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "core/checkpoint.h"
#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "nn/transformer.h"

namespace menos::core {
namespace {

nn::TransformerConfig ckpt_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  c.max_seq = 32;
  return c;
}

nn::AdapterSpec ckpt_adapter() {
  nn::AdapterSpec a;
  a.rank = 4;
  a.alpha = 8.0f;
  a.target_lm_head = true;
  return a;
}

TEST(Checkpoint, RoundTripRestoresExactValues) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(1);
  nn::SplitSpec split;
  nn::LocalModel model(ckpt_model(), split, ckpt_adapter(), init, *host, 2);

  // Scribble on the adapters, snapshot, scribble again, restore.
  util::Rng rng(3);
  for (nn::Parameter& p : model.trainable_parameters()) {
    rng.fill_normal(p.value.data(), static_cast<std::size_t>(p.value.numel()),
                    0.5f);
  }
  std::vector<std::vector<float>> snapshot;
  for (const nn::Parameter& p : model.trainable_parameters()) {
    snapshot.push_back(p.value.to_vector());
  }
  const std::vector<std::uint8_t> blob = serialize_adapter(model);
  for (nn::Parameter& p : model.trainable_parameters()) {
    rng.fill_normal(p.value.data(), static_cast<std::size_t>(p.value.numel()),
                    0.5f);
  }
  const std::size_t loaded =
      deserialize_adapter(blob.data(), blob.size(), model);
  EXPECT_EQ(loaded, snapshot.size());
  std::size_t i = 0;
  for (const nn::Parameter& p : model.trainable_parameters()) {
    EXPECT_EQ(p.value.to_vector(), snapshot[i++]) << p.name;
  }
}

TEST(Checkpoint, OnlyTrainableParametersSerialized) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(1);
  nn::SplitSpec split;
  nn::LocalModel model(ckpt_model(), split, ckpt_adapter(), init, *host, 2);
  const std::vector<std::uint8_t> blob = serialize_adapter(model);
  // Blob must be around adapter size, nowhere near the base parameters.
  EXPECT_LT(blob.size(), model.trainable_parameter_bytes() * 2);
  EXPECT_LT(blob.size(), model.frozen_parameter_bytes() / 4);
}

TEST(Checkpoint, CorruptionDetected) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(1);
  nn::SplitSpec split;
  nn::LocalModel model(ckpt_model(), split, ckpt_adapter(), init, *host, 2);
  std::vector<std::uint8_t> blob = serialize_adapter(model);
  blob[blob.size() / 2] ^= 0x10;
  EXPECT_THROW(deserialize_adapter(blob.data(), blob.size(), model),
               ProtocolError);
  std::vector<std::uint8_t> tiny{1, 2, 3};
  EXPECT_THROW(deserialize_adapter(tiny.data(), tiny.size(), model),
               ProtocolError);
}

TEST(Checkpoint, StructureMismatchRejected) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(1);
  nn::SplitSpec split;
  nn::LocalModel model(ckpt_model(), split, ckpt_adapter(), init, *host, 2);
  const std::vector<std::uint8_t> blob = serialize_adapter(model);

  // A model with a different LoRA rank cannot absorb this checkpoint.
  nn::AdapterSpec other = ckpt_adapter();
  other.rank = 8;
  nn::FreshInit init2(1);
  nn::LocalModel mismatched(ckpt_model(), split, other, init2, *host, 2);
  EXPECT_THROW(deserialize_adapter(blob.data(), blob.size(), mismatched),
               InvalidArgument);
}

TEST(Checkpoint, FileRoundTrip) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(1);
  nn::SplitSpec split;
  nn::LocalModel model(ckpt_model(), split, ckpt_adapter(), init, *host, 2);
  util::Rng rng(9);
  for (nn::Parameter& p : model.trainable_parameters()) {
    rng.fill_normal(p.value.data(), static_cast<std::size_t>(p.value.numel()),
                    0.5f);
  }
  const std::string path = ::testing::TempDir() + "/menos_adapter.bin";
  save_adapter(path, model);
  std::vector<float> expected =
      model.trainable_parameters()[0].value.to_vector();
  for (nn::Parameter& p : model.trainable_parameters()) {
    std::memset(p.value.data(), 0, p.value.bytes());
  }
  const std::size_t loaded = load_adapter(path, model);
  EXPECT_GT(loaded, 0u);
  EXPECT_EQ(model.trainable_parameters()[0].value.to_vector(), expected);
  std::remove(path.c_str());
  EXPECT_THROW(load_adapter(path, model), InvalidArgument);
}

// ----- end-to-end through the client -----

struct ClientRig {
  ClientRig() : devices(1, 512u << 20), client_devices(1, 512u << 20) {
    config.mode = ServingMode::MenosOnDemand;
    config.base_seed = 42;
    server = std::make_unique<Server>(config, devices, ckpt_model());
    server->start(acceptor);
  }
  ~ClientRig() { server->stop(); }

  std::unique_ptr<Client> make_client(std::uint64_t adapter_seed) {
    ClientOptions options;
    options.finetune.client_name = "ckpt";
    options.finetune.model = ckpt_model();
    options.finetune.adapter = ckpt_adapter();
    options.finetune.batch_size = 2;
    options.finetune.seq_len = 8;
    options.finetune.lr = 1e-2f;
    options.finetune.adapter_seed = adapter_seed;
    options.base_seed = 42;
    auto c = std::make_unique<Client>(options, acceptor.connect(),
                                      client_devices.gpu(0));
    c->connect();
    return c;
  }

  data::DataLoader make_loader(std::uint64_t seed) {
    data::CharTokenizer tok;
    return data::DataLoader(
        tok.encode(data::make_shakespeare_like(3000, 4).text), 2, 8, seed);
  }

  gpusim::DeviceManager devices;
  gpusim::DeviceManager client_devices;
  ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<Server> server;
};

TEST(ClientAdapter, ExportImportTransfersBehaviour) {
  ClientRig rig;
  auto loader = rig.make_loader(5);
  data::Batch eval_batch = loader.next();

  auto trained = rig.make_client(7);
  for (int i = 0; i < 20; ++i) trained->train_step(loader.next());
  const double trained_eval = trained->evaluate(eval_batch);
  const std::vector<std::uint8_t> blob = trained->export_adapter();
  trained->disconnect();

  auto fresh = rig.make_client(7);
  const double before = fresh->evaluate(eval_batch);
  fresh->import_adapter(blob.data(), blob.size());
  const double after = fresh->evaluate(eval_batch);
  EXPECT_NE(before, after);
  EXPECT_NEAR(after, trained_eval, 1e-6);
  fresh->disconnect();
}

TEST(ClientGenerate, ProducesValidTokensDeterministically) {
  ClientRig rig;
  auto client = rig.make_client(11);
  const std::vector<std::int32_t> prompt{1, 2, 3};
  auto a = client->generate(prompt, 10);
  auto b = client->generate(prompt, 10);
  ASSERT_EQ(a.size(), prompt.size() + 10);
  EXPECT_EQ(a, b);  // greedy decoding is deterministic
  for (std::int32_t id : a) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, ckpt_model().vocab_size);
  }
  // Prompt is preserved as the prefix.
  EXPECT_TRUE(std::equal(prompt.begin(), prompt.end(), a.begin()));
  client->disconnect();
}

TEST(ClientGenerate, MatchesLocalGeneration) {
  // Generation through the split stack must equal generation on a local
  // model built from the same seeds — same no-grad math, different plumbing.
  ClientRig rig;
  auto client = rig.make_client(13);
  const std::vector<std::int32_t> prompt{4, 9, 2, 7};
  auto remote = client->generate(prompt, 12);
  client->disconnect();

  auto host = gpusim::make_host_device();
  nn::FreshInit init(42);
  nn::SplitSpec split;
  nn::LocalModel local(ckpt_model(), split, ckpt_adapter(), init, *host, 13);
  auto local_out = nn::greedy_generate(local.input(), local.server(),
                                       local.output(), prompt, 12);
  EXPECT_EQ(remote, local_out);
}

TEST(ClientGenerate, WindowsLongPrompts) {
  ClientRig rig;
  auto client = rig.make_client(17);
  std::vector<std::int32_t> long_prompt(50, 3);  // longer than max_seq = 32
  auto out = client->generate(long_prompt, 4);
  EXPECT_EQ(out.size(), 54u);
  client->disconnect();
}

TEST(SampleGenerate, GreedyLimitMatchesArgmax) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(42);
  nn::SplitSpec split;
  nn::LocalModel local(ckpt_model(), split, ckpt_adapter(), init, *host, 13);
  const std::vector<std::int32_t> prompt{4, 9, 2};
  auto greedy = nn::greedy_generate(local.input(), local.server(),
                                    local.output(), prompt, 8);
  util::Rng rng(1);
  auto top1 = nn::sample_generate(local.input(), local.server(),
                                  local.output(), prompt, 8,
                                  /*temperature=*/1.0f, /*top_k=*/1, rng);
  EXPECT_EQ(greedy, top1);
  util::Rng rng2(2);
  auto cold = nn::sample_generate(local.input(), local.server(),
                                  local.output(), prompt, 8,
                                  /*temperature=*/0.0f, /*top_k=*/10, rng2);
  EXPECT_EQ(greedy, cold);
}

TEST(SampleGenerate, HighTemperatureDiversifiesDeterministically) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(42);
  nn::SplitSpec split;
  nn::LocalModel local(ckpt_model(), split, ckpt_adapter(), init, *host, 13);
  const std::vector<std::int32_t> prompt{1, 2, 3, 4};
  util::Rng rng_a(100), rng_b(200);
  auto a = nn::sample_generate(local.input(), local.server(), local.output(),
                               prompt, 16, 2.0f, 50, rng_a);
  auto b = nn::sample_generate(local.input(), local.server(), local.output(),
                               prompt, 16, 2.0f, 50, rng_b);
  EXPECT_NE(a, b);  // different streams diverge at high temperature
  for (auto id : a) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, ckpt_model().vocab_size);
  }
  // Same stream reproduces exactly.
  util::Rng rng_c(100);
  auto c = nn::sample_generate(local.input(), local.server(), local.output(),
                               prompt, 16, 2.0f, 50, rng_c);
  EXPECT_EQ(a, c);
}

TEST(SampleGenerate, RejectsDegenerateArguments) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(42);
  nn::SplitSpec split;
  nn::LocalModel local(ckpt_model(), split, ckpt_adapter(), init, *host, 13);
  util::Rng rng(1);
  EXPECT_THROW(nn::sample_generate(local.input(), local.server(),
                                   local.output(), {}, 4, 1.0f, 5, rng),
               InvalidArgument);
  EXPECT_THROW(nn::sample_generate(local.input(), local.server(),
                                   local.output(), {1}, 4, -1.0f, 5, rng),
               InvalidArgument);
  EXPECT_THROW(nn::sample_generate(local.input(), local.server(),
                                   local.output(), {1}, 4, 1.0f, 0, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace menos::core
