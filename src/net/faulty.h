// Deterministic fault injection for the transport layer (docs/FAULTS.md).
//
// FaultyConnection decorates any Connection (TCP or inproc) and injects
// WAN pathologies at the frame boundary: dropped frames that kill the
// link, extra delivery delay, and corrupt frames (surfaced exactly the way
// the CRC check would surface real corruption — ProtocolError plus a dead
// link, never a silently altered payload, so recovery can be bit-exact).
//
// All decisions flow from one seeded util::Rng inside a FaultInjector that
// survives reconnects: a client that redials after an injected failure
// keeps consuming the same fault stream, so a given FaultPlan seed yields
// the same failure schedule on every run. Tests and benches assert on
// recovery behavior, not on luck.
#pragma once

#include <memory>

#include "net/transport.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace menos::net {

/// What to inject and how often. Probabilities are per frame; at most one
/// fault fires per frame (a single uniform draw is compared against the
/// cumulative thresholds, which keeps the rng stream independent of which
/// probabilities are zero).
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Outbound frame vanishes and the link dies (the peer sees an orderly
  /// close / drained queue — a mid-frame disconnect from its perspective).
  double drop_send_prob = 0.0;
  /// Inbound frame vanishes and the link dies (receive returns nullopt).
  double drop_receive_prob = 0.0;
  /// Inbound frame arrives corrupted: receive throws ProtocolError (what
  /// the CRC check turns real corruption into) and the link dies.
  double corrupt_receive_prob = 0.0;
  /// Outbound frame is delayed by delay_s before delivery.
  double delay_prob = 0.0;
  double delay_s = 0.0;
  /// Scales delay_s; 0 = no sleeping (tests run the injection code path at
  /// zero wall-clock cost, mirroring NetworkConditioner::time_scale).
  double time_scale = 1.0;

  /// The first `skip_frames` frames pass untouched (handshake grace).
  int skip_frames = 0;
  /// Stop injecting link-killing/corrupting faults after this many fired;
  /// -1 = unlimited. A finite cap guarantees an injected run terminates.
  int max_faults = -1;
};

/// Counters for asserting on what actually fired.
struct FaultStats {
  std::uint64_t frames_seen = 0;
  std::uint64_t sends_dropped = 0;
  std::uint64_t receives_dropped = 0;
  std::uint64_t receives_corrupted = 0;
  std::uint64_t delays = 0;

  std::uint64_t faults() const noexcept {
    return sends_dropped + receives_dropped + receives_corrupted;
  }
};

/// The shared, thread-safe fault stream. One injector can decorate many
/// connections over time (every redial of a reconnecting client); they all
/// consume the same deterministic sequence.
class FaultInjector {
 public:
  enum class Action : std::uint8_t { None, Delay, Kill, Corrupt };

  explicit FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

  Action next_send_action();
  Action next_receive_action();

  const FaultPlan& plan() const noexcept { return plan_; }
  FaultStats stats() const;

 private:
  Action draw_locked(double kill_prob, double corrupt_prob, double delay_prob)
      MENOS_REQUIRES(mutex_);

  const FaultPlan plan_;
  mutable util::Mutex mutex_{"net.faulty", 66};
  util::Rng rng_ MENOS_GUARDED_BY(mutex_);
  FaultStats stats_ MENOS_GUARDED_BY(mutex_);
};

/// Wrap `inner` so its frames pass through `injector`'s fault stream. The
/// decorated connection keeps the injector alive. Returns nullptr if
/// `inner` is nullptr (composes with failing dialers).
std::unique_ptr<Connection> decorate_with_faults(
    std::unique_ptr<Connection> inner,
    std::shared_ptr<FaultInjector> injector);

/// Decorate a dialer so every connection it returns shares `injector`'s
/// fault stream — the reconnect hook a fault-tolerant client hands to
/// core::Client.
Dialer faulty_dialer(Dialer inner, std::shared_ptr<FaultInjector> injector);

/// Server-side composition: accepted connections are decorated, so inbound
/// traffic from every client crosses the same lossy "WAN".
class FaultyAcceptor final : public Acceptor {
 public:
  FaultyAcceptor(Acceptor& inner, std::shared_ptr<FaultInjector> injector)
      : inner_(&inner), injector_(std::move(injector)) {}

  std::unique_ptr<Connection> accept() override {
    return decorate_with_faults(inner_->accept(), injector_);
  }
  void close() override { inner_->close(); }

 private:
  Acceptor* inner_;
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace menos::net
