// Binary wire format: little-endian primitives, length-prefixed strings,
// CRC-protected frames. Deliberately simple — the protocol has eight
// message types and both sides are this library — but strict: every frame
// is integrity-checked and every read is bounds-checked, and corruption
// surfaces as menos::ProtocolError (exercised by the failure-injection
// tests).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.h"

namespace menos::net {

class Writer {
 public:
  /// Grow capacity for at least `additional` more bytes. Callers that know
  /// a payload's size up front (tensor frames are megabytes) reserve once
  /// instead of paying repeated geometric reallocations + copies while the
  /// byte-wise put_* loops append.
  void reserve(std::size_t additional) { buf_.reserve(buf_.size() + additional); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u32(bits);
  }

  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  void put_string(const std::string& s) {
    put_u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void put_bytes(const std::vector<std::uint8_t>& b) {
    put_u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void put_f32_array(const float* data, std::size_t n) {
    reserve(8 + n * sizeof(float));
    put_u64(n);
    const std::size_t offset = buf_.size();
    buf_.resize(offset + n * sizeof(float));
    std::memcpy(buf_.data() + offset, data, n * sizeof(float));
  }

  void put_i32_array(const std::int32_t* data, std::size_t n) {
    reserve(8 + n * sizeof(std::int32_t));
    put_u64(n);
    const std::size_t offset = buf_.size();
    buf_.resize(offset + n * sizeof(std::int32_t));
    std::memcpy(buf_.data() + offset, data, n * sizeof(std::int32_t));
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  float get_f32() {
    const std::uint32_t bits = get_u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string get_string() {
    const std::uint64_t n = get_u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> get_bytes() {
    const std::uint64_t n = get_u64();
    need(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  std::vector<float> get_f32_array() {
    const std::uint64_t n = get_u64();
    need(n * sizeof(float));
    std::vector<float> v(n);
    std::memcpy(v.data(), data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return v;
  }

  std::vector<std::int32_t> get_i32_array() {
    const std::uint64_t n = get_u64();
    need(n * sizeof(std::int32_t));
    std::vector<std::int32_t> v(n);
    std::memcpy(v.data(), data_ + pos_, n * sizeof(std::int32_t));
    pos_ += n * sizeof(std::int32_t);
    return v;
  }

  bool exhausted() const noexcept { return pos_ == size_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (pos_ + n > size_) {
      throw ProtocolError("wire read past end of payload");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace menos::net
