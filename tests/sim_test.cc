// Discrete-event simulator: event loop mechanics, ModelSpec accounting
// (Eq. 2 vs Eq. 3), and the qualitative shapes the paper reports.
#include <gtest/gtest.h>

#include "sim/split_sim.h"
#include "util/bytes.h"

namespace menos::sim {
namespace {

using core::ServingMode;
using util::kGB;

TEST(EventLoop, OrdersByTimeThenInsertion) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(2.0, [&] { order.push_back(3); });
  loop.schedule(1.0, [&] { order.push_back(1); });
  loop.schedule(1.0, [&] { order.push_back(2); });  // same time: FIFO
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  double fired_at = -1.0;
  loop.schedule(1.0, [&] {
    loop.schedule(0.5, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(EventLoop, RunUntilAdvancesClock) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(5.0, [&] { ++fired; });
  loop.run_until(2.0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(loop.now(), 2.0);
  loop.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, NegativeDelayRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule(-1.0, [] {}), menos::InvalidArgument);
}

TEST(ModelSpec, MemoryEquations) {
  const ModelSpec s = ModelSpec::llama2_7b();
  // Eq. 2 without I: linear in N.
  EXPECT_EQ(s.vanilla_persistent_bytes(4), 4 * s.vanilla_task_bytes());
  // Eq. 3's persistent part: M + per-client adapters.
  const std::size_t one = s.menos_persistent_bytes(1);
  const std::size_t four = s.menos_persistent_bytes(4);
  EXPECT_EQ(four - one, 3 * (s.adapter_opt_bytes + s.context_bytes));
  // Fig 5(b): Menos at one client costs slightly MORE than vanilla.
  EXPECT_GT(one, s.vanilla_persistent_bytes(1));
  // ...but by 4 clients the reduction is ~72%.
  const double reduction =
      1.0 - static_cast<double>(four) /
                static_cast<double>(s.vanilla_persistent_bytes(4));
  EXPECT_GT(reduction, 0.65);
  EXPECT_LT(reduction, 0.80);
}

TEST(ModelSpec, OptReductionMatchesPaperBand) {
  const ModelSpec s = ModelSpec::opt_1_3b();
  const double reduction =
      1.0 - static_cast<double>(s.menos_persistent_bytes(4)) /
                static_cast<double>(s.vanilla_persistent_bytes(4));
  // Paper: 64.1% at 4 clients.
  EXPECT_NEAR(reduction, 0.641, 0.05);
}

TEST(ModelSpec, Section23MeasurementStudy) {
  // §2.3: Llama-2-7B at batch 4 needs ~28.7 GB = 24 (M) + 0.246 (A+O) + 4 (I).
  const ModelSpec s = ModelSpec::llama2_7b();
  const double total = util::to_gb(s.server_param_bytes +
                                   s.adapter_opt_bytes + s.bwd_bytes);
  EXPECT_NEAR(total, 28.0, 1.5);
}

SimConfig base_config(const ModelSpec& spec, ServingMode mode, int clients) {
  SimConfig c;
  c.spec = spec;
  c.mode = mode;
  c.num_clients = clients;
  c.iterations = 12;
  return c;
}

TEST(SplitSim, SingleClientMenosIterationTime) {
  auto r = run_split_finetune(
      base_config(ModelSpec::llama2_7b(), ServingMode::MenosOnDemand, 1));
  ASSERT_TRUE(r.feasible);
  // Fig 6(b): Menos Llama 1 client ~4.7 s; comm dominates (~3.1 s).
  EXPECT_NEAR(r.avg_iteration_s, 4.7, 1.0);
  EXPECT_NEAR(r.avg_comm_s, 3.1, 0.6);
  EXPECT_LT(r.avg_schedule_s, 0.01);
}

TEST(SplitSim, VanillaLlamaCannotHoldTwoCopies) {
  // A single V100 cannot host two Llama copies: with 2 clients the vanilla
  // baseline must swap and the iteration time explodes (Fig 6(b)).
  auto one = run_split_finetune(
      base_config(ModelSpec::llama2_7b(), ServingMode::VanillaTaskSwap, 1));
  auto two = run_split_finetune(
      base_config(ModelSpec::llama2_7b(), ServingMode::VanillaTaskSwap, 2));
  ASSERT_TRUE(one.feasible);
  ASSERT_TRUE(two.feasible);
  EXPECT_LT(one.avg_iteration_s, 5.0);
  EXPECT_GT(two.avg_iteration_s, 10.0 * one.avg_iteration_s);
  EXPECT_GT(two.clients[0].swaps, 0);
  EXPECT_EQ(one.clients[0].swaps, 0);  // sole task preloaded, never evicted
}

TEST(SplitSim, MenosLlamaScalesGently) {
  // Fig 6(b): Menos goes 4.7 -> ~6.0 s from 1 to 4 clients.
  auto one = run_split_finetune(
      base_config(ModelSpec::llama2_7b(), ServingMode::MenosOnDemand, 1));
  auto four = run_split_finetune(
      base_config(ModelSpec::llama2_7b(), ServingMode::MenosOnDemand, 4));
  ASSERT_TRUE(four.feasible);
  EXPECT_LT(four.avg_iteration_s, one.avg_iteration_s * 2.0);
  EXPECT_LT(four.avg_iteration_s, 8.0);
}

TEST(SplitSim, VanillaLlamaFiveClientsInfeasible) {
  // Paper: "At 5 clients, even main memory is insufficient" (128 GB host).
  auto r = run_split_finetune(
      base_config(ModelSpec::llama2_7b(), ServingMode::VanillaTaskSwap, 5));
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.infeasible_reason.find("host"), std::string::npos);
}

TEST(SplitSim, OptVanillaFineUntilFourClients) {
  // Fig 6(a): vanilla OPT is fine at <= 3 clients, then swap kicks in.
  const ModelSpec spec = ModelSpec::opt_1_3b();
  auto three = run_split_finetune(
      base_config(spec, ServingMode::VanillaTaskSwap, 3));
  auto six = run_split_finetune(
      base_config(spec, ServingMode::VanillaTaskSwap, 6));
  ASSERT_TRUE(three.feasible);
  ASSERT_TRUE(six.feasible);
  EXPECT_LT(three.avg_iteration_s, 8.0);
  EXPECT_LT(three.avg_schedule_s, 0.01);
  EXPECT_GT(six.avg_iteration_s, 1.5 * three.avg_iteration_s);
  EXPECT_GT(six.avg_schedule_s, 1.0);
}

TEST(SplitSim, MenosOptSchedulingNearZero) {
  // Table 3: Menos OPT schedule time ~1e-4 s at every client count.
  for (int n : {1, 2, 4, 6}) {
    auto r = run_split_finetune(
        base_config(ModelSpec::opt_1_3b(), ServingMode::MenosOnDemand, n));
    ASSERT_TRUE(r.feasible);
    EXPECT_LT(r.avg_schedule_s, 0.05) << n << " clients";
  }
}

TEST(SplitSim, CommTimeRoughlyConstantInClients) {
  // Table 1: communication time does not grow with the client count.
  double base = 0.0;
  for (int n : {1, 2, 4, 6}) {
    auto r = run_split_finetune(
        base_config(ModelSpec::opt_1_3b(), ServingMode::MenosOnDemand, n));
    if (n == 1) {
      base = r.avg_comm_s;
      EXPECT_NEAR(base, 6.4, 1.0);  // paper: ~5.9-7.1 s
    } else {
      EXPECT_NEAR(r.avg_comm_s, base, 0.5);
    }
  }
}

TEST(SplitSim, MenosComputeGrowsWithClients) {
  // Table 2: re-forward + release overhead makes Menos compute grow in N.
  auto one = run_split_finetune(
      base_config(ModelSpec::opt_1_3b(), ServingMode::MenosOnDemand, 1));
  auto six = run_split_finetune(
      base_config(ModelSpec::opt_1_3b(), ServingMode::MenosOnDemand, 6));
  EXPECT_NEAR(one.avg_compute_s, 0.71, 0.2);
  EXPECT_NEAR(six.avg_compute_s, 1.68, 0.4);
  // Vanilla compute stays flat.
  auto v3 = run_split_finetune(
      base_config(ModelSpec::opt_1_3b(), ServingMode::VanillaTaskSwap, 3));
  EXPECT_NEAR(v3.avg_compute_s, 0.45, 0.2);
}

TEST(SplitSim, PreservingPolicyQueuesWorseThanOnDemand) {
  // Fig 7: holding I between forward and backward blocks peers during the
  // gradient round-trip; on-demand releases and schedules them instead.
  const ModelSpec spec = ModelSpec::llama2_7b();
  auto preserve = run_split_finetune(base_config(
      spec, ServingMode::MenosReleaseAfterBackward, 4));
  auto ondemand = run_split_finetune(
      base_config(spec, ServingMode::MenosOnDemand, 4));
  ASSERT_TRUE(preserve.feasible);
  ASSERT_TRUE(ondemand.feasible);
  EXPECT_GT(preserve.avg_schedule_s, 4.0 * ondemand.avg_schedule_s);
  EXPECT_GT(preserve.avg_schedule_s, 1.0);
  EXPECT_LT(ondemand.avg_schedule_s, 1.0);
}

TEST(SplitSim, PreserveAllServializesClients) {
  // Fig 3(a): never releasing turns the server into one-client-at-a-time.
  const ModelSpec spec = ModelSpec::llama2_7b();
  auto r = run_split_finetune(
      base_config(spec, ServingMode::MenosPreserveAll, 3));
  ASSERT_TRUE(r.feasible);
  // Someone waited for a full predecessor run.
  double max_sched = 0.0;
  for (const auto& c : r.clients) {
    max_sched = std::max(max_sched, c.schedule_s.max());
  }
  EXPECT_GT(max_sched, 30.0);
}

TEST(SplitSim, MultiGpuRestoresThroughput) {
  // Fig 10: 10 CPU clients on 1 GPU degrade; 4 GPUs bring the iteration
  // time back near the 2-client baseline.
  SimConfig c = base_config(ModelSpec::llama2_7b(),
                            ServingMode::MenosOnDemand, 10);
  c.cpu_clients = true;
  c.num_gpus = 1;
  auto one_gpu = run_split_finetune(c);
  c.num_gpus = 4;
  auto four_gpu = run_split_finetune(c);
  SimConfig c2 = base_config(ModelSpec::llama2_7b(),
                             ServingMode::MenosOnDemand, 2);
  c2.cpu_clients = true;
  auto two_clients = run_split_finetune(c2);

  ASSERT_TRUE(one_gpu.feasible);
  ASSERT_TRUE(four_gpu.feasible);
  EXPECT_GT(one_gpu.avg_iteration_s, two_clients.avg_iteration_s + 1.0);
  EXPECT_LT(four_gpu.avg_iteration_s, one_gpu.avg_iteration_s);
  EXPECT_LT(four_gpu.avg_iteration_s, two_clients.avg_iteration_s + 2.5);
}

TEST(SplitSim, CpuClientsOnlySlightlySlower) {
  // Fig 10 inset: CPU clients cost ~0.8 s over GPU clients, because almost
  // all layers live on the server.
  SimConfig gpu_cfg = base_config(ModelSpec::llama2_7b(),
                                  ServingMode::MenosOnDemand, 2);
  auto gpu_clients = run_split_finetune(gpu_cfg);
  SimConfig cpu_cfg = gpu_cfg;
  cpu_cfg.cpu_clients = true;
  auto cpu_clients = run_split_finetune(cpu_cfg);
  const double delta =
      cpu_clients.avg_iteration_s - gpu_clients.avg_iteration_s;
  EXPECT_GT(delta, 0.2);
  EXPECT_LT(delta, 2.0);
}

TEST(SplitSim, DeterministicAcrossRuns) {
  auto a = run_split_finetune(
      base_config(ModelSpec::opt_1_3b(), ServingMode::MenosOnDemand, 4));
  auto b = run_split_finetune(
      base_config(ModelSpec::opt_1_3b(), ServingMode::MenosOnDemand, 4));
  EXPECT_DOUBLE_EQ(a.avg_iteration_s, b.avg_iteration_s);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(SplitSim, ClientScaleSizeValidated) {
  SimConfig c = base_config(ModelSpec::opt_1_3b(),
                            ServingMode::MenosOnDemand, 3);
  c.client_scale = {1.0, 2.0};  // wrong size
  EXPECT_THROW(run_split_finetune(c), menos::InvalidArgument);
}

TEST(SplitSim, HeterogeneousClientsAllComplete) {
  SimConfig c = base_config(ModelSpec::llama2_7b(),
                            ServingMode::MenosOnDemand, 6);
  c.client_scale = {1.6, 0.3, 1.6, 0.3, 1.6, 0.3};
  auto r = run_split_finetune(c);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.starved_clients, 0);
  // Big-batch clients pay more compute than small ones.
  EXPECT_GT(r.clients[0].compute_s.mean(), r.clients[1].compute_s.mean());
}

TEST(SplitSim, BackfillingEliminatesForwardWaits) {
  // §5.2: "there is almost no waiting time for forward requests even for
  // Llama ... our scheduling algorithm can always select and parallelize
  // them with the backward computations of other clients."
  SimConfig c = base_config(ModelSpec::llama2_7b(),
                            ServingMode::MenosOnDemand, 12);
  c.client_stagger_s = 0.73;
  for (int i = 0; i < 12; ++i) {
    c.client_scale.push_back(i % 2 == 0 ? 1.6 : 0.3);
  }
  c.sched_policy = sched::Policy::FcfsOnly;
  auto strict = run_split_finetune(c);
  c.sched_policy = sched::Policy::FcfsBackfill;
  auto backfill = run_split_finetune(c);
  ASSERT_TRUE(strict.feasible);
  ASSERT_TRUE(backfill.feasible);
  EXPECT_GT(backfill.sched_stats.backfill_grants, 0u);
  EXPECT_LT(backfill.avg_forward_wait_s, 0.5 * strict.avg_forward_wait_s);
}

TEST(SplitSim, ForwardWaitsTinyAtPaperWorkload) {
  for (int n : {2, 3, 4}) {
    auto r = run_split_finetune(
        base_config(ModelSpec::llama2_7b(), ServingMode::MenosOnDemand, n));
    EXPECT_LT(r.avg_forward_wait_s, 0.05) << n << " clients";
  }
}

TEST(SplitSim, NoStarvationInMenosModes) {
  for (int n : {2, 4, 8}) {
    auto r = run_split_finetune(
        base_config(ModelSpec::opt_1_3b(), ServingMode::MenosOnDemand, n));
    EXPECT_EQ(r.starved_clients, 0) << n << " clients";
    for (const auto& c : r.clients) {
      EXPECT_EQ(c.iterations_completed, 12);
    }
  }
}

TEST(SplitSim, FairnessNearOneUnderMenos) {
  // §4.2: "this combination of FCFS and backfilling ensures that no
  // clients are starved" — quantified with Jain's index.
  for (int n : {2, 4, 8}) {
    auto menos = run_split_finetune(
        base_config(ModelSpec::llama2_7b(), ServingMode::MenosOnDemand, n));
    ASSERT_TRUE(menos.feasible);
    EXPECT_GT(menos.fairness_index, 0.97) << n << " clients";
  }
  // Even under heterogeneous load the small clients are not crowded out.
  SimConfig het = base_config(ModelSpec::llama2_7b(),
                              ServingMode::MenosOnDemand, 6);
  het.client_scale = {1.6, 0.3, 1.6, 0.3, 1.6, 0.3};
  auto r = run_split_finetune(het);
  EXPECT_GT(r.fairness_index, 0.90);
}

}  // namespace
}  // namespace menos::sim
