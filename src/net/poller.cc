#include "net/poller.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace menos::net {
namespace {

/// Monotonic seconds for timer deadlines (origin irrelevant — only
/// differences are used).
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

constexpr short kReadableMask = POLLIN | POLLHUP | POLLERR | POLLNVAL;

}  // namespace

Poller::Poller() {
  if (::pipe(wake_pipe_) != 0) {
    throw StateError("Poller: self-pipe creation failed");
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
}

Poller::~Poller() {
  stop();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void Poller::start() {
  {
    util::MutexLock lock(mutex_);
    if (started_ || stopping_) return;
    started_ = true;
  }
  // Infrastructure thread, like the executor workers: ONE thread demuxing
  // readiness for every session, not a per-session thread.
  service_thread_ = std::thread([this] { service_loop(); });  // NOLINT(raw-thread)
}

void Poller::stop() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake();
  if (service_thread_.joinable()) service_thread_.join();
}

void Poller::wake() noexcept {
  const char byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

std::uint64_t Poller::watch(Connection& conn, Callback on_ready) {
  const int fd = conn.poll_fd();
  std::uint64_t token = 0;
  {
    util::MutexLock lock(mutex_);
    token = next_token_++;
    // Watches start DISARMED with a latched signal: no callback can fire
    // until the caller's first rearm(), which gives it a race-free window
    // to store the token the callback will need. The latched signal makes
    // that first rearm deliver promptly — the connection may already hold
    // buffered frames from before the watch.
    watches_.emplace(token,
                     Watch{&conn, std::move(on_ready), fd,
                           /*armed=*/false, /*signaled=*/true});
  }
  if (fd < 0) {
    // Push transport: readiness arrives through the hook. Installed outside
    // mutex_ so the pipe's hook mutex never nests inside ours.
    conn.set_ready_hook([this, token] { notify_ready(token); });
  }
  return token;
}

void Poller::unwatch(std::uint64_t token) {
  Connection* conn = nullptr;
  int fd = -1;
  {
    util::MutexLock lock(mutex_);
    auto it = watches_.find(token);
    if (it == watches_.end()) return;
    conn = it->second.conn;
    fd = it->second.fd;
    watches_.erase(it);
  }
  if (fd < 0 && conn != nullptr) {
    // Clearing synchronizes with in-flight hook invocations (see
    // inproc.cc): after this, the pipe cannot call back into us for this
    // token. The caller guarantees `conn` is still alive here.
    conn->set_ready_hook(nullptr);
  }
  wake();
}

void Poller::rearm(std::uint64_t token) {
  {
    util::MutexLock lock(mutex_);
    auto it = watches_.find(token);
    if (it == watches_.end()) return;
    it->second.armed = true;
  }
  wake();
}

void Poller::notify_ready(std::uint64_t token) {
  {
    util::MutexLock lock(mutex_);
    auto it = watches_.find(token);
    if (it == watches_.end()) return;
    it->second.signaled = true;
  }
  wake();
}

std::uint64_t Poller::schedule_every(double period_s, Callback tick) {
  std::uint64_t token = 0;
  {
    util::MutexLock lock(mutex_);
    token = next_token_++;
    timers_.emplace(token, Timer{period_s, std::move(tick),
                                 now_seconds() + period_s});
  }
  wake();
  return token;
}

void Poller::cancel_timer(std::uint64_t token) {
  util::MutexLock lock(mutex_);
  timers_.erase(token);
}

void Poller::service_loop() {
  std::vector<Callback> run_now;
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_tokens;
  for (;;) {
    run_now.clear();
    pfds.clear();
    pfd_tokens.clear();
    double poll_timeout_s = -1.0;  // infinite
    {
      util::MutexLock lock(mutex_);
      if (stopping_) return;
      for (auto& [token, watch] : watches_) {
        if (!watch.armed) continue;
        if (watch.signaled) {
          watch.armed = false;
          watch.signaled = false;
          run_now.push_back(watch.on_ready);
        } else if (watch.fd >= 0) {
          pfds.push_back(pollfd{watch.fd, POLLIN, 0});
          pfd_tokens.push_back(token);
        }
      }
      const double now = now_seconds();
      for (auto& [token, timer] : timers_) {
        if (now >= timer.next_due) {
          run_now.push_back(timer.tick);
          timer.next_due = now + timer.period_s;  // no catch-up bursts
        } else if (poll_timeout_s < 0.0 ||
                   timer.next_due - now < poll_timeout_s) {
          poll_timeout_s = timer.next_due - now;
        }
      }
    }
    // Self-pipe last so its index is stable regardless of watch count.
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    const int timeout_ms =
        !run_now.empty()
            ? 0
            : (poll_timeout_s < 0.0
                   ? -1
                   : std::max(1, static_cast<int>(poll_timeout_s * 1e3)));
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      MENOS_LOG(Error) << "Poller: poll failed: " << errno;
    }
    if (rc > 0) {
      if (pfds.back().revents & kReadableMask) {
        char drain[64];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
      }
      util::MutexLock lock(mutex_);
      for (std::size_t i = 0; i + 1 < pfds.size(); ++i) {
        if ((pfds[i].revents & kReadableMask) == 0) continue;
        auto it = watches_.find(pfd_tokens[i]);
        if (it == watches_.end() || !it->second.armed) continue;
        it->second.armed = false;
        it->second.signaled = false;
        run_now.push_back(it->second.on_ready);
      }
    }
    // Dispatch with no lock held: callbacks post to an executor and may
    // re-enter rearm()/unwatch().
    for (auto& cb : run_now) {
      try {
        cb();
      } catch (const std::exception& e) {
        MENOS_LOG(Error) << "Poller callback threw: " << e.what();
      }
    }
  }
}

}  // namespace menos::net
