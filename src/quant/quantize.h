// Base-parameter quantization (the paper's §6 "orthogonal" optimization).
//
// The paper notes that quantization methods like QLoRA (4-bit NormalFloat)
// and 8-bit matrix multiplication "could also be applied to the shared
// model parameters in Menos". This module implements both mechanisms for
// frozen weights:
//
//  * Int8Rowwise — symmetric absmax per output row, 8 bits per weight
//    (the LLM.int8()-style scheme).
//  * Nf4Block    — 4-bit codes against a normal-quantile codebook with a
//    per-block absmax scale (the QLoRA NF4 scheme).
//
// Quantized tensors are metered on gpusim devices like everything else, so
// the M/4 and M/8 footprint reductions are observable byte counts.
// quantized_matmul supports the backward pass with respect to the
// ACTIVATIONS only (dequantize-on-the-fly, exactly the QLoRA compute
// trade) — frozen base weights never receive gradients, which is what
// makes quantizing them safe in adapter-based fine-tuning.
#pragma once

#include <memory>

#include "gpusim/device.h"
#include "tensor/ops.h"

namespace menos::quant {

enum class Scheme : std::uint8_t { Int8Rowwise, Nf4Block };

const char* scheme_name(Scheme scheme) noexcept;

/// Bits per weight (excluding scales).
int scheme_bits(Scheme scheme) noexcept;

/// An immutable quantized 2-D weight on a metered device. Cheap to copy
/// (shared payload), safe to share across clients like any frozen base
/// parameter.
class QuantizedTensor {
 public:
  QuantizedTensor() = default;

  /// Quantize a float matrix [rows, cols].
  static QuantizedTensor quantize(const tensor::Tensor& src, Scheme scheme,
                                  gpusim::Device& device);

  bool defined() const noexcept { return impl_ != nullptr; }
  const tensor::Shape& shape() const;
  tensor::Index rows() const;
  tensor::Index cols() const;
  Scheme scheme() const;

  /// Device bytes held (codes + scales) — the quantized M footprint.
  std::size_t bytes() const;

  /// Materialize the float reconstruction (a fresh, transient tensor).
  tensor::Tensor dequantize(gpusim::Device& device) const;

  /// Reconstruct a single row into `out` (length cols). The building block
  /// of the streaming matmul: only one row of floats is ever live.
  void dequantize_row(tensor::Index row, float* out) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// y = x @ W_q, streaming-dequantized: x [*, in], W_q [in, out].
/// Differentiable with respect to x only (dx = g @ W_dq^T, recomputed by
/// dequantizing again — compute traded for memory, like the re-forward of
/// §3.2).
tensor::Tensor quantized_matmul(const tensor::Tensor& x,
                                const QuantizedTensor& w);

/// Root-mean-square reconstruction error against the original, for tests
/// and the quantization ablation.
double reconstruction_rmse(const tensor::Tensor& original,
                           const QuantizedTensor& quantized);

}  // namespace menos::quant
