// Cross-client batched trunk compute: sessions/sec for a population of
// compatible clients under Policy::CoalescedBatch vs plain FCFS+backfill
// (docs/ARCHITECTURE.md "Cross-client batched trunk compute", docs/PERF.md).
//
// Each point runs N in-proc clients (one driver thread each, lockstep
// waves of one training step) against a fresh server whose schedulable
// pool is gated to 16 demands per phase. Under FCFS that pool bounds
// concurrency and every trunk pass walks the blocks for one client;
// under CoalescedBatch the same queue coalesces into fused passes of up
// to 16 clients, so the trunk's per-pass fixed costs — tape
// construction, dispatch, panel packing, step-graph bookkeeping — are
// paid once per GROUP. The speedup column is the headline.
//
// Emits BENCH_batching.json (or argv[1]). With `--check-floor <x>` the
// process exits 1 if the speedup at the LARGEST client count falls below
// x — the CI regression gate for the batching path.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "data/dataset.h"
#include "net/transport.h"
#include "sched/scheduler.h"

namespace {

using namespace menos;

// Deep trunk on purpose: the server hosts blocks [1, n_layers), so the
// fused pass amortizes twenty-three blocks of per-pass fixed cost per group
// while the client-side share (embedding, one block, head, optimizer)
// stays constant.
nn::TransformerConfig bench_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 24;
  return c;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reusable lockstep barrier (drivers + the coordinating main thread).
class WaveBarrier {
 public:
  explicit WaveBarrier(int parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

struct Point {
  int clients = 0;
  double fcfs_sessions_per_sec = 0.0;
  double coalesced_sessions_per_sec = 0.0;
  double speedup = 0.0;
  std::uint64_t groups = 0;
  std::uint64_t members = 0;
};

/// One policy, N clients, one training step each. Connect/profile happen
/// outside the timed window; the measurement is the stepping phase only.
double measure(sched::Policy policy, int count, std::uint64_t* groups,
               std::uint64_t* members) {
  gpusim::DeviceManager devices(1, 256u << 20);
  gpusim::DeviceManager client_devices(1, 2ull << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.sched_policy = policy;
  config.base_seed = 42;
  // A single-threaded executor computes every grant inline before the next
  // request is even parsed, so the scheduler would never see two waiting
  // requests no matter the memory pressure. Four workers keep request
  // intake flowing while grants compute.
  config.executor_threads = 4;
  net::InprocAcceptor acceptor;
  core::Server server(config, devices, bench_model());
  server.start(acceptor);

  std::vector<std::unique_ptr<core::Client>> clients;
  clients.reserve(static_cast<std::size_t>(count));
  const auto connect_one = [&](int c) {
    core::ClientOptions options;
    options.finetune.model = bench_model();
    // Prefix adapters leave the trunk frozen (the prefix rows live in the
    // client's input section), so the whole population shares one batch
    // key — the canonical coalescible workload. The default (LoRA) would
    // pin every client to batch key 0.
    options.finetune.adapter.type = nn::AdapterType::Prefix;
    options.finetune.adapter.prefix_len = 2;
    // Small per-client passes (4 activation rows) are the regime batching
    // targets: per-pass fixed costs — tape construction, dispatch, packing
    // — dominate, and one fused 64-row pass amortizes them 16 ways.
    options.finetune.batch_size = 1;
    options.finetune.seq_len = 2;
    options.finetune.adapter_seed = 1000 + static_cast<std::uint64_t>(c);
    options.base_seed = 42;
    clients.push_back(std::make_unique<core::Client>(
        options, acceptor.connect(), client_devices.gpu(0)));
    clients.back()->connect();
  };

  for (int c = 0; c < count; ++c) connect_one(c);
  const std::size_t fwd = clients[0]->server_forward_bytes();
  const std::size_t bwd = clients[0]->server_backward_bytes();
  const std::size_t avail = server.scheduler().available();
  sched::Scheduler& sched = server.scheduler();

  // Lockstep waves with a scheduler-level gate, applied IDENTICALLY to
  // both policies: each wave opens with the whole pool reserved so every
  // forward queues, then the pool is released to 16 forward demands
  // (forwards flow 16 wide — fused groups of 16 under CoalescedBatch, 16
  // concurrent solos under FCFS). A backward demand exceeds that pool, so
  // backwards self-gate; widening to 16 backward demands drains them the
  // same way. This removes arrival timing from the measurement entirely:
  // both policies face the same queue, and the delta is purely
  // one-fused-pass-per-group vs one-trunk-pass-per-client.
  const std::size_t kGroup = 16;
  const std::size_t fwd_pool = fwd * kGroup;
  const std::size_t bwd_pool = bwd * kGroup;
  if (bwd <= fwd_pool || bwd_pool > avail) {
    std::fprintf(stderr,
                 "fig11_batching: demands do not self-gate "
                 "(fwd=%zu bwd=%zu avail=%zu); results not comparable\n",
                 fwd, bwd, avail);
  }
  std::size_t reserved = 0;
  const auto set_free = [&](std::size_t target_free) {
    const std::size_t target_reserved =
        avail > target_free ? avail - target_free : 0;
    if (target_reserved > reserved) {
      sched.reserve_persistent(0, target_reserved - reserved);
    } else if (reserved > target_reserved) {
      sched.release_persistent(0, reserved - target_reserved);
    }
    reserved = target_reserved;
  };
  const auto requests_reach = [&](std::uint64_t want) {
    for (int i = 0; i < 60000; ++i) {
      if (sched.stats().requests >= want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };

  constexpr int kWaves = 3;
  WaveBarrier barrier(count + 1);
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) {
    drivers.emplace_back([&, c] {
      data::CharTokenizer tok;
      data::DataLoader loader(
          tok.encode(data::make_shakespeare_like(2000, 3).text), 1, 2,
          static_cast<std::uint64_t>(c));
      for (int w = 0; w < kWaves; ++w) {
        barrier.arrive_and_wait();
        clients[static_cast<std::size_t>(c)]->train_step(loader.next());
        barrier.arrive_and_wait();
      }
    });
  }

  const double t0 = now_seconds();
  std::uint64_t seen_requests = sched.stats().requests;
  for (int w = 0; w < kWaves; ++w) {
    set_free(0);
    barrier.arrive_and_wait();  // wave opens; every forward queues
    seen_requests += static_cast<std::uint64_t>(count);
    if (!requests_reach(seen_requests)) {
      std::fprintf(stderr, "fig11_batching: wave %d forwards stalled\n", w);
    }
    set_free(fwd_pool);
    seen_requests += static_cast<std::uint64_t>(count);
    if (!requests_reach(seen_requests)) {
      std::fprintf(stderr, "fig11_batching: wave %d backwards stalled\n", w);
    }
    set_free(bwd_pool);
    barrier.arrive_and_wait();  // wave closes: every reply delivered
  }
  const double elapsed = now_seconds() - t0;
  for (auto& d : drivers) d.join();
  set_free(avail);

  const sched::SchedulerStats ss = server.scheduler().stats();
  *groups = ss.coalesced_groups;
  *members = ss.coalesced_members;
  for (auto& c : clients) c->disconnect();
  server.stop();
  return static_cast<double>(count) * kWaves / elapsed;
}

Point run_point(int count) {
  Point p;
  p.clients = count;
  std::uint64_t g = 0;
  std::uint64_t m = 0;
  p.fcfs_sessions_per_sec = measure(sched::Policy::FcfsBackfill, count, &g, &m);
  p.coalesced_sessions_per_sec =
      measure(sched::Policy::CoalescedBatch, count, &p.groups, &p.members);
  p.speedup = p.coalesced_sessions_per_sec / p.fcfs_sessions_per_sec;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_batching.json";
  double floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-floor") == 0 && i + 1 < argc) {
      floor = std::atof(argv[++i]);
    } else {
      out_path = argv[i];
    }
  }

  std::printf("fig11_batching: hardware_concurrency=%u\n",
              std::thread::hardware_concurrency());
  std::vector<Point> points;
  for (int count : {8, 32, 128}) {
    const Point p = run_point(count);
    std::printf(
        "clients=%4d  fcfs %8.2f sessions/s   coalesced %8.2f sessions/s  "
        "(%.2fx, %llu groups / %llu members)\n",
        p.clients, p.fcfs_sessions_per_sec, p.coalesced_sessions_per_sec,
        p.speedup, static_cast<unsigned long long>(p.groups),
        static_cast<unsigned long long>(p.members));
    points.push_back(p);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig11_batching\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"clients\": %d, \"fcfs_sessions_per_sec\": %.2f, "
                 "\"coalesced_sessions_per_sec\": %.2f, \"speedup\": %.3f, "
                 "\"coalesced_groups\": %llu, \"coalesced_members\": %llu}%s\n",
                 p.clients, p.fcfs_sessions_per_sec,
                 p.coalesced_sessions_per_sec, p.speedup,
                 static_cast<unsigned long long>(p.groups),
                 static_cast<unsigned long long>(p.members),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (floor > 0.0) {
    const double last = points.back().speedup;
    if (last < floor) {
      std::fprintf(stderr,
                   "FAIL: speedup %.3fx at %d clients is below the floor "
                   "%.2fx\n",
                   last, points.back().clients, floor);
      return 1;
    }
    std::printf("floor check passed: %.3fx >= %.2fx at %d clients\n", last,
                floor, points.back().clients);
  }
  return 0;
}
