#include "core/client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "core/checkpoint.h"
#include "net/wire.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace menos::core {
namespace {

/// Internal control-flow signal for rpc(): the link died mid-exchange in a
/// way that redial + resume + replay can recover from.
struct LinkLost {};

}  // namespace

Client::Client(const ClientOptions& options,
               std::unique_ptr<net::Connection> connection,
               gpusim::Device& device, net::Dialer dialer)
    : options_(options),
      connection_(std::move(connection)),
      device_(&device),
      dialer_(std::move(dialer)),
      retry_rng_(options.retry_seed) {
  if (connection_ != nullptr && options_.receive_timeout_s > 0.0) {
    connection_->set_receive_timeout(options_.receive_timeout_s);
  }
  net::FinetuneConfig& ft = options_.finetune;
  const net::ClientProfile& profile = ft.profile;
  if (profile.cut_depth != 0) {
    // The profile's chosen cut overrides the split's default depth; the
    // server re-derives its trunk from the same Hello config, so both
    // sides agree by construction.
    ft.split.front_blocks = profile.cut_depth;
  }
  ft.model.validate();
  ft.split.validate(ft.model);
  MENOS_CHECK_MSG(std::isfinite(profile.compute_scale) &&
                      profile.compute_scale > 0.0,
                  "client profile compute_scale must be finite > 0");
  frozen_ = profile.frozen_client_half;
  if (frozen_) {
    // A frozen device half never trains the input section, and a Prefix
    // adapter would change the cut-tensor geometry, so it cannot simply be
    // dropped from one side.
    MENOS_CHECK_MSG(ft.adapter.type != nn::AdapterType::Prefix,
                    "frozen_client_half is incompatible with Prefix adapters");
  }
  // Adapter stream derivation shared with nn::LocalModel and the serving
  // session: #1 input, #2 server (skipped here), #3 output. A frozen input
  // section takes AdapterType::None; its stream is still forked (and left
  // unconsumed) so the output-section stream stays identical either way.
  util::Rng root(ft.adapter_seed);
  util::Rng rng_in = root.fork();
  (void)root.fork();
  util::Rng rng_out = root.fork();
  nn::AdapterSpec input_adapter = ft.adapter;
  if (frozen_) input_adapter.type = nn::AdapterType::None;
  nn::FreshInit init(options_.base_seed);
  input_ = std::make_unique<nn::InputSection>(ft.model, ft.split, input_adapter,
                                              init, device, rng_in);
  output_ = std::make_unique<nn::OutputSection>(ft.model, ft.split, ft.adapter,
                                                init, device, rng_out);
  std::vector<nn::Parameter> trainable = input_->trainable_parameters();
  for (nn::Parameter& p : output_->trainable_parameters()) {
    trainable.push_back(std::move(p));
  }
  optimizer_ = optim::make_optimizer(ft.optimizer, std::move(trainable), ft.lr);
}

Client::~Client() {
  if (connected_) disconnect();
}

void Client::connect() {
  MENOS_CHECK_MSG(!connected_, "client already connected");
  const net::Message reply =
      rpc(net::Message::hello(options_.finetune), net::MessageType::HelloAck,
          "handshake");
  fwd_bytes_ = reply.forward_bytes;
  bwd_bytes_ = reply.backward_bytes;
  session_token_ = reply.session_token;
  lease_seconds_ = reply.lease_seconds;
  connected_ = true;
}

void Client::reestablish() {
  std::unique_ptr<net::Connection> fresh = dialer_();
  if (fresh == nullptr) throw LinkLost{};
  if (options_.receive_timeout_s > 0.0) {
    fresh->set_receive_timeout(options_.receive_timeout_s);
  }
  if (session_token_ != 0) {
    // Re-enter the parked server session; a brand-new pre-handshake client
    // (token 0) just dials and lets the pending Hello do the rest.
    if (!fresh->send(net::Message::resume_session(session_token_))) {
      throw LinkLost{};
    }
    std::optional<net::Message> ack;
    try {
      ack = fresh->receive();
    } catch (const ProtocolError&) {
      throw LinkLost{};
    }
    if (!ack.has_value()) throw LinkLost{};
    if (ack->type == net::MessageType::Error) {
      // The lease expired (or the token is bogus): the session and its
      // state are gone, so replaying the request cannot help.
      throw StateError("server refused resume: " + ack->text);
    }
    MENOS_CHECK_MSG(ack->type == net::MessageType::ResumeAck,
                    "unexpected resume reply: "
                        << net::message_type_name(ack->type));
    ++resumes_;
    if (options_.trace != nullptr) {
      options_.trace->record(util::TraceCategory::Network, "net.resume");
    }
  }
  connection_ = std::move(fresh);
}

net::Message Client::rpc(const net::Message& request,
                         net::MessageType expected, const char* context) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (connection_ == nullptr) reestablish();
      if (!connection_->send(request)) throw LinkLost{};
      std::optional<net::Message> reply;
      try {
        reply = connection_->receive();
      } catch (const ProtocolError&) {
        throw LinkLost{};  // corrupt frame: the stream is unrecoverable
      }
      if (!reply.has_value()) throw LinkLost{};
      if (reply->type == net::MessageType::Error) {
        throw StateError("server error: " + reply->text);
      }
      MENOS_CHECK_MSG(reply->type == expected,
                      context << ": unexpected reply "
                              << net::message_type_name(reply->type));
      return std::move(*reply);
    } catch (const LinkLost&) {
      if (connection_ != nullptr) {
        connection_->close();
        connection_.reset();
      }
      if (dialer_ == nullptr) {
        throw StateError(std::string("connection lost: ") + context);
      }
      if (attempt + 1 >= options_.retry.max_attempts) {
        throw StateError(std::string("connection lost (retries exhausted): ") +
                         context);
      }
      ++retries_;
      if (options_.trace != nullptr) {
        options_.trace->record(util::TraceCategory::Network, "net.retry");
      }
      const double sleep_s = options_.retry.backoff_s(attempt, retry_rng_);
      if (sleep_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      }
    }
  }
}

void Client::heartbeat() {
  MENOS_CHECK_MSG(connected_, "heartbeat before connect()");
  rpc(net::Message::heartbeat(), net::MessageType::HeartbeatAck, "heartbeat");
}

double Client::emulate_compute(double measured_s) {
  const double scale = options_.finetune.profile.compute_scale;
  if (scale <= 1.0 || measured_s <= 0.0) return measured_s;
  const double pad_s = (scale - 1.0) * measured_s;
  std::this_thread::sleep_for(std::chrono::duration<double>(pad_s));
  return measured_s + pad_s;
}

tensor::Tensor Client::input_forward(const data::Batch& batch) {
  MENOS_CHECK_MSG(batch.batch_size == options_.finetune.batch_size &&
                      batch.seq_len == options_.finetune.seq_len,
                  "batch geometry differs from the profiled configuration");
  return input_->forward(batch.inputs, batch.batch_size, batch.seq_len);
}

StepStats Client::train_step(const data::Batch& batch) {
  return run_round(batch, /*defer_update=*/false, /*loss_scale=*/1.0f);
}

StepStats Client::train_step_accumulated(
    const std::vector<data::Batch>& micro) {
  MENOS_CHECK_MSG(!micro.empty(), "need at least one micro-batch");
  const float scale = 1.0f / static_cast<float>(micro.size());
  StepStats total;
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const bool last = i + 1 == micro.size();
    const StepStats s = run_round(micro[i], /*defer_update=*/!last, scale);
    total.loss += s.loss * scale;
    total.total_s += s.total_s;
    total.comm_s += s.comm_s;
    total.client_compute_s += s.client_compute_s;
    total.server_compute_s += s.server_compute_s;
    total.server_wait_s += s.server_wait_s;
    total.iteration = s.iteration;
  }
  return total;
}

StepStats Client::run_round(const data::Batch& batch, bool defer_update,
                            float loss_scale) {
  MENOS_CHECK_MSG(connected_, "train_step before connect()");
  using tensor::Tensor;
  StepStats stats;
  stats.iteration = iteration_;
  util::Stopwatch total_sw;

  // Step 1: local input-section forward (grad-tracked for the adapters;
  // a frozen device half skips the graph entirely).
  util::Stopwatch client_sw;
  Tensor x_c;
  if (frozen_) {
    tensor::NoGradGuard no_grad;
    x_c = input_forward(batch);
  } else {
    x_c = input_forward(batch);
  }
  net::WireTensor x_c_wire = to_wire(x_c);
  stats.client_compute_s += emulate_compute(client_sw.elapsed_seconds());

  net::Message fwd_msg = net::Message::forward(std::move(x_c_wire), iteration_);
  fwd_msg.tensor_codec = options_.finetune.profile.codec;
  const net::Message fwd_reply =
      rpc(fwd_msg, net::MessageType::ForwardResult, "forward");
  stats.server_compute_s += fwd_reply.compute_seconds;
  stats.server_wait_s += fwd_reply.schedule_wait_seconds;

  // Steps 2-3: output section, loss, local backward down to g_c.
  client_sw.reset();
  Tensor x_s = from_wire(fwd_reply.tensor, *device_, /*requires_grad=*/true);
  Tensor loss = output_->loss(x_s, input_->prefix_len(), batch.targets);
  stats.loss = loss.item();
  tensor::backward(tensor::scale(loss, loss_scale));
  Tensor g_c = x_s.grad();
  MENOS_CHECK_MSG(g_c.defined(), "no gradient reached the cut point x_s");
  net::WireTensor g_c_wire = to_wire(g_c);
  stats.client_compute_s += emulate_compute(client_sw.elapsed_seconds());

  const float step_lr =
      options_.finetune.lr *
      options_.schedule.factor_at(static_cast<std::int64_t>(iteration_));
  net::Message backward_msg =
      net::Message::backward(std::move(g_c_wire), iteration_);
  backward_msg.defer_update = defer_update;
  backward_msg.lr_override = step_lr;
  backward_msg.tensor_codec = options_.finetune.profile.codec;
  const net::Message bwd_reply =
      rpc(backward_msg, net::MessageType::BackwardResult, "backward");
  stats.server_compute_s += bwd_reply.compute_seconds;
  stats.server_wait_s += bwd_reply.schedule_wait_seconds;

  // Step 4: finish back-propagation through the input section and update
  // the client-side adapters. A frozen device half has nothing to
  // back-propagate into: the server advertises this by replying with an
  // explicitly empty tensor, which we hold it to.
  client_sw.reset();
  if (frozen_) {
    MENOS_CHECK_MSG(bwd_reply.tensor.data.empty(),
                    "server returned activation grads to a frozen client");
  } else {
    Tensor g_s = from_wire(bwd_reply.tensor, *device_);
    tensor::backward(x_c, g_s);
  }
  if (!defer_update) {
    optimizer_->set_lr(step_lr);
    optimizer_->step();
    optimizer_->zero_grad();
  }
  x_s.zero_grad();
  stats.client_compute_s += emulate_compute(client_sw.elapsed_seconds());

  stats.total_s = total_sw.elapsed_seconds();
  stats.comm_s = stats.total_s - stats.client_compute_s -
                 stats.server_compute_s - stats.server_wait_s;
  if (stats.comm_s < 0.0) stats.comm_s = 0.0;
  ++iteration_;
  return stats;
}

double Client::evaluate(const data::Batch& batch) {
  MENOS_CHECK_MSG(connected_, "evaluate before connect()");
  using tensor::Tensor;
  tensor::NoGradGuard no_grad;
  Tensor x_c = input_forward(batch);
  net::Message msg = net::Message::forward(to_wire(x_c), iteration_);
  msg.eval_only = true;
  msg.tensor_codec = options_.finetune.profile.codec;
  const net::Message reply =
      rpc(msg, net::MessageType::ForwardResult, "evaluate");
  Tensor x_s = from_wire(reply.tensor, *device_);
  return output_->loss(x_s, input_->prefix_len(), batch.targets).item();
}

std::vector<std::int32_t> Client::generate(std::vector<std::int32_t> prompt,
                                           int n_new) {
  MENOS_CHECK_MSG(connected_, "generate before connect()");
  MENOS_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  using tensor::Tensor;
  tensor::NoGradGuard no_grad;
  const tensor::Index max_seq = options_.finetune.model.max_seq;
  for (int step = 0; step < n_new; ++step) {
    const std::size_t window = std::min<std::size_t>(
        prompt.size(), static_cast<std::size_t>(max_seq));
    const std::vector<std::int32_t> context(prompt.end() - window,
                                            prompt.end());
    Tensor x_c =
        input_->forward(context, 1, static_cast<tensor::Index>(window));
    net::Message msg = net::Message::forward(to_wire(x_c), iteration_);
    msg.eval_only = true;
    msg.tensor_codec = options_.finetune.profile.codec;
    const net::Message reply =
        rpc(msg, net::MessageType::ForwardResult, "generate");
    Tensor x_s = from_wire(reply.tensor, *device_);
    Tensor logits = output_->logits(x_s, input_->prefix_len());
    prompt.push_back(tensor::argmax_lastdim(logits).back());
  }
  return prompt;
}

namespace {

std::vector<nn::Parameter> local_adapter_params(nn::InputSection& input,
                                                nn::OutputSection& output) {
  std::vector<nn::Parameter> params = input.trainable_parameters();
  for (nn::Parameter& p : output.trainable_parameters()) {
    params.push_back(std::move(p));
  }
  return params;
}

}  // namespace

std::vector<std::uint8_t> Client::export_adapter() {
  MENOS_CHECK_MSG(connected_, "export_adapter before connect()");
  // Fetch the server-side adapter phi_s.
  const net::Message reply = rpc(net::Message::fetch_adapter(),
                                 net::MessageType::AdapterBlob, "export");

  const std::vector<std::uint8_t> local =
      serialize_adapter(local_adapter_params(*input_, *output_));
  net::Writer w;
  w.put_bytes(local);
  w.put_bytes(reply.blob);
  return w.take();
}

std::size_t Client::import_adapter(const std::uint8_t* data,
                                   std::size_t size) {
  MENOS_CHECK_MSG(connected_, "import_adapter before connect()");
  net::Reader r(data, size);
  const std::vector<std::uint8_t> local = r.get_bytes();
  const std::vector<std::uint8_t> remote = r.get_bytes();
  if (!r.exhausted()) throw ProtocolError("trailing bytes in adapter export");

  const std::size_t loaded = deserialize_adapter(
      local.data(), local.size(), local_adapter_params(*input_, *output_));

  rpc(net::Message::push_adapter(remote), net::MessageType::PushAck,
      "import");
  return loaded;
}

void Client::disconnect() {
  if (!connected_) return;
  // Bye is best-effort and never retried: if the link is gone the server's
  // lease (or its connection-death path) tears the session down anyway.
  if (connection_ != nullptr) {
    connection_->send(net::Message::bye());
    connection_->close();
  }
  connected_ = false;
}

std::size_t Client::parameter_bytes() const {
  return input_->parameter_bytes() + output_->parameter_bytes();
}

std::size_t Client::adapter_bytes() const {
  return input_->trainable_parameter_bytes() +
         output_->trainable_parameter_bytes();
}

}  // namespace menos::core
