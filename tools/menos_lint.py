#!/usr/bin/env python3
"""menos_lint — repo-specific invariants the compiler cannot see.

Rules (see docs/ANALYSIS.md for rationale and examples):

  raw-alloc              No malloc/calloc/realloc/free, raw `new T[...]`, or
                         `::operator new` in src/ outside src/gpusim/ — all
                         tensor-sized storage must flow through the Device
                         layer so the byte accounting the paper's claims
                         rest on stays exact.
  iostream-side-channel  No std::cout/std::cerr/std::clog or printf-family
                         calls in src/ outside src/util/logging.* — output
                         goes through MENOS_LOG so it is leveled, atomic,
                         and silenceable in tests.
  raw-mutex              No std::mutex / std::condition_variable /
                         std::lock_guard / std::unique_lock in src/ outside
                         src/util/mutex.h — Clang's thread-safety analysis
                         only sees the annotated util::Mutex wrappers.
  mutex-annotation       Every util::Mutex member must be referenced by at
                         least one MENOS_GUARDED_BY / MENOS_PT_GUARDED_BY /
                         MENOS_REQUIRES in the same file, i.e. the mutex
                         demonstrably guards something. A mutex that
                         legitimately guards no member (it serializes an
                         action) carries a NOLINT with a comment saying so.
  pragma-once            Every header in src/, tests/, bench/ uses
                         `#pragma once`.
  nondeterminism         No std::rand/srand/std::random_device in src/
                         outside src/util/rng.* — every experiment must be
                         reproducible from a single util::Rng seed.
  raw-thread             No std::thread / std::jthread / std::async in src/
                         outside src/util/ — concurrency is owned by the
                         shared serving core (util::TaskPool + Strand, the
                         net::Poller service thread). Per-session threads
                         are exactly what the event-driven refactor removed;
                         the few legitimate infrastructure threads carry a
                         NOLINT with a justification.
  raw-close              No ::close()/::shutdown() in src/ outside src/net/
                         — file descriptors are transport-layer property.
                         The TCP transport defers the real close until
                         blocked receives drain (the fd-reuse race of
                         docs/FAULTS.md); a stray ::close() elsewhere
                         reintroduces exactly that bug.

Suppression: append `// NOLINT(<rule>)` to the offending line, or put
`// NOLINTNEXTLINE(<rule>)` on the line above it. A bare NOLINT (no rule
list) suppresses every rule on that line. Suppressions should say *why* —
the linter does not check that, reviewers do.

Usage:
  tools/menos_lint.py [--root REPO_ROOT]   lint the tree (exit 1 on findings)
  tools/menos_lint.py --self-test          prove each rule fires on a seeded
                                           violation (exit 1 on regression)
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

# ---------------------------------------------------------------------------
# Helpers


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure.

    Lint rules match *code*; prose is allowed to mention std::mutex. String
    literals are not parsed — a rule pattern inside a string would be a
    false positive we accept for a 300-line linter.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif ch == '"':
            # Skip string literals so quoted examples don't trip rules.
            out.append(ch)
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            if i < n:
                out.append('"')
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE)?(?:\(([^)]*)\))?")


def suppressed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    """True if `rule` is NOLINT-suppressed for 1-based line `lineno`."""
    candidates = []
    if lineno - 1 < len(raw_lines):
        candidates.append((raw_lines[lineno - 1], False))
    if lineno - 2 >= 0:
        candidates.append((raw_lines[lineno - 2], True))
    for line, needs_nextline in candidates:
        for m in NOLINT_RE.finditer(line):
            is_nextline = "NOLINTNEXTLINE" in m.group(0)
            if needs_nextline != is_nextline:
                continue
            rules = m.group(1)
            if rules is None or rule in [r.strip() for r in rules.split(",")]:
                return True
    return False


class Finding:
    def __init__(self, path: Path, lineno: int, rule: str, message: str):
        self.path, self.lineno, self.rule, self.message = path, lineno, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Rules. Each rule is a function (path, raw_text) -> list[Finding].

RAW_ALLOC_RE = re.compile(
    r"\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\("
    r"|\bnew\s+[A-Za-z_][\w:<>,* ]*\["
    r"|::operator new\b"
)
IOSTREAM_RE = re.compile(
    r"std::cout\b|std::cerr\b|std::clog\b"
    r"|\b(?:printf|fprintf|puts|fputs|putchar)\s*\("
)
RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|recursive_mutex|shared_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
NONDET_RE = re.compile(r"std::rand\b|\bsrand\s*\(|std::random_device\b")
RAW_THREAD_RE = re.compile(r"std::j?thread\b(?!::)|std::async\s*\(")
RAW_CLOSE_RE = re.compile(r"::close\s*\(|::shutdown\s*\(")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:(?:menos::)?util::)?Mutex\s+(\w+)\s*;"
)
KERNEL_SCRATCH_RE = re.compile(
    r"std::vector\s*<\s*float\s*>|std::aligned_alloc\s*\("
    r"|std::make_unique\s*<\s*float\s*\[\]|alloca\s*\("
)


def check_pattern_rule(path, raw, rule, regex, exempt, message):
    if exempt(path):
        return []
    raw_lines = raw.splitlines()
    findings = []
    for lineno, line in enumerate(strip_comments(raw).splitlines(), start=1):
        if regex.search(line) and not suppressed(raw_lines, lineno, rule):
            findings.append(Finding(path, lineno, rule, message))
    return findings


def check_raw_alloc(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-alloc", RAW_ALLOC_RE,
        exempt=lambda p: "gpusim" in p.parts or "src" not in p.parts,
        message="raw heap allocation — storage must go through the gpusim "
                "Device layer so byte accounting stays exact")


def check_iostream(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "iostream-side-channel", IOSTREAM_RE,
        exempt=lambda p: "src" not in p.parts or
        (p.parts[-2:] == ("util", "logging.h")) or
        (p.parts[-2:] == ("util", "logging.cc")),
        message="direct console output — use MENOS_LOG (util/logging.h) so "
                "output is leveled, atomic and silenceable")


def check_raw_mutex(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-mutex", RAW_MUTEX_RE,
        exempt=lambda p: "src" not in p.parts or
        p.parts[-2:] == ("util", "mutex.h"),
        message="raw standard-library locking — use util::Mutex/MutexLock/"
                "CondVar so Clang thread-safety analysis sees the lock")


def check_nondeterminism(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "nondeterminism", NONDET_RE,
        exempt=lambda p: "src" not in p.parts or
        (len(p.parts) >= 2 and p.parts[-2] == "util"
         and p.parts[-1].startswith("rng")),
        message="unseeded randomness — all randomness flows through "
                "util::Rng so experiments reproduce from one seed")


def check_raw_thread(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-thread", RAW_THREAD_RE,
        exempt=lambda p: "src" not in p.parts or "util" in p.parts,
        message="raw thread spawn — sessions are event handlers on the "
                "shared executor (util::TaskPool/Strand); infrastructure "
                "threads live in src/util or carry a justified NOLINT")


def check_raw_close(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-close", RAW_CLOSE_RE,
        exempt=lambda p: "src" not in p.parts or "net" in p.parts,
        message="raw ::close()/::shutdown() — file descriptors belong to "
                "src/net, whose deferred-close protocol prevents the "
                "fd-reuse race (docs/FAULTS.md)")


def check_mutex_annotation(path: Path, raw: str) -> list:
    if "src" not in path.parts or path.parts[-2:] == ("util", "mutex.h"):
        return []
    # The memory subsystem is all lock-ordering subtlety (allocator inside
    # engine inside scheduler callbacks), so src/mem is held to the strict
    # form of the rule: every mutex must be annotated; NOLINT is no escape.
    strict = len(path.parts) >= 2 and path.parts[0] == "src" and \
        path.parts[1] == "mem"
    raw_lines = raw.splitlines()
    stripped = strip_comments(raw)
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        m = MUTEX_MEMBER_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        if not strict and suppressed(raw_lines, lineno, "mutex-annotation"):
            continue
        uses = re.compile(
            r"MENOS_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES)\(\s*\*?"
            + re.escape(name))
        if not uses.search(stripped):
            if strict:
                message = (
                    f"mutex '{name}' has no MENOS_GUARDED_BY/MENOS_REQUIRES "
                    f"reference in this file — src/mem mutexes must be "
                    f"annotated (NOLINT does not exempt here)")
            else:
                message = (
                    f"mutex '{name}' has no MENOS_GUARDED_BY/MENOS_REQUIRES "
                    f"reference in this file — annotate what it guards, or "
                    f"NOLINT with a comment saying what it serializes")
            findings.append(Finding(path, lineno, "mutex-annotation", message))
    return findings


def check_kernel_scratch(path: Path, raw: str) -> list:
    # The matmul kernels pack panels on every call; ad-hoc heap scratch
    # there is unaligned (vector loads degrade) and reallocates per call.
    # util/aligned.h::scratch_floats is the sanctioned per-thread buffer.
    return check_pattern_rule(
        path, raw, "kernel-scratch", KERNEL_SCRATCH_RE,
        exempt=lambda p: p.parts[-2:] not in (("tensor", "kernels.cc"),
                                              ("tensor", "kernels.h")),
        message="ad-hoc scratch in the matmul kernels — pack panels into "
                "util::scratch_floats (util/aligned.h) so scratch is "
                "vector-aligned and reused across calls")


def check_pragma_once(path: Path, raw: str) -> list:
    if path.suffix != ".h":
        return []
    if "#pragma once" in raw:
        return []
    if suppressed(raw.splitlines(), 1, "pragma-once"):
        return []
    return [Finding(path, 1, "pragma-once",
                    "header missing '#pragma once'")]


ALL_RULES = [
    check_raw_alloc,
    check_iostream,
    check_raw_mutex,
    check_nondeterminism,
    check_raw_thread,
    check_raw_close,
    check_mutex_annotation,
    check_kernel_scratch,
    check_pragma_once,
]

LINT_DIRS = ("src", "tests", "bench")
EXTENSIONS = (".h", ".cc", ".cpp")


def lint_tree(root: Path) -> list:
    findings = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS or not path.is_file():
                continue
            raw = path.read_text(encoding="utf-8", errors="replace")
            rel = path.relative_to(root)
            for rule in ALL_RULES:
                findings.extend(rule(rel, raw))
    return findings


# ---------------------------------------------------------------------------
# Self-test: each rule must fire on a seeded violation and stay quiet on the
# suppressed/clean twin. This is what keeps the linter honest as it grows.

SELF_TEST_CASES = [
    # (relative path, contents, expected rule or None)
    ("src/tensor/bad_alloc.cc", "void* p = malloc(128);\n", "raw-alloc"),
    ("src/tensor/bad_new.cc", "float* p = new float[64];\n", "raw-alloc"),
    ("src/gpusim/ok_alloc.cc", "void* p = malloc(128);\n", None),
    ("src/core/bad_print.cc",
     '#include <iostream>\nvoid f() { std::cout << "x"; }\n',
     "iostream-side-channel"),
    ("src/core/ok_log.cc", 'void f() { MENOS_LOG(Info) << "x"; }\n', None),
    ("src/net/bad_mutex.cc", "#include <mutex>\nstd::mutex m;\n", "raw-mutex"),
    ("src/net/ok_mutex.cc",
     "struct S { util::Mutex mu_; int x MENOS_GUARDED_BY(mu_); };\n", None),
    ("src/sched/bad_unannotated.h",
     "#pragma once\nclass C {\n  mutable util::Mutex mutex_;\n  int x_;\n};\n",
     "mutex-annotation"),
    ("src/sched/ok_suppressed.h",
     "#pragma once\nclass C {\n  // serializes connect(), guards nothing\n"
     "  util::Mutex mutex_;  // NOLINT(mutex-annotation)\n};\n", None),
    # src/mem is strict: the same NOLINT that exempts src/sched still fires.
    ("src/mem/bad_nolint.h",
     "#pragma once\nclass C {\n  // serializes something, honest!\n"
     "  util::Mutex mutex_;  // NOLINT(mutex-annotation)\n};\n",
     "mutex-annotation"),
    ("src/mem/ok_annotated.h",
     "#pragma once\nclass C {\n  mutable util::Mutex mutex_;\n"
     "  int x_ MENOS_GUARDED_BY(mutex_);\n};\n", None),
    ("src/util/bad_header.h", "struct X {};\n", "pragma-once"),
    ("src/core/bad_thread.cc",
     "#include <thread>\nstd::thread t([] {});\n", "raw-thread"),
    ("src/sched/bad_jthread.cc",
     "#include <thread>\nstd::jthread t([] {});\n", "raw-thread"),
    ("src/core/bad_async.cc",
     "#include <future>\nauto f = std::async([] {});\n", "raw-thread"),
    ("src/util/ok_pool_thread.cc",
     "#include <thread>\nstd::thread t([] {});\n",
     None),  # src/util is the sanctioned home for thread spawns
    ("src/core/ok_hw_concurrency.cc",
     "int n = (int)std::thread::hardware_concurrency();\n",
     None),  # querying parallelism is not spawning a thread
    ("src/core/ok_thread_nolint.cc",
     "std::thread t([] {});  // NOLINT(raw-thread) accept loop, one/server\n",
     None),
    ("tests/ok_test_thread.cc",
     "#include <thread>\nstd::thread t([] {});\n",
     None),  # test drivers may spawn client threads
    ("src/core/bad_rand.cc", "int r = std::rand();\n", "nondeterminism"),
    ("src/core/bad_close.cc",
     "#include <unistd.h>\nvoid f(int fd) { ::close(fd); }\n", "raw-close"),
    ("src/sched/bad_shutdown.cc",
     "void f(int fd) { ::shutdown(fd, 2); }\n", "raw-close"),
    ("src/net/ok_close.cc",
     "#include <unistd.h>\nvoid f(int fd) { ::close(fd); }\n",
     None),  # the transport layer owns fd lifecycle
    ("src/core/ok_close_comment.cc",
     "// transports must ::close() via FdGuard, see src/net/tcp.cc\n",
     None),  # prose may name the banned call
    ("src/core/ok_close_nolint.cc",
     "void f(int fd) { ::close(fd); }  // NOLINT(raw-close) inherited fd\n",
     None),
    ("src/util/rng_extra.cc", "#include <random>\nstd::random_device rd;\n",
     None),  # rng* files are the sanctioned home for entropy
    ("src/core/ok_comment.cc", "// std::mutex is banned here, use util::Mutex\n",
     None),  # prose may name banned constructs
    ("src/core/ok_nextline.cc",
     "// NOLINTNEXTLINE(nondeterminism)\nint r = std::rand();\n", None),
    ("src/tensor/kernels.cc",
     "void pack() { std::vector<float> tmp(64); }\n", "kernel-scratch"),
    ("src/tensor/kernels.h",
     "#pragma once\nvoid pack() { float* t = util::scratch_floats(0, 64); }\n",
     None),  # the sanctioned scratch API
    ("src/tensor/ops_scratch.cc",
     "void f() { std::vector<float> tmp(8); }\n",
     None),  # rule is scoped to the kernel files
]


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="menos_lint_selftest_") as tmp:
        root = Path(tmp)
        for rel, contents, _ in SELF_TEST_CASES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents, encoding="utf-8")
        findings = lint_tree(root)
        by_file = {}
        for f in findings:
            by_file.setdefault(str(f.path), set()).add(f.rule)
        for rel, _, expected in SELF_TEST_CASES:
            got = by_file.get(rel, set())
            if expected is None and got:
                failures.append(f"{rel}: expected clean, got {sorted(got)}")
            elif expected is not None and expected not in got:
                failures.append(f"{rel}: expected [{expected}], got {sorted(got)}")
    if failures:
        print("menos_lint self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"menos_lint self-test OK ({len(SELF_TEST_CASES)} cases)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo this "
                             "script lives in)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"menos_lint: {len(findings)} finding(s)")
        return 1
    print("menos_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
