// Observable serving-session semantics per mode: re-forward counts, memory
// residency between iterations, swap counters, and profiling consistency —
// the behaviours Fig 3 and Algorithm 1 promise, read back through
// SessionStats and the metered device.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"

namespace menos::core {
namespace {

nn::TransformerConfig sb_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

struct Rig {
  explicit Rig(ServingMode mode, std::size_t gpu_bytes = 256u << 20)
      : devices(1, gpu_bytes) {
    config.mode = mode;
    config.base_seed = 42;
    server = std::make_unique<Server>(config, devices, sb_model());
    server->start(acceptor);
  }
  ~Rig() { server->stop(); }

  std::unique_ptr<Client> client(std::uint64_t seed) {
    ClientOptions options;
    options.finetune.model = sb_model();
    options.finetune.batch_size = 2;
    options.finetune.seq_len = 8;
    options.finetune.adapter_seed = seed;
    options.base_seed = 42;
    auto c = std::make_unique<Client>(options, acceptor.connect(),
                                      client_devices.gpu(0));
    c->connect();
    return c;
  }

  std::uint64_t total_reforwards() {
    std::uint64_t total = 0;
    for (const auto& s : server->session_stats()) total += s.reforwards;
    return total;
  }

  gpusim::DeviceManager devices;
  gpusim::DeviceManager client_devices{1, 256u << 20};
  ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<Server> server;
};

data::DataLoader sb_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 3).text), 2, 8, seed);
}

TEST(SessionBehavior, OnDemandReForwardsEveryIteration) {
  Rig rig(ServingMode::MenosOnDemand);
  auto client = rig.client(1);
  auto loader = sb_loader(2);
  for (int i = 0; i < 4; ++i) client->train_step(loader.next());
  // §3.2: every backward pays one re-forward under on-demand allocation.
  EXPECT_EQ(rig.total_reforwards(), 4u);
  client->disconnect();
}

TEST(SessionBehavior, ReleaseEarlyAlsoReForwards) {
  Rig rig(ServingMode::MenosReleaseEarly);
  auto client = rig.client(1);
  auto loader = sb_loader(2);
  for (int i = 0; i < 3; ++i) client->train_step(loader.next());
  EXPECT_EQ(rig.total_reforwards(), 3u);
  client->disconnect();
}

TEST(SessionBehavior, HoldingModesNeverReForward) {
  for (ServingMode mode : {ServingMode::MenosReleaseAfterBackward,
                           ServingMode::MenosPreserveAll,
                           ServingMode::VanillaTaskSwap}) {
    Rig rig(mode);
    auto client = rig.client(1);
    auto loader = sb_loader(2);
    for (int i = 0; i < 3; ++i) client->train_step(loader.next());
    EXPECT_EQ(rig.total_reforwards(), 0u) << serving_mode_name(mode);
    client->disconnect();
  }
}

TEST(SessionBehavior, OnDemandReleasesBetweenIterationsPreserveHolds) {
  // Between two iterations (both sides idle), on-demand leaves only
  // persistent state on the GPU; preserve-all keeps the whole graph.
  const auto resident_between_steps = [&](ServingMode mode) {
    Rig rig(mode);
    const std::size_t baseline = rig.devices.gpu(0).allocated();
    auto client = rig.client(1);
    const std::size_t with_client = rig.devices.gpu(0).allocated();
    auto loader = sb_loader(2);
    client->train_step(loader.next());
    // Let the session finish its post-reply bookkeeping.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::size_t between = rig.devices.gpu(0).allocated();
    client->disconnect();
    (void)baseline;
    return std::pair<std::size_t, std::size_t>(with_client, between);
  };

  const auto [ondemand_static, ondemand_between] =
      resident_between_steps(ServingMode::MenosOnDemand);
  EXPECT_EQ(ondemand_between, ondemand_static)
      << "on-demand must return to the persistent footprint between steps";

  const auto [preserve_static, preserve_between] =
      resident_between_steps(ServingMode::MenosPreserveAll);
  EXPECT_GT(preserve_between, preserve_static)
      << "preserve-all must keep the activation graph resident";
}

TEST(SessionBehavior, VanillaSwapsUnderContention) {
  // Two vanilla clients, a GPU sized for roughly one task + transients:
  // the tasks must rotate through host memory.
  const std::size_t task_bytes = [&] {
    auto probe = gpusim::make_host_device();
    ParameterStore store(sb_model(), *probe, 42);
    return store.bytes();
  }();
  Rig rig(ServingMode::VanillaTaskSwap,
          /*gpu_bytes=*/task_bytes + (12u << 20));

  auto c1 = rig.client(1);
  auto c2 = rig.client(2);
  auto l1 = sb_loader(3);
  auto l2 = sb_loader(4);
  std::thread t1([&] {
    for (int i = 0; i < 3; ++i) c1->train_step(l1.next());
  });
  std::thread t2([&] {
    for (int i = 0; i < 3; ++i) c2->train_step(l2.next());
  });
  t1.join();
  t2.join();
  std::uint64_t swaps = 0;
  for (const auto& s : rig.server->session_stats()) swaps += s.swaps;
  EXPECT_GT(swaps, 0u);
  c1->disconnect();
  c2->disconnect();
}

TEST(SessionBehavior, IdenticalClientsGetIdenticalProfiles) {
  // The profile cache (and determinism) means two identically-configured
  // clients must see exactly the same M_f / M_b.
  Rig rig(ServingMode::MenosOnDemand);
  auto c1 = rig.client(10);
  auto c2 = rig.client(11);  // different adapter seed, same geometry
  EXPECT_EQ(c1->server_forward_bytes(), c2->server_forward_bytes());
  EXPECT_EQ(c1->server_backward_bytes(), c2->server_backward_bytes());
  c1->disconnect();
  c2->disconnect();
}

TEST(SessionBehavior, StatsCountIterations) {
  Rig rig(ServingMode::MenosOnDemand);
  auto client = rig.client(1);
  auto loader = sb_loader(2);
  for (int i = 0; i < 5; ++i) client->train_step(loader.next());
  const auto stats = rig.server->session_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].iterations, 5u);
  // Two scheduler interactions per iteration (forward + backward).
  EXPECT_EQ(stats[0].schedule_wait_s.count(), 10u);
  EXPECT_EQ(stats[0].compute_s.count(), 10u);
  client->disconnect();
}

// ----- SwapOnIdle: mem::OffloadEngine end-to-end (ISSUE 3) -----

/// A fine-tuning configuration whose persistent A + O dwarfs its transient
/// demand (LoRA rank 256 on a dim-32 model, batch 1, seq 4), so evicting an
/// idle client's persistent state is what makes room for a new one.
net::FinetuneConfig swap_finetune(std::uint64_t seed) {
  net::FinetuneConfig f;
  f.model = sb_model();
  f.adapter.rank = 256;
  f.batch_size = 1;
  f.seq_len = 4;
  f.adapter_seed = seed;
  return f;
}

struct SwapRig {
  SwapRig(sched::Policy policy, std::size_t reserve_bytes,
          util::EventTrace* trace)
      : devices(1, 256u << 20) {
    config.mode = ServingMode::MenosOnDemand;
    config.sched_policy = policy;
    config.base_seed = 42;
    config.reserve_bytes = reserve_bytes;
    config.trace = trace;
    server = std::make_unique<Server>(config, devices, sb_model());
    server->start(acceptor);
  }
  ~SwapRig() { server->stop(); }

  std::unique_ptr<Client> client(std::uint64_t seed) {
    ClientOptions options;
    options.finetune = swap_finetune(seed);
    options.base_seed = 42;
    auto c = std::make_unique<Client>(options, acceptor.connect(),
                                      client_devices.gpu(0));
    c->connect();
    return c;
  }

  gpusim::DeviceManager devices;
  gpusim::DeviceManager client_devices{1, 256u << 20};
  ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<Server> server;
};

data::DataLoader swap_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(500, 3).text), 1, 4, seed);
}

TEST(SessionBehavior, SwapOnIdleAdmitsClientThatWouldOomUnderBackfill) {
  // Phase 1 — measure on a roomy rig: p = one client's persistent A + O
  // reservation, M_b = its transient backward demand, avail0 = the
  // schedulable pool with nothing reserved.
  std::size_t avail0 = 0;
  std::size_t p = 0;
  std::size_t backward_bytes = 0;
  {
    SwapRig probe(sched::Policy::FcfsBackfill, 0, nullptr);
    avail0 = probe.server->scheduler().total_available();
    auto c = probe.client(1);
    p = avail0 - probe.server->scheduler().total_available();
    backward_bytes = c->server_backward_bytes();
    c->disconnect();
  }
  const std::size_t slack = 64u << 10;
  // The experiment only demonstrates anything if the persistent state is
  // the dominant footprint; the rank-256 configuration guarantees it.
  ASSERT_GT(p, backward_bytes + slack)
      << "p=" << p << " M_b=" << backward_bytes;
  // Phase 2 rigs get a pool of exactly P = p + M_b + slack: one client's
  // persistent state plus one transient backward — never two p's.
  const std::size_t pool = p + backward_bytes + slack;
  const std::size_t reserve = avail0 - pool;

  {
    // Baseline: under FcfsBackfill the second client's reservation OOMs
    // and the server rejects it at handshake.
    SwapRig rig(sched::Policy::FcfsBackfill, reserve, nullptr);
    auto a = rig.client(1);
    EXPECT_THROW(rig.client(2), Error);
    a->disconnect();
  }

  util::EventTrace trace(4096);
  SwapRig rig(sched::Policy::SwapOnIdle, reserve, &trace);
  ASSERT_NE(rig.server->offload_engine(), nullptr);
  auto a = rig.client(1);
  const std::size_t with_a = rig.server->persistent_gpu_bytes();
  // Same pool, SwapOnIdle: admitting B evicts idle A's unit to host.
  auto b = rig.client(2);
  EXPECT_FALSE(rig.server->offload_engine()->resident(0));
  EXPECT_TRUE(rig.server->offload_engine()->resident(1));
  // The Fig 5 metric follows residency: A's p no longer counts.
  EXPECT_EQ(rig.server->persistent_gpu_bytes(), with_a);
  EXPECT_GE(rig.server->scheduler().stats().reclaims, 1u);
  EXPECT_EQ(rig.server->scheduler().stats().reclaimed_bytes, p);

  // Both clients can still train; each step swaps the idle one's unit out
  // and its own back in.
  auto la = swap_loader(3);
  auto lb = swap_loader(4);
  b->train_step(lb.next());
  a->train_step(la.next());  // A's unit must come home for this
  EXPECT_TRUE(rig.server->offload_engine()->resident(0));
  b->train_step(lb.next());
  const mem::OffloadStats os = rig.server->offload_engine()->stats();
  EXPECT_GE(os.swap_outs, 2u);
  EXPECT_GE(os.swap_ins, 1u);
  EXPECT_GT(os.modeled_transfer_s, 0.0);

  // The trace must show client A's unit leaving and returning, in order.
  bool saw_out = false;
  bool saw_in_after_out = false;
  for (const util::TraceEvent& e : trace.snapshot()) {
    if (e.category != util::TraceCategory::Memory || e.client_id != 0) {
      continue;
    }
    if (e.name == "swap.out" && e.value == p) saw_out = true;
    if (e.name == "swap.in" && e.value == p && saw_out) {
      saw_in_after_out = true;
    }
  }
  EXPECT_TRUE(saw_out);
  EXPECT_TRUE(saw_in_after_out);

  a->disconnect();
  b->disconnect();
}

}  // namespace
}  // namespace menos::core
