#include "sim/split_sim.h"

#include <algorithm>

namespace menos::sim {
namespace {

using core::ServingMode;
using sched::OpKind;

struct ClientState {
  int id = 0;
  int iterations_done = 0;
  // Current-iteration accumulators.
  double iter_start = 0.0;
  double comm = 0.0;
  double compute = 0.0;
  double schedule = 0.0;
  double request_time = 0.0;
  bool resident = false;  ///< vanilla: task currently on the GPU
  bool holding = false;   ///< a scheduler allocation is live
  ClientResult result;
};

class Sim {
 public:
  explicit Sim(const SimConfig& config) : cfg_(config) {}

  SimResult run() {
    MENOS_CHECK_MSG(cfg_.client_scale.empty() ||
                        static_cast<int>(cfg_.client_scale.size()) ==
                            cfg_.num_clients,
                    "client_scale size must match num_clients");
    MENOS_CHECK_MSG(cfg_.client_compute_scale.empty() ||
                        static_cast<int>(cfg_.client_compute_scale.size()) ==
                            cfg_.num_clients,
                    "client_compute_scale size must match num_clients");
    MENOS_CHECK_MSG(cfg_.client_net_scale.empty() ||
                        static_cast<int>(cfg_.client_net_scale.size()) ==
                            cfg_.num_clients,
                    "client_net_scale size must match num_clients");
    if (!check_feasibility()) return out_;
    build_scheduler();
    clients_.resize(static_cast<std::size_t>(cfg_.num_clients));
    // Vanilla: tasks that fit at startup are loaded onto the GPU before
    // fine-tuning begins (model load time is not iteration time); only
    // overflow clients pay swap-ins.
    std::size_t preload_budget =
        vanilla() ? cfg_.env.gpu_capacity_bytes *
                        static_cast<std::size_t>(cfg_.num_gpus)
                  : 0;
    for (int i = 0; i < cfg_.num_clients; ++i) {
      ClientState& c = clients_[static_cast<std::size_t>(i)];
      c.id = i;
      const sched::ClientDemands d = demand_for(i);
      if (vanilla() && preload_budget >= d.backward_bytes) {
        c.resident = true;
        preload_budget -= d.backward_bytes;
      }
      scheduler_->register_client(i, d);
      const int client = i;
      loop_.schedule(cfg_.client_stagger_s * i,
                     [this, client] { begin_iteration(client); });
    }
    out_.makespan_s = loop_.run();
    aggregate();
    return out_;
  }

 private:
  const ModelSpec& spec() const { return cfg_.spec; }
  bool vanilla() const { return cfg_.mode == ServingMode::VanillaTaskSwap; }
  bool holds() const { return core::holds_across_iteration(cfg_.mode); }

  double client_compute_s(int id) const {
    const double base = cfg_.cpu_clients ? spec().client_cpu_seconds
                                         : spec().client_gpu_seconds;
    return base * (cfg_.client_compute_scale.empty()
                       ? 1.0
                       : cfg_.client_compute_scale[static_cast<std::size_t>(
                             id)]);
  }

  double scale_of(int id) const {
    return cfg_.client_scale.empty()
               ? 1.0
               : cfg_.client_scale[static_cast<std::size_t>(id)];
  }

  /// WAN transfer time for `id`, after its link multiplier.
  double wan_s(int id, std::size_t bytes) const {
    const double scale =
        cfg_.client_net_scale.empty()
            ? 1.0
            : cfg_.client_net_scale[static_cast<std::size_t>(id)];
    return cfg_.env.wan_seconds(bytes) * scale;
  }

  double max_scale() const {
    double m = 1.0;
    for (double s : cfg_.client_scale) m = std::max(m, s);
    return m;
  }

  /// Profiled per-client memory demands (M_f / M_b), scaled by the
  /// client's workload.
  sched::ClientDemands demand_for(int id) const {
    const auto scaled = [&](std::size_t bytes) {
      return static_cast<std::size_t>(static_cast<double>(bytes) *
                                      scale_of(id));
    };
    sched::ClientDemands d;
    switch (cfg_.mode) {
      case ServingMode::MenosOnDemand:
        d = {scaled(spec().fwd_nograd_bytes), scaled(spec().bwd_bytes)};
        break;
      case ServingMode::VanillaTaskSwap:
        d.forward_bytes = spec().vanilla_task_bytes() + scaled(spec().bwd_bytes);
        d.backward_bytes = d.forward_bytes;
        break;
      default:
        // Gradient-tracking first forward caches activations: its peak is
        // essentially the backward working set.
        d = {scaled(spec().bwd_bytes), scaled(spec().bwd_bytes)};
        break;
    }
    return d;
  }

  double forward_op_seconds(int id) const {
    switch (cfg_.mode) {
      case ServingMode::MenosOnDemand:
        return spec().nograd_fwd_seconds * scale_of(id);
      default:
        return spec().fwd_seconds * scale_of(id);
    }
  }

  /// Duration the backward op HOLDS the memory pool.
  double backward_op_seconds(int id) const {
    switch (cfg_.mode) {
      case ServingMode::MenosOnDemand:
      case ServingMode::MenosReleaseEarly:
        // Re-forward + backward.
        return (spec().fwd_seconds + spec().bwd_seconds) * scale_of(id);
      default:
        return spec().bwd_seconds * scale_of(id);
    }
  }

  /// Extra compute paid after the pool is released: the constant
  /// release/re-collection (fragmentation) cost of §3.2 — it is the cost
  /// of freeing the memory, so by construction it does not occupy it.
  double release_overhead_seconds() const {
    // Fragmentation scales with the clients sharing ONE allocator, i.e.
    // clients per GPU (adding GPUs in Fig 10 restores the single-digit
    // overheads of Table 2).
    const int clients_per_gpu =
        (cfg_.num_clients + cfg_.num_gpus - 1) / cfg_.num_gpus;
    switch (cfg_.mode) {
      case ServingMode::MenosOnDemand:
      case ServingMode::MenosReleaseEarly:
        return spec().release_overhead(clients_per_gpu);
      case ServingMode::MenosReleaseAfterBackward:
        return spec().release_overhead_base_s;
      default:
        return 0.0;
    }
  }

  bool check_feasibility() {
    const auto& s = spec();
    const int n = cfg_.num_clients;
    const std::size_t worst_bwd = static_cast<std::size_t>(
        static_cast<double>(s.bwd_bytes) * max_scale());
    if (vanilla()) {
      out_.persistent_bytes = s.vanilla_persistent_bytes(n);
      const std::size_t per_task = s.vanilla_task_bytes() + worst_bwd;
      if (per_task > cfg_.env.gpu_capacity_bytes) {
        out_.feasible = false;
        out_.infeasible_reason = "a single task exceeds GPU capacity";
        return false;
      }
      if (s.vanilla_task_bytes() * static_cast<std::size_t>(n) >
          cfg_.env.host_capacity_bytes) {
        // Paper §5.2: "At 5 clients, even main memory is insufficient, so
        // comparison stops at 4 clients."
        out_.feasible = false;
        out_.infeasible_reason = "swapped-out tasks exceed host memory";
        return false;
      }
      schedulable_per_gpu_ = cfg_.env.gpu_capacity_bytes;
      return true;
    }

    out_.persistent_bytes = s.menos_persistent_bytes(n);
    // Base layers spread across GPUs; per-client state (A + O + context)
    // stays resident only while it fits. Overflow states swap between host
    // and GPU around each backward pass — the Fig 10 "GPU memory swapping
    // inevitably slows down the fine-tuning speed" regime.
    const std::size_t total_cap =
        cfg_.env.gpu_capacity_bytes * static_cast<std::size_t>(cfg_.num_gpus);
    const std::size_t base = s.server_param_bytes + s.context_bytes;
    const std::size_t state = s.adapter_opt_bytes + s.context_bytes;
    const std::size_t wanted_state = state * static_cast<std::size_t>(n);
    if (base + worst_bwd + s.fwd_nograd_bytes > total_cap) {
      out_.feasible = false;
      out_.infeasible_reason =
          "base model leaves no room for a backward pass";
      return false;
    }
    const std::size_t state_budget =
        total_cap - base - worst_bwd - s.fwd_nograd_bytes;
    std::size_t resident_state = wanted_state;
    if (wanted_state > state_budget) {
      resident_state = state_budget;
      const double fit_fraction = static_cast<double>(state_budget) /
                                  static_cast<double>(wanted_state);
      // Swap the overflow fraction of a client's state in and out around
      // its backward pass.
      state_swap_penalty_s_ =
          2.0 * cfg_.env.swap_seconds(state) * (1.0 - fit_fraction);
    }
    const std::size_t persistent_per_gpu =
        (base + resident_state) / static_cast<std::size_t>(cfg_.num_gpus);
    schedulable_per_gpu_ = cfg_.env.gpu_capacity_bytes - persistent_per_gpu;
    return true;
  }

  void build_scheduler() {
    out_.schedulable_capacity = schedulable_per_gpu_;
    std::vector<std::size_t> partitions(
        static_cast<std::size_t>(cfg_.num_gpus), schedulable_per_gpu_);
    scheduler_ =
        std::make_unique<sched::Scheduler>(partitions, cfg_.sched_policy);
    // StragglerAware classifies on grant -> release durations; feed it the
    // loop's virtual clock so those durations are simulated seconds, not
    // the host microseconds the events take to process.
    scheduler_->set_clock([this] { return loop_.now(); });
    scheduler_->set_grant_callback(
        [this](const sched::Grant& grant) { on_grant(grant); });
  }

  ClientState& client(int id) { return clients_[static_cast<std::size_t>(id)]; }

  // ----- iteration state machine -----

  void begin_iteration(int id) {
    ClientState& c = client(id);
    c.iter_start = loop_.now();
    c.comm = c.compute = c.schedule = 0.0;
    loop_.schedule(client_compute_s(id) * 0.4,
                   [this, id] { send_activations(id); });
  }

  void send_activations(int id) {
    ClientState& c = client(id);
    const double t = wan_s(id, spec().activation_up_bytes);
    c.comm += t;
    loop_.schedule(t, [this, id] { arrive_forward(id); });
  }

  void arrive_forward(int id) {
    ClientState& c = client(id);
    c.request_time = loop_.now();
    if (c.holding) {
      // PreserveAll after its initial admission: memory already held.
      start_compute(id, OpKind::Forward, 0.0);
      return;
    }
    scheduler_->on_request(id, OpKind::Forward);
  }

  void on_grant(const sched::Grant& grant) {
    ClientState& c = client(grant.client_id);
    const double waited = loop_.now() - c.request_time;
    c.schedule += waited;
    if (grant.kind == OpKind::Forward) {
      c.result.forward_wait_s.add(waited);
    } else {
      c.result.backward_wait_s.add(waited);
    }
    c.holding = true;
    double swap_delay = 0.0;
    if (!vanilla() && grant.kind == OpKind::Backward &&
        state_swap_penalty_s_ > 0.0) {
      // Shared-mode over-commit: part of this client's adapter/optimizer
      // state must be staged in from the host before the backward runs.
      swap_delay += state_swap_penalty_s_;
      c.schedule += state_swap_penalty_s_;
      ++c.result.swaps;
    }
    if (vanilla() && !c.resident) {
      // Swap-in delays the computation start; the paper counts it as
      // scheduling time ("the time between when the server receives
      // intermediate activations and starts computation").
      swap_delay = cfg_.env.swap_seconds(spec().vanilla_task_bytes());
      c.schedule += swap_delay;
      c.resident = true;
      ++c.result.swaps;
    }
    start_compute(grant.client_id, grant.kind, swap_delay);
  }

  void start_compute(int id, OpKind kind, double extra_delay) {
    const double duration = kind == OpKind::Forward
                                ? forward_op_seconds(id)
                                : backward_op_seconds(id);
    loop_.schedule(extra_delay + duration, [this, id, kind, duration] {
      compute_done(id, kind, duration);
    });
  }

  void compute_done(int id, OpKind kind, double duration) {
    ClientState& c = client(id);
    c.compute += duration;
    if (kind == OpKind::Forward) {
      if (!holds()) {
        // Menos releases after the first forward (Fig 3(c)/(d)).
        c.holding = false;
        scheduler_->on_complete(id);
      }
      const double t = wan_s(id, spec().activation_down_bytes);
      c.comm += t;
      loop_.schedule(t, [this, id] { client_midpoint(id); });
      return;
    }
    // Backward finished. Ordering mirrors the runtime session:
    //  * Menos modes release the pool immediately, then pay the
    //    release/re-collection overhead (it is the cost of FREEING the
    //    memory, so it cannot hold the pool), then return g_s.
    //  * Vanilla must finish the swap-out transfer before its bytes become
    //    schedulable, and only then returns g_s.
    const double post_release = release_overhead_seconds();
    c.compute += post_release;
    double pre_release = 0.0;
    bool swapping_out = false;
    if (vanilla() && scheduler_->waiting_count() > 0) {
      pre_release = cfg_.env.swap_seconds(spec().vanilla_task_bytes());
      swapping_out = true;
    }
    loop_.schedule(pre_release, [this, id, swapping_out, post_release] {
      ClientState& cc = client(id);
      if (cfg_.mode != ServingMode::MenosPreserveAll) {
        if (swapping_out) cc.resident = false;
        cc.holding = false;
        scheduler_->on_complete(id);
      }
      loop_.schedule(post_release, [this, id] {
        ClientState& ccc = client(id);
        const double t = wan_s(id, spec().gradient_down_bytes);
        ccc.comm += t;
        loop_.schedule(t, [this, id] { client_finalize(id); });
      });
    });
  }

  void client_midpoint(int id) {
    loop_.schedule(client_compute_s(id) * 0.4,
                   [this, id] { send_gradients(id); });
  }

  void send_gradients(int id) {
    ClientState& c = client(id);
    const double t = wan_s(id, spec().gradient_up_bytes);
    c.comm += t;
    loop_.schedule(t, [this, id] { arrive_backward(id); });
  }

  void arrive_backward(int id) {
    ClientState& c = client(id);
    c.request_time = loop_.now();
    if (c.holding) {
      // Hold-across-iteration modes kept the allocation from the forward.
      start_compute(id, OpKind::Backward, 0.0);
      return;
    }
    scheduler_->on_request(id, OpKind::Backward);
  }

  void client_finalize(int id) {
    loop_.schedule(client_compute_s(id) * 0.2,
                   [this, id] { finish_iteration(id); });
  }

  void finish_iteration(int id) {
    ClientState& c = client(id);
    c.result.iteration_s.add(loop_.now() - c.iter_start);
    c.result.comm_s.add(c.comm);
    c.result.compute_s.add(c.compute);
    c.result.schedule_s.add(c.schedule);
    ++c.result.iterations_completed;
    ++c.iterations_done;
    if (c.iterations_done < cfg_.iterations) {
      begin_iteration(id);
    } else if (c.holding) {
      // Session departure: even PreserveAll releases at the very end.
      c.holding = false;
      scheduler_->on_complete(id);
    }
  }

  void aggregate() {
    double it = 0, co = 0, cp = 0, sc = 0, fw = 0, bw = 0;
    int counted = 0;
    for (ClientState& c : clients_) {
      out_.clients.push_back(c.result);
      if (c.result.iterations_completed == 0) {
        ++out_.starved_clients;
        continue;
      }
      if (c.iterations_done < cfg_.iterations) ++out_.starved_clients;
      it += c.result.iteration_s.mean();
      co += c.result.comm_s.mean();
      cp += c.result.compute_s.mean();
      sc += c.result.schedule_s.mean();
      fw += c.result.forward_wait_s.mean();
      bw += c.result.backward_wait_s.mean();
      ++counted;
    }
    if (counted > 0) {
      out_.avg_iteration_s = it / counted;
      out_.avg_comm_s = co / counted;
      out_.avg_compute_s = cp / counted;
      out_.avg_schedule_s = sc / counted;
      out_.avg_forward_wait_s = fw / counted;
      out_.avg_backward_wait_s = bw / counted;
    }
    // Jain's index over per-client throughput (1 / mean iteration time):
    // (sum x)^2 / (n * sum x^2).
    double sum = 0.0, sum_sq = 0.0;
    int n = 0;
    for (const ClientState& c : clients_) {
      if (c.result.iterations_completed == 0) continue;
      const double throughput = 1.0 / c.result.iteration_s.mean();
      sum += throughput;
      sum_sq += throughput * throughput;
      ++n;
    }
    if (n > 0 && sum_sq > 0.0) {
      out_.fairness_index = sum * sum / (n * sum_sq);
    }
    out_.sched_stats = scheduler_->stats();
  }

  SimConfig cfg_;
  EventLoop loop_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::vector<ClientState> clients_;
  std::size_t schedulable_per_gpu_ = 0;
  double state_swap_penalty_s_ = 0.0;
  SimResult out_;
};

}  // namespace

SimResult run_split_finetune(const SimConfig& config) {
  MENOS_CHECK_MSG(config.num_clients >= 1, "need at least one client");
  MENOS_CHECK_MSG(config.num_gpus >= 1, "need at least one GPU");
  MENOS_CHECK_MSG(config.iterations >= 1, "need at least one iteration");
  Sim sim(config);
  return sim.run();
}

}  // namespace menos::sim
