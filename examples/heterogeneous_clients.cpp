// Heterogeneous clients over one shared base model (§3.1): different cut
// points (privacy vs efficiency), different adapter types (LoRA, BitFit,
// prefix-tuning), different optimizers — all safely sharing the single
// read-only parameter copy because Menos separates model structure from
// model parameters.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "util/bytes.h"

using namespace menos;

namespace {

struct Tenant {
  const char* name;
  nn::AdapterType adapter;
  int front_blocks;  ///< deeper cut = more privacy, less server help
  optim::OptimizerKind optimizer;
};

}  // namespace

int main() {
  nn::TransformerConfig model = nn::TransformerConfig::tiny_llama();
  gpusim::DeviceManager devices(1, 1u << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  const Tenant tenants[] = {
      {"lora-efficiency", nn::AdapterType::Lora, 1, optim::OptimizerKind::Adam},
      {"prefix-tuning", nn::AdapterType::Prefix, 1, optim::OptimizerKind::AdamW},
      {"privacy-deep-cut", nn::AdapterType::Lora, 2, optim::OptimizerKind::Sgd},
  };

  std::printf("%-18s  %-8s  %-10s  %-10s  %-22s\n", "client", "adapter",
              "cut", "optimizer", "loss trajectory");
  std::vector<std::thread> threads;
  std::uint64_t seed = 400;
  for (const Tenant& t : tenants) {
    const std::uint64_t adapter_seed = seed++;
    threads.emplace_back([&, t, adapter_seed] {
      gpusim::DeviceManager client_devices(1, 1u << 30);
      core::ClientOptions options;
      options.finetune.client_name = t.name;
      options.finetune.model = model;
      options.finetune.adapter.type = t.adapter;
      options.finetune.adapter.rank = 8;
      options.finetune.adapter.alpha = 16.0f;
      options.finetune.adapter.prefix_len = 4;
      options.finetune.split.front_blocks = t.front_blocks;
      options.finetune.optimizer = t.optimizer;
      options.finetune.lr =
          t.optimizer == optim::OptimizerKind::Sgd ? 5e-2f : 5e-3f;
      options.finetune.batch_size = 2;
      options.finetune.seq_len = 16;
      options.finetune.adapter_seed = adapter_seed;
      options.base_seed = 42;

      core::Client client(options, acceptor.connect(),
                          client_devices.gpu(0));
      client.connect();
      data::CharTokenizer tok;
      data::Corpus corpus = data::make_shakespeare_like(4000, adapter_seed);
      data::DataLoader loader(tok.encode(corpus.text), 2, 16, adapter_seed);
      std::string trajectory;
      for (int s = 0; s < 8; ++s) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.2f ",
                      client.train_step(loader.next()).loss);
        trajectory += buf;
      }
      std::printf("%-18s  %-8s  %-10d  %-10s  %s\n", t.name,
                  nn::adapter_type_name(t.adapter), t.front_blocks,
                  optim::optimizer_kind_name(t.optimizer),
                  trajectory.c_str());
      client.disconnect();
    });
  }
  for (auto& th : threads) th.join();

  std::printf(
      "\nAll three structures pointed at ONE copy of the base parameters "
      "(%s); per-client cost was only each adapter + optimizer state.\n",
      util::format_bytes(server.store()->bytes()).c_str());
  server.stop();
  return 0;
}
