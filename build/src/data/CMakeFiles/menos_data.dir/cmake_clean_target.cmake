file(REMOVE_RECURSE
  "libmenos_data.a"
)
