file(REMOVE_RECURSE
  "libmenos_gpusim.a"
)
