// Raw row-major matmul kernels behind tensor::matmul and its backward.
//
// The three products are cache-blocked packed-panel loops (GotoBLAS
// structure): operand panels are staged into contiguous aligned scratch
// (util/aligned.h), a register-tiled micro-kernel runs the innermost
// flops, and the output rows are spread over util::ThreadPool.
//
// All kernels ACCUMULATE into C (callers zero-fill or reuse running sums).
//
// Determinism contract (docs/PERF.md): every output element is produced by
// exactly one thread, and its floating-point reduction order is fixed —
// one accumulator advancing in ascending contraction order — so results
// are bit-identical for ANY thread count and ANY block configuration. The
// *_ref kernels below are plain serial triple loops with that same
// per-element order, compiled in the same translation unit (hence with the
// same FP contraction); tests assert the blocked kernels match them
// byte-for-byte.
#pragma once

#include "tensor/tensor.h"

namespace menos::tensor::kernels {

/// C[m,n] += A[m,k] * B[k,n]
void mm(const float* a, const float* b, float* c, Index m, Index k, Index n);

/// C[m,k] += A[m,n] * B[k,n]^T   (i.e. C[i,p] += sum_j A[i,j] * B[p,j])
void mm_nt(const float* a, const float* b, float* c, Index m, Index n,
           Index k);

/// C[k,n] += A[m,k]^T * B[m,n]   (i.e. C[p,j] += sum_i A[i,p] * B[i,j])
void mm_tn(const float* a, const float* b, float* c, Index m, Index k,
           Index n);

// ----- batched forms -----
//
// One parallel region spans batch * rows output rows, so deep batches of
// small matrices (attention heads) saturate the pool as well as one large
// product. Per-element reduction order is identical to looping the 2-D
// kernels over the batch serially.

/// C[bi] += A[bi] * B  (shared_b) or A[bi] * B[bi]; A is [batch, m, k].
void mm_batched(const float* a, const float* b, float* c, Index batch,
                Index m, Index k, Index n, bool shared_b);

/// C[bi][m,k] += A[bi][m,n] * (B or B[bi])[k,n]^T.
void mm_nt_batched(const float* a, const float* b, float* c, Index batch,
                   Index m, Index n, Index k, bool shared_b);

/// C[bi][k,n] += A[bi][m,k]^T * B[bi][m,n]. (For a shared-B gradient the
/// caller must reduce over the batch serially — see tensor::matmul.)
void mm_tn_batched(const float* a, const float* b, float* c, Index batch,
                   Index m, Index k, Index n);

// ----- serial reference kernels -----
//
// The bit-identity oracles: straight triple loops, no blocking, no
// threading, same fixed per-element reduction order as the kernels above.

void mm_ref(const float* a, const float* b, float* c, Index m, Index k,
            Index n);
void mm_nt_ref(const float* a, const float* b, float* c, Index m, Index n,
               Index k);
void mm_tn_ref(const float* a, const float* b, float* c, Index m, Index k,
               Index n);

// ----- cache-blocking configuration -----

/// Panel sizes (output rows MC, output cols NC, contraction depth KC).
/// Zero fields mean "architecture default". Changing the blocking NEVER
/// changes results, only performance — tests sweep it to prove that.
struct BlockConfig {
  Index mc = 0;
  Index nc = 0;
  Index kc = 0;
};

/// Current blocking with defaults resolved.
BlockConfig block_config() noexcept;

/// Override the blocking (tests/tuning). Pass {} to restore defaults.
/// Not thread-safe against in-flight kernels; call between kernels only.
void set_block_config(const BlockConfig& cfg);

/// Micro-kernel register tile, fixed at compile time per architecture.
Index micro_tile_rows() noexcept;  ///< MR
Index micro_tile_cols() noexcept;  ///< NR

/// "avx512" / "avx2" / "sse2" — which vector width this build targets.
const char* vector_arch() noexcept;

}  // namespace menos::tensor::kernels
