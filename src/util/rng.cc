#include "util/rng.h"

#include <cmath>

namespace menos::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) noexcept {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation would be overkill here;
  // modulo bias is irrelevant at our n << 2^64.
  return next_u64() % n;
}

float Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  has_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float Rng::normal(float mean, float stddev) noexcept {
  return mean + stddev * normal();
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

void Rng::fill_normal(float* data, std::size_t n, float stddev) noexcept {
  for (std::size_t i = 0; i < n; ++i) data[i] = stddev * normal();
}

void Rng::fill_uniform(float* data, std::size_t n, float lo,
                       float hi) noexcept {
  for (std::size_t i = 0; i < n; ++i) data[i] = uniform(lo, hi);
}

}  // namespace menos::util
