// Fixed-width task executor + serial strands for the event-driven serving
// core (docs/ARCHITECTURE.md).
//
// TaskPool generalizes ThreadPool::submit's single background task lane to
// a fixed set of FIFO workers sharing one queue: sessions become event
// handlers posted here instead of owning a thread each, so server
// concurrency is bounded by GPU memory (the paper's resource), not by OS
// thread count. Strand serializes the events of one session on top of the
// pool — per-session ordering without a per-session mutex or thread.
//
// This header is the only place outside util/thread_pool.* allowed to
// spawn threads (tools/menos_lint.py rule `raw-thread`).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::util {

/// Fixed pool of workers draining one FIFO task queue. Tasks posted after
/// stop_and_join() (or during it, once the queue drains) are dropped — by
/// then every producer has wound down and drops are stale by construction.
///
/// Dequeue order is FIFO unless a check::SchedulerHook is installed
/// (src/check/schedule.h): then each worker hands the hook the post-order
/// ids of every queued task and runs the one it picks — the seam the
/// seeded schedule-exploration tests drive to force rare interleavings.
class TaskPool {
 public:
  explicit TaskPool(int width);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue `task` (FIFO across the pool; no ordering between workers —
  /// use a Strand for serialized execution). An exception escaping a task
  /// is logged and dropped, like ThreadPool::submit.
  void post(std::function<void()> task);

  /// Finish every queued task, then join the workers. Idempotent.
  void stop_and_join();

  /// Configured worker count; fixed at construction, always >= 1.
  int width() const noexcept { return width_; }

 private:
  /// A queued task and its monotonically increasing post sequence number
  /// (the id the scheduler hook keys its priorities on).
  struct Task {
    std::uint64_t id;
    std::function<void()> fn;
  };

  void worker_main();

  const int width_;
  Mutex mutex_{"util.taskpool", 70};
  CondVar cv_;
  std::deque<Task> tasks_ MENOS_GUARDED_BY(mutex_);
  std::uint64_t next_task_id_ MENOS_GUARDED_BY(mutex_) = 0;
  bool stopping_ MENOS_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Serial executor over a TaskPool (the asio "strand" idiom): tasks posted
/// to one Strand run in post order and never concurrently with each other,
/// while different Strands interleave freely across the pool's workers.
///
/// Copyable handle; the shared state is kept alive by any in-flight drain
/// task, so a Strand may be destroyed while its tasks are still queued
/// (they run to completion).
class Strand {
 public:
  explicit Strand(TaskPool& pool);

  void post(std::function<void()> task);

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace menos::util
