// Table 3: average schedule time (s) per fine-tuning iteration — the time
// between receiving activations/gradients and starting the computation
// (swap-in included for the vanilla baseline).
#include "bench_common.h"

using namespace menos;

namespace {

void row(const char* label, const sim::ModelSpec& spec,
         core::ServingMode mode, int max_clients) {
  std::printf("%-8s  %-8s", spec.name.c_str(), label);
  for (int n = 1; n <= 6; ++n) {
    if (n > max_clients) {
      std::printf("  %-9s", "N/A");
      continue;
    }
    auto r = sim::run_split_finetune(bench::make_config(spec, mode, n));
    if (!r.feasible) {
      std::printf("  %-9s", "N/A");
      continue;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", r.avg_schedule_s);
    std::printf("  %-9s", buf);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Table 3 — average schedule time (s) per iteration",
      "OPT vanilla 0 up to 3 clients then 4.99-8.18; Menos ~1e-4. Llama "
      "vanilla 39.9 -> 121.1 (swap); Menos 1e-4 -> 0.38");
  std::printf("%-8s  %-8s  %-9s  %-9s  %-9s  %-9s  %-9s  %-9s\n", "model",
              "method", "1", "2", "3", "4", "5", "6");
  row("vanilla", sim::ModelSpec::opt_1_3b(),
      core::ServingMode::VanillaTaskSwap, 6);
  row("menos", sim::ModelSpec::opt_1_3b(), core::ServingMode::MenosOnDemand,
      6);
  row("vanilla", sim::ModelSpec::llama2_7b(),
      core::ServingMode::VanillaTaskSwap, 4);
  row("menos", sim::ModelSpec::llama2_7b(), core::ServingMode::MenosOnDemand,
      4);
  return 0;
}
