# Empty compiler generated dependencies file for ablation_reforward.
# This may be replaced when dependencies are built.
