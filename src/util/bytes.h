// Byte-size helpers used throughout the memory-accounting code paths.
#pragma once

#include <cstdint>
#include <string>

namespace menos::util {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

/// Decimal units, used when quoting the paper's GB figures.
inline constexpr std::size_t kKB = 1000;
inline constexpr std::size_t kMB = 1000 * kKB;
inline constexpr std::size_t kGB = 1000 * kMB;

/// Render a byte count as a short human-readable string ("23.8 GB").
/// Uses decimal units to match how the paper quotes sizes.
std::string format_bytes(std::size_t bytes);

/// Bytes -> decimal gigabytes, for table printing.
double to_gb(std::size_t bytes) noexcept;

/// Bytes -> decimal megabytes.
double to_mb(std::size_t bytes) noexcept;

}  // namespace menos::util
