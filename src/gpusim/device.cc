#include "gpusim/device.h"

#include <cstdlib>
#include <limits>
#include <new>
#include <unordered_map>

#include "gpusim/audit.h"
#include "mem/caching_allocator.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::gpusim {
namespace {

/// Shared accounting + heap-backed allocation. Host and SimGpu differ only
/// in whether a capacity is enforced.
class MeteredDevice final : public Device {
 public:
  MeteredDevice(DeviceKind kind, std::string name, std::size_t capacity)
      : kind_(kind), name_(std::move(name)), capacity_(capacity) {}

  DeviceKind kind() const noexcept override { return kind_; }
  const std::string& name() const noexcept override { return name_; }

  void* allocate(std::size_t bytes) override {
    {
      util::MutexLock lock(mutex_);
      if (capacity_ != 0 && allocated_ + bytes > capacity_) {
        throw OutOfMemory("device '" + name_ + "' out of memory", bytes,
                          capacity_ - allocated_);
      }
      allocated_ += bytes;
      if (allocated_ > peak_) peak_ = allocated_;
      ++lifetime_allocs_;
      lifetime_bytes_ += bytes;
    }
    void* ptr = nullptr;
    if (bytes == 0) {
      // Distinct non-null sentinel; operator new(1) is cheap and unique.
      ptr = ::operator new(1);
    } else {
      try {
        ptr = ::operator new(bytes);
      } catch (const std::bad_alloc&) {
        util::MutexLock lock(mutex_);
        allocated_ -= bytes;
        throw OutOfMemory("host heap exhausted backing device '" + name_ + "'",
                          bytes, 0);
      }
    }
#if MENOS_DCHECK_IS_ON
    {
      util::MutexLock lock(mutex_);
      debug_sizes_[ptr] = bytes;
    }
#endif
    return ptr;
  }

  void deallocate(void* ptr, std::size_t bytes) noexcept override {
    if (ptr == nullptr) return;
    {
      util::MutexLock lock(mutex_);
#if MENOS_DCHECK_IS_ON
      // Contract (device.h): `bytes` must match the original request. The
      // AuditDevice decorator reports this with full context; this DCHECK
      // keeps Debug builds honest even with auditing disabled.
      const auto it = debug_sizes_.find(ptr);
      MENOS_DCHECK_MSG(it != debug_sizes_.end(),
                       "device '" << name_
                                  << "': deallocate of unknown pointer "
                                  << ptr);
      MENOS_DCHECK_MSG(it->second == bytes,
                       "device '" << name_ << "': deallocate size " << bytes
                                  << " != allocated size " << it->second);
      debug_sizes_.erase(it);
#endif
      allocated_ -= bytes;
      ++lifetime_frees_;
    }
    ::operator delete(ptr);
  }

  MemoryStats stats() const override {
    util::MutexLock lock(mutex_);
    MemoryStats s;
    s.capacity = capacity_;
    s.allocated = allocated_;
    s.peak = peak_;
    s.lifetime_allocs = lifetime_allocs_;
    s.lifetime_frees = lifetime_frees_;
    s.lifetime_bytes = lifetime_bytes_;
    // A meter has no placement model: the free capacity is one block.
    if (capacity_ != 0) s.largest_free_block = capacity_ - allocated_;
    return s;
  }

  void reset_peak() override {
    util::MutexLock lock(mutex_);
    peak_ = allocated_;
  }

 private:
  DeviceKind kind_;
  std::string name_;
  std::size_t capacity_;  // 0 = unlimited; immutable after construction

  mutable util::Mutex mutex_{"gpusim.meter", 54};
  std::size_t allocated_ MENOS_GUARDED_BY(mutex_) = 0;
  std::size_t peak_ MENOS_GUARDED_BY(mutex_) = 0;
  std::size_t lifetime_allocs_ MENOS_GUARDED_BY(mutex_) = 0;
  std::size_t lifetime_frees_ MENOS_GUARDED_BY(mutex_) = 0;
  std::size_t lifetime_bytes_ MENOS_GUARDED_BY(mutex_) = 0;
#if MENOS_DCHECK_IS_ON
  std::unordered_map<void*, std::size_t> debug_sizes_ MENOS_GUARDED_BY(mutex_);
#endif
};

/// Debug builds (or -DMENOS_AUDIT_ALLOC=ON) wrap every factory-made device
/// in the auditing decorator; see gpusim/audit.h.
std::unique_ptr<Device> maybe_audit(std::unique_ptr<Device> device) {
#ifdef MENOS_AUDIT_ALLOC
  return make_audit_device(std::move(device));
#else
  return device;
#endif
}

/// MENOS_CACHING_ALLOC=0/off/false disables pooling, anything else enables
/// it; unset falls back to the compile-time default (-DMENOS_CACHING_ALLOC
/// at configure time). Read per factory call so tests can flip it.
bool caching_enabled() {
  const char* raw = std::getenv("MENOS_CACHING_ALLOC");
  if (raw == nullptr || *raw == '\0') {
#ifdef MENOS_CACHING_ALLOC_DEFAULT
    return true;
#else
    return false;
#endif
  }
  const std::string v(raw);
  return !(v == "0" || v == "off" || v == "OFF" || v == "false" ||
           v == "FALSE");
}

/// Pooling layer between the client and the capacity meter (never applied
/// to unlimited host devices — pooling exists to amortize a capacity).
std::unique_ptr<Device> maybe_cache(std::unique_ptr<Device> device) {
  if (!caching_enabled()) return device;
  return mem::make_caching_device(std::move(device));
}

}  // namespace

namespace {

/// Decorator layers strictly below `inner` (inclusive of `inner` itself
/// when it is a decorator). A terminal device (meter/host) is depth 0.
int decorator_depth(const Device* inner) noexcept {
  int depth = 0;
  for (const Device* cur = inner;
       cur != nullptr && cur->unwrap() != nullptr; cur = cur->unwrap()) {
    ++depth;
  }
  return depth;
}

}  // namespace

std::string decorator_lock_name(const char* base, const Device* inner) {
  const int depth = decorator_depth(inner);
  if (depth == 0) return base;
  return std::string(base) + "." + std::to_string(depth);
}

int decorator_lock_rank(int base_rank, const Device* inner) noexcept {
  return decorator_depth(inner) == 0 ? base_rank : 0;
}

std::size_t Device::available() const {
  const MemoryStats s = stats();
  if (s.capacity == 0) return std::numeric_limits<std::size_t>::max();
  return s.capacity - s.allocated;
}

std::unique_ptr<Device> make_host_device(std::string name) {
  return maybe_audit(
      std::make_unique<MeteredDevice>(DeviceKind::Host, std::move(name), 0));
}

std::unique_ptr<Device> make_sim_gpu(std::string name,
                                     std::size_t capacity_bytes) {
  MENOS_CHECK_MSG(capacity_bytes > 0, "SimGpu capacity must be positive");
  return maybe_audit(maybe_cache(std::make_unique<MeteredDevice>(
      DeviceKind::SimGpu, std::move(name), capacity_bytes)));
}

DeviceManager::DeviceManager(int gpu_count, std::size_t gpu_capacity_bytes)
    : host_(make_host_device()) {
  MENOS_CHECK_MSG(gpu_count >= 0, "negative GPU count");
  gpus_.reserve(static_cast<std::size_t>(gpu_count));
  for (int i = 0; i < gpu_count; ++i) {
    gpus_.push_back(make_sim_gpu("gpu" + std::to_string(i), gpu_capacity_bytes));
  }
}

Device& DeviceManager::gpu(int index) {
  MENOS_CHECK_MSG(index >= 0 && index < gpu_count(),
                  "gpu index " << index << " out of range [0," << gpu_count()
                               << ")");
  return *gpus_[static_cast<std::size_t>(index)];
}

const Device& DeviceManager::gpu(int index) const {
  MENOS_CHECK_MSG(index >= 0 && index < gpu_count(),
                  "gpu index " << index << " out of range [0," << gpu_count()
                               << ")");
  return *gpus_[static_cast<std::size_t>(index)];
}

Device& DeviceManager::least_loaded_gpu() {
  MENOS_CHECK_MSG(!gpus_.empty(), "DeviceManager has no GPUs");
  Device* best = gpus_[0].get();
  for (auto& g : gpus_) {
    if (g->available() > best->available()) best = g.get();
  }
  return *best;
}

std::size_t DeviceManager::total_gpu_available() const {
  std::size_t total = 0;
  for (const auto& g : gpus_) total += g->available();
  return total;
}

std::size_t DeviceManager::total_gpu_capacity() const {
  std::size_t total = 0;
  for (const auto& g : gpus_) total += g->stats().capacity;
  return total;
}

}  // namespace menos::gpusim
