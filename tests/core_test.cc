// Core runtime: parameter store, serving modes, memory-equation behaviour
// of a live server, and failure injection.
#include <gtest/gtest.h>

#include <cmath>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"

namespace menos::core {
namespace {

nn::TransformerConfig tiny_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 4;
  c.max_seq = 32;
  return c;
}

net::FinetuneConfig tiny_finetune(const std::string& name,
                                  std::uint64_t adapter_seed = 7) {
  net::FinetuneConfig ft;
  ft.client_name = name;
  ft.model = tiny_model();
  ft.adapter.type = nn::AdapterType::Lora;
  ft.adapter.rank = 4;
  ft.adapter.alpha = 8.0f;
  ft.optimizer = optim::OptimizerKind::Adam;
  ft.lr = 1e-3f;
  ft.batch_size = 2;
  ft.seq_len = 8;
  ft.adapter_seed = adapter_seed;
  return ft;
}

data::Batch tiny_batch(std::uint64_t seed = 3) {
  data::CharTokenizer tok;
  auto tokens = tok.encode(data::make_shakespeare_like(2000, 11).text);
  data::DataLoader loader(tokens, 2, 8, seed);
  return loader.next();
}

TEST(ParameterStore, LoadsOneFrozenCopyOfAllBlocks) {
  auto gpu = gpusim::make_sim_gpu("g", 256u << 20);
  nn::TransformerConfig model = tiny_model();
  ParameterStore store(model, *gpu, 42);
  EXPECT_GT(store.bytes(), 0u);
  EXPECT_EQ(store.bytes(), gpu->allocated());
  // Every block parameter present, all frozen.
  EXPECT_TRUE(store.table().count("block0.attn.q.weight"));
  EXPECT_TRUE(store.table().count("block3.fc2.bias"));
  EXPECT_FALSE(store.table().count("tok_emb.weight"));  // client-side only
  for (const auto& [name, tensor] : store.table()) {
    EXPECT_FALSE(tensor.requires_grad()) << name;
  }
}

TEST(ParameterStore, SecondStructureAddsNoParameterMemory) {
  // The heart of §3.1: N structures, one copy of the parameters.
  auto gpu = gpusim::make_sim_gpu("g", 256u << 20);
  nn::TransformerConfig model = tiny_model();
  ParameterStore store(model, *gpu, 42);
  const std::size_t after_store = gpu->allocated();

  nn::SharedSource src1 = store.source();
  nn::AdapterSpec none;
  none.type = nn::AdapterType::None;
  util::Rng rng1(1), rng2(2);
  nn::SplitSpec split;
  nn::ServerSection s1(model, split, none, src1, *gpu, rng1);
  EXPECT_EQ(gpu->allocated(), after_store);  // zero new bytes
  nn::SharedSource src2 = store.source();
  nn::ServerSection s2(model, split, none, src2, *gpu, rng2);
  EXPECT_EQ(gpu->allocated(), after_store);
}

TEST(ParameterStore, LoraStructuresAddOnlyAdapterBytes) {
  auto gpu = gpusim::make_sim_gpu("g", 256u << 20);
  nn::TransformerConfig model = tiny_model();
  ParameterStore store(model, *gpu, 42);
  const std::size_t after_store = gpu->allocated();
  nn::SharedSource src = store.source();
  nn::AdapterSpec lora;
  util::Rng rng(1);
  nn::SplitSpec split;
  nn::ServerSection section(model, split, lora, src, *gpu, rng);
  EXPECT_EQ(gpu->allocated() - after_store,
            section.trainable_parameter_bytes());
}

TEST(SameModel, DetectsMismatch) {
  nn::TransformerConfig a = tiny_model();
  nn::TransformerConfig b = tiny_model();
  EXPECT_TRUE(same_model(a, b));
  b.dim = 64;
  EXPECT_FALSE(same_model(a, b));
}

TEST(ServingModes, Predicates) {
  EXPECT_TRUE(shares_base_model(ServingMode::MenosOnDemand));
  EXPECT_FALSE(shares_base_model(ServingMode::VanillaTaskSwap));
  EXPECT_FALSE(holds_across_iteration(ServingMode::MenosOnDemand));
  EXPECT_FALSE(holds_across_iteration(ServingMode::MenosReleaseEarly));
  EXPECT_TRUE(holds_across_iteration(ServingMode::MenosReleaseAfterBackward));
  EXPECT_TRUE(holds_across_iteration(ServingMode::MenosPreserveAll));
  EXPECT_TRUE(holds_across_iteration(ServingMode::VanillaTaskSwap));
}

TEST(WireConversion, RoundTripPreservesBits) {
  auto host = gpusim::make_host_device();
  tensor::Tensor t = tensor::Tensor::from_vector({1.5f, -2.25f, 0.0f, 1e-20f},
                                                 {2, 2}, *host);
  net::WireTensor w = to_wire(t);
  tensor::Tensor back = from_wire(w, *host, true);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(back.to_vector(), t.to_vector());
  EXPECT_TRUE(back.requires_grad());
}

// ----- live server fixtures -----

struct Rig {
  explicit Rig(ServingMode mode, std::size_t gpu_bytes = 512u << 20)
      : devices(1, gpu_bytes) {
    config.mode = mode;
    config.base_seed = 42;
    server = std::make_unique<Server>(config, devices, tiny_model());
    server->start(acceptor);
  }

  ~Rig() {
    if (server != nullptr) server->stop();
  }

  std::unique_ptr<Client> make_client(const std::string& name,
                                      std::uint64_t adapter_seed = 7) {
    ClientOptions options;
    options.finetune = tiny_finetune(name, adapter_seed);
    options.base_seed = 42;
    auto client = std::make_unique<Client>(options, acceptor.connect(),
                                           client_device);
    client->connect();
    return client;
  }

  gpusim::DeviceManager devices;
  ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<Server> server;
  // Clients run on their own device (their "own GPU" in the paper setup).
  gpusim::DeviceManager client_devices{1, 512u << 20};
  gpusim::Device& client_device = client_devices.gpu(0);
};

TEST(Runtime, SingleClientTrainsAndLossIsFinite) {
  Rig rig(ServingMode::MenosOnDemand);
  auto client = rig.make_client("alice");
  EXPECT_GT(client->server_backward_bytes(), client->server_forward_bytes());
  data::Batch batch = tiny_batch();
  StepStats s1 = client->train_step(batch);
  EXPECT_TRUE(std::isfinite(s1.loss));
  EXPECT_GT(s1.loss, 0.0);
  StepStats s2 = client->train_step(batch);
  // Same batch twice: optimization should not increase loss much.
  EXPECT_LT(s2.loss, s1.loss + 0.5);
  client->disconnect();
}

TEST(Runtime, EvaluateDoesNotPerturbTraining) {
  Rig rig(ServingMode::MenosOnDemand);
  auto client = rig.make_client("alice");
  data::Batch batch = tiny_batch();
  const double before = client->evaluate(batch);
  const double again = client->evaluate(batch);
  EXPECT_DOUBLE_EQ(before, again);  // eval is pure
  client->train_step(batch);
  EXPECT_LT(client->evaluate(batch), before + 0.5);
  client->disconnect();
}

class AllModes : public ::testing::TestWithParam<ServingMode> {};

TEST_P(AllModes, TrainStepWorksAndReleasesMemory) {
  Rig rig(GetParam());
  const std::size_t baseline = rig.devices.gpu(0).allocated();
  {
    auto client = rig.make_client("alice");
    data::Batch batch = tiny_batch();
    for (int i = 0; i < 3; ++i) {
      StepStats s = client->train_step(batch);
      EXPECT_TRUE(std::isfinite(s.loss));
    }
    const double eval = client->evaluate(batch);
    EXPECT_TRUE(std::isfinite(eval));
    client->disconnect();
  }
  // After the client departs the server must free its per-client state.
  for (int i = 0; i < 200 && rig.server->session_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (int i = 0; i < 200 && rig.devices.gpu(0).allocated() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rig.devices.gpu(0).allocated(), baseline);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AllModes,
    ::testing::Values(ServingMode::MenosOnDemand,
                      ServingMode::MenosReleaseEarly,
                      ServingMode::MenosReleaseAfterBackward,
                      ServingMode::MenosPreserveAll,
                      ServingMode::VanillaTaskSwap));

TEST(Runtime, PersistentBytesGrowLinearlyOnlyInAdapters) {
  // Fig 5 at laptop scale: Menos persistent memory is M + (A+O)*N.
  Rig rig(ServingMode::MenosOnDemand);
  const std::size_t base = rig.server->persistent_gpu_bytes();
  auto c1 = rig.make_client("c1", 100);
  const std::size_t with1 = rig.server->persistent_gpu_bytes();
  auto c2 = rig.make_client("c2", 101);
  const std::size_t with2 = rig.server->persistent_gpu_bytes();
  auto c3 = rig.make_client("c3", 102);
  const std::size_t with3 = rig.server->persistent_gpu_bytes();

  const std::size_t per_client = with1 - base;
  EXPECT_GT(per_client, 0u);
  EXPECT_EQ(with2 - with1, per_client);
  EXPECT_EQ(with3 - with2, per_client);
  // A + O must be much smaller than the shared base (A << M premise; the
  // ratio is model-size dependent — at paper scale it is ~1/40, see the
  // sim tests — here the tiny model still gives a clear gap).
  EXPECT_LT(per_client, base / 4);
  c1->disconnect();
  c2->disconnect();
  c3->disconnect();
}

TEST(Runtime, VanillaDuplicatesBasePerClient) {
  Rig rig(ServingMode::VanillaTaskSwap);
  const std::size_t base = rig.server->persistent_gpu_bytes();
  EXPECT_EQ(base, 0u);  // no shared store in vanilla mode
  auto c1 = rig.make_client("c1", 100);
  data::Batch batch = tiny_batch();
  c1->train_step(batch);  // pulls the task onto the GPU
  const std::size_t with1 = rig.server->persistent_gpu_bytes();
  // A full per-client model copy is an order of magnitude above A+O.
  nn::TransformerConfig model = tiny_model();
  EXPECT_GT(with1,
            static_cast<std::size_t>(model.parameter_count()) * 2);
  c1->disconnect();
}

TEST(Runtime, ModelMismatchRejected) {
  Rig rig(ServingMode::MenosOnDemand);
  ClientOptions options;
  options.finetune = tiny_finetune("bob");
  options.finetune.model.dim = 64;  // not what the server hosts
  options.finetune.model.n_heads = 4;
  options.base_seed = 42;
  Client client(options, rig.acceptor.connect(), rig.client_device);
  EXPECT_THROW(client.connect(), StateError);
}

TEST(Runtime, OversizedBatchRejectedAtProfiling) {
  // A demand no partition can ever satisfy must be rejected up front
  // (scheduler principle 1: avoid OOM), not crash the server.
  Rig rig(ServingMode::MenosOnDemand, /*gpu_bytes=*/6u << 20);
  ClientOptions options;
  options.finetune = tiny_finetune("greedy");
  options.finetune.batch_size = 64;
  options.finetune.seq_len = 32;
  options.base_seed = 42;
  Client client(options, rig.acceptor.connect(), rig.client_device);
  EXPECT_THROW(client.connect(), Error);
  // The server survives and can still serve a reasonable client.
  auto ok = rig.make_client("modest");
  data::Batch batch = tiny_batch();
  EXPECT_TRUE(std::isfinite(ok->train_step(batch).loss));
  ok->disconnect();
}

TEST(Runtime, ClientDisconnectMidIterationFreesServerState) {
  Rig rig(ServingMode::MenosOnDemand);
  const std::size_t baseline = rig.devices.gpu(0).allocated();
  {
    ClientOptions options;
    options.finetune = tiny_finetune("flaky");
    options.base_seed = 42;
    auto conn = rig.acceptor.connect();
    Client client(options, std::move(conn), rig.client_device);
    client.connect();
    // Send a forward, then vanish without the matching backward.
    data::Batch batch = tiny_batch();
    // Use the raw path: a normal train_step would wait for the reply; we
    // emulate a crash by closing right after connect+one eval round.
    client.evaluate(batch);
    // destructor sends Bye/close
  }
  for (int i = 0; i < 200 && rig.devices.gpu(0).allocated() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rig.devices.gpu(0).allocated(), baseline);
}

TEST(Runtime, BackwardWithoutForwardIsProtocolError) {
  Rig rig(ServingMode::MenosOnDemand);
  auto conn = rig.acceptor.connect();
  net::FinetuneConfig ft = tiny_finetune("rogue");
  conn->send(net::Message::hello(ft));
  auto ack = conn->receive();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, net::MessageType::HelloAck);
  // Backward with no preceding forward.
  net::WireTensor g;
  g.shape = {2, 8, 32};
  g.data.assign(2 * 8 * 32, 0.1f);
  conn->send(net::Message::backward(g, 0));
  auto reply = conn->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::Error);
}

TEST(Runtime, GradientShapeMismatchReported) {
  Rig rig(ServingMode::MenosOnDemand);
  auto conn = rig.acceptor.connect();
  net::FinetuneConfig ft = tiny_finetune("rogue2");
  conn->send(net::Message::hello(ft));
  auto ack = conn->receive();
  ASSERT_EQ(ack->type, net::MessageType::HelloAck);
  net::WireTensor x;
  x.shape = {2, 8, 32};
  x.data.assign(2 * 8 * 32, 0.1f);
  conn->send(net::Message::forward(x, 0));
  auto fwd = conn->receive();
  ASSERT_EQ(fwd->type, net::MessageType::ForwardResult);
  net::WireTensor bad;
  bad.shape = {1, 1, 32};
  bad.data.assign(32, 0.0f);
  conn->send(net::Message::backward(bad, 0));
  auto reply = conn->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::Error);
}

TEST(Runtime, HeterogeneousAdaptersCoexist) {
  // §3.1: clients choose different cut layers and adapter types over the
  // same shared parameters.
  Rig rig(ServingMode::MenosOnDemand);

  ClientOptions lora_opts;
  lora_opts.finetune = tiny_finetune("lora-client", 201);
  lora_opts.base_seed = 42;

  ClientOptions prefix_opts;
  prefix_opts.finetune = tiny_finetune("prefix-client", 202);
  prefix_opts.finetune.adapter.type = nn::AdapterType::Prefix;
  prefix_opts.finetune.adapter.prefix_len = 4;
  prefix_opts.base_seed = 42;

  ClientOptions deep_cut_opts;
  deep_cut_opts.finetune = tiny_finetune("private-client", 203);
  deep_cut_opts.finetune.split.front_blocks = 2;  // deeper cut = more privacy
  deep_cut_opts.finetune.split.back_blocks = 1;
  deep_cut_opts.base_seed = 42;

  auto c1 = std::make_unique<Client>(lora_opts, rig.acceptor.connect(),
                                     rig.client_device);
  auto c2 = std::make_unique<Client>(prefix_opts, rig.acceptor.connect(),
                                     rig.client_device);
  auto c3 = std::make_unique<Client>(deep_cut_opts, rig.acceptor.connect(),
                                     rig.client_device);
  c1->connect();
  c2->connect();
  c3->connect();

  data::Batch batch = tiny_batch();
  EXPECT_TRUE(std::isfinite(c1->train_step(batch).loss));
  EXPECT_TRUE(std::isfinite(c2->train_step(batch).loss));
  EXPECT_TRUE(std::isfinite(c3->train_step(batch).loss));
  c1->disconnect();
  c2->disconnect();
  c3->disconnect();
}

}  // namespace
}  // namespace menos::core
