file(REMOVE_RECURSE
  "CMakeFiles/menos_util.dir/bytes.cc.o"
  "CMakeFiles/menos_util.dir/bytes.cc.o.d"
  "CMakeFiles/menos_util.dir/crc32.cc.o"
  "CMakeFiles/menos_util.dir/crc32.cc.o.d"
  "CMakeFiles/menos_util.dir/logging.cc.o"
  "CMakeFiles/menos_util.dir/logging.cc.o.d"
  "CMakeFiles/menos_util.dir/rng.cc.o"
  "CMakeFiles/menos_util.dir/rng.cc.o.d"
  "CMakeFiles/menos_util.dir/trace.cc.o"
  "CMakeFiles/menos_util.dir/trace.cc.o.d"
  "libmenos_util.a"
  "libmenos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
