#include "sched/scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace menos::sched {
namespace {

/// Monotonic wall time in seconds, for service-time estimates and
/// anti-starvation waits. Only differences are ever used.
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// EWMA smoothing for service-time estimates: responsive enough to track a
/// client whose link or load changes, sticky enough that one noisy round
/// does not flip its class.
constexpr double kServiceAlpha = 0.3;

}  // namespace

const char* op_kind_name(OpKind kind) noexcept {
  return kind == OpKind::Forward ? "forward" : "backward";
}

Scheduler::Scheduler(std::vector<std::size_t> partition_capacities,
                     Policy policy)
    : capacity_(std::move(partition_capacities)),
      free_(capacity_),
      policy_(policy),
      clock_(&now_seconds) {
  MENOS_CHECK_MSG(!capacity_.empty(), "scheduler needs at least one partition");
}

Scheduler::Scheduler(std::size_t capacity, Policy policy)
    : Scheduler(std::vector<std::size_t>{capacity}, policy) {}

void Scheduler::set_grant_callback(std::function<void(const Grant&)> callback) {
  util::MutexLock lock(mutex_);
  grant_callback_ = std::move(callback);
}

void Scheduler::set_reclaim_callback(ReclaimCallback callback) {
  util::MutexLock lock(mutex_);
  reclaim_callback_ = std::move(callback);
}

void Scheduler::set_pressure_callback(PressureCallback callback) {
  util::MutexLock lock(mutex_);
  pressure_callback_ = std::move(callback);
}

bool Scheduler::try_reclaim(std::size_t bytes, int partition) {
  PendingDispatch out;
  bool ok = false;
  {
    util::MutexLock lock(mutex_);
    MENOS_CHECK_MSG(partition >= 0 &&
                        partition < static_cast<int>(free_.size()),
                    "partition " << partition << " out of range");
    ok = try_reclaim_locked(partition, bytes);
    out = take_pending_locked();
  }
  dispatch(out);
  return ok;
}

bool Scheduler::try_reclaim_locked(int partition, std::size_t bytes) {
  auto& free = free_[static_cast<std::size_t>(partition)];
  if (free >= bytes) return true;
  if (!reclaim_callback_) return false;
  // Fires with mutex_ held under the grant callback's no-re-entry
  // contract; it returns bytes evicted to host, which re-expand the pool —
  // the exact inverse of reserve_persistent.
  const std::size_t needed = bytes - free;
  const std::size_t freed = reclaim_callback_(partition, needed);
  if (freed > 0) {
    free += freed;
    capacity_[static_cast<std::size_t>(partition)] += freed;
    ++stats_.reclaims;
    stats_.reclaimed_bytes += freed;
  }
  if (pressure_callback_) {
    // One pressure event per reclaim pass, dispatched post-unlock: the
    // shard ran hot enough to need eviction, whether or not it succeeded.
    pending_pressure_.push_back(PressureEvent{partition, needed, freed, free});
  }
  return free >= bytes;
}

void Scheduler::register_client(int client_id, const ClientDemands& demands,
                                std::uint64_t batch_key) {
  util::MutexLock lock(mutex_);
  const std::size_t largest =
      *std::max_element(capacity_.begin(), capacity_.end());
  const std::size_t worst =
      std::max(demands.forward_bytes, demands.backward_bytes);
  MENOS_CHECK_MSG(worst <= largest,
                  "client " << client_id << " demands "
                            << worst << " bytes, larger than any partition ("
                            << largest << ") — rejected at profiling time");
  MENOS_CHECK_MSG(demands_.find(client_id) == demands_.end(),
                  "client " << client_id << " already registered");
  demands_[client_id] = demands;
  if (batch_key != 0) batch_key_[client_id] = batch_key;
}

void Scheduler::set_max_group_size(std::size_t n) {
  util::MutexLock lock(mutex_);
  MENOS_CHECK_MSG(n >= 1, "max group size must be >= 1");
  max_group_ = n;
}

void Scheduler::unregister_client(int client_id) {
  PendingDispatch out;
  {
    util::MutexLock lock(mutex_);
    if (allocations_.find(client_id) != allocations_.end()) {
      throw StateError("unregistering client " + std::to_string(client_id) +
                       " with a live allocation");
    }
    waiting_.erase(std::remove_if(waiting_.begin(), waiting_.end(),
                                  [client_id](const Waiting& w) {
                                    return w.client_id == client_id;
                                  }),
                   waiting_.end());
    demands_.erase(client_id);
    batch_key_.erase(client_id);
    service_est_.erase(client_id);
    // Departure frees nothing, but a slot may now be irrelevant to fairness
    // ordering; re-run scheduling for uniformity.
    schedule_locked();
    out = take_pending_locked();
  }
  dispatch(out);
}

void Scheduler::cancel_pending(int client_id) {
  PendingDispatch out;
  {
    util::MutexLock lock(mutex_);
    const auto it = std::remove_if(waiting_.begin(), waiting_.end(),
                                   [client_id](const Waiting& w) {
                                     return w.client_id == client_id;
                                   });
    if (it == waiting_.end()) return;
    waiting_.erase(it, waiting_.end());
    // Removing a (possibly head) entry may unblock everyone behind it.
    schedule_locked();
    out = take_pending_locked();
  }
  dispatch(out);
}

void Scheduler::on_request(int client_id, OpKind kind) {
  PendingDispatch out;
  {
    util::MutexLock lock(mutex_);
    MENOS_CHECK_MSG(demands_.find(client_id) != demands_.end(),
                    "request from unregistered client " << client_id);
    MENOS_CHECK_MSG(allocations_.find(client_id) == allocations_.end(),
                    "client " << client_id
                              << " requested while holding an allocation");
    for (const Waiting& w : waiting_) {
      MENOS_CHECK_MSG(w.client_id != client_id,
                      "client " << client_id
                                << " already has a pending request");
    }
    waiting_.push_back(Waiting{client_id, kind, next_seq_++, clock_()});
    ++stats_.requests;
    schedule_locked();
    out = take_pending_locked();
  }
  dispatch(out);
}

void Scheduler::on_complete(int client_id) {
  PendingDispatch out;
  {
    util::MutexLock lock(mutex_);
    auto it = allocations_.find(client_id);
    MENOS_CHECK_MSG(it != allocations_.end(),
                    "completion from client " << client_id
                                              << " with no allocation");
    if (it->second.granted_at > 0.0) {
      update_estimate_locked(client_id, clock_() - it->second.granted_at);
    }
    free_[static_cast<std::size_t>(it->second.partition)] += it->second.bytes;
    allocations_.erase(it);
    schedule_locked();
    out = take_pending_locked();
  }
  dispatch(out);
}

void Scheduler::on_complete_group(const std::vector<int>& clients) {
  PendingDispatch out;
  {
    util::MutexLock lock(mutex_);
    for (int client_id : clients) {
      auto it = allocations_.find(client_id);
      // A member torn down mid-pass has already released its own charge
      // through its cleanup path; skip it.
      if (it == allocations_.end()) continue;
      if (it->second.granted_at > 0.0) {
        update_estimate_locked(client_id,
                               clock_() - it->second.granted_at);
      }
      free_[static_cast<std::size_t>(it->second.partition)] +=
          it->second.bytes;
      allocations_.erase(it);
    }
    // One pass after the whole group frees: the next held group sees all
    // the recovered memory at once and can form at full size.
    schedule_locked();
    out = take_pending_locked();
  }
  dispatch(out);
}

void Scheduler::reserve_persistent(int partition, std::size_t bytes) {
  PendingDispatch out;
  bool fits = false;
  std::size_t free_now = 0;
  {
    util::MutexLock lock(mutex_);
    MENOS_CHECK_MSG(partition >= 0 &&
                        partition < static_cast<int>(free_.size()),
                    "partition " << partition << " out of range");
    auto& free = free_[static_cast<std::size_t>(partition)];
    if (bytes > free && policy_ == Policy::SwapOnIdle) {
      // A new client's A + O does not fit; evict idle clients' state first.
      try_reclaim_locked(partition, bytes);
    }
    if (bytes <= free) {
      free -= bytes;
      capacity_[static_cast<std::size_t>(partition)] -= bytes;
      fits = true;
    }
    free_now = free;
    out = take_pending_locked();
  }
  // Dispatch even on the failure path so the pressure event is not lost —
  // the fleet reacts to exactly this kind of refusal.
  dispatch(out);
  if (!fits) {
    throw OutOfMemory("persistent reservation exceeds free partition memory",
                      bytes, free_now);
  }
}

void Scheduler::release_persistent(int partition, std::size_t bytes) {
  PendingDispatch out;
  {
    util::MutexLock lock(mutex_);
    MENOS_CHECK_MSG(partition >= 0 &&
                        partition < static_cast<int>(free_.size()),
                    "partition " << partition << " out of range");
    free_[static_cast<std::size_t>(partition)] += bytes;
    capacity_[static_cast<std::size_t>(partition)] += bytes;
    schedule_locked();
    out = take_pending_locked();
  }
  dispatch(out);
}

Scheduler::PendingDispatch Scheduler::take_pending_locked() {
  PendingDispatch out;
  out.grants.swap(pending_grants_);
  // A null callback can only coexist with zero grants (schedule_locked
  // bails out without one), so dispatching over an empty vector is safe.
  out.grant_callback = grant_callback_;
  out.pressure.swap(pending_pressure_);
  out.pressure_callback = pressure_callback_;
  return out;
}

void Scheduler::dispatch(PendingDispatch& pending) {
  for (const Grant& grant : pending.grants) pending.grant_callback(grant);
  if (pending.pressure_callback) {
    for (const PressureEvent& e : pending.pressure) {
      pending.pressure_callback(e);
    }
  }
}

void Scheduler::schedule_locked() {
  if (!grant_callback_) return;
  if (policy_ == Policy::StragglerAware) {
    schedule_straggler_locked();
    return;
  }
  bool head_blocked = false;
  bool backward_blocked = false;  // an earlier backward is still waiting
  bool reclaim_dry = false;       // a reclaim this pass came up short
  // (batch_key, kind) classes held back this pass for a fuller group: once
  // a group leader holds, later same-class entries must not be granted
  // solo behind it (a fragmented sub-group would defeat the coalescing and
  // jump the leader).
  std::vector<std::pair<std::uint64_t, OpKind>> held;
  const auto is_held = [&held](std::uint64_t key, OpKind kind) {
    for (const auto& h : held) {
      if (h.first == key && h.second == kind) return true;
    }
    return false;
  };
  // One pass in FCFS order; every grant frees no memory, so a single pass
  // is complete (grants only shrink availability).
  for (std::size_t i = 0; i < waiting_.size();) {
    const Waiting w = waiting_[i];
    const std::size_t bytes = demands_[w.client_id].bytes_for(w.kind);
    const std::uint64_t key = batch_key_of_locked(w.client_id);

    // Fairness gate (see header): a backward may not overtake an earlier
    // still-waiting backward; under FcfsOnly nothing overtakes a blocked
    // head at all; a held coalescing class stays held for the whole pass.
    const bool gated =
        (policy_ == Policy::FcfsOnly && head_blocked) ||
        (w.kind == OpKind::Backward && backward_blocked) ||
        (key != 0 && is_held(key, w.kind));
    std::optional<int> partition;
    if (!gated) partition = find_partition_locked(bytes);

    // SwapOnIdle: before declaring this request blocked, evict idle
    // clients' persistent state until it fits. One dry reclaim ends the
    // attempts for this pass — nothing idle is left to evict.
    if (!gated && !partition.has_value() && policy_ == Policy::SwapOnIdle &&
        !reclaim_dry) {
      // Target the partition with the most free bytes: it needs the least
      // eviction to cover the request.
      std::size_t target = 0;
      for (std::size_t p = 1; p < free_.size(); ++p) {
        if (free_[p] > free_[target]) target = p;
      }
      if (try_reclaim_locked(static_cast<int>(target), bytes)) {
        partition = static_cast<int>(target);
      } else {
        reclaim_dry = true;
      }
    }

    if (partition.has_value()) {
      if (policy_ == Policy::CoalescedBatch && key != 0) {
        if (try_coalesce_locked(i, key, *partition,
                                head_blocked || backward_blocked)) {
          continue;  // members erased; i now indexes the next survivor
        }
        // More compatible requests wait than currently fit: hold the whole
        // class back this pass so the group forms at full size once the
        // memory frees (see the header's no-stall argument).
        held.emplace_back(key, w.kind);
        if (i == 0) head_blocked = true;
        if (w.kind == OpKind::Backward) backward_blocked = true;
        ++i;
        continue;
      }
      free_[static_cast<std::size_t>(*partition)] -= bytes;
      allocations_[w.client_id] = Allocation{bytes, *partition, clock_()};
      ++stats_.grants;
      if (head_blocked || backward_blocked) ++stats_.backfill_grants;
      pending_grants_.push_back(Grant{w.client_id, w.kind, *partition, {}});
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }

    if (i == 0) head_blocked = true;
    if (policy_ == Policy::FcfsOnly) {
      ++stats_.blocked_cycles;
      return;  // strict FCFS: quit the scheduling cycle (Alg 2 line 18)
    }
    if (w.kind == OpKind::Backward) backward_blocked = true;
    ++i;
  }
  if (head_blocked) ++stats_.blocked_cycles;
}

void Scheduler::schedule_straggler_locked() {
  // Classify the waiting queue: fast clients first (FCFS), deferred
  // stragglers after (FCFS). With nothing classified as a straggler,
  // `order` IS the FCFS queue and the loop below replays the FcfsBackfill
  // pass of schedule_locked exactly — grant sequence, backfill accounting
  // and blocked_cycles included. That degeneration is the homogeneous
  // fairness pin (sched_test / hetero_test).
  const double median = estimate_median_locked();
  const double now = clock_();
  std::vector<std::size_t> order;
  order.reserve(waiting_.size());
  std::vector<std::size_t> deferred;
  std::vector<bool> is_deferred(waiting_.size(), false);
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    const Waiting& w = waiting_[i];
    double est = 0.0;
    if (auto it = service_est_.find(w.client_id); it != service_est_.end()) {
      est = it->second;
    }
    if (median > 0.0 && est > straggler_ratio_ * median) {
      // Anti-starvation: a straggler that has already waited longer than
      // promote_slack x its own service time rejoins the fast scan at its
      // FCFS position instead of being deferred again.
      if (now - w.enqueued_at > promote_slack_ * est) {
        ++stats_.straggler_promotions;
      } else {
        deferred.push_back(i);
        is_deferred[i] = true;
        continue;
      }
    }
    order.push_back(i);
  }
  order.insert(order.end(), deferred.begin(), deferred.end());

  bool head_blocked = false;
  bool backward_blocked = false;
  // Mirrors schedule_locked's `i == 0` head test under deferred erasure:
  // an entry is "at the head" when every earlier-traversed entry was
  // granted (i.e. would already have been erased by the eager loop).
  bool ungranted_before = false;
  std::vector<std::size_t> granted;
  for (std::size_t idx : order) {
    const Waiting& w = waiting_[idx];
    const std::size_t bytes = demands_[w.client_id].bytes_for(w.kind);
    const bool gated = w.kind == OpKind::Backward && backward_blocked;
    std::optional<int> partition;
    if (!gated) partition = find_partition_locked(bytes);
    if (!partition.has_value()) {
      if (!ungranted_before) head_blocked = true;
      ungranted_before = true;
      if (w.kind == OpKind::Backward) backward_blocked = true;
      continue;
    }
    free_[static_cast<std::size_t>(*partition)] -= bytes;
    allocations_[w.client_id] = Allocation{bytes, *partition, clock_()};
    ++stats_.grants;
    if (head_blocked || backward_blocked) ++stats_.backfill_grants;
    if (!is_deferred[idx]) {
      // Did the reorder engage? Count grants that jumped an earlier-arrived
      // request deferred as a straggler this pass.
      for (std::size_t d : deferred) {
        if (waiting_[d].seq < w.seq) {
          ++stats_.straggler_reorders;
          break;
        }
      }
    }
    pending_grants_.push_back(Grant{w.client_id, w.kind, *partition, {}});
    granted.push_back(idx);
  }
  std::sort(granted.begin(), granted.end());
  for (std::size_t k = granted.size(); k-- > 0;) {
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(granted[k]));
  }
  if (head_blocked) ++stats_.blocked_cycles;
}

void Scheduler::update_estimate_locked(int client_id, double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  auto [it, inserted] = service_est_.emplace(client_id, seconds);
  if (!inserted) {
    it->second = kServiceAlpha * seconds + (1.0 - kServiceAlpha) * it->second;
  }
}

double Scheduler::estimate_median_locked() const {
  if (service_est_.empty()) return 0.0;
  std::vector<double> vals;
  vals.reserve(service_est_.size());
  for (const auto& entry : service_est_) vals.push_back(entry.second);
  const std::size_t mid = (vals.size() - 1) / 2;  // lower median
  std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(mid),
                   vals.end());
  return vals[mid];
}

void Scheduler::record_service_time(int client_id, double seconds) {
  util::MutexLock lock(mutex_);
  update_estimate_locked(client_id, seconds);
}

double Scheduler::service_estimate(int client_id) const {
  util::MutexLock lock(mutex_);
  auto it = service_est_.find(client_id);
  return it == service_est_.end() ? 0.0 : it->second;
}

void Scheduler::set_straggler_ratio(double ratio) {
  util::MutexLock lock(mutex_);
  MENOS_CHECK_MSG(ratio > 1.0, "straggler ratio must be > 1");
  straggler_ratio_ = ratio;
}

void Scheduler::set_straggler_promote_slack(double slack) {
  util::MutexLock lock(mutex_);
  MENOS_CHECK_MSG(slack > 0.0, "straggler promote slack must be > 0");
  promote_slack_ = slack;
}

void Scheduler::set_clock(std::function<double()> clock) {
  util::MutexLock lock(mutex_);
  MENOS_CHECK_MSG(clock != nullptr, "scheduler clock must be callable");
  clock_ = std::move(clock);
}

std::uint64_t Scheduler::batch_key_of_locked(int client_id) const {
  auto it = batch_key_.find(client_id);
  return it == batch_key_.end() ? 0 : it->second;
}

bool Scheduler::try_coalesce_locked(std::size_t leader_idx, std::uint64_t key,
                                    int partition, bool leader_backfill) {
  const Waiting leader = waiting_[leader_idx];
  // Collect members in FCFS order: the leader, then every later waiting
  // entry of the same (kind, batch_key). The scan STOPS at the first
  // non-joining Backward — granting members past it would overtake an
  // earlier waiting backward, which the fairness contract forbids. A
  // skipped non-joining Forward marks every member gathered after it as a
  // backfill grant (they are granted ahead of an earlier request).
  struct Member {
    std::size_t idx;
    bool overtakes;
  };
  std::vector<Member> members{{leader_idx, false}};
  bool skipped = false;
  for (std::size_t j = leader_idx + 1;
       j < waiting_.size() && members.size() < max_group_; ++j) {
    const Waiting& cand = waiting_[j];
    const bool joins = cand.kind == leader.kind &&
                       batch_key_of_locked(cand.client_id) == key;
    if (!joins) {
      if (cand.kind == OpKind::Backward) break;
      skipped = true;
      continue;
    }
    members.push_back(Member{j, skipped});
  }

  // fit: members (prefix, in order) whose summed demand fits the
  // partition's free memory now. fit_cap: how many an EMPTY partition
  // could ever hold — the group size worth waiting for. The leader alone
  // is known to fit, so fit >= 1 and target >= 1.
  const std::size_t cap = capacity_[static_cast<std::size_t>(partition)];
  const std::size_t free = free_[static_cast<std::size_t>(partition)];
  std::size_t fit = 0, fit_cap = 0, acc = 0;
  for (const Member& m : members) {
    acc += demands_[waiting_[m.idx].client_id].bytes_for(leader.kind);
    if (acc <= free) ++fit;
    if (acc <= cap) ++fit_cap;
  }
  const std::size_t target = std::min(members.size(), fit_cap);
  if (fit < target) return false;  // hold for a fuller group

  members.resize(target);
  Grant grant;
  grant.client_id = leader.client_id;
  grant.kind = leader.kind;
  grant.partition = partition;
  if (target > 1) {
    grant.group.reserve(target);
    for (const Member& m : members) {
      grant.group.push_back(waiting_[m.idx].client_id);
    }
  }
  for (const Member& m : members) {
    const int client_id = waiting_[m.idx].client_id;
    const std::size_t bytes = demands_[client_id].bytes_for(leader.kind);
    free_[static_cast<std::size_t>(partition)] -= bytes;
    allocations_[client_id] = Allocation{bytes, partition, clock_()};
    ++stats_.grants;
    if (leader_backfill || m.overtakes) ++stats_.backfill_grants;
  }
  if (target > 1) {
    ++stats_.coalesced_groups;
    stats_.coalesced_members += target;
  }
  pending_grants_.push_back(std::move(grant));
  for (std::size_t k = members.size(); k-- > 0;) {
    waiting_.erase(waiting_.begin() +
                   static_cast<std::ptrdiff_t>(members[k].idx));
  }
  return true;
}

std::optional<int> Scheduler::find_partition_locked(std::size_t bytes) const {
  // Best fit: the partition with the least free memory that still fits, so
  // large holes stay available for backward passes.
  std::optional<int> best;
  std::size_t best_free = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i] >= bytes && free_[i] < best_free) {
      best = static_cast<int>(i);
      best_free = free_[i];
    }
  }
  return best;
}

std::size_t Scheduler::available(int partition) const {
  util::MutexLock lock(mutex_);
  MENOS_CHECK_MSG(partition >= 0 &&
                      partition < static_cast<int>(free_.size()),
                  "partition " << partition << " out of range");
  return free_[static_cast<std::size_t>(partition)];
}

std::size_t Scheduler::total_available() const {
  util::MutexLock lock(mutex_);
  std::size_t total = 0;
  for (std::size_t f : free_) total += f;
  return total;
}

std::size_t Scheduler::allocated_to(int client_id) const {
  util::MutexLock lock(mutex_);
  auto it = allocations_.find(client_id);
  return it == allocations_.end() ? 0 : it->second.bytes;
}

std::size_t Scheduler::waiting_count() const {
  util::MutexLock lock(mutex_);
  return waiting_.size();
}

SchedulerStats Scheduler::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

int Scheduler::partition_count() const {
  util::MutexLock lock(mutex_);
  return static_cast<int>(capacity_.size());
}

}  // namespace menos::sched
