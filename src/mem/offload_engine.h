// Host-offload residency engine — swap a client's persistent state
// (adapter + optimizer) between device and host so idle clients stop
// holding GPU capacity hostage.
//
// The paper's vanilla baseline swaps whole task copies; Menos' shared
// modes keep each client's A + O resident forever. This engine adds the
// missing middle ground for the Policy::SwapOnIdle scheduler: each
// session registers its persistent state as a *residency unit* and the
// scheduler evicts least-recently-used idle units when a request (or a new
// client's persistent reservation) would otherwise be declared blocked.
//
// The engine is deliberately scheduler- and tensor-agnostic: the owner
// supplies two callbacks per unit —
//   move(to_device)  physically migrate the unit's tensors (called with
//                    the engine mutex held on the eviction path, so it
//                    must not call back into the engine),
//   charge()         reserve the unit's bytes with the scheduler (called
//                    WITHOUT the engine mutex; may throw OutOfMemory) —
// and the scheduler itself credits bytes freed by eviction (its reclaim
// callback contract), so no release call exists here.
//
// Lock ordering (deadlock freedom): scheduler -> engine is the only
// permitted nesting. evict_idle() is called from the scheduler's reclaim
// callback with the scheduler mutex held and takes the engine mutex;
// therefore no engine method ever calls the scheduler while holding the
// engine mutex — ensure_resident()/prefetch() drop it before charge().
//
// Asynchrony: prefetch() runs the charge + move-in on the process
// ThreadPool's background task lane (util::ThreadPool::submit) so a grant
// can overlap a swap-in with the previous client's compute. Transfer time
// is priced with the same gpusim::TransferModel constants the vanilla
// baseline and src/sim use, accumulated in stats().modeled_transfer_s.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>

#include "gpusim/device.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::mem {

/// Where a unit's tensors currently live.
enum class Residency : std::uint8_t { OnDevice, OnHost, MovingIn, MovingOut };

const char* residency_name(Residency r) noexcept;

struct UnitCallbacks {
  /// Physically migrate the unit's tensors (true = host -> device).
  /// Must not call back into the engine or the scheduler.
  std::function<void(bool to_device)> move;
  /// Reserve the unit's bytes with the scheduler before a move-in; may
  /// throw OutOfMemory. Called without the engine mutex.
  std::function<void()> charge;
};

/// A residency unit detached from its engine (release_unit), ready to be
/// adopted by another engine on a different shard. Carries accounting only
/// — the tensors themselves travel via the owner's move callback before
/// release and fresh callbacks at adoption.
struct ExportedUnit {
  std::size_t bytes = 0;
  /// True if the unit held its scheduler charge at release time (it was
  /// OnDevice before release_unit swapped it out): the caller must
  /// release_persistent those bytes on the source shard. False means the
  /// unit had already been evicted and its charge credited back.
  bool was_resident = false;
};

struct OffloadStats {
  std::uint64_t swap_ins = 0;
  std::uint64_t swap_outs = 0;   ///< evictions (always via evict_idle)
  std::uint64_t prefetches = 0;  ///< async move-ins completed
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  double modeled_transfer_s = 0.0;  ///< priced with the TransferModel
};

class OffloadEngine {
 public:
  explicit OffloadEngine(gpusim::TransferModel transfer = {});

  /// Waits for every in-flight async move to settle.
  ~OffloadEngine();

  OffloadEngine(const OffloadEngine&) = delete;
  OffloadEngine& operator=(const OffloadEngine&) = delete;

  /// Register `id`'s persistent state (`bytes` = A + O). The unit starts
  /// OnDevice with its scheduler charge already taken (the session just
  /// called reserve_persistent during its handshake).
  void register_unit(int id, std::size_t bytes, UnitCallbacks callbacks);

  /// Remove the unit (client departure). Waits for any in-flight move.
  /// Returns true if the unit was resident — i.e. its scheduler charge is
  /// still held and the caller must release_persistent it.
  bool unregister_unit(int id);

  /// Mark the unit busy (nests). A busy unit is never evicted; waits for
  /// any in-flight move first. Call before asking the scheduler for the
  /// iteration's memory so eviction cannot race the computation.
  void begin_use(int id);

  /// Drop one nesting level of busy; at zero the unit becomes an eviction
  /// candidate again and its LRU stamp is refreshed.
  void end_use(int id);

  /// Block until the unit is OnDevice, charging + moving it in if needed.
  /// Throws OutOfMemory if the scheduler cannot cover the charge even
  /// after its own reclaim pass.
  void ensure_resident(int id);

  /// Asynchronous move-in hint (prefetch-on-grant): if the unit is OnHost,
  /// start the charge + move on the background task lane and return
  /// immediately. Failure to charge quietly leaves the unit OnHost — the
  /// caller's ensure_resident() will retry and surface the error.
  void prefetch(int id);

  /// Detach the unit for migration to another engine: wait for any
  /// in-flight move, swap the tensors out to host if resident (counted as
  /// a swap-out), and forget the unit. The unit must be idle (no busy
  /// pins). Returns the unit's accounting; if `was_resident` the caller
  /// still holds the scheduler charge and must release it on this shard.
  ExportedUnit release_unit(int id);

  /// Register a unit previously detached with release_unit on another
  /// engine. The unit's tensors must already live on the host; it starts
  /// OnHost with NO scheduler charge — the first ensure_resident() (or
  /// prefetch) charges the destination shard and moves it in, exactly like
  /// an evicted unit coming back.
  void adopt_unit(int id, const ExportedUnit& unit, UnitCallbacks callbacks);

  /// Evict least-recently-used idle resident units (skipping `except_id`)
  /// until at least `bytes_needed` of charged bytes are freed, moving
  /// their tensors out synchronously. Returns the bytes actually freed.
  /// Designed to run inside the scheduler's reclaim callback with the
  /// scheduler mutex held: it does NOT touch the scheduler; the caller
  /// credits the returned bytes itself.
  std::size_t evict_idle(std::size_t bytes_needed, int except_id = -1);

  bool resident(int id) const;
  Residency residency(int id) const;
  std::size_t resident_bytes() const;
  OffloadStats stats() const;

 private:
  struct Unit {
    std::size_t bytes = 0;
    UnitCallbacks callbacks;
    Residency state = Residency::OnDevice;
    int busy = 0;                ///< begin_use nesting depth
    std::uint64_t last_used = 0; ///< LRU stamp (engine-local clock)
  };

  /// Charge + move a unit previously marked MovingIn by the caller.
  /// Returns false if the charge failed (unit reverted to OnHost).
  bool complete_move_in(int id, bool is_prefetch);

  void wait_while_moving_locked(Unit& unit) MENOS_REQUIRES(mutex_);
  Unit& unit_locked(int id) MENOS_REQUIRES(mutex_);

  gpusim::TransferModel transfer_;

  mutable util::Mutex mutex_{"mem.offload", 40};
  util::CondVar state_cv_;  ///< signaled on every residency transition
  std::map<int, Unit> units_ MENOS_GUARDED_BY(mutex_);
  std::uint64_t clock_ MENOS_GUARDED_BY(mutex_) = 0;
  int inflight_ MENOS_GUARDED_BY(mutex_) = 0;  ///< async tasks outstanding
  OffloadStats stats_ MENOS_GUARDED_BY(mutex_);
};

}  // namespace menos::mem
