#include "nn/adapters.h"

namespace menos::nn {

const char* adapter_type_name(AdapterType type) noexcept {
  switch (type) {
    case AdapterType::None:   return "none";
    case AdapterType::Lora:   return "lora";
    case AdapterType::BitFit: return "bitfit";
    case AdapterType::Prefix: return "prefix";
  }
  return "?";
}

LoraLinear::LoraLinear(const std::string& name, tensor::Index in,
                       tensor::Index out, bool bias, int rank, float alpha,
                       ParameterSource& base_source, gpusim::Device& device,
                       util::Rng& adapter_rng)
    : Linear(name, in, out, bias, base_source, device),
      scale_(alpha / static_cast<float>(rank)) {
  MENOS_CHECK_MSG(rank > 0, "LoRA rank must be positive");
  a_ = tensor::Tensor::empty({in, rank}, device);
  adapter_rng.fill_normal(a_.data(), static_cast<std::size_t>(a_.numel()),
                          0.02f);
  a_.set_requires_grad(true);
  b_ = tensor::Tensor::zeros({rank, out}, device);
  b_.set_requires_grad(true);
  register_parameter(name + ".lora_a", a_);
  register_parameter(name + ".lora_b", b_);
}

tensor::Tensor LoraLinear::forward(const tensor::Tensor& x) {
  tensor::Tensor base = Linear::forward(x);
  tensor::Tensor low = tensor::matmul(x, a_);
  tensor::Tensor delta = tensor::matmul(low, b_);
  return tensor::add(base, tensor::scale(delta, scale_));
}

tensor::Tensor LoraLinear::merged_delta() const {
  tensor::NoGradGuard no_grad;
  return tensor::scale(tensor::matmul(a_, b_), scale_);
}

PrefixAdapter::PrefixAdapter(const std::string& name, int prefix_len,
                             tensor::Index dim, gpusim::Device& device,
                             util::Rng& adapter_rng)
    : prefix_len_(prefix_len) {
  MENOS_CHECK_MSG(prefix_len > 0, "prefix length must be positive");
  prefix_ = tensor::Tensor::empty({prefix_len, dim}, device);
  adapter_rng.fill_normal(prefix_.data(),
                          static_cast<std::size_t>(prefix_.numel()), 0.02f);
  prefix_.set_requires_grad(true);
  register_parameter(name + ".prefix", prefix_);
}

tensor::Tensor PrefixAdapter::forward(const tensor::Tensor& x) {
  MENOS_CHECK_MSG(x.ndim() == 3, "PrefixAdapter expects [B, T, C] input");
  // tensor::tile_batch is graph-replayable, so prefix-adapter sessions
  // capture like every other model (tensor/graph.h).
  tensor::Tensor tiled = tensor::tile_batch(prefix_, x.dim(0));
  return tensor::concat_dim1(tiled, x);
}

}  // namespace menos::nn
