// Figure 7: average schedule time under on-demand allocation vs the
// memory-preserving policy as clients scale.
//
// The second half extends the policy comparison to sched::Policy::SwapOnIdle
// (ISSUE 3) on the LIVE server: with a pool sized for exactly one client's
// persistent state, FcfsBackfill must reject a second client while
// SwapOnIdle admits it by evicting the idle one's adapter/optimizer unit to
// the host — swap traffic priced by the shared gpusim::TransferModel.
#include <vector>

#include "bench_common.h"
#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"

using namespace menos;

namespace {

void run_model(const sim::ModelSpec& spec, const std::vector<int>& clients,
               const char* paper_note) {
  std::printf("\n--- %s ---\n%s\n", spec.name.c_str(), paper_note);
  std::printf("%-8s  %-18s  %-18s\n", "clients", "preserving (s)",
              "on-demand (s)");
  for (int n : clients) {
    auto preserve = sim::run_split_finetune(bench::make_config(
        spec, core::ServingMode::MenosReleaseAfterBackward, n));
    auto ondemand = sim::run_split_finetune(
        bench::make_config(spec, core::ServingMode::MenosOnDemand, n));
    std::printf("%-8d  %-18s  %-18s\n", n,
                bench::cell(preserve, preserve.avg_schedule_s).c_str(),
                bench::cell(ondemand, ondemand.avg_schedule_s).c_str());
  }
}

// ----- live SwapOnIdle vs FcfsBackfill -----

nn::TransformerConfig swap_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

/// Rank-256 LoRA on a dim-32 model: persistent A + O dwarfs the transient
/// demand, so admission is decided by persistent state alone.
core::ClientOptions swap_client_options(std::uint64_t seed) {
  core::ClientOptions options;
  options.finetune.model = swap_model();
  options.finetune.adapter.rank = 256;
  options.finetune.batch_size = 1;
  options.finetune.seq_len = 4;
  options.finetune.adapter_seed = seed;
  return options;
}

struct PolicyOutcome {
  bool second_admitted = false;
  std::uint64_t reclaims = 0;
  std::uint64_t swap_outs = 0;
  std::uint64_t swap_ins = 0;
  double modeled_transfer_s = 0.0;
};

PolicyOutcome run_policy(sched::Policy policy, std::size_t reserve_bytes,
                         int steps) {
  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.sched_policy = policy;
  config.reserve_bytes = reserve_bytes;
  core::Server server(config, devices, swap_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  gpusim::DeviceManager client_devices(1, 256u << 20);

  const auto connect = [&](std::uint64_t seed) {
    auto c = std::make_unique<core::Client>(swap_client_options(seed),
                                            acceptor.connect(),
                                            client_devices.gpu(0));
    c->connect();
    return c;
  };

  PolicyOutcome out;
  auto a = connect(1);
  std::unique_ptr<core::Client> b;
  try {
    b = connect(2);
    out.second_admitted = true;
  } catch (const Error&) {
    out.second_admitted = false;
  }
  if (b != nullptr) {
    // Alternate training steps: every step swaps the idle client's unit
    // out and the active one's back in.
    data::CharTokenizer tok;
    data::DataLoader la(tok.encode(data::make_shakespeare_like(500, 3).text),
                        1, 4, 3);
    data::DataLoader lb(tok.encode(data::make_shakespeare_like(500, 3).text),
                        1, 4, 4);
    for (int i = 0; i < steps; ++i) {
      b->train_step(lb.next());
      a->train_step(la.next());
    }
    b->disconnect();
  }
  out.reclaims = server.scheduler().stats().reclaims;
  if (server.offload_engine() != nullptr) {
    const mem::OffloadStats s = server.offload_engine()->stats();
    out.swap_outs = s.swap_outs;
    out.swap_ins = s.swap_ins;
    out.modeled_transfer_s = s.modeled_transfer_s;
  }
  a->disconnect();
  server.stop();
  return out;
}

/// Returns false unless SwapOnIdle admits the client FcfsBackfill rejects.
bool live_swap_on_idle() {
  // Probe: one client's persistent reservation p and backward demand M_b.
  std::size_t avail0 = 0;
  std::size_t p = 0;
  std::size_t backward_bytes = 0;
  {
    gpusim::DeviceManager devices(1, 256u << 20);
    core::ServerConfig config;
    config.mode = core::ServingMode::MenosOnDemand;
    core::Server server(config, devices, swap_model());
    net::InprocAcceptor acceptor;
    server.start(acceptor);
    gpusim::DeviceManager client_devices(1, 256u << 20);
    avail0 = server.scheduler().total_available();
    auto c = std::make_unique<core::Client>(swap_client_options(1),
                                            acceptor.connect(),
                                            client_devices.gpu(0));
    c->connect();
    p = avail0 - server.scheduler().total_available();
    backward_bytes = c->server_backward_bytes();
    c->disconnect();
    server.stop();
  }
  // Pool sized for ONE persistent state plus one backward: the second
  // client can only be admitted by evicting the first.
  const std::size_t slack = 64u << 10;
  const std::size_t reserve = avail0 - (p + backward_bytes + slack);

  std::printf(
      "\n--- live server: admission under a pool of p + M_b (p = %zu B) "
      "---\n%-14s  %-10s  %-9s  %-10s  %-9s  %s\n",
      p, "policy", "2nd admit", "reclaims", "swap out/in", "transfer",
      "(modeled, shared TransferModel)");
  const PolicyOutcome fcfs =
      run_policy(sched::Policy::FcfsBackfill, reserve, 0);
  const PolicyOutcome swap =
      run_policy(sched::Policy::SwapOnIdle, reserve, 3);
  std::printf("%-14s  %-10s  %-9llu  %llu/%llu       %.4f s\n",
              "FcfsBackfill", fcfs.second_admitted ? "yes" : "rejected",
              static_cast<unsigned long long>(fcfs.reclaims),
              static_cast<unsigned long long>(fcfs.swap_outs),
              static_cast<unsigned long long>(fcfs.swap_ins),
              fcfs.modeled_transfer_s);
  std::printf("%-14s  %-10s  %-9llu  %llu/%llu       %.4f s\n",
              "SwapOnIdle", swap.second_admitted ? "yes" : "rejected",
              static_cast<unsigned long long>(swap.reclaims),
              static_cast<unsigned long long>(swap.swap_outs),
              static_cast<unsigned long long>(swap.swap_ins),
              swap.modeled_transfer_s);
  return !fcfs.second_admitted && swap.second_admitted &&
         swap.swap_outs >= 1 && swap.swap_ins >= 1;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 7 — schedule time: on-demand allocation vs memory preserving",
      "OPT: preserving <1 ms at 2-4 clients, 0.12 s at 8, 6.1 s at 16; "
      "on-demand 1.01 s at 16. Llama: preserving ~10 s at 4 clients; "
      "on-demand 0.38 s");
  run_model(sim::ModelSpec::opt_1_3b(), {2, 4, 8, 16},
            "(paper: preserving explodes at 16 clients)");
  run_model(sim::ModelSpec::llama2_7b(), {2, 3, 4},
            "(paper: preserving queues from 2 clients)");

  return live_swap_on_idle() ? 0 : 1;
}
