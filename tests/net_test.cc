// Wire format, protocol messages, in-proc and TCP transports, corruption
// handling.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/faulty.h"
#include "net/link.h"
#include "net/transport.h"
#include "net/wire.h"

namespace menos::net {
namespace {

TEST(Wire, PrimitivesRoundTrip) {
  Writer w;
  w.put_u8(7);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f32(3.25f);
  w.put_f64(-2.5);
  w.put_string("menos");
  const auto bytes = w.bytes();
  Reader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_FLOAT_EQ(r.get_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.get_f64(), -2.5);
  EXPECT_EQ(r.get_string(), "menos");
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, ArraysRoundTrip) {
  Writer w;
  const std::vector<float> f{1.5f, -2.5f, 3.0f};
  const std::vector<std::int32_t> i{-1, 0, 7};
  w.put_f32_array(f.data(), f.size());
  w.put_i32_array(i.data(), i.size());
  const auto bytes = w.bytes();
  Reader r(bytes.data(), bytes.size());
  EXPECT_EQ(r.get_f32_array(), f);
  EXPECT_EQ(r.get_i32_array(), i);
}

TEST(Wire, OverrunThrows) {
  Writer w;
  w.put_u32(1);
  const auto bytes = w.bytes();
  Reader r(bytes.data(), bytes.size());
  r.get_u32();
  EXPECT_THROW(r.get_u8(), ProtocolError);
}

FinetuneConfig sample_config() {
  FinetuneConfig c;
  c.client_name = "alice";
  c.model = nn::TransformerConfig::tiny_llama();
  c.split.front_blocks = 2;
  c.split.back_blocks = 1;
  c.adapter.type = nn::AdapterType::Lora;
  c.adapter.rank = 4;
  c.adapter.alpha = 8.0f;
  c.adapter.target_q = true;
  c.adapter.target_v = false;
  c.optimizer = optim::OptimizerKind::AdamW;
  c.lr = 3e-4f;
  c.batch_size = 8;
  c.seq_len = 64;
  c.adapter_seed = 99;
  return c;
}

TEST(Message, HelloRoundTrip) {
  Message m = Message::hello(sample_config());
  auto payload = encode_message(m);
  Message d = decode_message(payload.data(), payload.size());
  EXPECT_EQ(d.type, MessageType::Hello);
  EXPECT_EQ(d.config.client_name, "alice");
  EXPECT_EQ(d.config.model.family, nn::ModelFamily::Llama);
  EXPECT_EQ(d.config.model.dim, 64);
  EXPECT_EQ(d.config.split.front_blocks, 2);
  EXPECT_EQ(d.config.split.back_blocks, 1);
  EXPECT_EQ(d.config.adapter.rank, 4);
  EXPECT_FALSE(d.config.adapter.target_v);
  EXPECT_EQ(d.config.optimizer, optim::OptimizerKind::AdamW);
  EXPECT_FLOAT_EQ(d.config.lr, 3e-4f);
  EXPECT_EQ(d.config.batch_size, 8);
  EXPECT_EQ(d.config.adapter_seed, 99u);
}

TEST(Message, ClientProfileRidesHello) {
  FinetuneConfig c = sample_config();
  c.profile.compute_scale = 4.0;
  c.profile.cut_depth = 2;  // matches split.front_blocks above
  c.profile.frozen_client_half = true;
  c.profile.codec = ActivationCodec::Int8;
  c.profile.uplink_bytes_per_s = 1.5e6;
  c.profile.downlink_bytes_per_s = 12e6;
  c.profile.link_latency_s = 0.03;
  Message m = Message::hello(c);
  auto payload = encode_message(m);
  Message d = decode_message(payload.data(), payload.size());
  EXPECT_FALSE(d.config.profile.is_default());
  EXPECT_DOUBLE_EQ(d.config.profile.compute_scale, 4.0);
  EXPECT_EQ(d.config.profile.cut_depth, 2);
  EXPECT_TRUE(d.config.profile.frozen_client_half);
  EXPECT_EQ(d.config.profile.codec, ActivationCodec::Int8);
  EXPECT_DOUBLE_EQ(d.config.profile.uplink_bytes_per_s, 1.5e6);
  EXPECT_DOUBLE_EQ(d.config.profile.downlink_bytes_per_s, 12e6);
  EXPECT_DOUBLE_EQ(d.config.profile.link_latency_s, 0.03);

  // A default profile stays default through the wire (the homogeneous
  // protocol is unchanged).
  Message plain = Message::hello(sample_config());
  auto p2 = encode_message(plain);
  EXPECT_TRUE(decode_message(p2.data(), p2.size()).config.profile.is_default());
}

TEST(Message, TensorMessagesRoundTrip) {
  WireTensor t;
  t.shape = {2, 3};
  t.data = {1, 2, 3, 4, 5, 6};
  Message m = Message::forward(t, 17);
  m.compute_seconds = 1.5;
  m.schedule_wait_seconds = 0.25;
  m.eval_only = true;
  auto payload = encode_message(m);
  Message d = decode_message(payload.data(), payload.size());
  EXPECT_EQ(d.type, MessageType::Forward);
  EXPECT_EQ(d.iteration, 17u);
  EXPECT_EQ(d.tensor.shape, t.shape);
  EXPECT_EQ(d.tensor.data, t.data);
  EXPECT_DOUBLE_EQ(d.compute_seconds, 1.5);
  EXPECT_TRUE(d.eval_only);
}

TEST(Message, AllTypesEncodeDecode) {
  WireTensor t;
  t.shape = {1};
  t.data = {1.0f};
  const std::vector<Message> messages = {
      Message::hello(sample_config()), Message::hello_ack(100, 200),
      Message::forward(t, 1),          Message::forward_result(t, 1),
      Message::backward(t, 2),         Message::backward_result(t, 2),
      Message::bye(),                  Message::error("nope"),
      Message::heartbeat(),            Message::heartbeat_ack(),
      Message::resume_session(77),     Message::resume_ack(77, 5)};
  for (const Message& m : messages) {
    auto payload = encode_message(m);
    Message d = decode_message(payload.data(), payload.size());
    EXPECT_EQ(d.type, m.type);
  }
}

TEST(Message, FaultToleranceFieldsRoundTrip) {
  {
    // HelloAck now carries the session identity and lease.
    auto payload =
        encode_message(Message::hello_ack(100, 200, 0xdeadbeefULL, 2.5));
    const Message d = decode_message(payload.data(), payload.size());
    EXPECT_EQ(d.forward_bytes, 100u);
    EXPECT_EQ(d.backward_bytes, 200u);
    EXPECT_EQ(d.session_token, 0xdeadbeefULL);
    EXPECT_DOUBLE_EQ(d.lease_seconds, 2.5);
  }
  {
    auto payload = encode_message(Message::resume_session(0x1234ULL));
    const Message d = decode_message(payload.data(), payload.size());
    EXPECT_EQ(d.session_token, 0x1234ULL);
  }
  {
    auto payload = encode_message(Message::resume_ack(0x1234ULL, 9));
    const Message d = decode_message(payload.data(), payload.size());
    EXPECT_EQ(d.session_token, 0x1234ULL);
    EXPECT_EQ(d.iteration, 9u);
  }
}

TEST(Message, MalformedPayloadsThrow) {
  // Unknown type byte.
  std::vector<std::uint8_t> bad{99};
  EXPECT_THROW(decode_message(bad.data(), bad.size()), ProtocolError);
  // Trailing garbage.
  auto payload = encode_message(Message::bye());
  payload.push_back(0);
  EXPECT_THROW(decode_message(payload.data(), payload.size()), ProtocolError);
  // Tensor data/shape mismatch.
  WireTensor t;
  t.shape = {4};
  t.data = {1.0f};  // too short
  auto enc = encode_message(Message::forward(t, 0));
  EXPECT_THROW(decode_message(enc.data(), enc.size()), ProtocolError);
}

TEST(Frame, RoundTripAndCrc) {
  Message m = Message::error("check me");
  auto frame = frame_message(m);
  Message d = parse_frame(frame.data(), frame.size());
  EXPECT_EQ(d.text, "check me");

  // Flip one payload bit: CRC must catch it.
  auto corrupted = frame;
  corrupted[kFrameHeaderBytes + 2] ^= 0x40;
  EXPECT_THROW(parse_frame(corrupted.data(), corrupted.size()), ProtocolError);

  // Bad magic.
  auto badmagic = frame;
  badmagic[0] ^= 0xff;
  EXPECT_THROW(parse_frame(badmagic.data(), badmagic.size()), ProtocolError);

  // Truncation.
  EXPECT_THROW(parse_frame(frame.data(), frame.size() - 1), ProtocolError);
}

std::vector<FaultInjector::Action> drive_injector(const FaultPlan& plan,
                                                  int frames) {
  FaultInjector injector(plan);
  std::vector<FaultInjector::Action> actions;
  for (int i = 0; i < frames; ++i) {
    actions.push_back(injector.next_send_action());
    actions.push_back(injector.next_receive_action());
  }
  return actions;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_send_prob = 0.2;
  plan.drop_receive_prob = 0.2;
  plan.corrupt_receive_prob = 0.1;
  const auto a = drive_injector(plan, 200);
  const auto b = drive_injector(plan, 200);
  EXPECT_EQ(a, b);
  // And the schedule is not degenerate.
  int faults = 0;
  for (auto action : a) {
    if (action != FaultInjector::Action::None) ++faults;
  }
  EXPECT_GT(faults, 0);
}

TEST(FaultInjector, DisablingOneClassDoesNotShiftAnother) {
  // One uniform draw per frame against cumulative thresholds: zeroing the
  // send-drop class must not move *which frames* the corruption class hits
  // (only reclassify the frames that used to be send-drops).
  FaultPlan both;
  both.seed = 7;
  both.drop_send_prob = 0.15;
  both.corrupt_receive_prob = 0.15;
  FaultPlan corrupt_only = both;
  corrupt_only.drop_send_prob = 0.0;

  FaultInjector a(both);
  FaultInjector b(corrupt_only);
  for (int i = 0; i < 300; ++i) {
    a.next_send_action();
    b.next_send_action();
    const auto ra = a.next_receive_action();
    const auto rb = b.next_receive_action();
    EXPECT_EQ(ra, rb) << "receive schedule shifted at frame " << i;
  }
}

TEST(FaultInjector, MaxFaultsCapsInjection) {
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_receive_prob = 0.5;
  plan.max_faults = 2;
  FaultInjector injector(plan);
  for (int i = 0; i < 200; ++i) injector.next_receive_action();
  EXPECT_EQ(injector.stats().faults(), 2u);
}

TEST(FaultyConnection, KilledSendClosesLink) {
  FaultPlan plan;
  plan.seed = 1;
  plan.drop_send_prob = 1.0;  // first frame dies
  auto injector = std::make_shared<FaultInjector>(plan);
  auto [a, b] = make_inproc_pair();
  auto faulty = decorate_with_faults(std::move(a), injector);
  EXPECT_FALSE(faulty->send(Message::heartbeat()));
  EXPECT_FALSE(b->receive().has_value());  // peer sees an orderly close
  EXPECT_EQ(injector->stats().sends_dropped, 1u);
}

TEST(FaultyConnection, CorruptReceiveThrowsProtocolError) {
  FaultPlan plan;
  plan.seed = 1;
  plan.corrupt_receive_prob = 1.0;
  auto injector = std::make_shared<FaultInjector>(plan);
  auto [a, b] = make_inproc_pair();
  auto faulty = decorate_with_faults(std::move(a), injector);
  ASSERT_TRUE(b->send(Message::heartbeat()));
  EXPECT_THROW(faulty->receive(), ProtocolError);
  EXPECT_EQ(injector->stats().receives_corrupted, 1u);
}

TEST(Inproc, DuplexDelivery) {
  auto [a, b] = make_inproc_pair();
  EXPECT_TRUE(a->send(Message::error("to-b")));
  EXPECT_TRUE(b->send(Message::error("to-a")));
  EXPECT_EQ(b->receive()->text, "to-b");
  EXPECT_EQ(a->receive()->text, "to-a");
  EXPECT_GT(a->bytes_sent(), 0u);
}

TEST(Inproc, CloseUnblocksReceiver) {
  auto [a, b] = make_inproc_pair();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->close();
  });
  EXPECT_FALSE(b->receive().has_value());
  closer.join();
  EXPECT_FALSE(a->send(Message::bye()));
}

TEST(Inproc, ReceiveTimeoutElapsesWithoutClosingTheLink) {
  auto [a, b] = make_inproc_pair();
  b->set_receive_timeout(0.05);

  // Silence: receive() must give up after ~the timeout instead of blocking
  // forever (the client maps this to "link lost" and redials)...
  const auto before = std::chrono::steady_clock::now();
  EXPECT_FALSE(b->receive().has_value());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - before)
          .count();
  EXPECT_GE(waited, 0.04);

  // ...but the link itself stays healthy: traffic after a timeout flows.
  EXPECT_TRUE(a->send(Message::error("late")));
  ASSERT_TRUE(b->receive().has_value());

  // A frame already queued is returned immediately, timeout armed or not.
  EXPECT_TRUE(a->send(Message::bye()));
  EXPECT_EQ(b->receive()->type, MessageType::Bye);

  // 0 restores block-forever semantics (close() must unblock again).
  b->set_receive_timeout(0.0);
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->close();
  });
  EXPECT_FALSE(b->receive().has_value());
  closer.join();
}

TEST(Inproc, ConditionerAccountsBytesWithoutSleeping) {
  NetworkConditioner cond;
  cond.latency_s = 10.0;  // would be a 10s sleep if time_scale were 1
  cond.bandwidth_bytes_per_s = 1.0;
  cond.time_scale = 0.0;
  auto [a, b] = make_inproc_pair(cond);
  a->send(Message::bye());
  EXPECT_TRUE(b->receive().has_value());
  EXPECT_NEAR(cond.transfer_seconds(100), 110.0, 1e-9);
}

TEST(InprocAcceptor, ConnectAcceptPairs) {
  InprocAcceptor acceptor;
  auto client = acceptor.connect();
  auto server = acceptor.accept();
  ASSERT_NE(server, nullptr);
  client->send(Message::error("hi"));
  EXPECT_EQ(server->receive()->text, "hi");
  acceptor.close();
  EXPECT_EQ(acceptor.accept(), nullptr);
}

/// Drives one conditioned inproc connection with concurrent traffic in both
/// directions and returns the per-direction delay logs. Frame sizes vary so
/// the byte-dependent base delays vary too.
std::pair<std::vector<double>, std::vector<double>> conditioned_exchange(
    std::uint64_t seed) {
  LinkProfile profile;
  profile.up.latency_s = 0.002;               // thin, slow uplink...
  profile.up.bandwidth_bytes_per_s = 2e6;
  profile.up.time_scale = 0.0;                // log only, never sleep
  profile.down.latency_s = 0.0005;            // ...fat, quick downlink
  profile.down.bandwidth_bytes_per_s = 50e6;
  profile.down.time_scale = 0.0;
  profile.jitter_s = 0.01;
  profile.seed = seed;

  InprocAcceptor acceptor;
  std::shared_ptr<LinkConditioner> conditioner;
  auto client = acceptor.connect(profile, &conditioner);
  auto server = acceptor.accept();
  constexpr int kFrames = 40;

  // Both endpoints send concurrently: per-direction draws must come out
  // identical run-to-run no matter how the two threads interleave.
  std::thread server_side([&server] {
    for (int i = 0; i < kFrames; ++i) {
      WireTensor t;
      t.shape = {i % 5 + 1};
      t.data.assign(static_cast<std::size_t>(i % 5 + 1), 1.0f);
      server->send(Message::forward_result(t, static_cast<std::uint64_t>(i)));
    }
    for (int i = 0; i < kFrames; ++i) server->receive();
  });
  for (int i = 0; i < kFrames; ++i) {
    WireTensor t;
    t.shape = {(i * 7) % 9 + 1};
    t.data.assign(static_cast<std::size_t>((i * 7) % 9 + 1), 2.0f);
    client->send(Message::forward(t, static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < kFrames; ++i) client->receive();
  server_side.join();
  return {conditioner->delays(LinkDir::Up), conditioner->delays(LinkDir::Down)};
}

TEST(Link, AsymmetricConditionerIsDeterministicUnderConcurrency) {
  // The S2 regression surface: same seed => the same per-frame delay
  // sequence in each direction, exactly, across runs with live concurrency
  // between the two endpoints.
  const auto [up_a, down_a] = conditioned_exchange(42);
  const auto [up_b, down_b] = conditioned_exchange(42);
  EXPECT_EQ(up_a, up_b);
  EXPECT_EQ(down_a, down_b);
  ASSERT_EQ(up_a.size(), 40u);
  ASSERT_EQ(down_a.size(), 40u);

  // The directions draw from independent forked streams (asymmetry is
  // real, not a shared log), and the seed actually reaches the draws.
  EXPECT_NE(up_a, down_a);
  const auto [up_c, down_c] = conditioned_exchange(7);
  EXPECT_NE(up_a, up_c);
  EXPECT_NE(down_a, down_c);
}

TEST(Link, PerConnectionLinksAreIndependent) {
  // Two sessions on one acceptor get their OWN conditioners: traffic on one
  // link must not advance the other's jitter stream.
  LinkProfile profile;
  profile.up.time_scale = 0.0;
  profile.down.time_scale = 0.0;
  profile.jitter_s = 0.01;
  profile.seed = 5;

  InprocAcceptor acceptor;
  std::shared_ptr<LinkConditioner> link_a;
  std::shared_ptr<LinkConditioner> link_b;
  auto client_a = acceptor.connect(profile, &link_a);
  auto server_a = acceptor.accept();
  auto client_b = acceptor.connect(profile, &link_b);
  auto server_b = acceptor.accept();
  ASSERT_NE(link_a, link_b);

  // Interleave: a's stream sees only a's frames.
  client_a->send(Message::heartbeat());
  client_b->send(Message::heartbeat());
  client_a->send(Message::heartbeat());
  server_a->receive();
  server_b->receive();
  server_a->receive();
  EXPECT_EQ(link_a->delays(LinkDir::Up).size(), 2u);
  EXPECT_EQ(link_b->delays(LinkDir::Up).size(), 1u);
  // Same seed, same frame sizes: the first draw of each link matches.
  EXPECT_EQ(link_a->delays(LinkDir::Up)[0], link_b->delays(LinkDir::Up)[0]);
}

TEST(Tcp, EndToEndMessages) {
  auto listener = tcp_listen(0);
  ASSERT_NE(listener, nullptr);
  const int port = listener->port();
  std::unique_ptr<Connection> server_side;
  std::thread accepter([&] { server_side = listener->accept(); });
  auto client = tcp_connect("127.0.0.1", port);
  ASSERT_NE(client, nullptr);
  accepter.join();
  ASSERT_NE(server_side, nullptr);

  WireTensor t;
  t.shape = {2, 2};
  t.data = {1, 2, 3, 4};
  EXPECT_TRUE(client->send(Message::forward(t, 5)));
  auto got = server_side->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tensor.data, t.data);

  EXPECT_TRUE(server_side->send(Message::hello_ack(11, 22)));
  auto ack = client->receive();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->forward_bytes, 11u);

  client->close();
  EXPECT_FALSE(server_side->receive().has_value());
  listener->close();
}

TEST(Tcp, LargeTensorSurvives) {
  auto listener = tcp_listen(0);
  auto client_fut = std::thread([port = listener->port()] {
    auto client = tcp_connect("127.0.0.1", port);
    ASSERT_NE(client, nullptr);
    WireTensor t;
    t.shape = {512, 128};
    t.data.assign(512 * 128, 1.25f);
    EXPECT_TRUE(client->send(Message::forward(std::move(t), 0)));
    auto echo = client->receive();
    ASSERT_TRUE(echo.has_value());
    EXPECT_EQ(echo->tensor.data.size(), 512u * 128u);
    client->close();
  });
  auto server_side = listener->accept();
  ASSERT_NE(server_side, nullptr);
  auto msg = server_side->receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tensor.data[1000], 1.25f);
  server_side->send(Message::forward_result(msg->tensor, 0));
  client_fut.join();
  server_side->close();
  listener->close();
}

TEST(Tcp, ConnectRefusedReturnsNull) {
  // Port 1 is never listening in the test environment.
  EXPECT_EQ(tcp_connect("127.0.0.1", 1), nullptr);
}

}  // namespace
}  // namespace menos::net
