// Parameter-efficient fine-tuning adapters (§2.1 of the paper).
//
// Three families are implemented:
//  * LoRA  — low-rank matrices injected into target projections (q/v by
//            default, matching the paper's PEFT-derived configuration).
//  * BitFit — bias-only tuning (handled inside Linear via trainable_bias).
//  * Prefix — learnable prefix tokens prepended to the sequence on the
//            client's input section.
//
// Adapters are the ONLY trainable parameters; base weights obtained from a
// ParameterSource are always frozen. That invariant is what makes the
// base-model sharing of §3.1 safe, and tests/nn_test.cc asserts it.
#pragma once

#include <string>

#include "nn/layers.h"

namespace menos::nn {

enum class AdapterType { None, Lora, BitFit, Prefix };

const char* adapter_type_name(AdapterType type) noexcept;

/// Client-chosen fine-tuning configuration. Clients may differ (§3.1:
/// "clients may choose different fine-tuning methods like LoRA or prefix
/// tuning based on their needs").
struct AdapterSpec {
  AdapterType type = AdapterType::Lora;
  int rank = 8;          ///< LoRA rank r
  float alpha = 16.0f;   ///< LoRA scaling numerator
  bool target_q = true;  ///< inject into query projection
  bool target_v = true;  ///< inject into value projection
  /// Also inject LoRA into the client-side LM head. PEFT configurations
  /// commonly extend the target modules beyond q/v; the head lives on the
  /// client, so this costs the server nothing.
  bool target_lm_head = false;
  int prefix_len = 8;    ///< Prefix: number of virtual tokens

  float lora_scale() const { return alpha / static_cast<float>(rank); }
};

/// A Linear with a parallel low-rank path: y = xW + s * (xA)B.
/// A ~ N(0, 0.02), B = 0, so fine-tuning starts from the base model's
/// function exactly (the LoRA paper's initialization).
class LoraLinear final : public Linear {
 public:
  LoraLinear(const std::string& name, tensor::Index in, tensor::Index out,
             bool bias, int rank, float alpha, ParameterSource& base_source,
             gpusim::Device& device, util::Rng& adapter_rng);

  tensor::Tensor forward(const tensor::Tensor& x) override;

  /// Fold s*AB into a dense [in, out] delta (for merge-equivalence tests
  /// and for exporting a merged model).
  tensor::Tensor merged_delta() const;

  const tensor::Tensor& lora_a() const noexcept { return a_; }
  const tensor::Tensor& lora_b() const noexcept { return b_; }

 private:
  tensor::Tensor a_;  // [in, r], trainable
  tensor::Tensor b_;  // [r, out], trainable
  float scale_;
};

/// Learnable prefix tokens. forward() prepends `prefix_len` learned
/// embeddings to a [B, T, C] activation, yielding [B, P+T, C]; the output
/// section strips them again before the LM head.
class PrefixAdapter final : public Module {
 public:
  PrefixAdapter(const std::string& name, int prefix_len, tensor::Index dim,
                gpusim::Device& device, util::Rng& adapter_rng);

  tensor::Tensor forward(const tensor::Tensor& x);

  int prefix_len() const noexcept { return prefix_len_; }

 private:
  int prefix_len_;
  tensor::Tensor prefix_;  // [P, C], trainable
};

}  // namespace menos::nn
