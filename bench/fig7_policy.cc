// Figure 7: average schedule time under on-demand allocation vs the
// memory-preserving policy as clients scale.
#include "bench_common.h"

using namespace menos;

namespace {

void run_model(const sim::ModelSpec& spec, const std::vector<int>& clients,
               const char* paper_note) {
  std::printf("\n--- %s ---\n%s\n", spec.name.c_str(), paper_note);
  std::printf("%-8s  %-18s  %-18s\n", "clients", "preserving (s)",
              "on-demand (s)");
  for (int n : clients) {
    auto preserve = sim::run_split_finetune(bench::make_config(
        spec, core::ServingMode::MenosReleaseAfterBackward, n));
    auto ondemand = sim::run_split_finetune(
        bench::make_config(spec, core::ServingMode::MenosOnDemand, n));
    std::printf("%-8d  %-18s  %-18s\n", n,
                bench::cell(preserve, preserve.avg_schedule_s).c_str(),
                bench::cell(ondemand, ondemand.avg_schedule_s).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 7 — schedule time: on-demand allocation vs memory preserving",
      "OPT: preserving <1 ms at 2-4 clients, 0.12 s at 8, 6.1 s at 16; "
      "on-demand 1.01 s at 16. Llama: preserving ~10 s at 4 clients; "
      "on-demand 0.38 s");
  run_model(sim::ModelSpec::opt_1_3b(), {2, 4, 8, 16},
            "(paper: preserving explodes at 16 clients)");
  run_model(sim::ModelSpec::llama2_7b(), {2, 3, 4},
            "(paper: preserving queues from 2 clients)");
  return 0;
}
