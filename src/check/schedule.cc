#include "check/schedule.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace menos::check {
namespace {

std::atomic<SchedulerHook*> g_hook{nullptr};

/// splitmix64 step: advances `state` and returns a well-mixed 64-bit
/// value. Deterministic — the whole exploration harness derives from it.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless hash of (seed, id) — the PCT base priority.
std::uint64_t mix(std::uint64_t seed, std::uint64_t id) {
  std::uint64_t state = seed ^ (id * 0xd6e8feb86659fd93ULL);
  return splitmix64(state);
}

}  // namespace

void set_scheduler_hook(SchedulerHook* hook) noexcept {
  g_hook.store(hook, std::memory_order_release);
}

SchedulerHook* scheduler_hook() noexcept {
  return g_hook.load(std::memory_order_acquire);
}

std::size_t RandomWalkSchedule::pick(const std::uint64_t* ids,
                                     std::size_t n) {
  (void)ids;
  if (n <= 1) return 0;
  return static_cast<std::size_t>(splitmix64(state_) % n);
}

PctSchedule::PctSchedule(std::uint64_t seed, int depth) : seed_(seed) {
  std::uint64_t state = seed ^ 0xa0761d6478bd642fULL;
  for (int i = 0; i < depth; ++i) {
    change_points_.push_back(1 + splitmix64(state) % kHorizon);
  }
  std::sort(change_points_.begin(), change_points_.end(),
            std::greater<std::uint64_t>());
}

std::size_t PctSchedule::pick(const std::uint64_t* ids, std::size_t n) {
  ++step_;

  // Effective priority: every demoted id ranks below every base priority;
  // among demoted ids, the earliest demotion ranks lowest.
  auto priority = [&](std::uint64_t id) -> std::pair<std::uint64_t, std::uint64_t> {
    auto it = demoted_.find(id);
    if (it != demoted_.end()) return {0, it->second};
    return {1, mix(seed_, id)};
  };
  auto argmax = [&] {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (priority(ids[i]) > priority(ids[best])) best = i;
    }
    return best;
  };

  // Priority change point: demote the current front-runner so a different
  // task overtakes it mid-scenario (the "d-1 changes" of PCT).
  if (!change_points_.empty() && step_ >= change_points_.back()) {
    change_points_.pop_back();
    demoted_.emplace(ids[argmax()], next_demotion_tier_++);
  }

  return argmax();
}

ExploreResult explore(const std::function<void()>& scenario,
                      const ExploreOptions& options) {
  int seeds = options.seeds;
  if (const char* env = std::getenv("MENOS_CHECK_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) seeds = static_cast<int>(parsed);
  }

  ExploreResult result;
  const char* modes[] = {"random-walk", "pct"};
  for (const char* mode : modes) {
    for (int i = 0; i < seeds; ++i) {
      const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(i);
      const std::string what =
          replay(scenario, seed, mode, options.pct_depth);
      ++result.schedules;
      if (what.empty()) continue;
      result.ok = false;
      result.failing_seed = seed;
      result.failing_mode = mode;
      result.what = what;
      // One grep-able line: paste the seed/mode into check::replay (or
      // MENOS_CHECK_SEEDS + base_seed) to reproduce locally.
      std::fprintf(  // NOLINT(iostream-side-channel)
          stderr,
          "menos::check explore FAILED: mode=%s seed=%llu pct_depth=%d "
          "after %d schedules: %s\n",
          mode, static_cast<unsigned long long>(seed), options.pct_depth,
          result.schedules, what.c_str());
      std::fflush(stderr);
      return result;
    }
  }
  return result;
}

std::string replay(const std::function<void()>& scenario, std::uint64_t seed,
                   const std::string& mode, int pct_depth) {
  RandomWalkSchedule walk(seed);
  PctSchedule pct(seed, pct_depth);
  SchedulerHook* hook = mode == "pct" ? static_cast<SchedulerHook*>(&pct)
                                      : static_cast<SchedulerHook*>(&walk);
  ScopedSchedulerHook install(hook);
  try {
    scenario();
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-std exception";
  }
  return "";
}

}  // namespace menos::check
