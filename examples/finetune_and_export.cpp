// Fine-tune, export the adapter, reload it elsewhere, and generate text.
//
// This is the full product loop of split fine-tuning: the client never
// sees the server's base parameters, fine-tunes its adapter over the
// private corpus, exports ONLY the adapter (a few KB), and any client with
// the same base model + adapter file reproduces the fine-tuned behaviour.
#include <cstdio>

#include "core/checkpoint.h"
#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "util/bytes.h"

using namespace menos;

namespace {

core::ClientOptions make_options(const nn::TransformerConfig& model,
                                 std::uint64_t adapter_seed) {
  core::ClientOptions options;
  options.finetune.client_name = "exporter";
  options.finetune.model = model;
  options.finetune.adapter.rank = 8;
  options.finetune.adapter.alpha = 16.0f;
  options.finetune.adapter.target_lm_head = true;
  options.finetune.batch_size = 4;
  options.finetune.seq_len = 24;
  options.finetune.lr = 1e-2f;
  options.finetune.adapter_seed = adapter_seed;
  options.base_seed = 42;
  return options;
}

}  // namespace

int main() {
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  gpusim::DeviceManager devices(1, 1u << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  data::CharTokenizer tokenizer;
  data::Corpus corpus = data::make_shakespeare_like(8000, 21);
  data::DataLoader loader(tokenizer.encode(corpus.text), 4, 24, 5);
  data::Batch eval_batch = loader.next();

  gpusim::DeviceManager client_devices(1, 1u << 30);
  std::vector<std::uint8_t> adapter_blob;
  double trained_eval = 0.0;
  {
    core::Client client(make_options(model, /*adapter_seed=*/7),
                        acceptor.connect(), client_devices.gpu(0));
    client.connect();
    std::printf("before fine-tuning: eval loss %.4f\n",
                client.evaluate(eval_batch));
    for (int step = 0; step < 60; ++step) client.train_step(loader.next());
    trained_eval = client.evaluate(eval_batch);
    std::printf("after 60 steps:     eval loss %.4f\n", trained_eval);

    adapter_blob = client.export_adapter();
    std::printf("exported adapter: %s (the base model stays with its owner)\n",
                util::format_bytes(adapter_blob.size()).c_str());

    // Generate a sample through the split stack.
    const std::string seed_text = "the king";
    auto ids = client.generate(tokenizer.encode(seed_text), 48);
    std::printf("sample: \"%s\"\n", tokenizer.decode(ids).c_str());
    client.disconnect();
  }

  // A fresh client (same base + adapter structure) imports the blob and
  // immediately reproduces the fine-tuned model.
  {
    core::Client fresh(make_options(model, /*adapter_seed=*/7),
                       acceptor.connect(), client_devices.gpu(0));
    fresh.connect();
    std::printf("\nfresh client before import: eval loss %.4f\n",
                fresh.evaluate(eval_batch));
    const std::size_t loaded =
        fresh.import_adapter(adapter_blob.data(), adapter_blob.size());
    std::printf("imported %zu adapter tensors\n", loaded);
    const double imported_eval = fresh.evaluate(eval_batch);
    std::printf("fresh client after import:  eval loss %.4f "
                "(trained client had %.4f)\n",
                imported_eval, trained_eval);
    fresh.disconnect();
  }

  server.stop();
  return 0;
}
