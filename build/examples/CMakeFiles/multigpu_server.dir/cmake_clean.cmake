file(REMOVE_RECURSE
  "CMakeFiles/multigpu_server.dir/multigpu_server.cpp.o"
  "CMakeFiles/multigpu_server.dir/multigpu_server.cpp.o.d"
  "multigpu_server"
  "multigpu_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigpu_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
