file(REMOVE_RECURSE
  "libmenos_optim.a"
)
