// Module tree and parameter sourcing.
//
// The pivotal abstraction for Menos §3.1 is ParameterSource: a module never
// allocates its base parameters directly, it asks a source. FreshInit
// creates and initializes new tensors (used when loading the one shared
// copy, or when building a standalone local model). SharedSource hands out
// tensors that already live in a ParameterStore — so a per-client model
// *structure* is built over the single shared copy of the *parameters*,
// exactly the "skip the reading step" interception the paper describes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace menos::nn {

/// A named tensor inside a module tree. Trainability is carried by the
/// tensor's requires_grad flag.
struct Parameter {
  std::string name;
  tensor::Tensor value;

  bool trainable() const { return value.requires_grad(); }
};

/// Where modules obtain their base parameters.
class ParameterSource {
 public:
  virtual ~ParameterSource() = default;

  /// Return the parameter `name` with the given shape on `device`.
  /// `init_std` guides initialization when the source creates tensors
  /// (<= 0 means "fill with ones", used by norm gains; exactly 0 bias
  /// tensors pass 0 and get zeros — see FreshInit).
  virtual tensor::Tensor get(const std::string& name, tensor::Shape shape,
                             gpusim::Device& device, float init_std) = 0;
};

/// Creates parameters on first request. Initialization is derived from
/// hash(name) ^ seed so that two models built from equal seeds have
/// identical parameters regardless of construction order — the property the
/// split-vs-local equivalence tests rely on.
class FreshInit final : public ParameterSource {
 public:
  explicit FreshInit(std::uint64_t seed) : seed_(seed) {}

  tensor::Tensor get(const std::string& name, tensor::Shape shape,
                     gpusim::Device& device, float init_std) override;

 private:
  std::uint64_t seed_;
};

/// Hands out pre-loaded tensors by name; throws menos::StateError if a name
/// is missing (the structure asked for a parameter the store never loaded).
class SharedSource final : public ParameterSource {
 public:
  explicit SharedSource(
      const std::unordered_map<std::string, tensor::Tensor>* table)
      : table_(table) {}

  tensor::Tensor get(const std::string& name, tensor::Shape shape,
                     gpusim::Device& device, float init_std) override;

 private:
  const std::unordered_map<std::string, tensor::Tensor>* table_;
};

/// Base class for everything with parameters. Children register themselves
/// and their own parameters; collection walks the tree.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters in the subtree (base + adapters).
  std::vector<Parameter> parameters() const;

  /// Only the trainable ones (== the adapter parameters phi of Eq. 1).
  std::vector<Parameter> trainable_parameters() const;

  /// Byte footprints, split the way the paper's §2.3 accounting splits them.
  std::size_t parameter_bytes() const;           ///< M + A
  std::size_t trainable_parameter_bytes() const; ///< A
  std::size_t frozen_parameter_bytes() const;    ///< M

 protected:
  /// Register a directly-owned parameter under its fully qualified name —
  /// constructors receive their absolute prefix ("block3.attn.q"), so the
  /// registered name is already canonical and doubles as the
  /// ParameterSource lookup key.
  void register_parameter(std::string name, tensor::Tensor value);

  /// Register a child module; collection recurses into it.
  void register_child(std::string name, Module* child);

 private:
  void collect(std::vector<Parameter>& out) const;

  std::vector<Parameter> own_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace menos::nn
