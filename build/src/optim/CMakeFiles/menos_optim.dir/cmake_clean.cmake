file(REMOVE_RECURSE
  "CMakeFiles/menos_optim.dir/lr_schedule.cc.o"
  "CMakeFiles/menos_optim.dir/lr_schedule.cc.o.d"
  "CMakeFiles/menos_optim.dir/optimizer.cc.o"
  "CMakeFiles/menos_optim.dir/optimizer.cc.o.d"
  "libmenos_optim.a"
  "libmenos_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
