// Cross-module integration: split fine-tuning == local fine-tuning (the
// Fig 8/9 convergence claim), multi-client serving under capacity pressure,
// and the full stack over real TCP.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"

namespace menos {
namespace {

nn::TransformerConfig itest_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  c.max_seq = 32;
  return c;
}

net::FinetuneConfig itest_finetune(const std::string& name,
                                   std::uint64_t adapter_seed) {
  net::FinetuneConfig ft;
  ft.client_name = name;
  ft.model = itest_model();
  ft.adapter.rank = 4;
  ft.adapter.alpha = 8.0f;
  ft.optimizer = optim::OptimizerKind::Adam;
  ft.lr = 3e-3f;
  ft.batch_size = 2;
  ft.seq_len = 8;
  ft.adapter_seed = adapter_seed;
  return ft;
}

data::DataLoader itest_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  auto tokens = tok.encode(data::make_shakespeare_like(4000, 17).text);
  return data::DataLoader(std::move(tokens), 2, 8, seed);
}

/// Local (single-device) fine-tuning reference with the identical
/// parameters, adapters, optimizer, and data order.
std::vector<double> local_reference_losses(int steps, std::uint64_t base_seed,
                                           std::uint64_t adapter_seed,
                                           std::uint64_t data_seed) {
  auto host = gpusim::make_host_device();
  nn::FreshInit init(base_seed);
  nn::AdapterSpec adapter;
  adapter.rank = 4;
  adapter.alpha = 8.0f;
  nn::SplitSpec split;
  nn::LocalModel model(itest_model(), split, adapter, init, *host,
                       adapter_seed);
  auto optimizer = optim::make_optimizer(optim::OptimizerKind::Adam,
                                         model.trainable_parameters(), 3e-3f);
  auto loader = itest_loader(data_seed);
  std::vector<double> losses;
  for (int i = 0; i < steps; ++i) {
    data::Batch batch = loader.next();
    tensor::Tensor loss = model.loss(batch.inputs, batch.targets, 2, 8);
    losses.push_back(loss.item());
    tensor::backward(loss);
    optimizer->step();
    optimizer->zero_grad();
  }
  return losses;
}

class SplitEqualsLocal : public ::testing::TestWithParam<core::ServingMode> {};

TEST_P(SplitEqualsLocal, LossTrajectoriesMatch) {
  // "Mathematically, the fine-tuning results of Menos are identical to
  // single-device fine-tuning" (§5.2 model convergence) — for EVERY memory
  // policy, because none of them changes the math.
  constexpr int kSteps = 6;
  const std::uint64_t base_seed = 42, adapter_seed = 9, data_seed = 5;
  const std::vector<double> reference =
      local_reference_losses(kSteps, base_seed, adapter_seed, data_seed);

  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = GetParam();
  config.base_seed = base_seed;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 512u << 20);
  core::ClientOptions options;
  options.finetune = itest_finetune("eq", adapter_seed);
  options.base_seed = base_seed;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();

  auto loader = itest_loader(data_seed);
  for (int i = 0; i < kSteps; ++i) {
    data::Batch batch = loader.next();
    const core::StepStats stats = client.train_step(batch);
    EXPECT_NEAR(stats.loss, reference[static_cast<std::size_t>(i)], 2e-4)
        << "step " << i << " under "
        << core::serving_mode_name(GetParam());
  }
  client.disconnect();
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SplitEqualsLocal,
    ::testing::Values(core::ServingMode::MenosOnDemand,
                      core::ServingMode::MenosReleaseEarly,
                      core::ServingMode::MenosReleaseAfterBackward,
                      core::ServingMode::VanillaTaskSwap));

TEST(Convergence, FineTuningReducesPerplexity) {
  // Fig 8 smoke: split fine-tuning on a learnable corpus must cut the loss
  // substantially below its starting point.
  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 512u << 20);
  core::ClientOptions options;
  options.finetune = itest_finetune("conv", 31);
  options.finetune.lr = 1e-2f;
  // Extend LoRA to the client-side LM head (costs the server nothing) so a
  // randomly-initialized base — our stand-in for a pretrained checkpoint —
  // has enough adaptation capacity to show convergence.
  options.finetune.adapter.target_lm_head = true;
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();

  auto loader = itest_loader(77);
  data::Batch eval_batch = loader.next();
  const double initial = client.evaluate(eval_batch);
  for (int i = 0; i < 60; ++i) client.train_step(loader.next());
  const double final_loss = client.evaluate(eval_batch);
  EXPECT_LT(final_loss, initial * 0.8);
  client.disconnect();
  server.stop();
}

TEST(MultiClient, ConcurrentClientsUnderCapacityPressure) {
  // Several clients against a GPU too small to preserve everyone's
  // intermediate results at once: the scheduler must interleave them with
  // no OOM and no starvation.
  gpusim::DeviceManager devices(1, 24u << 20);  // tight
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  constexpr int kClients = 4;
  constexpr int kSteps = 4;
  std::vector<std::thread> threads;
  std::vector<double> final_losses(kClients, -1.0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      gpusim::DeviceManager client_devices(1, 512u << 20);
      core::ClientOptions options;
      // += rather than "c" + to_string(i): the temporary-concat form trips
      // GCC 12's -Wrestrict false positive (PR 105651).
      std::string client_name = "c";
      client_name += std::to_string(i);
      options.finetune = itest_finetune(std::move(client_name),
                                        100 + static_cast<std::uint64_t>(i));
      options.base_seed = 42;
      core::Client client(options, acceptor.connect(),
                          client_devices.gpu(0));
      client.connect();
      auto loader = itest_loader(300 + static_cast<std::uint64_t>(i));
      double loss = 0.0;
      for (int s = 0; s < kSteps; ++s) {
        loss = client.train_step(loader.next()).loss;
        EXPECT_TRUE(std::isfinite(loss));
      }
      final_losses[static_cast<std::size_t>(i)] = loss;
      client.disconnect();
    });
  }
  for (auto& t : threads) t.join();
  for (double loss : final_losses) EXPECT_GT(loss, 0.0);

  // Physical device stayed within its capacity the whole time (SimGpu
  // would have thrown otherwise) and the scheduler did real interleaving.
  EXPECT_GE(server.scheduler().stats().grants,
            static_cast<std::uint64_t>(kClients * kSteps * 2));
  server.stop();
}

TEST(MultiClient, IndependentDataYieldsIndependentAdapters) {
  // Two clients fine-tune different corpora over the SAME shared base; each
  // must fit its own data better than the other's.
  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 512u << 20);
  data::CharTokenizer tok;
  auto shake = tok.encode(data::make_shakespeare_like(4000, 1).text);
  auto wiki = tok.encode(data::make_wikitext_like(4000, 2).text);

  core::ClientOptions o1;
  o1.finetune = itest_finetune("shake", 41);
  o1.finetune.lr = 1e-2f;
  o1.base_seed = 42;
  core::Client c1(o1, acceptor.connect(), client_devices.gpu(0));
  c1.connect();
  core::ClientOptions o2;
  o2.finetune = itest_finetune("wiki", 42);
  o2.finetune.lr = 1e-2f;
  o2.base_seed = 42;
  core::Client c2(o2, acceptor.connect(), client_devices.gpu(0));
  c2.connect();

  data::DataLoader shake_loader(shake, 2, 8, 10);
  data::DataLoader wiki_loader(wiki, 2, 8, 11);
  data::Batch shake_eval = shake_loader.next();
  data::Batch wiki_eval = wiki_loader.next();
  for (int i = 0; i < 30; ++i) {
    c1.train_step(shake_loader.next());
    c2.train_step(wiki_loader.next());
  }
  EXPECT_LT(c1.evaluate(shake_eval), c1.evaluate(wiki_eval));
  EXPECT_LT(c2.evaluate(wiki_eval), c2.evaluate(shake_eval));
  c1.disconnect();
  c2.disconnect();
  server.stop();
}

TEST(GradAccumulation, MatchesLocalAccumulation) {
  // Split gradient accumulation over K micro-batches must equal local
  // fine-tuning that averages the K losses before stepping — deferred
  // server updates keep both sides of the split in lockstep.
  constexpr int kMicro = 3;
  constexpr int kSteps = 3;
  const std::uint64_t base_seed = 42, adapter_seed = 21, data_seed = 9;

  // Local reference.
  std::vector<double> reference;
  {
    auto host = gpusim::make_host_device();
    nn::FreshInit init(base_seed);
    nn::AdapterSpec adapter;
    adapter.rank = 4;
    adapter.alpha = 8.0f;
    nn::SplitSpec split;
    nn::LocalModel model(itest_model(), split, adapter, init, *host,
                         adapter_seed);
    auto optimizer = optim::make_optimizer(
        optim::OptimizerKind::Adam, model.trainable_parameters(), 3e-3f);
    auto loader = itest_loader(data_seed);
    for (int s = 0; s < kSteps; ++s) {
      double mean_loss = 0.0;
      for (int m = 0; m < kMicro; ++m) {
        data::Batch b = loader.next();
        tensor::Tensor loss = model.loss(b.inputs, b.targets, 2, 8);
        mean_loss += loss.item() / kMicro;
        tensor::backward(tensor::scale(loss, 1.0f / kMicro));
      }
      optimizer->step();
      optimizer->zero_grad();
      reference.push_back(mean_loss);
    }
  }

  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = base_seed;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 512u << 20);
  core::ClientOptions options;
  options.finetune = itest_finetune("accum", adapter_seed);
  options.base_seed = base_seed;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();

  auto loader = itest_loader(data_seed);
  for (int s = 0; s < kSteps; ++s) {
    std::vector<data::Batch> micro;
    for (int m = 0; m < kMicro; ++m) micro.push_back(loader.next());
    const core::StepStats stats = client.train_step_accumulated(micro);
    EXPECT_NEAR(stats.loss, reference[static_cast<std::size_t>(s)], 2e-4)
        << "accumulated step " << s;
  }
  client.disconnect();
  server.stop();
}

TEST(MultiClient, ChurnSurvivesJoinAndLeave) {
  // Clients joining and leaving while others keep training: sessions,
  // scheduler registrations, and per-client GPU state must all come and go
  // cleanly (a server-lifetime property no single-client test covers).
  gpusim::DeviceManager devices(1, 64u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  const std::size_t baseline = devices.gpu(0).allocated();

  gpusim::DeviceManager stable_devices(1, 512u << 20);
  core::ClientOptions stable_opts;
  stable_opts.finetune = itest_finetune("stable", 50);
  stable_opts.base_seed = 42;
  core::Client stable(stable_opts, acceptor.connect(),
                      stable_devices.gpu(0));
  stable.connect();
  auto stable_loader = itest_loader(51);

  for (int wave = 0; wave < 4; ++wave) {
    std::thread churner([&, wave] {
      gpusim::DeviceManager cd(1, 512u << 20);
      core::ClientOptions o;
      o.finetune = itest_finetune("churn" + std::to_string(wave),
                                  60 + static_cast<std::uint64_t>(wave));
      o.base_seed = 42;
      core::Client c(o, acceptor.connect(), cd.gpu(0));
      c.connect();
      auto loader = itest_loader(70 + static_cast<std::uint64_t>(wave));
      for (int s = 0; s < 2; ++s) {
        EXPECT_TRUE(std::isfinite(c.train_step(loader.next()).loss));
      }
      c.disconnect();
    });
    // The stable client keeps training right through the churn.
    for (int s = 0; s < 2; ++s) {
      EXPECT_TRUE(std::isfinite(stable.train_step(stable_loader.next()).loss));
    }
    churner.join();
  }
  stable.disconnect();

  // All transient per-client state drained from the GPU.
  for (int i = 0; i < 400 && devices.gpu(0).allocated() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(devices.gpu(0).allocated(), baseline);
  server.stop();
}

TEST(Adapters, BitFitTrainsOnlyBiasesEndToEnd) {
  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 512u << 20);
  core::ClientOptions options;
  options.finetune = itest_finetune("bitfit", 80);
  options.finetune.adapter.type = nn::AdapterType::BitFit;
  options.finetune.lr = 5e-3f;
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();

  auto loader = itest_loader(81);
  const double l0 = client.train_step(loader.next()).loss;
  double last = l0;
  for (int i = 0; i < 10; ++i) last = client.train_step(loader.next()).loss;
  EXPECT_TRUE(std::isfinite(last));
  // BitFit's trainable surface is tiny: the shared base on the server must
  // be untouched, so a second client with a fresh adapter starts from the
  // pristine base loss.
  client.disconnect();

  core::ClientOptions fresh_opts;
  fresh_opts.finetune = itest_finetune("fresh", 99);
  fresh_opts.base_seed = 42;
  core::Client fresh(fresh_opts, acceptor.connect(), client_devices.gpu(0));
  fresh.connect();
  auto loader2 = itest_loader(81);
  const double fresh_loss = fresh.train_step(loader2.next()).loss;
  EXPECT_NEAR(fresh_loss, l0, 0.2);  // same pristine starting point
  fresh.disconnect();
  server.stop();
}

TEST(Tcp, FullStackOverRealSockets) {
  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, itest_model());
  auto listener = net::tcp_listen(0);
  ASSERT_NE(listener, nullptr);
  server.start(*listener);

  gpusim::DeviceManager client_devices(1, 512u << 20);
  auto conn = net::tcp_connect("127.0.0.1", listener->port());
  ASSERT_NE(conn, nullptr);
  core::ClientOptions options;
  options.finetune = itest_finetune("tcp", 55);
  options.base_seed = 42;
  core::Client client(options, std::move(conn), client_devices.gpu(0));
  client.connect();
  auto loader = itest_loader(66);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  }
  client.disconnect();
  server.stop();
}

TEST(Profiling, DemandsPredictActualPeak) {
  // §3.3: profiled M_f / M_b must upper-bound the memory the real
  // operations use (that is what prevents runtime OOM).
  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  core::Server server(config, devices, itest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 512u << 20);
  core::ClientOptions options;
  options.finetune = itest_finetune("prof", 77);
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();
  EXPECT_GT(client.server_forward_bytes(), 0u);
  EXPECT_GT(client.server_backward_bytes(), client.server_forward_bytes());

  // Peak during real iterations stays within persistent + M_b (+ slack for
  // the wire staging buffers).
  auto loader = itest_loader(88);
  const std::size_t before_peak_reset = devices.gpu(0).allocated();
  devices.gpu(0).reset_peak();
  for (int i = 0; i < 3; ++i) client.train_step(loader.next());
  const std::size_t peak_rise = devices.gpu(0).stats().peak;
  EXPECT_LE(peak_rise,
            before_peak_reset + client.server_backward_bytes() +
                client.server_backward_bytes() / 4);
  client.disconnect();
  server.stop();
}

}  // namespace
}  // namespace menos
