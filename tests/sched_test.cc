// Scheduler tests: Algorithm 2 semantics, fairness gates, backfilling,
// partition placement, and randomized invariant sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "sched/scheduler.h"
#include "util/rng.h"

namespace menos::sched {
namespace {

/// Collects grants for assertions.
struct GrantLog {
  std::vector<Grant> grants;

  void attach(Scheduler& s) {
    s.set_grant_callback([this](const Grant& g) { grants.push_back(g); });
  }

  bool granted(int client) const {
    for (const Grant& g : grants) {
      if (g.client_id == client) return true;
    }
    return false;
  }
};

TEST(Scheduler, GrantsImmediatelyWhenMemoryFree) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 400});
  s.on_request(0, OpKind::Forward);
  ASSERT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(log.grants[0].client_id, 0);
  EXPECT_EQ(s.available(), 900u);
  EXPECT_EQ(s.allocated_to(0), 100u);
  s.on_complete(0);
  EXPECT_EQ(s.available(), 1000u);
}

TEST(Scheduler, BackwardUsesBackwardDemand) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 400});
  s.on_request(0, OpKind::Backward);
  EXPECT_EQ(s.allocated_to(0), 400u);
  s.on_complete(0);
}

TEST(Scheduler, QueuesWhenFullAndGrantsOnRelease) {
  Scheduler s(500);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});
  s.register_client(1, {400, 400});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);
  EXPECT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(s.waiting_count(), 1u);
  s.on_complete(0);
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 1);
  s.on_complete(1);
}

TEST(Scheduler, RegistrationRejectsImpossibleDemand) {
  Scheduler s(100);
  EXPECT_THROW(s.register_client(0, {50, 200}), menos::InvalidArgument);
}

TEST(Scheduler, DoubleRegistrationRejected) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 100});
  EXPECT_THROW(s.register_client(0, {1, 1}), menos::InvalidArgument);
}

TEST(Scheduler, RequestWhileHoldingRejected) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 100});
  s.on_request(0, OpKind::Forward);
  EXPECT_THROW(s.on_request(0, OpKind::Backward), menos::InvalidArgument);
  s.on_complete(0);
}

TEST(Scheduler, CompleteWithoutAllocationRejected) {
  Scheduler s(1000);
  s.register_client(0, {10, 10});
  EXPECT_THROW(s.on_complete(0), menos::InvalidArgument);
}

TEST(Scheduler, UnregisterWithLiveAllocationRejected) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {10, 10});
  s.on_request(0, OpKind::Forward);
  EXPECT_THROW(s.unregister_client(0), menos::StateError);
  s.on_complete(0);
  s.unregister_client(0);
}

TEST(Scheduler, UnregisterDropsWaitingRequest) {
  Scheduler s(100);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 100});
  s.register_client(1, {100, 100});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);
  EXPECT_EQ(s.waiting_count(), 1u);
  s.unregister_client(1);
  EXPECT_EQ(s.waiting_count(), 0u);
  s.on_complete(0);
}

TEST(Scheduler, ForwardBackfillsPastBlockedBackwardHead) {
  // The key Menos claim (§5.2): "forward operations require far less GPU
  // memory, and our scheduling algorithm can always select and parallelize
  // them with the backward computations of other clients."
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 800});
  s.register_client(1, {100, 800});
  s.register_client(2, {100, 800});
  s.on_request(0, OpKind::Backward);  // takes 800
  s.on_request(1, OpKind::Backward);  // blocked head (needs 800 > 200)
  s.on_request(2, OpKind::Forward);   // 100 fits: backfill past client 1
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 2);
  EXPECT_EQ(log.grants[1].kind, OpKind::Forward);
  EXPECT_GE(s.stats().backfill_grants, 1u);
  s.on_complete(0);
  s.on_complete(2);
  s.on_complete(1);
}

TEST(Scheduler, BackwardNeverOvertakesEarlierBackward) {
  // "the FCFS logic prevents long-waiting backward requests from being
  // consistently bypassed" — a later SMALLER backward must wait for an
  // earlier larger one.
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 900});
  s.register_client(1, {50, 900});
  s.register_client(2, {50, 300});
  s.on_request(0, OpKind::Backward);  // takes 900
  s.on_request(1, OpKind::Backward);  // waits (needs 900)
  s.on_request(2, OpKind::Backward);  // 300 would fit 100 free? no: only 100
  EXPECT_EQ(log.grants.size(), 1u);
  s.on_complete(0);  // frees 900: head (client 1) must be granted first
  ASSERT_GE(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 1);
  // Client 2 (300) does NOT fit the remaining 100 and must wait even
  // though it is smaller than the granted head.
  EXPECT_EQ(log.grants.size(), 2u);
  s.on_complete(1);
  ASSERT_EQ(log.grants.size(), 3u);
  EXPECT_EQ(log.grants[2].client_id, 2);
  s.on_complete(2);
}

TEST(Scheduler, FcfsOnlyBlocksEverythingBehindHead) {
  Scheduler s(1000, Policy::FcfsOnly);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 800});
  s.register_client(1, {100, 800});
  s.register_client(2, {100, 800});
  s.on_request(0, OpKind::Backward);
  s.on_request(1, OpKind::Backward);
  s.on_request(2, OpKind::Forward);  // would fit, but strict FCFS blocks it
  EXPECT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(s.waiting_count(), 2u);
  s.on_complete(0);
  // Head unblocks; the forward then backfills... under FcfsOnly it is
  // granted only because memory remains after the head.
  EXPECT_TRUE(log.granted(1));
  EXPECT_TRUE(log.granted(2));
  s.on_complete(1);
  s.on_complete(2);
}

TEST(Scheduler, PersistentReservationShrinksPool) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.reserve_persistent(0, 600);
  EXPECT_EQ(s.available(), 400u);
  s.register_client(0, {100, 400});
  s.on_request(0, OpKind::Backward);
  EXPECT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(s.available(), 0u);
  s.on_complete(0);
  EXPECT_THROW(s.reserve_persistent(0, 500), menos::OutOfMemory);
  s.release_persistent(0, 600);
  EXPECT_EQ(s.available(), 1000u);
}

TEST(Scheduler, ReleasePersistentTriggersScheduling) {
  Scheduler s(1000);
  GrantLog log;
  log.attach(s);
  s.reserve_persistent(0, 500);       // pool now 500
  s.register_client(0, {400, 400});
  s.register_client(1, {450, 450});
  s.on_request(0, OpKind::Backward);  // granted: 100 left
  s.on_request(1, OpKind::Backward);  // waits (450 > 100)
  EXPECT_EQ(log.grants.size(), 1u);
  s.release_persistent(0, 400);       // a departing client frees its A+O
  EXPECT_EQ(log.grants.size(), 2u);   // waiter granted without any complete
  s.on_complete(0);
  s.on_complete(1);
}

TEST(Scheduler, MultiPartitionPlacement) {
  Scheduler s(std::vector<std::size_t>{500, 500});
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});
  s.register_client(1, {400, 400});
  s.register_client(2, {400, 400});
  s.on_request(0, OpKind::Backward);
  s.on_request(1, OpKind::Backward);
  // Two GPUs: both backwards run concurrently on different partitions.
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_NE(log.grants[0].partition, log.grants[1].partition);
  s.on_request(2, OpKind::Backward);
  EXPECT_EQ(log.grants.size(), 2u);  // no third slot
  s.on_complete(0);
  EXPECT_EQ(log.grants.size(), 3u);
  s.on_complete(1);
  s.on_complete(2);
}

TEST(Scheduler, BestFitPartitionChoice) {
  // A small request should land on the fuller partition, preserving the
  // large hole for a future backward.
  Scheduler s(std::vector<std::size_t>{1000, 400});
  GrantLog log;
  log.attach(s);
  s.register_client(0, {300, 300});
  s.on_request(0, OpKind::Forward);
  ASSERT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(log.grants[0].partition, 1);  // 400 is the tightest fit
  s.on_complete(0);
}

TEST(Scheduler, StatsTrackRequestsAndGrants) {
  Scheduler s(100);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {60, 60});
  s.register_client(1, {60, 60});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);  // blocked
  s.on_complete(0);
  s.on_complete(1);
  const SchedulerStats st = s.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.grants, 2u);
  EXPECT_GE(st.blocked_cycles, 1u);
}

// ----- SwapOnIdle: the reclaim hook (mem::OffloadEngine integration) -----

TEST(Scheduler, SwapOnIdleReclaimsPersistentBytesForReservation) {
  // Capacity 100, 60 reserved by an "idle client A". A new client's 80-byte
  // reservation blocks under FcfsBackfill but succeeds under SwapOnIdle
  // once the reclaim callback hands A's 60 bytes back (evicted to host).
  Scheduler blocked(100, Policy::FcfsBackfill);
  blocked.reserve_persistent(0, 60);
  EXPECT_THROW(blocked.reserve_persistent(0, 80), OutOfMemory);

  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  std::vector<std::size_t> asked;
  s.set_reclaim_callback([&asked](int partition, std::size_t bytes_needed) {
    EXPECT_EQ(partition, 0);
    asked.push_back(bytes_needed);
    return std::size_t{60};  // evict idle A
  });
  s.reserve_persistent(0, 80);  // must not throw
  ASSERT_EQ(asked.size(), 1u);
  EXPECT_EQ(asked[0], 40u);  // shortfall only, not the full request
  EXPECT_EQ(s.available(), 20u);
  const SchedulerStats st = s.stats();
  EXPECT_EQ(st.reclaims, 1u);
  EXPECT_EQ(st.reclaimed_bytes, 60u);
}

TEST(Scheduler, SwapOnIdleReclaimsForBlockedRequests) {
  Scheduler s(100, Policy::SwapOnIdle);
  GrantLog log;
  log.attach(s);
  int calls = 0;
  s.set_reclaim_callback([&calls](int, std::size_t) {
    ++calls;
    return calls == 1 ? std::size_t{60} : std::size_t{0};
  });
  s.register_client(1, {80, 80});
  s.reserve_persistent(0, 60);       // idle client's A + O
  s.on_request(1, OpKind::Forward);  // 40 free: reclaim 60, then grant
  EXPECT_TRUE(log.granted(1));
  EXPECT_EQ(calls, 1);
  s.on_complete(1);
}

TEST(Scheduler, SwapOnIdleDryReclaimStopsAfterOneAttemptPerPass) {
  Scheduler s(100, Policy::SwapOnIdle);
  GrantLog log;
  log.attach(s);
  int calls = 0;
  s.set_reclaim_callback([&calls](int, std::size_t) {
    ++calls;
    return std::size_t{0};  // nothing idle to evict
  });
  s.register_client(1, {80, 80});
  s.register_client(2, {90, 90});
  s.reserve_persistent(0, 60);
  s.on_request(1, OpKind::Forward);
  s.on_request(2, OpKind::Forward);
  // Each schedule pass asks at most once; a dry pool is not hammered for
  // every waiting request.
  EXPECT_LE(calls, 2);
  EXPECT_EQ(log.grants.size(), 0u);
  EXPECT_EQ(s.stats().reclaims, 0u);  // nothing was actually freed
  s.unregister_client(1);
  s.unregister_client(2);
}

TEST(Scheduler, PressureCallbackFiresOncePerReclaimPass) {
  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  s.set_reclaim_callback([](int, std::size_t) { return std::size_t{60}; });
  std::vector<PressureEvent> events;
  s.set_pressure_callback([&s, &events](const PressureEvent& e) {
    // The callback fires after the scheduler mutex drops: re-entry is
    // legal, and the triggering reservation has already been deducted.
    EXPECT_LE(s.available(e.partition), e.free_after);
    events.push_back(e);
  });
  s.reserve_persistent(0, 80);  // 40 free: reclaim pass covers the shortfall
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].partition, 0);
  EXPECT_EQ(events[0].bytes_needed, 40u);
  EXPECT_EQ(events[0].bytes_freed, 60u);
  EXPECT_EQ(events[0].free_after, 100u);  // 40 + 60 reclaimed, pre-deduction
}

TEST(Scheduler, PressureCallbackFiresEvenWhenReclaimComesUpShort) {
  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  s.set_reclaim_callback([](int, std::size_t) { return std::size_t{0}; });
  std::vector<PressureEvent> events;
  s.set_pressure_callback(
      [&events](const PressureEvent& e) { events.push_back(e); });
  EXPECT_THROW(s.reserve_persistent(0, 80), OutOfMemory);
  // The refusal is exactly what a fleet rebalancer needs to observe.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].bytes_needed, 40u);
  EXPECT_EQ(events[0].bytes_freed, 0u);
  EXPECT_EQ(events[0].free_after, 40u);
}

TEST(Scheduler, NoPressureEventsWithoutSubscriber) {
  Scheduler s(100, Policy::SwapOnIdle);
  s.reserve_persistent(0, 60);
  s.set_reclaim_callback([](int, std::size_t) { return std::size_t{60}; });
  s.reserve_persistent(0, 80);  // succeeds; no subscriber, nothing buffered
  EXPECT_EQ(s.stats().reclaims, 1u);
}

TEST(Scheduler, TryReclaimIsANoOpWhenBytesAlreadyFit) {
  Scheduler s(100, Policy::SwapOnIdle);
  int calls = 0;
  s.set_reclaim_callback([&calls](int, std::size_t) {
    ++calls;
    return std::size_t{0};
  });
  EXPECT_TRUE(s.try_reclaim(100));
  EXPECT_EQ(calls, 0);
  EXPECT_FALSE(s.try_reclaim(200));
  EXPECT_EQ(calls, 1);
}

TEST(Scheduler, FcfsBackfillNeverInvokesReclaim) {
  Scheduler s(100, Policy::FcfsBackfill);
  GrantLog log;
  log.attach(s);
  bool called = false;
  s.set_reclaim_callback([&called](int, std::size_t) {
    called = true;
    return std::size_t{100};
  });
  s.register_client(1, {80, 80});
  s.reserve_persistent(0, 50);       // leaves 50 free: request cannot fit
  s.on_request(1, OpKind::Forward);  // blocked; no reclaim under backfill
  EXPECT_FALSE(called);
  EXPECT_FALSE(log.granted(1));
  s.unregister_client(1);
}

// ----- CoalescedBatch: group grants (docs/ARCHITECTURE.md "Cross-client
// batched trunk compute") -----

TEST(Scheduler, CoalescesCompatibleWaitingForwardsIntoOneGroupGrant) {
  Scheduler s(1000, Policy::CoalescedBatch);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {1000, 1000});  // blocker: queues everything behind it
  s.register_client(1, {100, 400}, 7);
  s.register_client(2, {100, 400}, 7);
  s.register_client(3, {100, 400}, 7);
  s.on_request(0, OpKind::Backward);
  s.on_request(1, OpKind::Forward);
  s.on_request(2, OpKind::Forward);
  s.on_request(3, OpKind::Forward);
  EXPECT_EQ(log.grants.size(), 1u);
  s.on_complete(0);  // one pass sees all three compatible waiters at once
  ASSERT_EQ(log.grants.size(), 2u);
  const Grant& g = log.grants[1];
  EXPECT_EQ(g.client_id, 1);  // leader = FCFS head of the group
  EXPECT_EQ(g.kind, OpKind::Forward);
  ASSERT_EQ(g.group, (std::vector<int>{1, 2, 3}));
  // Each member is charged its own bytes under its own allocation.
  EXPECT_EQ(s.allocated_to(1), 100u);
  EXPECT_EQ(s.allocated_to(2), 100u);
  EXPECT_EQ(s.allocated_to(3), 100u);
  EXPECT_EQ(s.stats().coalesced_groups, 1u);
  EXPECT_EQ(s.stats().coalesced_members, 3u);
  // The whole group's fused pass completes with ONE atomic release.
  s.on_complete_group(g.group);
  EXPECT_EQ(s.available(), 1000u);
}

TEST(Scheduler, LoneCompatibleRequestIsGrantedSoloImmediately) {
  // Coalescing must never delay a request that has no one to batch with.
  Scheduler s(1000, Policy::CoalescedBatch);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {100, 400}, 7);
  s.on_request(0, OpKind::Forward);
  ASSERT_EQ(log.grants.size(), 1u);
  EXPECT_TRUE(log.grants[0].group.empty());  // ordinary solo grant
  EXPECT_EQ(s.stats().coalesced_groups, 0u);
  s.on_complete(0);
}

TEST(Scheduler, CoalescedForwardsNeverOvertakeEarlierWaitingBackward) {
  // The member scan stops at the first non-joining Backward: forwards that
  // queued BEHIND a waiting backward may backfill as their own group, but
  // they must not be pulled forward into a group led from in front of it
  // (which would effectively jump the backward's place in line).
  Scheduler s(1000, Policy::CoalescedBatch);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {1000, 1000});      // blocker
  s.register_client(1, {100, 400}, 7);     // F_a: ahead of the backward
  s.register_client(2, {100, 950});        // B: waiting backward
  s.register_client(3, {100, 400}, 7);     // F_b: behind the backward
  s.register_client(4, {100, 400}, 7);     // F_c: behind the backward
  s.on_request(0, OpKind::Backward);
  s.on_request(1, OpKind::Forward);
  s.on_request(2, OpKind::Backward);
  s.on_request(3, OpKind::Forward);
  s.on_request(4, OpKind::Forward);
  const std::uint64_t backfills_before = s.stats().backfill_grants;
  s.on_complete(0);
  // F_a's member scan stopped at B, so F_a went out SOLO...
  ASSERT_EQ(log.grants.size(), 3u);
  EXPECT_EQ(log.grants[1].client_id, 1);
  EXPECT_TRUE(log.grants[1].group.empty());
  // ...B stays blocked (950 > 900 free), and F_b+F_c coalesce as their own
  // group BEHIND it — counted as backfill grants, one per member.
  ASSERT_EQ(log.grants[2].group, (std::vector<int>{3, 4}));
  EXPECT_EQ(s.allocated_to(2), 0u);
  EXPECT_EQ(s.waiting_count(), 1u);
  EXPECT_EQ(s.stats().backfill_grants, backfills_before + 2);
  // Once the group releases atomically, the backward finally fits.
  s.on_complete(1);
  s.on_complete_group(log.grants[2].group);
  ASSERT_EQ(log.grants.size(), 4u);
  EXPECT_EQ(log.grants[3].client_id, 2);
  EXPECT_EQ(log.grants[3].kind, OpKind::Backward);
  s.on_complete(2);
}

TEST(Scheduler, HoldsGroupUntilFullTargetSizeFits) {
  // When more compatible requests wait than currently fit, the class is
  // held (one blocked cycle, no partial grants) until a group release
  // frees enough memory for the full target size.
  Scheduler s(400, Policy::CoalescedBatch);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {300, 300});
  s.register_client(1, {100, 100});
  for (int c = 2; c <= 5; ++c) s.register_client(c, {100, 100}, 7);
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);  // pool now exhausted (300 + 100)
  for (int c = 2; c <= 5; ++c) s.on_request(c, OpKind::Forward);
  EXPECT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(s.waiting_count(), 4u);
  const SchedulerStats before = s.stats();
  s.on_complete(1);  // frees 100: ONE member would fit, target is 4 — hold
  EXPECT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(s.waiting_count(), 4u);
  EXPECT_EQ(s.stats().blocked_cycles, before.blocked_cycles + 1);
  s.on_complete(0);  // frees the rest: the full group forms at once
  ASSERT_EQ(log.grants.size(), 3u);
  ASSERT_EQ(log.grants[2].group, (std::vector<int>{2, 3, 4, 5}));
  // Every member counts as a grant of its own in the stats.
  EXPECT_EQ(s.stats().grants, before.grants + 4);
  EXPECT_EQ(s.stats().coalesced_groups, 1u);
  EXPECT_EQ(s.stats().coalesced_members, 4u);
  s.on_complete_group(log.grants[2].group);
  EXPECT_EQ(s.available(), 400u);
}

TEST(Scheduler, MaxGroupSizeSplitsOversizedClasses) {
  Scheduler s(400, Policy::CoalescedBatch);
  s.set_max_group_size(2);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});
  for (int c = 1; c <= 4; ++c) s.register_client(c, {100, 100}, 7);
  s.on_request(0, OpKind::Forward);
  for (int c = 1; c <= 4; ++c) s.on_request(c, OpKind::Forward);
  s.on_complete(0);
  // Four compatible waiters under a cap of 2: two groups, FCFS order.
  ASSERT_EQ(log.grants.size(), 3u);
  EXPECT_EQ(log.grants[1].group, (std::vector<int>{1, 2}));
  EXPECT_EQ(log.grants[2].group, (std::vector<int>{3, 4}));
  EXPECT_EQ(s.stats().coalesced_groups, 2u);
  EXPECT_EQ(s.stats().coalesced_members, 4u);
  s.on_complete_group(log.grants[1].group);
  s.on_complete_group(log.grants[2].group);
  EXPECT_EQ(s.available(), 400u);
}

TEST(Scheduler, ZeroBatchKeyClientsNeverCoalesce) {
  // batch_key 0 is the "never coalesce" sentinel (vanilla mode, Lora
  // adapters, mismatched model specs): behavior degrades to FcfsBackfill.
  Scheduler s(400, Policy::CoalescedBatch);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});
  s.register_client(1, {100, 100});  // default key = 0
  s.register_client(2, {100, 100});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);
  s.on_request(2, OpKind::Forward);
  s.on_complete(0);
  ASSERT_EQ(log.grants.size(), 3u);
  EXPECT_TRUE(log.grants[1].group.empty());
  EXPECT_TRUE(log.grants[2].group.empty());
  EXPECT_EQ(s.stats().coalesced_groups, 0u);
  s.on_complete(1);
  s.on_complete(2);
}

TEST(Scheduler, OnCompleteGroupSkipsMembersAlreadyReleased) {
  // A member torn down mid-pass (session cleanup) has already released its
  // own charge; the group release must skip it instead of throwing.
  Scheduler s(400, Policy::CoalescedBatch);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});
  s.register_client(1, {100, 100}, 7);
  s.register_client(2, {100, 100}, 7);
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);
  s.on_request(2, OpKind::Forward);
  s.on_complete(0);
  ASSERT_EQ(log.grants.size(), 2u);
  ASSERT_EQ(log.grants[1].group, (std::vector<int>{1, 2}));
  s.on_complete(1);  // member 1 departs early and frees its own allocation
  s.unregister_client(1);
  EXPECT_NO_THROW(s.on_complete_group(log.grants[1].group));
  EXPECT_EQ(s.available(), 400u);
}

TEST(Scheduler, CancelPendingDropsQueuedRequestAndReschedules) {
  // Session teardown calls cancel_pending BEFORE release/unregister so no
  // fresh grant can land in the gap. Cancelling the blocked head must also
  // re-run SCHEDULE so requests gated behind it get their turn.
  Scheduler s(100, Policy::FcfsOnly);
  GrantLog log;
  log.attach(s);
  s.register_client(0, {60, 60});
  s.register_client(1, {100, 100});
  s.register_client(2, {40, 40});
  s.on_request(0, OpKind::Forward);
  s.on_request(1, OpKind::Forward);  // blocked head (100 > 40)
  s.on_request(2, OpKind::Forward);  // gated behind the head under FcfsOnly
  EXPECT_EQ(log.grants.size(), 1u);
  s.cancel_pending(1);
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 2);
  EXPECT_EQ(s.waiting_count(), 0u);
  s.cancel_pending(1);  // nothing queued: a no-op
  s.unregister_client(1);
  s.on_complete(0);
  s.on_complete(2);
}

TEST(Scheduler, CoalescedBatchRandomTraceConservesMemoryAndDrains) {
  // Randomized sweep over the group-grant path: memory is conserved every
  // step, grants only reach waiting clients, and a full drain leaves no
  // starved waiter. Mixed population: even clients share a batch key, odd
  // clients never coalesce.
  const std::size_t capacity = 1200;
  Scheduler s(capacity, Policy::CoalescedBatch);
  util::Rng rng(1234);
  const int n = 10;

  // State per client: 0 = idle, 1 = waiting, 2 = holding.
  std::vector<int> state(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> live;  // granted units (groups or solos)
  s.set_grant_callback([&](const Grant& g) {
    std::vector<int> members =
        g.group.empty() ? std::vector<int>{g.client_id} : g.group;
    for (int m : members) {
      auto idx = static_cast<std::size_t>(m);
      EXPECT_EQ(state[idx], 1) << "grant to non-waiting client";
      state[idx] = 2;
    }
    live.push_back(std::move(members));
  });
  for (int i = 0; i < n; ++i) {
    const std::size_t fwd = 50 + 25 * static_cast<std::size_t>(i % 3);
    s.register_client(i, {fwd, fwd + 150 + 50 * static_cast<std::size_t>(i % 4)},
                      i % 2 == 0 ? 7u : 0u);
  }

  const auto complete_unit = [&](std::size_t u) {
    for (int m : live[u]) state[static_cast<std::size_t>(m)] = 0;
    if (live[u].size() > 1) {
      s.on_complete_group(live[u]);
    } else {
      s.on_complete(live[u][0]);
    }
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(u));
  };

  for (int step = 0; step < 800; ++step) {
    if (!live.empty() && rng.next_below(3) == 0) {
      complete_unit(rng.next_below(live.size()));
    } else {
      const int c = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      if (state[static_cast<std::size_t>(c)] == 0) {
        state[static_cast<std::size_t>(c)] = 1;
        s.on_request(c, rng.next_below(2) == 0 ? OpKind::Forward
                                               : OpKind::Backward);
      }
    }
    // INVARIANT: allocations + free always account for the whole pool.
    std::size_t held = 0;
    for (int c = 0; c < n; ++c) held += s.allocated_to(c);
    EXPECT_EQ(held + s.total_available(), capacity);
  }

  // Drain: completing units can only trigger more grants (the callback
  // appends to `live`), so the loop terminates when everything is idle.
  while (!live.empty()) complete_unit(0);
  EXPECT_EQ(s.waiting_count(), 0u) << "a waiter starved after full drain";
  EXPECT_GT(s.stats().coalesced_groups, 0u)
      << "trace never exercised a group grant";
}

// ----- straggler-aware scheduling -----

TEST(Scheduler, StragglerAwareDefersClassifiedStragglerBehindFastClients) {
  // A client whose service estimate exceeds straggler_ratio x the
  // population median is scanned AFTER the fast clients: later-arrived fast
  // requests take the freed memory first and the straggler's reorder is
  // counted.
  Scheduler s(1000, Policy::StragglerAware);
  double now = 0.0;
  s.set_clock([&now] { return now; });
  GrantLog log;
  log.attach(s);
  s.register_client(0, {600, 600});    // the straggler
  s.register_client(1, {300, 300});
  s.register_client(2, {300, 300});
  s.register_client(9, {1000, 1000});  // blocker: queues everyone up
  s.record_service_time(0, 10.0);      // estimate >> 2x median (0.1)
  s.record_service_time(1, 0.1);
  s.record_service_time(2, 0.1);
  s.record_service_time(9, 0.1);

  s.on_request(9, OpKind::Forward);  // granted; pool now full
  s.on_request(0, OpKind::Forward);  // FCFS head, but a straggler
  s.on_request(1, OpKind::Forward);
  s.on_request(2, OpKind::Forward);
  ASSERT_EQ(log.grants.size(), 1u);

  // One pass on release: the fast scan grants 1 and 2 (600 bytes), after
  // which the deferred straggler (600) no longer fits.
  s.on_complete(9);
  ASSERT_EQ(log.grants.size(), 3u);
  EXPECT_EQ(log.grants[1].client_id, 1);
  EXPECT_EQ(log.grants[2].client_id, 2);
  EXPECT_EQ(s.allocated_to(0), 0u);
  EXPECT_GE(s.stats().straggler_reorders, 1u);

  // Deferral is a scan order, not a ban: once memory fits, the straggler
  // is granted.
  s.on_complete(1);
  ASSERT_EQ(log.grants.size(), 4u);
  EXPECT_EQ(log.grants[3].client_id, 0);
  s.on_complete(2);
  s.on_complete(0);
  EXPECT_EQ(s.total_available(), 1000u);
}

TEST(Scheduler, StragglerPromotedAfterWaitingPastSlack) {
  Scheduler s(500, Policy::StragglerAware);
  double now = 0.0;
  s.set_clock([&now] { return now; });
  GrantLog log;
  log.attach(s);
  s.register_client(0, {400, 400});  // the straggler
  s.register_client(1, {300, 300});
  s.register_client(2, {300, 300});
  s.record_service_time(0, 1.0);
  s.record_service_time(1, 0.1);
  s.record_service_time(2, 0.1);

  s.on_request(1, OpKind::Forward);  // granted; 200 free
  s.on_request(0, OpKind::Forward);  // waits (straggler)
  s.on_request(2, OpKind::Forward);  // waits
  ASSERT_EQ(log.grants.size(), 1u);

  // Fast-first pass grants the later-arrived 2 ahead of the deferred 0.
  s.on_complete(1);
  ASSERT_EQ(log.grants.size(), 2u);
  EXPECT_EQ(log.grants[1].client_id, 2);
  EXPECT_GE(s.stats().straggler_reorders, 1u);

  s.on_request(1, OpKind::Forward);  // queues behind 0 again
  // 0 has now waited far past promote_slack x its own estimate: it rejoins
  // the fast scan at its FCFS position and is granted ahead of 1.
  now = 10.0;
  s.on_complete(2);
  ASSERT_EQ(log.grants.size(), 3u);
  EXPECT_EQ(log.grants[2].client_id, 0);
  EXPECT_GE(s.stats().straggler_promotions, 1u);

  s.on_complete(0);
  ASSERT_EQ(log.grants.size(), 4u);
  EXPECT_EQ(log.grants[3].client_id, 1);
  s.on_complete(1);
  EXPECT_EQ(s.total_available(), 500u);
}

TEST(Scheduler, StragglerAwareDegeneratesToFcfsBackfillWhenHomogeneous) {
  // The homogeneous fairness pin: with every service estimate equal nothing
  // classifies as a straggler, and the StragglerAware pass must replay
  // FcfsBackfill EXACTLY — grant sequence, backfill accounting and blocked
  // cycles included. This is what keeps homogeneous-population runs
  // bit-identical across the two policies (see hetero_test).
  const std::size_t capacity = 1000;
  const int n = 8;
  struct Outcome {
    std::vector<std::pair<int, OpKind>> grants;
    SchedulerStats stats;
  };
  const auto run = [&](Policy policy) {
    Scheduler s(capacity, policy);
    double now = 0.0;  // pinned clock: on_complete never perturbs estimates
    s.set_clock([&now] { return now; });
    Outcome out;
    std::vector<int> state(static_cast<std::size_t>(n), 0);
    std::vector<int> holders;
    s.set_grant_callback([&](const Grant& g) {
      out.grants.emplace_back(g.client_id, g.kind);
      state[static_cast<std::size_t>(g.client_id)] = 2;
      holders.push_back(g.client_id);
    });
    for (int i = 0; i < n; ++i) {
      s.register_client(i, {60 + 40 * static_cast<std::size_t>(i % 3),
                            260 + 90 * static_cast<std::size_t>(i % 4)});
      s.record_service_time(i, 1.0);  // homogeneous: est == median for all
    }
    util::Rng rng(99);
    for (int step = 0; step < 500; ++step) {
      if (!holders.empty() && rng.next_below(3) == 0) {
        const int c = holders.front();
        holders.erase(holders.begin());
        state[static_cast<std::size_t>(c)] = 0;
        s.on_complete(c);
      } else {
        const int c =
            static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
        if (state[static_cast<std::size_t>(c)] == 0) {
          state[static_cast<std::size_t>(c)] = 1;
          s.on_request(c, rng.next_below(2) == 0 ? OpKind::Forward
                                                 : OpKind::Backward);
        }
      }
    }
    while (!holders.empty()) {
      const int c = holders.front();
      holders.erase(holders.begin());
      state[static_cast<std::size_t>(c)] = 0;
      s.on_complete(c);
    }
    out.stats = s.stats();
    return out;
  };

  const Outcome fcfs = run(Policy::FcfsBackfill);
  const Outcome sa = run(Policy::StragglerAware);
  EXPECT_EQ(sa.grants, fcfs.grants);
  EXPECT_EQ(sa.stats.grants, fcfs.stats.grants);
  EXPECT_EQ(sa.stats.backfill_grants, fcfs.stats.backfill_grants);
  EXPECT_EQ(sa.stats.blocked_cycles, fcfs.stats.blocked_cycles);
  EXPECT_EQ(sa.stats.straggler_reorders, 0u);
  EXPECT_EQ(sa.stats.straggler_promotions, 0u);
  // The trace is not degenerate: backfilling actually engaged.
  EXPECT_GT(fcfs.stats.backfill_grants, 0u);
}

// ----- randomized invariant sweep -----

struct TraceParams {
  int clients;
  std::size_t capacity;
  Policy policy;
  std::uint64_t seed;
};

class SchedulerTraceSweep : public ::testing::TestWithParam<TraceParams> {};

TEST_P(SchedulerTraceSweep, InvariantsHoldOnRandomTrace) {
  const TraceParams p = GetParam();
  Scheduler s(p.capacity, p.policy);
  util::Rng rng(p.seed);

  std::vector<ClientDemands> demands(static_cast<std::size_t>(p.clients));
  for (auto& d : demands) {
    d.forward_bytes = 16 + rng.next_below(p.capacity / 6);
    d.backward_bytes = d.forward_bytes + rng.next_below(p.capacity / 2);
    if (d.backward_bytes > p.capacity) d.backward_bytes = p.capacity;
  }

  // State per client: 0 = idle, 1 = waiting, 2 = holding.
  std::vector<int> state(static_cast<std::size_t>(p.clients), 0);
  std::vector<int> holders;
  std::size_t min_available = p.capacity;
  std::uint64_t grants_seen = 0;

  s.set_grant_callback([&](const Grant& g) {
    auto idx = static_cast<std::size_t>(g.client_id);
    EXPECT_EQ(state[idx], 1) << "grant to non-waiting client";
    state[idx] = 2;
    holders.push_back(g.client_id);
    ++grants_seen;
  });
  for (int i = 0; i < p.clients; ++i) {
    s.register_client(i, demands[static_cast<std::size_t>(i)]);
  }

  for (int step = 0; step < 600; ++step) {
    const int c = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(p.clients)));
    const auto idx = static_cast<std::size_t>(c);
    if (state[idx] == 0) {
      const OpKind kind =
          rng.next_below(2) == 0 ? OpKind::Forward : OpKind::Backward;
      state[idx] = 1;
      s.on_request(c, kind);
    } else if (state[idx] == 2 && rng.next_below(2) == 0) {
      state[idx] = 0;
      holders.erase(std::find(holders.begin(), holders.end(), c));
      s.on_complete(c);
    }
    // INVARIANT: the scheduler never over-commits its pool.
    const std::size_t avail = s.total_available();
    EXPECT_LE(avail, p.capacity);
    min_available = std::min(min_available, avail);
    std::size_t held = 0;
    for (int h : holders) held += s.allocated_to(h);
    EXPECT_EQ(held + avail, p.capacity);
  }

  // Drain: complete all holders; every waiter must eventually be granted
  // (no starvation under either policy once memory frees).
  for (int round = 0; round < 2 * p.clients + 5 && !holders.empty(); ++round) {
    const int c = holders.front();
    holders.erase(holders.begin());
    state[static_cast<std::size_t>(c)] = 0;
    s.on_complete(c);
    // on_complete may synchronously grant new holders (callback appends).
  }
  EXPECT_EQ(s.waiting_count(), 0u) << "a waiter starved after full drain";
  EXPECT_GT(grants_seen, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Traces, SchedulerTraceSweep,
    ::testing::Values(TraceParams{2, 1000, Policy::FcfsBackfill, 1},
                      TraceParams{4, 1000, Policy::FcfsBackfill, 2},
                      TraceParams{8, 2000, Policy::FcfsBackfill, 3},
                      TraceParams{8, 500, Policy::FcfsBackfill, 4},
                      TraceParams{3, 800, Policy::FcfsOnly, 5},
                      TraceParams{6, 1500, Policy::FcfsOnly, 6},
                      TraceParams{12, 3000, Policy::FcfsBackfill, 7},
                      TraceParams{16, 1200, Policy::FcfsBackfill, 8},
                      TraceParams{8, 2000, Policy::StragglerAware, 9},
                      TraceParams{16, 1200, Policy::StragglerAware, 10}));

}  // namespace
}  // namespace menos::sched
