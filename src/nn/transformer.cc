#include "nn/transformer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace menos::nn {

const char* model_family_name(ModelFamily family) noexcept {
  switch (family) {
    case ModelFamily::Opt:   return "opt";
    case ModelFamily::Llama: return "llama";
  }
  return "?";
}

TransformerConfig TransformerConfig::tiny_opt() {
  TransformerConfig c;
  c.family = ModelFamily::Opt;
  c.vocab_size = 96;
  c.dim = 64;
  c.n_layers = 4;
  c.n_heads = 4;
  c.ffn_hidden = 256;
  c.max_seq = 128;
  return c;
}

TransformerConfig TransformerConfig::tiny_llama() {
  TransformerConfig c;
  c.family = ModelFamily::Llama;
  c.vocab_size = 96;
  c.dim = 64;
  c.n_layers = 4;
  c.n_heads = 4;
  c.ffn_hidden = 172;  // ~2/3 * 4 * dim, rounded like Llama does
  c.max_seq = 128;
  return c;
}

std::int64_t TransformerConfig::parameter_count() const {
  const std::int64_t d = dim;
  const std::int64_t f = ffn_hidden;
  const bool bias = family == ModelFamily::Opt;
  const int kv = n_kv_heads == 0 ? n_heads : n_kv_heads;
  const std::int64_t kv_dim = d / n_heads * kv;
  std::int64_t per_block = 0;
  // Attention projections: q/o are d x d, k/v shrink under GQA.
  per_block += 2 * d * d + 2 * d * kv_dim;
  if (bias) per_block += 2 * d + 2 * kv_dim;
  if (family == ModelFamily::Opt) {
    per_block += d * f + f + f * d + d;  // fc1 + fc2 with biases
    per_block += 2 * (2 * d);            // two LayerNorms (gamma + beta)
  } else {
    per_block += 3 * d * f;  // gate, up, down (down is f x d; same count)
    per_block += 2 * d;      // two RMSNorms (gamma)
  }
  std::int64_t total = per_block * n_layers;
  total += vocab_size * d;  // token embedding
  total += max_seq * d;     // positional embedding
  total += vocab_size * d;  // lm head
  total += family == ModelFamily::Opt ? 2 * d : d;  // final norm
  return total;
}

void TransformerConfig::validate() const {
  MENOS_CHECK_MSG(vocab_size > 0 && dim > 0 && n_layers > 0 && n_heads > 0 &&
                      ffn_hidden > 0 && max_seq > 0,
                  "transformer config fields must be positive");
  MENOS_CHECK_MSG(dim % n_heads == 0,
                  "dim " << dim << " not divisible by heads " << n_heads);
  MENOS_CHECK_MSG(n_kv_heads >= 0 &&
                      (n_kv_heads == 0 || n_heads % n_kv_heads == 0),
                  "query heads " << n_heads << " not divisible by kv heads "
                                 << n_kv_heads);
}

void SplitSpec::validate(const TransformerConfig& config) const {
  MENOS_CHECK_MSG(front_blocks >= 1,
                  "the input section must hold at least one block (Fig 1)");
  MENOS_CHECK_MSG(back_blocks >= 0, "back_blocks must be non-negative");
  MENOS_CHECK_MSG(front_blocks + back_blocks < config.n_layers,
                  "split leaves no blocks for the server: front "
                      << front_blocks << " + back " << back_blocks
                      << " >= layers " << config.n_layers);
}

TransformerBlock::TransformerBlock(const std::string& name,
                                   const TransformerConfig& config,
                                   const AdapterSpec& adapter,
                                   ParameterSource& source,
                                   gpusim::Device& device,
                                   util::Rng& adapter_rng)
    : family_(config.family) {
  const bool bias = config.family == ModelFamily::Opt;
  attn_ = std::make_unique<CausalSelfAttention>(
      name + ".attn", config.dim, config.n_heads, bias, adapter, source,
      device, adapter_rng, config.n_kv_heads);
  register_child("attn", attn_.get());
  const bool bitfit = adapter.type == AdapterType::BitFit && bias;
  if (config.family == ModelFamily::Opt) {
    ln1_ = std::make_unique<LayerNormLayer>(name + ".ln1", config.dim, source,
                                            device);
    ln2_ = std::make_unique<LayerNormLayer>(name + ".ln2", config.dim, source,
                                            device);
    fc1_ = std::make_unique<Linear>(name + ".fc1", config.dim,
                                    config.ffn_hidden, true, source, device,
                                    bitfit);
    fc2_ = std::make_unique<Linear>(name + ".fc2", config.ffn_hidden,
                                    config.dim, true, source, device, bitfit);
    register_child("ln1", ln1_.get());
    register_child("ln2", ln2_.get());
    register_child("fc1", fc1_.get());
    register_child("fc2", fc2_.get());
  } else {
    rn1_ = std::make_unique<RMSNormLayer>(name + ".rn1", config.dim, source,
                                          device);
    rn2_ = std::make_unique<RMSNormLayer>(name + ".rn2", config.dim, source,
                                          device);
    gate_ = std::make_unique<Linear>(name + ".gate", config.dim,
                                     config.ffn_hidden, false, source, device);
    up_ = std::make_unique<Linear>(name + ".up", config.dim,
                                   config.ffn_hidden, false, source, device);
    down_ = std::make_unique<Linear>(name + ".down", config.ffn_hidden,
                                     config.dim, false, source, device);
    register_child("rn1", rn1_.get());
    register_child("rn2", rn2_.get());
    register_child("gate", gate_.get());
    register_child("up", up_.get());
    register_child("down", down_.get());
  }
}

tensor::Tensor TransformerBlock::forward(const tensor::Tensor& x) {
  using namespace menos::tensor;
  if (family_ == ModelFamily::Opt) {
    Tensor h = add(x, attn_->forward(ln1_->forward(x)));
    Tensor m = fc2_->forward(gelu(fc1_->forward(ln2_->forward(h))));
    return add(h, m);
  }
  Tensor h = add(x, attn_->forward(rn1_->forward(x)));
  Tensor n = rn2_->forward(h);
  Tensor m = down_->forward(mul(silu(gate_->forward(n)), up_->forward(n)));
  return add(h, m);
}

namespace {

std::string block_name(int index) { return "block" + std::to_string(index); }

}  // namespace

InputSection::InputSection(const TransformerConfig& config,
                           const SplitSpec& split, const AdapterSpec& adapter,
                           ParameterSource& source, gpusim::Device& device,
                           util::Rng& adapter_rng)
    : config_(config) {
  config.validate();
  split.validate(config);
  tok_emb_ = std::make_unique<Embedding>("tok_emb", config.vocab_size,
                                         config.dim, source, device);
  pos_emb_ = std::make_unique<Embedding>("pos_emb", config.max_seq, config.dim,
                                         source, device);
  register_child("tok_emb", tok_emb_.get());
  register_child("pos_emb", pos_emb_.get());
  if (adapter.type == AdapterType::Prefix) {
    prefix_ = std::make_unique<PrefixAdapter>("prefix", adapter.prefix_len,
                                              config.dim, device, adapter_rng);
    register_child("prefix", prefix_.get());
  }
  for (int i = 0; i < split.front_blocks; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        block_name(i), config, adapter, source, device, adapter_rng));
    register_child(block_name(i), blocks_.back().get());
  }
}

int InputSection::prefix_len() const noexcept {
  return prefix_ != nullptr ? prefix_->prefix_len() : 0;
}

tensor::Tensor InputSection::forward(const std::vector<std::int32_t>& ids,
                                     tensor::Index batch, tensor::Index seq) {
  using namespace menos::tensor;
  MENOS_CHECK_MSG(seq <= config_.max_seq,
                  "sequence length " << seq << " exceeds max_seq "
                                     << config_.max_seq);
  std::vector<std::int32_t> pos_ids(static_cast<std::size_t>(batch * seq));
  for (Index b = 0; b < batch; ++b) {
    for (Index t = 0; t < seq; ++t) {
      pos_ids[static_cast<std::size_t>(b * seq + t)] =
          static_cast<std::int32_t>(t);
    }
  }
  Tensor x = add(tok_emb_->forward(ids, batch, seq),
                 pos_emb_->forward(pos_ids, batch, seq));
  if (prefix_ != nullptr) x = prefix_->forward(x);
  for (auto& block : blocks_) x = block->forward(x);
  return x;
}

ServerSection::ServerSection(const TransformerConfig& config,
                             const SplitSpec& split,
                             const AdapterSpec& adapter,
                             ParameterSource& source, gpusim::Device& device,
                             util::Rng& adapter_rng)
    : ServerSection(config, split, adapter, source,
                    [&device](int) -> gpusim::Device& { return device; },
                    adapter_rng) {}

ServerSection::ServerSection(
    const TransformerConfig& config, const SplitSpec& split,
    const AdapterSpec& adapter, ParameterSource& source,
    const std::function<gpusim::Device&(int)>& device_for,
    util::Rng& adapter_rng) {
  config.validate();
  split.validate(config);
  for (int i = split.front_blocks; i < config.n_layers - split.back_blocks;
       ++i) {
    gpusim::Device& device = device_for(i);
    blocks_.push_back(std::make_unique<TransformerBlock>(
        block_name(i), config, adapter, source, device, adapter_rng));
    devices_.push_back(&device);
    register_child(block_name(i), blocks_.back().get());
  }
}

gpusim::Device& ServerSection::entry_device() const {
  MENOS_CHECK_MSG(!devices_.empty(), "empty server section");
  return *devices_.front();
}

tensor::Tensor ServerSection::forward(const tensor::Tensor& x_c) {
  tensor::Tensor x = x_c;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    // Cross-GPU boundary: ship the activation to the next block's device
    // (the inter-GPU transfer of pipeline/model parallelism). The copy is
    // differentiable-transparent — it happens outside an op, so the graph
    // records ops on whichever device executed them.
    if (&x.device() != devices_[i]) {
      x = tensor::to_device(x, *devices_[i]);
    }
    x = blocks_[i]->forward(x);
  }
  return x;
}

OutputSection::OutputSection(const TransformerConfig& config,
                             const SplitSpec& split,
                             const AdapterSpec& adapter,
                             ParameterSource& source, gpusim::Device& device,
                             util::Rng& adapter_rng)
    : config_(config) {
  config.validate();
  split.validate(config);
  for (int i = config.n_layers - split.back_blocks; i < config.n_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        block_name(i), config, adapter, source, device, adapter_rng));
    register_child(block_name(i), blocks_.back().get());
  }
  if (config.family == ModelFamily::Opt) {
    final_ln_ = std::make_unique<LayerNormLayer>("final_norm", config.dim,
                                                 source, device);
    register_child("final_norm", final_ln_.get());
  } else {
    final_rn_ = std::make_unique<RMSNormLayer>("final_norm", config.dim,
                                               source, device);
    register_child("final_norm", final_rn_.get());
  }
  if (adapter.type == AdapterType::Lora && adapter.target_lm_head) {
    lm_head_ = std::make_unique<LoraLinear>("lm_head", config.dim,
                                            config.vocab_size, false,
                                            adapter.rank, adapter.alpha,
                                            source, device, adapter_rng);
  } else {
    lm_head_ = std::make_unique<Linear>("lm_head", config.dim,
                                        config.vocab_size, false, source,
                                        device);
  }
  register_child("lm_head", lm_head_.get());
}

tensor::Tensor OutputSection::logits(const tensor::Tensor& x_s,
                                     int prefix_len) {
  using namespace menos::tensor;
  MENOS_CHECK_MSG(x_s.ndim() == 3, "output section expects [B, P+T, C]");
  Tensor x = x_s;
  for (auto& block : blocks_) x = block->forward(x);
  if (prefix_len > 0) {
    x = slice_dim1(x, prefix_len, x.dim(1) - prefix_len);
  }
  x = final_ln_ != nullptr ? final_ln_->forward(x) : final_rn_->forward(x);
  Tensor flat = reshape(x, {x.dim(0) * x.dim(1), config_.dim});
  return lm_head_->forward(flat);
}

tensor::Tensor OutputSection::loss(const tensor::Tensor& x_s, int prefix_len,
                                   const std::vector<std::int32_t>& targets) {
  return tensor::cross_entropy(logits(x_s, prefix_len), targets);
}

std::vector<std::int32_t> greedy_generate(InputSection& f_i,
                                          ServerSection& f_s,
                                          OutputSection& f_o,
                                          std::vector<std::int32_t> prompt,
                                          int n_new) {
  MENOS_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  MENOS_CHECK_MSG(n_new >= 0, "negative token count");
  tensor::NoGradGuard no_grad;
  const tensor::Index max_seq = f_i.config().max_seq;
  for (int step = 0; step < n_new; ++step) {
    const std::size_t window =
        std::min<std::size_t>(prompt.size(), static_cast<std::size_t>(max_seq));
    const std::vector<std::int32_t> context(prompt.end() - window,
                                            prompt.end());
    tensor::Tensor x_c =
        f_i.forward(context, 1, static_cast<tensor::Index>(window));
    tensor::Tensor logits = f_o.logits(f_s.forward(x_c), f_i.prefix_len());
    // logits: [window, vocab]; take the prediction at the last position.
    const std::vector<std::int32_t> next = tensor::argmax_lastdim(logits);
    prompt.push_back(next.back());
  }
  return prompt;
}

std::vector<std::int32_t> sample_generate(InputSection& f_i,
                                          ServerSection& f_s,
                                          OutputSection& f_o,
                                          std::vector<std::int32_t> prompt,
                                          int n_new, float temperature,
                                          int top_k, util::Rng& rng) {
  MENOS_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  MENOS_CHECK_MSG(temperature >= 0.0f, "negative temperature");
  MENOS_CHECK_MSG(top_k >= 1, "top_k must be at least 1");
  tensor::NoGradGuard no_grad;
  const tensor::Index max_seq = f_i.config().max_seq;
  const tensor::Index vocab = f_i.config().vocab_size;
  const int k = static_cast<int>(
      std::min<tensor::Index>(top_k, vocab));
  for (int step = 0; step < n_new; ++step) {
    const std::size_t window =
        std::min<std::size_t>(prompt.size(), static_cast<std::size_t>(max_seq));
    const std::vector<std::int32_t> context(prompt.end() - window,
                                            prompt.end());
    tensor::Tensor x_c =
        f_i.forward(context, 1, static_cast<tensor::Index>(window));
    tensor::Tensor logits = f_o.logits(f_s.forward(x_c), f_i.prefix_len());
    const float* row =
        logits.data() + (static_cast<tensor::Index>(window) - 1) * vocab;

    // Rank the top-k candidate ids by logit.
    std::vector<std::int32_t> candidates(static_cast<std::size_t>(vocab));
    for (tensor::Index i = 0; i < vocab; ++i) {
      candidates[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);
    }
    std::partial_sort(candidates.begin(), candidates.begin() + k,
                      candidates.end(),
                      [row](std::int32_t a, std::int32_t b) {
                        return row[a] > row[b];
                      });
    if (k == 1 || temperature <= 1e-6f) {
      prompt.push_back(candidates[0]);
      continue;
    }
    // Temperature softmax over the k survivors, then sample.
    std::vector<double> probs(static_cast<std::size_t>(k));
    const double max_logit = row[candidates[0]];
    double z = 0.0;
    for (int i = 0; i < k; ++i) {
      probs[static_cast<std::size_t>(i)] = std::exp(
          (static_cast<double>(row[candidates[static_cast<std::size_t>(i)]]) -
           max_logit) /
          temperature);
      z += probs[static_cast<std::size_t>(i)];
    }
    double draw = rng.next_double() * z;
    std::int32_t chosen = candidates[static_cast<std::size_t>(k - 1)];
    for (int i = 0; i < k; ++i) {
      draw -= probs[static_cast<std::size_t>(i)];
      if (draw <= 0.0) {
        chosen = candidates[static_cast<std::size_t>(i)];
        break;
      }
    }
    prompt.push_back(chosen);
  }
  return prompt;
}

LocalModel::LocalModel(const TransformerConfig& config, const SplitSpec& split,
                       const AdapterSpec& adapter, ParameterSource& source,
                       gpusim::Device& device, std::uint64_t adapter_seed) {
  // The three sections consume independent adapter streams derived from one
  // seed, in the same order the split runtime derives them, so a LocalModel
  // and a (client f_i/f_o, server f_s) pair start from identical weights.
  util::Rng root(adapter_seed);
  util::Rng rng_in = root.fork();
  util::Rng rng_srv = root.fork();
  util::Rng rng_out = root.fork();
  input_ = std::make_unique<InputSection>(config, split, adapter, source,
                                          device, rng_in);
  server_ = std::make_unique<ServerSection>(config, split, adapter, source,
                                            device, rng_srv);
  output_ = std::make_unique<OutputSection>(config, split, adapter, source,
                                            device, rng_out);
  register_child("input", input_.get());
  register_child("server", server_.get());
  register_child("output", output_.get());
}

tensor::Tensor LocalModel::loss(const std::vector<std::int32_t>& ids,
                                const std::vector<std::int32_t>& targets,
                                tensor::Index batch, tensor::Index seq) {
  tensor::Tensor x_c = input_->forward(ids, batch, seq);
  tensor::Tensor x_s = server_->forward(x_c);
  return output_->loss(x_s, input_->prefix_len(), targets);
}

tensor::Tensor LocalModel::loss_stepped(
    const std::vector<std::int32_t>& ids,
    const std::vector<std::int32_t>& targets, tensor::Index batch,
    tensor::Index seq) {
  const tensor::graph::Feeds feeds{&ids, &targets};
  if (step_graph_.ready() && step_graph_.accepts(feeds)) {
    return step_graph_.replay(feeds);
  }
  if (!capture_failed_ && tensor::grad_enabled()) {
    tensor::Tensor out = step_graph_.capture(
        feeds, [&] { return loss(ids, targets, batch, seq); });
    if (!step_graph_.ready()) capture_failed_ = true;  // stay eager from now
    return out;
  }
  return loss(ids, targets, batch, seq);
}

}  // namespace menos::nn
