// Ablation: the re-forward trade-off of §3.2, measured on the REAL runtime
// with the metered device — extra compute paid vs transient memory freed
// while the server waits for gradients.
#include <cstdio>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "bench_common.h"

using namespace menos;

namespace {

struct Outcome {
  double compute_s = 0.0;
  std::uint64_t reforwards = 0;
  std::size_t fwd_demand = 0;
  std::size_t bwd_demand = 0;
};

Outcome run_mode(core::ServingMode mode, std::int64_t batch) {
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  gpusim::DeviceManager devices(1, 1u << 30);
  core::ServerConfig config;
  config.mode = mode;
  config.base_seed = 42;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 1u << 30);
  core::ClientOptions options;
  options.finetune.client_name = "ablate";
  options.finetune.model = model;
  options.finetune.batch_size = batch;
  options.finetune.seq_len = 16;
  options.finetune.lr = 1e-3f;
  options.finetune.adapter_seed = 5;
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();

  data::CharTokenizer tok;
  auto tokens = tok.encode(data::make_wikitext_like(4000, 3).text);
  data::DataLoader loader(tokens, batch, 16, 7);
  Outcome out;
  out.fwd_demand = client.server_forward_bytes();
  out.bwd_demand = client.server_backward_bytes();
  for (int i = 0; i < 8; ++i) {
    const auto stats = client.train_step(loader.next());
    out.compute_s += stats.server_compute_s;
  }
  for (const auto& s : server.session_stats()) out.reforwards += s.reforwards;
  client.disconnect();
  server.stop();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — re-forward trade-off (real runtime, metered device)",
      "§3.2: re-computing the forward pass costs compute but frees the "
      "intermediate results while waiting for g_c; \"the benefit of doing "
      "so significantly outweighs the extra computation overhead\"");

  std::printf("%-10s  %-28s  %-12s  %-12s  %-14s  %-14s\n", "batch",
              "policy", "compute (s)", "reforwards", "fwd demand",
              "bwd demand");
  for (std::int64_t batch : {1, 2, 4, 8}) {
    const Outcome keep =
        run_mode(core::ServingMode::MenosReleaseAfterBackward, batch);
    const Outcome redo = run_mode(core::ServingMode::MenosOnDemand, batch);
    std::printf("%-10lld  %-28s  %-12.3f  %-12llu  %-14s  %-14s\n",
                static_cast<long long>(batch), "hold I across iteration",
                keep.compute_s,
                static_cast<unsigned long long>(keep.reforwards),
                util::format_bytes(keep.fwd_demand).c_str(),
                util::format_bytes(keep.bwd_demand).c_str());
    std::printf("%-10s  %-28s  %-12.3f  %-12llu  %-14s  %-14s\n", "",
                "on-demand (re-forward)", redo.compute_s,
                static_cast<unsigned long long>(redo.reforwards),
                util::format_bytes(redo.fwd_demand).c_str(),
                util::format_bytes(redo.bwd_demand).c_str());
  }
  std::printf(
      "\nReading: on-demand pays roughly one extra forward per iteration "
      "but its forward-phase memory demand is a small fraction of the "
      "hold-across-iteration demand — the Fig 3(d) trade.\n");
  return 0;
}
