// Failure injection against the full stack: abrupt socket death, garbage
// bytes on the wire, half-open protocol states, and server resilience
// across repeated client failures.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"

namespace menos {
namespace {

nn::TransformerConfig fail_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

struct TcpRig {
  TcpRig() : devices(1, 256u << 20) {
    config.base_seed = 42;
    server = std::make_unique<core::Server>(config, devices, fail_model());
    listener = net::tcp_listen(0);
    server->start(*listener);
  }
  ~TcpRig() { server->stop(); }

  int port() const { return listener->port(); }

  gpusim::DeviceManager devices;
  core::ServerConfig config;
  std::unique_ptr<core::Server> server;
  std::unique_ptr<net::TcpListener> listener;
};

core::ClientOptions fail_options(std::uint64_t adapter_seed) {
  core::ClientOptions options;
  options.finetune.model = fail_model();
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = adapter_seed;
  options.base_seed = 42;
  return options;
}

data::DataLoader fail_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 5).text), 2, 8, seed);
}

/// Write raw bytes to the server's port and close.
void blast_bytes(int port, const std::vector<std::uint8_t>& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::close(fd);
}

TEST(TcpFailure, GarbageBytesDoNotKillTheServer) {
  TcpRig rig;
  // A storm of malformed connections: random junk, valid magic with a huge
  // length, an empty connection.
  util::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> junk(64 + rng.next_below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    blast_bytes(rig.port(), junk);
  }
  {
    // Correct magic, absurd payload length.
    std::vector<std::uint8_t> frame(12, 0);
    const std::uint32_t magic = net::kFrameMagic;
    std::memcpy(frame.data(), &magic, 4);
    const std::uint64_t huge = 1ull << 40;
    std::memcpy(frame.data() + 4, &huge, 8);
    blast_bytes(rig.port(), frame);
  }
  blast_bytes(rig.port(), {});

  // A legitimate client still gets served.
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fail_options(3), std::move(conn), cd.gpu(0));
  client.connect();
  auto loader = fail_loader(4);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
}

TEST(TcpFailure, ClientVanishingMidHandshakeIsCleanedUp) {
  TcpRig rig;
  for (int i = 0; i < 3; ++i) {
    // Open, send half a Hello frame, slam the socket.
    const auto frame =
        net::frame_message(net::Message::hello(fail_options(5).finetune));
    std::vector<std::uint8_t> half(frame.begin(),
                                   frame.begin() + frame.size() / 2);
    blast_bytes(rig.port(), half);
  }
  // Server keeps serving.
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fail_options(6), std::move(conn), cd.gpu(0));
  client.connect();
  auto loader = fail_loader(7);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
}

TEST(TcpFailure, ClientVanishingBetweenForwardAndBackward) {
  TcpRig rig;
  const std::size_t baseline = rig.devices.gpu(0).allocated();
  {
    // Handshake + forward by hand, then disappear without the backward.
    auto conn = net::tcp_connect("127.0.0.1", rig.port());
    ASSERT_NE(conn, nullptr);
    conn->send(net::Message::hello(fail_options(8).finetune));
    auto ack = conn->receive();
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, net::MessageType::HelloAck);
    net::WireTensor x;
    x.shape = {2, 8, 32};
    x.data.assign(2 * 8 * 32, 0.1f);
    conn->send(net::Message::forward(x, 0));
    auto reply = conn->receive();
    ASSERT_TRUE(reply.has_value());
    conn->close();  // vanish with the iteration half done
  }
  // The session must unwind: memory back to the post-store baseline.
  for (int i = 0; i < 400 && rig.devices.gpu(0).allocated() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rig.devices.gpu(0).allocated(), baseline);

  // And a fresh client trains normally afterwards.
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fail_options(9), std::move(conn), cd.gpu(0));
  client.connect();
  auto loader = fail_loader(10);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
}

TEST(TcpFailure, RepeatedCrashWavesDoNotLeak) {
  TcpRig rig;
  const std::size_t baseline = rig.devices.gpu(0).allocated();
  for (int wave = 0; wave < 5; ++wave) {
    auto conn = net::tcp_connect("127.0.0.1", rig.port());
    ASSERT_NE(conn, nullptr);
    conn->send(net::Message::hello(
        fail_options(20 + static_cast<std::uint64_t>(wave)).finetune));
    auto ack = conn->receive();
    ASSERT_TRUE(ack.has_value());
    conn->close();  // crash immediately after profiling
  }
  for (int i = 0; i < 400 && rig.devices.gpu(0).allocated() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rig.devices.gpu(0).allocated(), baseline);
}

TEST(TcpFailure, UnexpectedMessageOrderGetsErrorNotCrash) {
  TcpRig rig;
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  // Forward before Hello.
  net::WireTensor x;
  x.shape = {1, 1, 32};
  x.data.assign(32, 0.0f);
  conn->send(net::Message::forward(x, 0));
  auto reply = conn->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::Error);
  conn->close();
}

}  // namespace
}  // namespace menos
