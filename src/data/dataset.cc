#include "data/dataset.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/check.h"

namespace menos::data {

CharTokenizer::CharTokenizer()
    : alphabet_(
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
          "0123456789 .,;:!?'\"-()\n"),
      char_to_id_(256, -1) {
  for (std::size_t i = 0; i < alphabet_.size(); ++i) {
    char_to_id_[static_cast<unsigned char>(alphabet_[i])] =
        static_cast<std::int32_t>(i);
  }
}

std::int32_t CharTokenizer::vocab_size() const noexcept {
  return static_cast<std::int32_t>(alphabet_.size());
}

std::vector<std::int32_t> CharTokenizer::encode(const std::string& text) const {
  std::vector<std::int32_t> ids;
  ids.reserve(text.size());
  for (char c : text) {
    std::int32_t id = char_to_id_[static_cast<unsigned char>(c)];
    // Unknown characters map to space rather than being dropped, keeping
    // encode length == text length.
    ids.push_back(id >= 0 ? id : char_to_id_[static_cast<unsigned char>(' ')]);
  }
  return ids;
}

std::string CharTokenizer::decode(const std::vector<std::int32_t>& ids) const {
  std::string text;
  text.reserve(ids.size());
  for (std::int32_t id : ids) {
    MENOS_CHECK_MSG(id >= 0 && id < vocab_size(),
                    "token id " << id << " outside vocab");
    text.push_back(alphabet_[static_cast<std::size_t>(id)]);
  }
  return text;
}

std::vector<std::string> WordTokenizer::split(const std::string& text) {
  std::vector<std::string> tokens;
  std::string word;
  const auto flush = [&] {
    if (!word.empty()) {
      tokens.push_back(word);
      word.clear();
    }
  };
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalpha(c) != 0 || raw == '\'') {
      word.push_back(static_cast<char>(std::tolower(c)));
    } else if (std::isdigit(c) != 0) {
      word.push_back(raw);
    } else {
      flush();
      if (std::isspace(c) == 0) tokens.push_back(std::string(1, raw));
    }
  }
  flush();
  return tokens;
}

WordTokenizer::WordTokenizer(const std::string& corpus,
                             std::size_t max_vocab) {
  MENOS_CHECK_MSG(max_vocab >= 2, "vocabulary must hold <unk> plus a word");
  std::unordered_map<std::string, std::size_t> counts;
  for (const std::string& token : split(corpus)) ++counts[token];

  std::vector<std::pair<std::string, std::size_t>> ranked(counts.begin(),
                                                          counts.end());
  // Frequency-descending, then lexicographic for determinism.
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  id_to_word_.push_back("<unk>");
  for (const auto& [word, count] : ranked) {
    (void)count;
    if (id_to_word_.size() >= max_vocab) break;
    id_to_word_.push_back(word);
  }
  for (std::size_t i = 0; i < id_to_word_.size(); ++i) {
    word_to_id_[id_to_word_[i]] = static_cast<std::int32_t>(i);
  }
}

std::int32_t WordTokenizer::vocab_size() const noexcept {
  return static_cast<std::int32_t>(id_to_word_.size());
}

std::vector<std::int32_t> WordTokenizer::encode(const std::string& text) const {
  std::vector<std::int32_t> ids;
  for (const std::string& token : split(text)) {
    auto it = word_to_id_.find(token);
    ids.push_back(it == word_to_id_.end() ? unk_id() : it->second);
  }
  return ids;
}

std::string WordTokenizer::decode(const std::vector<std::int32_t>& ids) const {
  std::string out;
  for (std::int32_t id : ids) {
    MENOS_CHECK_MSG(id >= 0 && id < vocab_size(),
                    "token id " << id << " outside vocab");
    const std::string& word = id_to_word_[static_cast<std::size_t>(id)];
    const bool punctuation =
        word.size() == 1 &&
        std::isalnum(static_cast<unsigned char>(word[0])) == 0;
    if (!out.empty() && !punctuation) out.push_back(' ');
    out += word;
  }
  return out;
}

namespace {

const std::array<const char*, 24> kShakespeareWords = {
    "thou",  "art",    "hath",  "doth",   "wherefore", "noble",
    "king",  "crown",  "sword", "honour", "love",      "night",
    "stars", "fortune", "grace", "mercy",  "tyrant",    "throne",
    "blood", "ghost",  "storm", "heart",  "banish",    "exile"};

const std::array<const char*, 20> kWikiWords = {
    "the",     "system",   "model",    "memory",  "server",
    "client",  "protocol", "network",  "process", "history",
    "region",  "language", "structure", "record",  "design",
    "science", "battle",   "century",  "station", "village"};

std::string generate_word_text(std::size_t length, std::uint64_t seed,
                               const char* const* words, std::size_t n_words,
                               std::size_t sentence_min,
                               std::size_t sentence_max) {
  util::Rng rng(seed);
  std::string text;
  text.reserve(length + 16);
  bool capitalize = true;
  while (text.size() < length) {
    const std::size_t sentence_len =
        sentence_min + rng.next_below(sentence_max - sentence_min + 1);
    for (std::size_t w = 0; w < sentence_len && text.size() < length; ++w) {
      // Zipf-ish skew: square the uniform draw so low indices dominate.
      const double u = rng.next_double();
      const std::size_t idx =
          static_cast<std::size_t>(u * u * static_cast<double>(n_words));
      std::string word = words[idx < n_words ? idx : n_words - 1];
      if (capitalize && !word.empty()) {
        word[0] = static_cast<char>(word[0] - 'a' + 'A');
        capitalize = false;
      }
      text += word;
      text += w + 1 == sentence_len ? "" : " ";
    }
    text += ". ";
    capitalize = true;
    if (rng.next_below(8) == 0) text += "\n";
  }
  text.resize(length);
  return text;
}

}  // namespace

Corpus make_shakespeare_like(std::size_t length, std::uint64_t seed) {
  Corpus c;
  c.name = "shakespeare-like";
  c.text = generate_word_text(length, seed, kShakespeareWords.data(),
                              kShakespeareWords.size(), 3, 9);
  return c;
}

Corpus make_wikitext_like(std::size_t length, std::uint64_t seed) {
  Corpus c;
  c.name = "wikitext-like";
  c.text = generate_word_text(length, seed ^ 0x5bd1e995u, kWikiWords.data(),
                              kWikiWords.size(), 5, 14);
  return c;
}

DataLoader::DataLoader(std::vector<std::int32_t> tokens,
                       std::int64_t batch_size, std::int64_t seq_len,
                       std::uint64_t seed)
    : tokens_(std::move(tokens)),
      batch_size_(batch_size),
      seq_len_(seq_len),
      rng_(seed) {
  MENOS_CHECK_MSG(batch_size > 0 && seq_len > 0,
                  "batch size and sequence length must be positive");
  MENOS_CHECK_MSG(static_cast<std::int64_t>(tokens_.size()) > seq_len,
                  "corpus too short for sequence length " << seq_len);
}

Batch DataLoader::next() {
  Batch b;
  b.batch_size = batch_size_;
  b.seq_len = seq_len_;
  b.inputs.resize(static_cast<std::size_t>(batch_size_ * seq_len_));
  b.targets.resize(static_cast<std::size_t>(batch_size_ * seq_len_));
  const std::size_t max_start = tokens_.size() - static_cast<std::size_t>(seq_len_) - 1;
  for (std::int64_t i = 0; i < batch_size_; ++i) {
    const std::size_t start =
        static_cast<std::size_t>(rng_.next_below(max_start + 1));
    for (std::int64_t t = 0; t < seq_len_; ++t) {
      b.inputs[static_cast<std::size_t>(i * seq_len_ + t)] =
          tokens_[start + static_cast<std::size_t>(t)];
      b.targets[static_cast<std::size_t>(i * seq_len_ + t)] =
          tokens_[start + static_cast<std::size_t>(t) + 1];
    }
  }
  return b;
}

}  // namespace menos::data
