// Adapter checkpointing.
//
// The whole point of split fine-tuning is that the client walks away with
// ONLY its adapter (the base model never leaves the owner). These helpers
// serialize exactly the trainable parameters of a module tree — LoRA
// matrices, prefix tokens, BitFit biases — in a CRC-protected binary
// format, and load them back into a structurally matching module by
// parameter name.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"

namespace menos::core {

/// Serialize trainable parameters (names, shapes, data).
std::vector<std::uint8_t> serialize_adapter(
    const std::vector<nn::Parameter>& params);
std::vector<std::uint8_t> serialize_adapter(const nn::Module& module);

/// As deserialize_adapter(…, module) but with an explicit target set.
std::size_t deserialize_adapter(const std::uint8_t* data, std::size_t size,
                                const std::vector<nn::Parameter>& targets);

/// Load serialized adapter tensors into `module` by name. Every tensor in
/// the blob must match an existing trainable parameter (same name, same
/// shape) — extra blob entries or shape mismatches throw; trainable
/// parameters absent from the blob are left untouched. Returns the number
/// of tensors loaded. Throws ProtocolError on corruption.
std::size_t deserialize_adapter(const std::uint8_t* data, std::size_t size,
                                nn::Module& module);

/// File variants.
void save_adapter(const std::string& path, const nn::Module& module);
std::size_t load_adapter(const std::string& path, nn::Module& module);

// ----- base-model checkpoints (the model owner's artifact) -----
//
// In production the server's frozen base comes from a checkpoint file the
// model owner controls, not from an init seed. These serialize the shared
// ParameterStore in the same CRC-protected format (frozen tensors allowed)
// so a server can persist and re-load its base.

class ParameterStore;

void save_base_checkpoint(const std::string& path, const ParameterStore& store);

/// Overwrite the store's tensors in place from a checkpoint written by
/// save_base_checkpoint. Every live structure sharing the store sees the
/// new values. Returns the number of tensors loaded.
std::size_t load_base_checkpoint(const std::string& path,
                                 ParameterStore& store);

}  // namespace menos::core
