#include "sim/model_spec.h"

#include "util/bytes.h"

namespace menos::sim {

using util::kMB;
using util::kGB;

ModelSpec ModelSpec::opt_1_3b() {
  ModelSpec s;
  s.name = "OPT-1.3B";
  // Fig 5(a): vanilla grows 4.7 GB per client (params + context + A/O);
  // Menos adds ~0.52 GB per client over a 4.62 GB shared base.
  s.server_param_bytes = 4240 * kMB;
  s.adapter_opt_bytes = 60 * kMB;   // LoRA r=8 on q/v + Adam moments
  s.context_bytes = 375 * kMB;
  // Batch 16: backward peak such that 3 vanilla tasks fit a V100 but 4 do
  // not (Fig 6(a): "one V100 GPU can support 3 clients simultaneously").
  s.bwd_bytes = 3500 * kMB;
  s.fwd_nograd_bytes = 500 * kMB;
  // Table 1: 13.1 MB of activations + 12.5 MB of gradients per iteration,
  // split across the two directions.
  s.activation_up_bytes = 6550 * 1000;
  s.activation_down_bytes = 6550 * 1000;
  s.gradient_up_bytes = 6250 * 1000;
  s.gradient_down_bytes = 6250 * 1000;
  // Table 2: vanilla ~0.45 s flat; Menos 0.71 s (1 client) -> 1.68 s (6).
  s.fwd_seconds = 0.15;
  s.nograd_fwd_seconds = 0.12;
  s.bwd_seconds = 0.30;
  s.release_overhead_base_s = 0.14;
  s.release_overhead_per_client_s = 0.194;
  s.client_gpu_seconds = 0.25;
  s.client_cpu_seconds = 0.9;
  return s;
}

ModelSpec ModelSpec::llama2_7b() {
  ModelSpec s;
  s.name = "Llama-2-7B";
  // §2.3 measurement study: M = 23.8-24 GB, A+O = 246 MB, I = 4 GB, total
  // ~28.7 GB at batch 4.
  s.server_param_bytes = 23800 * kMB;
  s.adapter_opt_bytes = 246 * kMB;
  s.context_bytes = 375 * kMB;
  s.bwd_bytes = 4 * kGB;
  s.fwd_nograd_bytes = 600 * kMB;
  // Table 1: 6.4 MB activations + 6.2 MB gradients per iteration.
  s.activation_up_bytes = 3200 * 1000;
  s.activation_down_bytes = 3200 * 1000;
  s.gradient_up_bytes = 3100 * 1000;
  s.gradient_down_bytes = 3100 * 1000;
  // Table 2: vanilla ~0.5 s flat; Menos 1.15 s (1 client) -> 2.16 s (4).
  s.fwd_seconds = 0.17;
  s.nograd_fwd_seconds = 0.136;
  s.bwd_seconds = 0.33;
  s.release_overhead_base_s = 0.514;
  s.release_overhead_per_client_s = 0.337;
  s.client_gpu_seconds = 0.3;
  s.client_cpu_seconds = 1.1;
  return s;
}

}  // namespace menos::sim
