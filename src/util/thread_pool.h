// Process-wide fork/join thread pool behind the tensor compute kernels.
//
// Design constraints, in priority order:
//   1. Determinism. parallel_for partitions [begin, end) into disjoint
//      chunks and every index is visited by exactly one invocation of the
//      body, so a kernel that writes output[i] only from iteration i
//      produces bit-identical results for ANY thread count — including the
//      serial fallback. Nothing about chunk assignment leaks into results.
//   2. No surprises for the split runtime. Server/client session threads
//      already exist (see util/queue.h); the pool is a singleton sized by
//      MENOS_THREADS (default: hardware concurrency) and a second thread
//      arriving while a region is in flight simply runs its range serially
//      instead of queueing behind the first — compute never deadlocks on
//      compute.
//   3. Lazy start. No worker threads exist until the first parallel_for
//      that actually wants them; MENOS_THREADS=1 never spawns any.
//
// Nested parallel_for calls (a kernel body calling another parallel kernel)
// degrade to serial execution on the calling thread, which keeps the pool
// reentrancy-safe without a work-stealing scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace menos::util {

class ThreadPool {
 public:
  using Index = std::int64_t;
  using Body = std::function<void(Index begin, Index end)>;

  /// The process-wide pool. First call reads MENOS_THREADS (unset, empty or
  /// "0" -> std::thread::hardware_concurrency(), clamped to >= 1).
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallel width, including the calling thread; always >= 1.
  int num_threads() const noexcept { return num_threads_; }

  /// Resize the pool (joins existing workers; they are respawned lazily).
  /// Must not be called concurrently with parallel_for. Intended for tests
  /// and tools; production sizing goes through MENOS_THREADS.
  void set_num_threads(int n);

  /// Invoke `body` over disjoint subranges covering [begin, end) exactly
  /// once. `grain` is the minimum chunk size (in indices) worth shipping to
  /// another thread; ranges at or below it, a pool of width 1, nested calls
  /// and contended submissions all run `body(begin, end)` on the calling
  /// thread. The first exception thrown by any chunk is rethrown on the
  /// calling thread after all chunks finish.
  void parallel_for(Index begin, Index end, Index grain, const Body& body);

  /// Run `task` asynchronously on the pool's background task lane: one
  /// dedicated FIFO worker, lazily spawned and fully independent of the
  /// fork/join machinery above (a task may itself call parallel_for).
  /// Tasks run in submission order; an exception escaping a task is logged
  /// and dropped — callers that care catch their own. Used by the offload
  /// engine (src/mem) for asynchronous host<->device swaps.
  void submit(std::function<void()> task);

 private:
  ThreadPool();

  struct Region;

  void stop_workers();
  void stop_task_worker();
  void worker_main();
  void task_worker_main();
  static void run_chunks(Region& region);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::thread task_thread_;  ///< background task lane (see submit)

  // All fields below are guarded by an annotated util::Mutex in the .cc
  // (kept out of the header to avoid dragging locking headers into every
  // kernel TU; the MENOS_GUARDED_BY annotations live on State's members).
  struct State;
  std::unique_ptr<State> state_;
};

/// Convenience forwarder: menos::util::parallel_for(0, n, grain, body).
inline void parallel_for(ThreadPool::Index begin, ThreadPool::Index end,
                         ThreadPool::Index grain,
                         const ThreadPool::Body& body) {
  ThreadPool::instance().parallel_for(begin, end, grain, body);
}

}  // namespace menos::util
