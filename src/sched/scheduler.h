// Operation-level GPU memory scheduler — Algorithm 2 of the paper.
//
// Event-driven: on_request(client, kind) when activations/gradients arrive
// (lines 7-9), on_complete(client) when a computation finishes and frees
// its memory (lines 10-13). Both trigger the SCHEDULE procedure, which
// combines FCFS at the head with backfilling over the remainder, adapted
// from the IBM SP2 backfilling scheduler the paper cites [Mu'alem &
// Feitelson 2001].
//
// Interpretation of the paper's two fairness claims, which the raw
// pseudo-code leaves ambiguous:
//  * "the FCFS logic prevents long-waiting backward requests from being
//    consistently bypassed by newer, smaller forward requests" — backward
//    requests are served FCFS *among themselves*: a backward may never be
//    granted while an earlier backward is still waiting.
//  * "our scheduling algorithm can always select and parallelize
//    [forwards] with the backward computations of other clients" — forward
//    requests may backfill past a blocked backward head whenever they fit.
// tests/sched_test.cc pins both properties down.
//
// Policy::CoalescedBatch extends backfilling with group grants: waiting
// requests of the same kind whose clients registered the same nonzero
// batch_key (same model spec + cut depth) may be granted together as ONE
// Grant carrying a member list, so the serving core can run one fused
// batched pass through the shared trunk. Fairness is preserved: the
// member scan never crosses a non-member Backward (an earlier waiting
// backward can never be overtaken by a newly coalesced group), each
// member is charged its own bytes under its own allocation, and a member
// granted past a skipped non-member forward counts as a backfill grant.
// When more compatible requests are waiting than currently fit, the
// scheduler HOLDS the group until the target size (what an empty
// partition could hold, capped by max_group_size) fits — group releases
// via on_complete_group free members' memory atomically, so held groups
// always eventually form; a lone compatible request is still granted
// solo immediately.
//
// Memory is tracked per partition (one partition per GPU): a request must
// fit entirely inside one GPU, and the "GPU memory" of Fig 2 is the union
// of partitions. Single-GPU setups use one partition.
//
// The scheduler is thread-safe. Grants produced by a SCHEDULE pass are
// buffered while the lock is held and the grant callback is invoked AFTER
// the scheduler mutex drops, from the same thread that triggered the pass
// (still in FCFS grant order). Callbacks may therefore re-enter the
// scheduler — the event-driven serving core relies on this to enqueue
// GrantEvents onto the executor without lock-ordering hazards. The reclaim
// callback is different: it still fires with the lock held and must not
// re-enter (see set_reclaim_callback).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::sched {

enum class OpKind : std::uint8_t { Forward, Backward };

const char* op_kind_name(OpKind kind) noexcept;

enum class Policy : std::uint8_t {
  FcfsOnly,      ///< strict: first unsatisfiable request blocks everything
  FcfsBackfill,  ///< the Menos scheduler (default)
  /// FcfsBackfill, plus: before declaring a request (or a persistent
  /// reservation) blocked, invoke the reclaim callback so the owner can
  /// evict idle clients' persistent state to host memory (the
  /// mem::OffloadEngine) and hand the freed bytes back to the pool.
  SwapOnIdle,
  /// FcfsBackfill, plus: compatible waiting requests (same kind, same
  /// nonzero batch_key) coalesce into one group grant for a fused batched
  /// pass through the shared trunk (see the class comment).
  CoalescedBatch,
  /// FcfsBackfill, plus: straggler-aware grant reordering. Per-client
  /// service times (grant -> release wall time, EWMA) classify clients
  /// whose estimate exceeds straggler_ratio x the population median as
  /// stragglers; each SCHEDULE pass scans the non-straggler queue first
  /// (in FCFS order) and the stragglers after (also FCFS), so a slow
  /// client at the head cannot pin fast clients behind its long
  /// memory-hold cycles. Anti-starvation: a straggler waiting longer than
  /// promote_slack x its own estimate is scanned with the fast class
  /// again. With no classified stragglers the pass degenerates to exactly
  /// FcfsBackfill — grant order, stats and all — which is what keeps
  /// homogeneous populations bit-identical under this policy (pinned in
  /// sched_test/hetero_test).
  StragglerAware,
};

/// Per-client memory demands measured during profiling (§3.3): M_f for the
/// no-grad forward, M_b for the re-forward + backward.
struct ClientDemands {
  std::size_t forward_bytes = 0;
  std::size_t backward_bytes = 0;

  std::size_t bytes_for(OpKind kind) const noexcept {
    return kind == OpKind::Forward ? forward_bytes : backward_bytes;
  }
};

/// A grant: the request of `client_id` may run on partition (GPU)
/// `partition`. Under Policy::CoalescedBatch a grant may cover a whole
/// group: `group` then lists every member client (leader == client_id
/// first, in FCFS order), each charged its own bytes under its own
/// allocation; the owner completes them together via on_complete_group.
/// Empty `group` means an ordinary solo grant.
struct Grant {
  int client_id = -1;
  OpKind kind = OpKind::Forward;
  int partition = 0;
  std::vector<int> group;
};

/// A memory-pressure observation: a reclaim pass ran because `partition`
/// could not cover `bytes_needed` from free memory. Emitted through the
/// pressure callback AFTER the scheduler mutex drops, so subscribers (the
/// fleet's rebalancer) may freely call back into the scheduler.
struct PressureEvent {
  int partition = 0;
  std::size_t bytes_needed = 0;  ///< shortfall handed to the reclaim pass
  std::size_t bytes_freed = 0;   ///< what eviction actually recovered
  std::size_t free_after = 0;    ///< partition free bytes after the pass
};

struct SchedulerStats {
  std::uint64_t requests = 0;
  std::uint64_t grants = 0;
  std::uint64_t backfill_grants = 0;  ///< granted past a blocked earlier request
  std::uint64_t blocked_cycles = 0;   ///< SCHEDULE passes that left the head waiting
  std::uint64_t reclaims = 0;         ///< reclaim callbacks that freed bytes
  std::size_t reclaimed_bytes = 0;    ///< persistent bytes evicted to host
  std::uint64_t coalesced_groups = 0;   ///< group grants issued (size >= 2)
  std::uint64_t coalesced_members = 0;  ///< members across all group grants
  /// StragglerAware: grants issued ahead of an earlier-arrived request
  /// that was deferred as a straggler.
  std::uint64_t straggler_reorders = 0;
  /// StragglerAware: passes in which a starving straggler was promoted
  /// back into the fast scan.
  std::uint64_t straggler_promotions = 0;
};

class Scheduler {
 public:
  /// One partition per GPU with its schedulable capacity in bytes (i.e.
  /// what remains after the shared base model and per-client persistent
  /// adapter/optimizer state).
  explicit Scheduler(std::vector<std::size_t> partition_capacities,
                     Policy policy = Policy::FcfsBackfill);

  /// Convenience: single partition.
  Scheduler(std::size_t capacity, Policy policy = Policy::FcfsBackfill);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Must be set before any request arrives.
  void set_grant_callback(std::function<void(const Grant&)> callback);

  /// Reclaim hook for Policy::SwapOnIdle: `fn(partition, bytes_needed)`
  /// evicts idle persistent state and returns the bytes it freed, which
  /// the scheduler credits back to the partition (the inverse of
  /// reserve_persistent). Fires with the scheduler mutex held, under the
  /// same no-re-entry contract as the grant callback.
  using ReclaimCallback =
      std::function<std::size_t(int partition, std::size_t bytes_needed)>;
  void set_reclaim_callback(ReclaimCallback callback);

  /// Pressure signal: invoked once per reclaim pass (SwapOnIdle), after
  /// the scheduler mutex drops, from the thread that triggered the pass.
  /// Unlike the reclaim callback this one may re-enter the scheduler; it
  /// exists so an owner one level up (the fleet) can react to a shard
  /// running hot — e.g. by migrating a session elsewhere — without polling.
  using PressureCallback = std::function<void(const PressureEvent&)>;
  void set_pressure_callback(PressureCallback callback);

  /// Try to bring `partition`'s free memory up to `bytes` by invoking the
  /// reclaim callback. Returns true if `bytes` are now free. Public so
  /// owners can pre-drain before a known-large operation; the scheduler
  /// itself calls it before declaring a request blocked (SwapOnIdle).
  bool try_reclaim(std::size_t bytes, int partition = 0);

  /// Register a client and its profiled demands. Throws InvalidArgument if
  /// a demand cannot fit in ANY partition (the profiling phase rejects the
  /// client instead of OOMing at runtime — scheduler principle 1).
  /// `batch_key` identifies the client's coalescing class under
  /// Policy::CoalescedBatch (same model spec + cut depth => same key);
  /// 0 (the default) means "never coalesce".
  void register_client(int client_id, const ClientDemands& demands,
                       std::uint64_t batch_key = 0);

  /// Cap on group-grant size under Policy::CoalescedBatch (default 32).
  void set_max_group_size(std::size_t n);

  /// Remove a waiting/idle client. A client with a live allocation must
  /// on_complete first (StateError otherwise).
  void unregister_client(int client_id);

  /// Drop `client_id`'s queued request, if any (no-op otherwise). Teardown
  /// calls this BEFORE releasing/unregistering so no fresh grant can land
  /// in between — a grant in that window would make unregister_client
  /// throw and leak the allocation.
  void cancel_pending(int client_id);

  /// Event: data arrived from `client_id` — enqueue and run SCHEDULE.
  /// A client may have at most one outstanding request or allocation.
  void on_request(int client_id, OpKind kind);

  /// Event: the client's computation finished; reclaim its memory and run
  /// SCHEDULE.
  void on_complete(int client_id);

  /// Event: a whole group grant's fused computation finished. Frees every
  /// listed member's allocation atomically, then runs ONE SCHEDULE pass —
  /// so the next held group sees all the freed memory at once. Members
  /// whose allocation is already gone (torn down mid-pass through their
  /// own cleanup) are skipped.
  void on_complete_group(const std::vector<int>& clients);

  /// Permanently shrink a partition's schedulable memory — used for the
  /// per-client persistent adapter + optimizer state (A + O), which lives
  /// outside the request/complete cycle. Throws OutOfMemory if the
  /// partition cannot cover it right now.
  void reserve_persistent(int partition, std::size_t bytes);

  /// Return memory taken by reserve_persistent (client departure).
  void release_persistent(int partition, std::size_t bytes);

  // ----- straggler awareness (Policy::StragglerAware) -----

  /// Fold an observed service time (seconds from grant to release) into
  /// `client_id`'s EWMA estimate. The scheduler feeds this automatically
  /// from every on_complete / on_complete_group; it is public so benches
  /// and tests can seed estimates without waiting for the EWMA to warm up.
  void record_service_time(int client_id, double seconds);

  /// Current EWMA service-time estimate for `client_id` (0 until the first
  /// observation).
  double service_estimate(int client_id) const;

  /// A client is a straggler when its estimate exceeds `ratio` x the
  /// population median estimate (default 2.0; must be > 1).
  void set_straggler_ratio(double ratio);

  /// A deferred straggler rejoins the fast scan once it has waited longer
  /// than `slack` x its own service estimate (default 4.0; must be > 0).
  void set_straggler_promote_slack(double slack);

  /// Replace the clock behind service estimates, enqueue stamps and
  /// promotion waits (steady wall-clock seconds by default). The
  /// discrete-event sim injects its virtual clock here so StragglerAware
  /// classifies on simulated time, not host microseconds. Only differences
  /// of consecutive readings are ever used; the clock must be monotone.
  void set_clock(std::function<double()> clock);

  // ----- introspection -----
  std::size_t available(int partition = 0) const;
  std::size_t total_available() const;
  std::size_t allocated_to(int client_id) const;
  std::size_t waiting_count() const;
  SchedulerStats stats() const;
  int partition_count() const;

 private:
  struct Waiting {
    int client_id;
    OpKind kind;
    std::uint64_t seq;
    double enqueued_at = 0.0;  ///< steady-clock seconds, for anti-starvation
  };

  struct Allocation {
    std::size_t bytes = 0;
    int partition = -1;
    double granted_at = 0.0;  ///< steady-clock seconds, for service timing
  };

  // SCHEDULE procedure (Algorithm 2 lines 14-24). Runs with mutex_ held
  // and appends grants to pending_grants_ instead of invoking the callback
  // inline; every public mutator drains pending_grants_ into the callback
  // after unlocking (see the class comment).
  void schedule_locked() MENOS_REQUIRES(mutex_);

  /// The StragglerAware SCHEDULE pass: FcfsBackfill semantics over a
  /// reordered scan (fast clients first, stragglers after, FCFS within
  /// each class). Reduces to schedule_locked's FcfsBackfill behaviour —
  /// identical grant sequence and stats — when no client classifies as a
  /// straggler.
  void schedule_straggler_locked() MENOS_REQUIRES(mutex_);

  /// EWMA fold of one observed service time.
  void update_estimate_locked(int client_id, double seconds)
      MENOS_REQUIRES(mutex_);

  /// Lower median of all current service estimates (0 when none exist).
  double estimate_median_locked() const MENOS_REQUIRES(mutex_);

  /// Everything buffered under the lock for post-unlock dispatch: grants
  /// (in FCFS order) and pressure events, each with a callback copy.
  struct PendingDispatch {
    std::vector<Grant> grants;
    std::function<void(const Grant&)> grant_callback;
    std::vector<PressureEvent> pressure;
    PressureCallback pressure_callback;
  };

  /// Steal the buffered grants/pressure + callback copies for post-unlock
  /// dispatch (see the class comment).
  PendingDispatch take_pending_locked() MENOS_REQUIRES(mutex_);

  /// Invoke the callbacks over a stolen PendingDispatch. Must be called
  /// WITHOUT mutex_ held.
  static void dispatch(PendingDispatch& pending);

  /// Best-fit partition for `bytes`, or nullopt.
  std::optional<int> find_partition_locked(std::size_t bytes) const
      MENOS_REQUIRES(mutex_);

  /// Coalescing class of `client_id` (0 if none / unregistered).
  std::uint64_t batch_key_of_locked(int client_id) const
      MENOS_REQUIRES(mutex_);

  /// Try to commit a group grant led by waiting_[leader_idx] (whose solo
  /// demand already fits `partition`). Returns true and erases the granted
  /// members if the group committed (possibly as a solo grant when no
  /// compatible request waits behind the leader); returns false when more
  /// compatible requests are waiting than currently fit — the caller holds
  /// the whole (key, kind) class back for this pass.
  bool try_coalesce_locked(std::size_t leader_idx, std::uint64_t key,
                           int partition, bool leader_backfill)
      MENOS_REQUIRES(mutex_);

  /// Invoke the reclaim callback until `bytes` fit in `partition` (or the
  /// callback runs dry). Credits freed bytes to free_ and capacity_.
  bool try_reclaim_locked(int partition, std::size_t bytes)
      MENOS_REQUIRES(mutex_);

  mutable util::Mutex mutex_{"sched.scheduler", 30};
  std::vector<std::size_t> capacity_ MENOS_GUARDED_BY(mutex_);
  std::vector<std::size_t> free_ MENOS_GUARDED_BY(mutex_);
  Policy policy_;  // immutable after construction
  std::function<void(const Grant&)> grant_callback_ MENOS_GUARDED_BY(mutex_);
  ReclaimCallback reclaim_callback_ MENOS_GUARDED_BY(mutex_);
  PressureCallback pressure_callback_ MENOS_GUARDED_BY(mutex_);
  std::deque<Waiting> waiting_ MENOS_GUARDED_BY(mutex_);
  std::unordered_map<int, ClientDemands> demands_ MENOS_GUARDED_BY(mutex_);
  std::unordered_map<int, std::uint64_t> batch_key_ MENOS_GUARDED_BY(mutex_);
  std::size_t max_group_ MENOS_GUARDED_BY(mutex_) = 32;
  std::unordered_map<int, Allocation> allocations_
      MENOS_GUARDED_BY(mutex_);  // live grants
  std::uint64_t next_seq_ MENOS_GUARDED_BY(mutex_) = 0;
  SchedulerStats stats_ MENOS_GUARDED_BY(mutex_);
  /// Per-client EWMA of grant -> release seconds (StragglerAware inputs;
  /// maintained under every policy, they are cheap telemetry).
  std::unordered_map<int, double> service_est_ MENOS_GUARDED_BY(mutex_);
  double straggler_ratio_ MENOS_GUARDED_BY(mutex_) = 2.0;
  double promote_slack_ MENOS_GUARDED_BY(mutex_) = 4.0;
  /// Seconds source for the timestamps above (defaults to steady clock).
  std::function<double()> clock_ MENOS_GUARDED_BY(mutex_);
  /// Grants produced under the lock, dispatched after it drops. Always
  /// empty between public calls (every mutator drains it before returning).
  std::vector<Grant> pending_grants_ MENOS_GUARDED_BY(mutex_);
  /// Pressure events buffered the same way (one per reclaim pass).
  std::vector<PressureEvent> pending_pressure_ MENOS_GUARDED_BY(mutex_);
};

}  // namespace menos::sched
