// Capped exponential backoff with seeded jitter.
//
// The client-side WAN recovery loop (core::Client) sleeps this policy's
// delays between reconnect attempts. Jitter decorrelates clients that lost
// the same link at the same moment (thundering herd on the shared server)
// while staying reproducible: the jitter stream is an ordinary util::Rng,
// so a given seed yields the same backoff sequence on every run.
#pragma once

#include "util/rng.h"

namespace menos::util {

struct RetryPolicy {
  /// Reconnect attempts per failed RPC before giving up (StateError).
  int max_attempts = 8;
  /// First backoff; attempt k sleeps ~initial * multiplier^k, capped.
  double initial_backoff_s = 0.05;
  double max_backoff_s = 2.0;
  double multiplier = 2.0;
  /// Fractional jitter: the delay is scaled by a uniform draw from
  /// [1 - jitter, 1 + jitter]. 0 disables jitter (and the rng draw).
  double jitter = 0.2;
  /// Scales every delay; 0 = no sleeping (tests exercise the retry path at
  /// zero wall-clock cost, mirroring NetworkConditioner::time_scale).
  double time_scale = 1.0;

  /// Backoff before retry number `attempt` (0-based). Consumes one rng
  /// draw iff jitter > 0.
  double backoff_s(int attempt, Rng& rng) const noexcept;
};

}  // namespace menos::util
