# Empty compiler generated dependencies file for menos_gpusim.
# This may be replaced when dependencies are built.
