file(REMOVE_RECURSE
  "libmenos_quant.a"
)
