#include "util/executor.h"

#include <utility>

#include "check/schedule.h"
#include "util/check.h"
#include "util/logging.h"

namespace menos::util {

TaskPool::TaskPool(int width) : width_(width) {
  MENOS_CHECK_MSG(width >= 1, "TaskPool width must be >= 1, got " << width);
  workers_.reserve(static_cast<std::size_t>(width_));
  for (int i = 0; i < width_; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

TaskPool::~TaskPool() { stop_and_join(); }

void TaskPool::post(std::function<void()> task) {
  if (!task) return;
  {
    MutexLock lock(mutex_);
    if (stopping_) return;  // producers are already winding down
    tasks_.push_back(Task{next_task_id_++, std::move(task)});
  }
  cv_.notify_one();
}

void TaskPool::stop_and_join() {
  {
    MutexLock lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void TaskPool::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (tasks_.empty() && !stopping_) cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ && drained
      std::size_t index = 0;
      if (check::SchedulerHook* hook = check::scheduler_hook()) {
        // Schedule exploration: let the installed hook choose which ready
        // task runs. The id buffer is only built when a hook is live, so
        // production runs pay one atomic load here and nothing else.
        std::vector<std::uint64_t> ids;
        ids.reserve(tasks_.size());
        for (const Task& t : tasks_) ids.push_back(t.id);
        index = hook->pick(ids.data(), ids.size());
        if (index >= tasks_.size()) index = 0;  // defensive: bad hook
      }
      task = std::move(tasks_[index].fn);
      tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(index));
    }
    try {
      task();
    } catch (const std::exception& e) {
      MENOS_LOG(Error) << "TaskPool task threw: " << e.what();
    } catch (...) {
      MENOS_LOG(Error) << "TaskPool task threw a non-std exception";
    }
  }
}

// One shared queue guarded by its own mutex; at most one drain task is in
// flight on the pool at a time (`running_`), which is what serializes the
// strand without pinning it to a worker.
struct Strand::Impl : std::enable_shared_from_this<Strand::Impl> {
  explicit Impl(TaskPool& pool) : pool(&pool) {}

  void post(std::function<void()> task) {
    bool schedule = false;
    {
      MutexLock lock(mutex);
      pending.push_back(std::move(task));
      if (!running) {
        running = true;
        schedule = true;
      }
    }
    if (schedule) schedule_drain();
  }

  void schedule_drain() {
    pool->post([self = shared_from_this()] { self->drain(); });
  }

  void drain() {
    // Bounded batch per pool task so one chatty strand cannot starve the
    // others; leftover work is reposted to the back of the pool queue.
    constexpr int kBatch = 16;
    for (int i = 0; i < kBatch; ++i) {
      std::function<void()> task;
      {
        MutexLock lock(mutex);
        if (pending.empty()) {
          running = false;
          return;
        }
        task = std::move(pending.front());
        pending.pop_front();
      }
      try {
        task();
      } catch (const std::exception& e) {
        MENOS_LOG(Error) << "Strand task threw: " << e.what();
      } catch (...) {
        MENOS_LOG(Error) << "Strand task threw a non-std exception";
      }
    }
    bool repost = false;
    {
      MutexLock lock(mutex);
      if (pending.empty()) {
        running = false;
      } else {
        repost = true;  // keep `running` set: we still own the drain
      }
    }
    if (repost) schedule_drain();
  }

  TaskPool* pool;
  Mutex mutex{"util.strand", 68};
  std::deque<std::function<void()>> pending MENOS_GUARDED_BY(mutex);
  bool running MENOS_GUARDED_BY(mutex) = false;
};

Strand::Strand(TaskPool& pool) : impl_(std::make_shared<Impl>(pool)) {}

void Strand::post(std::function<void()> task) {
  impl_->post(std::move(task));
}

}  // namespace menos::util
