#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/bytes.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/queue.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace menos::util {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    MENOS_CHECK_MSG(1 == 2, "math is broken: " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken: 42"),
              std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  MENOS_CHECK(1 + 1 == 2);
  MENOS_CHECK_MSG(true, "never evaluated");
}

TEST(Check, OutOfMemoryCarriesSizes) {
  try {
    throw OutOfMemory("boom", 100, 40);
  } catch (const OutOfMemory& e) {
    EXPECT_EQ(e.requested(), 100u);
    EXPECT_EQ(e.available(), 40u);
  }
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng root(5);
  Rng a = root.fork();
  Rng b = root.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Bytes, Formatting) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1500), "1.5 KB");
  EXPECT_EQ(format_bytes(23800 * kMB), "23.8 GB");
  EXPECT_NEAR(to_gb(32 * kGB), 32.0, 1e-9);
  EXPECT_NEAR(to_mb(246 * kMB), 246.0, 1e-9);
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesWhole) {
  const char* s = "hello world";
  const std::uint32_t whole = crc32(s, 11);
  const std::uint32_t part = crc32(s + 5, 6, crc32(s, 5));
  EXPECT_EQ(whole, part);
}

TEST(Crc32, DetectsCorruption) {
  std::string s = "payload";
  const std::uint32_t before = crc32(s.data(), s.size());
  s[3] ^= 0x01;
  EXPECT_NE(before, crc32(s.data(), s.size()));
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, CloseDrainsThenNullopt) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
  q.push(8);  // dropped
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  int count = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, count);
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, 100);
}

TEST(Notification, WaitAndReset) {
  Notification n;
  EXPECT_FALSE(n.notified());
  n.notify();
  n.wait_and_reset();
  EXPECT_FALSE(n.notified());
}

TEST(Notification, CrossThreadWakeup) {
  Notification n;
  std::thread waker([&] { n.notify(); });
  n.wait();
  waker.join();
}

TEST(WaitGroup, WaitsForAll) {
  WaitGroup wg;
  std::atomic<int> done{0};
  wg.add(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      ++done;
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(done.load(), 4);
  for (auto& t : threads) t.join();
}

TEST(RunningStat, MeanMinMax) {
  RunningStat s;
  s.add(1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.total(), 6.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Trace, JsonlEscapesSpecialCharactersInNames) {
  // Regression: event names containing quotes, backslashes or control
  // characters used to be emitted raw, producing lines no JSON parser
  // accepts.
  EventTrace trace(8);
  trace.record(TraceCategory::Session, "he said \"hi\"", 1);
  trace.record(TraceCategory::Session, "path\\to\\thing", 2);
  trace.record(TraceCategory::Session, std::string("tab\there\nnl\x01"), 3);
  const std::string out = trace.to_jsonl();
  EXPECT_NE(out.find("\"name\":\"he said \\\"hi\\\"\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"name\":\"path\\\\to\\\\thing\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"name\":\"tab\\there\\nnl\\u0001\""), std::string::npos)
      << out;
  // No raw control characters survive anywhere in the output.
  for (char c : out) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control character in jsonl output";
  }
}

TEST(RetryPolicy, ExponentialGrowthAndCap) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.max_backoff_s = 1.0;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_s(0, rng), 0.1);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1, rng), 0.2);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2, rng), 0.4);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3, rng), 0.8);
  EXPECT_DOUBLE_EQ(policy.backoff_s(4, rng), 1.0);   // capped
  EXPECT_DOUBLE_EQ(policy.backoff_s(40, rng), 1.0);  // no overflow blow-up
}

TEST(RetryPolicy, JitterIsSeededAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.1;
  policy.jitter = 0.2;
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 8; ++i) {
    const double da = policy.backoff_s(i, a);
    const double db = policy.backoff_s(i, b);
    EXPECT_DOUBLE_EQ(da, db);  // same seed, same schedule
    const double base =
        std::min(policy.max_backoff_s,
                 policy.initial_backoff_s * std::pow(policy.multiplier, i));
    EXPECT_GE(da, base * (1.0 - policy.jitter));
    EXPECT_LE(da, base * (1.0 + policy.jitter));
  }
}

TEST(RetryPolicy, ZeroJitterConsumesNoRngDraws) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  Rng rng(5);
  Rng untouched(5);
  (void)policy.backoff_s(0, rng);
  (void)policy.backoff_s(1, rng);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(RetryPolicy, TimeScaleZeroSleepsNothing) {
  RetryPolicy policy;
  policy.time_scale = 0.0;
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(policy.backoff_s(i, rng), 0.0);
  }
}

}  // namespace
}  // namespace menos::util
