file(REMOVE_RECURSE
  "libmenos_tensor.a"
)
