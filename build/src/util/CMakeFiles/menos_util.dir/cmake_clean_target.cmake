file(REMOVE_RECURSE
  "libmenos_util.a"
)
