
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/inproc.cc" "src/net/CMakeFiles/menos_net.dir/inproc.cc.o" "gcc" "src/net/CMakeFiles/menos_net.dir/inproc.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/menos_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/menos_net.dir/message.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/menos_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/menos_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/menos_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/menos_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/menos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/menos_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/menos_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
