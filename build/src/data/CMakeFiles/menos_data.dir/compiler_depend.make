# Empty compiler generated dependencies file for menos_data.
# This may be replaced when dependencies are built.
