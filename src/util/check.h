// Error-handling primitives for the Menos codebase.
//
// Philosophy (per the C++ Core Guidelines, E.2/E.3): exceptions signal
// violations of function preconditions and unrecoverable runtime failures;
// status-bearing return values are used only on I/O paths where failure is
// part of normal operation (see net/transport.h).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace menos {

/// Root of the Menos exception hierarchy. Everything thrown on purpose by
/// this library derives from Error, so callers can catch one type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad shape, bad argument...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A simulated device ran out of memory. Carries the shortfall so the
/// scheduler and tests can inspect it.
class OutOfMemory : public Error {
 public:
  OutOfMemory(const std::string& what, std::size_t requested,
              std::size_t available)
      : Error(what), requested_(requested), available_(available) {}
  std::size_t requested() const noexcept { return requested_; }
  std::size_t available() const noexcept { return available_; }

 private:
  std::size_t requested_;
  std::size_t available_;
};

/// An operation was attempted in a state that does not permit it.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Wire-format corruption or protocol violation detected by net/.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind,
                                             const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

/// DCHECK failures abort instead of throwing: they fire from noexcept
/// contexts (Device::deallocate) and signal internal invariant breakage,
/// not caller error. Direct std::cerr so the diagnostic survives even if
/// the logging subsystem is mid-teardown. NOLINT(iostream-side-channel)
[[noreturn]] inline void dcheck_failure(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "MENOS_DCHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  os << '\n';
  std::cerr << os.str() << std::flush;  // NOLINT(iostream-side-channel)
  std::abort();
}

}  // namespace detail
}  // namespace menos

/// Precondition check: throws menos::InvalidArgument on failure. Always on
/// (these guard API misuse, not internal bugs, so they stay in release
/// builds — the cost is negligible next to tensor math).
#define MENOS_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::menos::detail::throw_check_failure("MENOS_CHECK", #cond, __FILE__, \
                                           __LINE__, "");                  \
    }                                                                      \
  } while (false)

/// Like MENOS_CHECK but with a streamed message:
///   MENOS_CHECK_MSG(a == b, "size mismatch: " << a << " vs " << b);
#define MENOS_CHECK_MSG(cond, stream_expr)                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream menos_check_os_;                                  \
      menos_check_os_ << stream_expr;                                      \
      ::menos::detail::throw_check_failure("MENOS_CHECK", #cond, __FILE__, \
                                           __LINE__, menos_check_os_.str()); \
    }                                                                      \
  } while (false)

/// Debug-only invariant check. On when NDEBUG is unset (Debug builds) or
/// when MENOS_FORCE_DCHECKS is defined; compiled out otherwise. Unlike
/// MENOS_CHECK it *aborts* (with the expression, location and message on
/// stderr) instead of throwing, so it is safe in noexcept functions —
/// SimGpu's deallocate uses it to enforce the "bytes must match the
/// original request" contract even when MENOS_AUDIT_ALLOC is off.
#if !defined(NDEBUG) || defined(MENOS_FORCE_DCHECKS)
#define MENOS_DCHECK_IS_ON 1
#else
#define MENOS_DCHECK_IS_ON 0
#endif

#if MENOS_DCHECK_IS_ON
#define MENOS_DCHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::menos::detail::dcheck_failure(#cond, __FILE__, __LINE__, "");   \
    }                                                                   \
  } while (false)
#define MENOS_DCHECK_MSG(cond, stream_expr)                             \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream menos_dcheck_os_;                              \
      menos_dcheck_os_ << stream_expr;                                  \
      ::menos::detail::dcheck_failure(#cond, __FILE__, __LINE__,        \
                                      menos_dcheck_os_.str());          \
    }                                                                   \
  } while (false)
#else
#define MENOS_DCHECK(cond) \
  do {                     \
  } while (false)
#define MENOS_DCHECK_MSG(cond, stream_expr) \
  do {                                      \
  } while (false)
#endif
