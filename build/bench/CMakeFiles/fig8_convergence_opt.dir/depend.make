# Empty dependencies file for fig8_convergence_opt.
# This may be replaced when dependencies are built.
