// Shared serving executor: the fixed worker pool that drives every
// ServingSession state machine (docs/ARCHITECTURE.md).
//
// Width resolution (resolve_width): an explicit ServerConfig value wins,
// then the MENOS_EXECUTOR_THREADS environment variable (so CI can force
// heavy interleaving on few workers), then min(8, hardware_concurrency).
#pragma once

#include "util/executor.h"

namespace menos::core {

class Executor {
 public:
  /// `configured` <= 0 means "resolve from environment/hardware".
  explicit Executor(int configured_width = 0);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  static int resolve_width(int configured);

  util::TaskPool& pool() noexcept { return pool_; }
  util::Strand make_strand() { return util::Strand(pool_); }
  int width() const noexcept { return pool_.width(); }

  /// Drain queued events and join the workers. Idempotent; called by
  /// Server::stop after the last session has finished.
  void stop_and_join() { pool_.stop_and_join(); }

 private:
  util::TaskPool pool_;
};

}  // namespace menos::core
