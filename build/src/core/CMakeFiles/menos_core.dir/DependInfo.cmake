
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/menos_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/menos_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/menos_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/menos_core.dir/client.cc.o.d"
  "/root/repo/src/core/parameter_store.cc" "src/core/CMakeFiles/menos_core.dir/parameter_store.cc.o" "gcc" "src/core/CMakeFiles/menos_core.dir/parameter_store.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/menos_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/menos_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/menos_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/menos_core.dir/server.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/menos_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/menos_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/menos_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/menos_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/menos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/menos_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/menos_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/menos_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/menos_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/menos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
