#include "net/faulty.h"

#include <chrono>
#include <thread>
#include <utility>

namespace menos::net {
namespace {

class FaultyConnection final : public Connection {
 public:
  FaultyConnection(std::unique_ptr<Connection> inner,
                   std::shared_ptr<FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  bool send(const Message& message) override {
    switch (injector_->next_send_action()) {
      case FaultInjector::Action::Kill:
        // The frame is lost in flight and the link is gone: the peer's
        // receive() drains and returns nullopt, our own next call fails.
        inner_->close();
        return false;
      case FaultInjector::Action::Delay: {
        const double s =
            injector_->plan().delay_s * injector_->plan().time_scale;
        if (s > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(s));
        }
        break;
      }
      default:
        break;
    }
    return inner_->send(message);
  }

  std::optional<Message> receive() override {
    switch (injector_->next_receive_action()) {
      case FaultInjector::Action::Kill:
        inner_->close();
        return std::nullopt;  // mid-frame disconnect
      case FaultInjector::Action::Corrupt:
        // Real corruption is caught by the frame CRC and surfaces as
        // ProtocolError; the payload is never delivered altered. Kill the
        // link too — a stream that lost framing cannot be resynchronized.
        inner_->close();
        throw ProtocolError("injected frame corruption");
      default:
        break;
    }
    return inner_->receive();
  }

  RecvStatus try_receive(Message* out) override {
    // Probe the inner link first and only consume a fault draw when a real
    // frame crossed the boundary — Empty polls must not advance the
    // deterministic fault stream, or the schedule would depend on poll
    // timing instead of on frame count.
    const RecvStatus status = inner_->try_receive(out);
    if (status != RecvStatus::Frame) return status;
    switch (injector_->next_receive_action()) {
      case FaultInjector::Action::Kill:
        inner_->close();
        return RecvStatus::Closed;  // mid-frame disconnect
      case FaultInjector::Action::Corrupt:
        inner_->close();
        throw ProtocolError("injected frame corruption");
      default:
        return RecvStatus::Frame;
    }
  }

  void set_ready_hook(std::function<void()> hook) override {
    inner_->set_ready_hook(std::move(hook));
  }

  int poll_fd() const override { return inner_->poll_fd(); }

  void set_receive_timeout(double seconds) override {
    inner_->set_receive_timeout(seconds);
  }

  void close() override { inner_->close(); }

  std::uint64_t bytes_sent() const override { return inner_->bytes_sent(); }

 private:
  std::unique_ptr<Connection> inner_;
  std::shared_ptr<FaultInjector> injector_;
};

}  // namespace

std::unique_ptr<Connection> decorate_with_faults(
    std::unique_ptr<Connection> inner,
    std::shared_ptr<FaultInjector> injector) {
  if (inner == nullptr) return nullptr;
  return std::make_unique<FaultyConnection>(std::move(inner),
                                            std::move(injector));
}

FaultInjector::Action FaultInjector::draw_locked(double kill_prob,
                                                 double corrupt_prob,
                                                 double delay_prob) {
  ++stats_.frames_seen;
  if (stats_.frames_seen <= static_cast<std::uint64_t>(
                                plan_.skip_frames > 0 ? plan_.skip_frames : 0)) {
    return Action::None;
  }
  // One draw per frame regardless of configuration, so enabling a fault
  // class never shifts the schedule of another.
  const double u = rng_.next_double();
  const bool capped =
      plan_.max_faults >= 0 &&
      stats_.faults() >= static_cast<std::uint64_t>(plan_.max_faults);
  if (!capped) {
    if (u < kill_prob) return Action::Kill;
    if (u < kill_prob + corrupt_prob) return Action::Corrupt;
  }
  if (u < kill_prob + corrupt_prob + delay_prob) return Action::Delay;
  return Action::None;
}

FaultInjector::Action FaultInjector::next_send_action() {
  util::MutexLock lock(mutex_);
  const Action a =
      draw_locked(plan_.drop_send_prob, 0.0, plan_.delay_prob);
  if (a == Action::Kill) ++stats_.sends_dropped;
  if (a == Action::Delay) ++stats_.delays;
  return a;
}

FaultInjector::Action FaultInjector::next_receive_action() {
  util::MutexLock lock(mutex_);
  const Action a = draw_locked(plan_.drop_receive_prob,
                               plan_.corrupt_receive_prob, 0.0);
  if (a == Action::Kill) ++stats_.receives_dropped;
  if (a == Action::Corrupt) ++stats_.receives_corrupted;
  return a;
}

FaultStats FaultInjector::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

Dialer faulty_dialer(Dialer inner, std::shared_ptr<FaultInjector> injector) {
  return [inner = std::move(inner), injector = std::move(injector)]() {
    return decorate_with_faults(inner(), injector);
  };
}

}  // namespace menos::net
