file(REMOVE_RECURSE
  "libmenos_net.a"
)
