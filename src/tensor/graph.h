// Captured per-step op graphs (record once, replay every step).
//
// A fine-tuning session runs the SAME op sequence every step: the model is
// fixed, the batch shape is fixed, only the token ids / targets / weight
// values change. StepGraph exploits that. The first step runs eagerly with
// recording on (capture); every op in src/tensor/ops.cc reports itself via
// graph::detail::note, and the recorder rebuilds the step as a small op
// graph whose leaves are either *constants* (weight tensors — held by
// handle, so in-place optimizer updates are visible on replay) or *feeds*
// (the id vectors that change per step). Later steps replay the graph by
// dispatching the recorded nodes back through the public ops — autograd
// nodes are re-attached exactly as in eager mode, so backward() works
// unchanged and the loss curve is bit-identical to eager execution
// (asserted in tests/graph_test.cc).
//
// What replay buys:
//   * fused elementwise chains — add_bias+gelu and residual-add+layer_norm
//     are pattern-matched once at capture and replayed as the fused ops
//     (tensor::bias_gelu / tensor::fused_add_layer_norm), which make one
//     memory pass instead of two and attach tapes that reproduce the
//     composed backward bit-for-bit;
//   * preplanned buffer reuse — the graph knows every activation size in
//     advance; warm_allocator() pre-populates a mem::CachingAllocator so
//     the whole step replays as pool hits instead of cold segment growth;
//   * per-op cost attribution — replay times each node; cost_report()
//     aggregates per op kind, feeding the sim's calibration tables.
//
// Capture is conservative: any op the graph cannot reproduce (dropout's
// rng with p > 0) calls note_unsupported and the graph simply refuses to
// become ready() — callers fall back to eager execution, losing only the
// optimization, never correctness. tile_batch and repeat_heads (prefix
// adapters, GQA) are public replayable ops, so those models capture like
// any other. Ops with bespoke tape nodes (quantized matmul) record
// themselves via note_custom: the node carries a replay closure that
// re-dispatches the public op, so the closure's own autograd attachment
// runs again on replay and the result is bit-identical to eager.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace menos::tensor::graph {

enum class OpKind {
  Add, Sub, Mul, Scale, AddBias, Relu, Gelu, Silu,
  Reshape, Permute, ConcatDim1, SliceDim1, TileBatch, RepeatHeads,
  Matmul, Sum, Softmax, CausalSoftmax, LayerNorm, RmsNorm,
  Embedding, CrossEntropy, ToDevice,
  // Produced by the fusion pass only, never recorded directly.
  BiasGelu, FusedAddLayerNorm,
  // An op replayed through a captured closure (detail::note_custom);
  // opaque to the fusion pass.
  Custom,
};

/// Stable display name ("add", "matmul", "bias_gelu", ...).
const char* op_kind_name(OpKind kind) noexcept;

/// Replay-time cost attribution for one op kind, summed over all replays.
struct OpCost {
  const char* name = "";
  std::int64_t calls = 0;
  double millis = 0.0;
};

/// The per-step varying integer inputs (token ids, targets), in a fixed
/// order chosen by the caller. Pointers must outlive the capture/replay
/// call they are passed to; they are never retained.
using Feeds = std::vector<const std::vector<std::int32_t>*>;

class StepGraph {
 public:
  StepGraph();
  ~StepGraph();
  StepGraph(StepGraph&&) noexcept;
  StepGraph& operator=(StepGraph&&) noexcept;
  StepGraph(const StepGraph&) = delete;
  StepGraph& operator=(const StepGraph&) = delete;

  /// Run `fn` eagerly with recording on and return its result. Id vectors
  /// in `feeds` are matched by address against the id arguments ops
  /// receive: matches become replay-time feeds, everything else (e.g.
  /// position ids built inside the model) is baked into the graph. On any
  /// unsupported op the graph stays un-ready and `fn`'s eager result is
  /// still returned. Capture with gradients disabled records nothing.
  Tensor capture(const Feeds& feeds, const std::function<Tensor()>& fn);

  /// True after a successful capture: replay() may be called.
  bool ready() const noexcept;

  /// Why the last capture did not produce a replayable graph ("" if it
  /// did, or no capture ran yet).
  const char* failure_reason() const noexcept;

  /// True when `feeds` line up with the capture (same count and sizes).
  bool accepts(const Feeds& feeds) const noexcept;

  /// Execute the captured step with fresh feed values. Dispatches through
  /// the public tensor ops, so autograd works exactly as in eager mode.
  Tensor replay(const Feeds& feeds);

  /// Node count after fusion / number of chains the fusion pass collapsed.
  std::size_t size() const noexcept;
  int fused_chains() const noexcept;

  /// Byte size of every node output, in execution order — the step's
  /// activation allocation plan.
  std::vector<std::size_t> planned_bytes() const;

  /// Pre-populate `device`'s pool (if it is, or decorates, a
  /// mem::CachingAllocator) with the allocation plan, so replay's
  /// activations are pool hits from the first step. No-op otherwise.
  void warm_allocator(gpusim::Device& device) const;

  /// Per-kind replay cost, most expensive first. Empty before any replay.
  std::vector<OpCost> cost_report() const;

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

namespace detail {

/// Optional op attributes carried by a note. Pointer fields are copied by
/// the recorder during the call; they are never retained.
struct NoteAttrs {
  float f0 = 0.0f;          ///< scale factor / norm eps
  std::int32_t i0 = -1;     ///< cross_entropy ignore_index
  Index a = 0;              ///< slice start / embedding batch
  Index b = 0;              ///< slice len / embedding seq
  const Shape* shape = nullptr;               ///< reshape target
  const std::vector<int>* dims = nullptr;     ///< permute axes
  const std::vector<std::int32_t>* ids = nullptr;  ///< embedding/CE ids
  gpusim::Device* device = nullptr;           ///< to_device target
};

/// True while a StepGraph capture is recording on this thread.
bool capturing() noexcept;

/// Record one executed op (called by ops.cc just before returning). No-op
/// unless a capture is active on this thread.
void note(OpKind kind, std::initializer_list<Tensor> inputs,
          const Tensor& out, const NoteAttrs& attrs = {});

/// Same, for the two-output fused ops.
void note2(OpKind kind, std::initializer_list<Tensor> inputs,
           const Tensor& out0, const Tensor& out1,
           const NoteAttrs& attrs = {});

/// Mark the active capture (if any) as non-replayable. Called by ops the
/// graph cannot reproduce (dropout randomness).
void note_unsupported(const char* what);

/// Replay closure for a note_custom node: receives the replay-time input
/// tensors (same order as the note's `inputs`) and must re-dispatch the
/// public op so its autograd attachment happens again.
using CustomReplay = std::function<Tensor(const std::vector<Tensor>&)>;

/// Record an op with a bespoke tape node that the generic switch cannot
/// re-dispatch (e.g. quantized_matmul, whose weight operand is not a plain
/// Tensor). `name` must be a string literal (retained for cost_report);
/// `replay` typically captures the non-tensor operands by value.
void note_custom(const char* name, std::initializer_list<Tensor> inputs,
                 const Tensor& out, CustomReplay replay);

}  // namespace detail
}  // namespace menos::tensor::graph
