// Clang thread-safety analysis annotations.
//
// These macros expose Clang's `-Wthread-safety` static analysis to the
// codebase: data members declare which mutex guards them
// (MENOS_GUARDED_BY), functions declare which locks they need
// (MENOS_REQUIRES) or take (MENOS_ACQUIRE/MENOS_RELEASE), and the build
// turns violations into errors (`-Werror=thread-safety`, see the
// top-level CMakeLists and docs/ANALYSIS.md). Under GCC — which has no
// equivalent analysis — every macro expands to nothing, so annotated code
// compiles identically everywhere.
//
// Use them through `util/mutex.h`: the analysis only understands lock
// acquisitions it can see, so the annotated `menos::util::Mutex` wrapper
// (not raw `std::mutex`, whose libstdc++ methods carry no attributes) is
// mandatory for mutex members in src/ — enforced by tools/menos_lint.py.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MENOS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MENOS_THREAD_ANNOTATION
#define MENOS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// The annotated type is a lockable capability ("mutex").
#define MENOS_CAPABILITY(name) MENOS_THREAD_ANNOTATION(capability(name))

/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor (std::lock_guard shape).
#define MENOS_SCOPED_CAPABILITY MENOS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define MENOS_GUARDED_BY(x) MENOS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define MENOS_PT_GUARDED_BY(x) MENOS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define MENOS_REQUIRES(...) \
  MENOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the listed capabilities NOT held (guards
/// against self-deadlock on non-recursive mutexes).
#define MENOS_EXCLUDES(...) MENOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define MENOS_ACQUIRE(...) \
  MENOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define MENOS_RELEASE(...) \
  MENOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; holds it iff the return value
/// equals `result` (first argument).
#define MENOS_TRY_ACQUIRE(...) \
  MENOS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define MENOS_RETURN_CAPABILITY(x) MENOS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Use sparingly
/// and leave a comment saying why (see docs/ANALYSIS.md).
#define MENOS_NO_THREAD_SAFETY_ANALYSIS \
  MENOS_THREAD_ANNOTATION(no_thread_safety_analysis)
