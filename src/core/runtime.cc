#include "core/runtime.h"

#include <cstring>

namespace menos::core {

const char* serving_mode_name(ServingMode mode) noexcept {
  switch (mode) {
    case ServingMode::MenosOnDemand:            return "menos-on-demand";
    case ServingMode::MenosReleaseEarly:        return "menos-release-early";
    case ServingMode::MenosReleaseAfterBackward:return "menos-release-after-backward";
    case ServingMode::MenosPreserveAll:         return "menos-preserve-all";
    case ServingMode::VanillaTaskSwap:          return "vanilla-task-swap";
  }
  return "?";
}

bool shares_base_model(ServingMode mode) noexcept {
  return mode != ServingMode::VanillaTaskSwap;
}

bool holds_across_iteration(ServingMode mode) noexcept {
  return mode == ServingMode::MenosReleaseAfterBackward ||
         mode == ServingMode::MenosPreserveAll ||
         mode == ServingMode::VanillaTaskSwap;
}

net::WireTensor to_wire(const tensor::Tensor& t) {
  net::WireTensor w;
  w.shape.assign(t.shape().begin(), t.shape().end());
  w.data = t.to_vector();
  return w;
}

tensor::Tensor from_wire(const net::WireTensor& w, gpusim::Device& device,
                         bool requires_grad) {
  tensor::Shape shape(w.shape.begin(), w.shape.end());
  return tensor::Tensor::from_vector(w.data, std::move(shape), device,
                                     requires_grad);
}

}  // namespace menos::core
