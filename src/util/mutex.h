// Annotated mutex primitives — the repo-wide replacement for raw
// std::mutex / std::condition_variable members.
//
// Clang's thread-safety analysis (util/thread_annotations.h) can only
// track locks whose acquire/release points carry attributes. libstdc++'s
// std::mutex has none, so a `std::lock_guard<std::mutex>` is invisible to
// the analysis and every MENOS_GUARDED_BY access would (correctly) be
// flagged as unprotected. Mutex/MutexLock/CondVar below are thin,
// zero-overhead-when-inlined wrappers whose methods are annotated, which
// makes the whole locking discipline machine-checkable. tools/menos_lint.py
// rejects raw std::mutex members in src/ for this reason.
//
// CondVar deliberately exposes only un-predicated wait(Mutex&): write the
// `while (!condition) cv.wait(mu);` loop in the calling function so the
// guarded reads in `condition` sit in an analysis context that can see the
// held lock (a predicate lambda would be analyzed as a separate, lockless
// function).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace menos::util {

class CondVar;

/// Annotated standard mutex.
class MENOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MENOS_ACQUIRE() { m_.lock(); }
  void unlock() MENOS_RELEASE() { m_.unlock(); }
  bool try_lock() MENOS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock (std::lock_guard shape) understood by the analysis.
class MENOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MENOS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  /// Adopt an already-held mutex; the destructor still releases it.
  struct Adopt {};
  MutexLock(Mutex& mu, Adopt) MENOS_REQUIRES(mu) : mu_(mu) {}

  ~MutexLock() MENOS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. wait() atomically releases and
/// reacquires `mu`; from the analysis' point of view the lock is held
/// throughout, which matches the invariant callers rely on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MENOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Timed wait. Returns false on timeout, true when notified (subject to
  /// spurious wakeups — callers keep their predicate loop either way).
  bool wait_for(Mutex& mu, double seconds) MENOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    const auto status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();  // ownership stays with the caller's MutexLock
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace menos::util
