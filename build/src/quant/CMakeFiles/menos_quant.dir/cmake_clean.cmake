file(REMOVE_RECURSE
  "CMakeFiles/menos_quant.dir/quant_linear.cc.o"
  "CMakeFiles/menos_quant.dir/quant_linear.cc.o.d"
  "CMakeFiles/menos_quant.dir/quantize.cc.o"
  "CMakeFiles/menos_quant.dir/quantize.cc.o.d"
  "libmenos_quant.a"
  "libmenos_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
