// Thread pool unit tests plus the determinism contract of the parallel
// tensor kernels: results must be bit-identical for MENOS_THREADS 1, 2, 8.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/thread_pool.h"

namespace menos {
namespace {

using menos::testing::host_device;
using tensor::Index;
using tensor::Tensor;
using util::ThreadPool;

/// Restore the pool to a single thread when a test ends, whatever happened.
class PoolWidthGuard {
 public:
  ~PoolWidthGuard() { ThreadPool::instance().set_num_threads(1); }
};

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  PoolWidthGuard guard;
  ThreadPool::instance().set_num_threads(4);
  const Index n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  util::parallel_for(0, n, 1, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (Index i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps) {
  PoolWidthGuard guard;
  ThreadPool::instance().set_num_threads(2);
  int calls = 0;
  util::parallel_for(5, 5, 1, [&](Index, Index) { ++calls; });
  util::parallel_for(7, 3, 1, [&](Index, Index) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SmallRangeRunsSeriallyInOneCall) {
  PoolWidthGuard guard;
  ThreadPool::instance().set_num_threads(8);
  int calls = 0;
  Index seen_lo = -1, seen_hi = -1;
  util::parallel_for(2, 10, 100, [&](Index lo, Index hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 2);
  EXPECT_EQ(seen_hi, 10);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  PoolWidthGuard guard;
  ThreadPool& pool = ThreadPool::instance();
  pool.set_num_threads(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 1,
                        [&](Index lo, Index) {
                          if (lo >= 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive the failed region and run the next one cleanly.
  std::atomic<Index> total{0};
  pool.parallel_for(0, 1000, 1, [&](Index lo, Index hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, NestedCallsDegradeToSerial) {
  PoolWidthGuard guard;
  ThreadPool::instance().set_num_threads(4);
  const Index rows = 64, cols = 64;
  std::vector<std::atomic<int>> hits(rows * cols);
  for (auto& h : hits) h.store(0);
  util::parallel_for(0, rows, 1, [&](Index r0, Index r1) {
    for (Index r = r0; r < r1; ++r) {
      // Inner parallel_for from a pool thread must run inline, not deadlock.
      util::parallel_for(0, cols, 1, [&](Index c0, Index c1) {
        for (Index c = c0; c < c1; ++c) {
          hits[static_cast<std::size_t>(r * cols + c)]++;
        }
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, RepeatedResizeStartsAndStopsCleanly) {
  PoolWidthGuard guard;
  ThreadPool& pool = ThreadPool::instance();
  for (int width : {1, 3, 1, 8, 2}) {
    pool.set_num_threads(width);
    EXPECT_EQ(pool.num_threads(), width);
    std::atomic<Index> total{0};
    pool.parallel_for(0, 4096, 64, [&](Index lo, Index hi) {
      total += hi - lo;
    });
    EXPECT_EQ(total.load(), 4096);
  }
}

// ----- determinism across thread counts -----

std::vector<float> run_matmul_kernels(int width) {
  ThreadPool::instance().set_num_threads(width);
  util::Rng rng(1234);
  const Index m = 37, k = 53, n = 41;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  rng.fill_normal(a.data(), a.size(), 1.0f);
  rng.fill_normal(b.data(), b.size(), 1.0f);

  std::vector<float> out;
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  tensor::kernels::mm(a.data(), b.data(), c.data(), m, k, n);
  out.insert(out.end(), c.begin(), c.end());

  std::vector<float> c_nt(static_cast<std::size_t>(m * k), 0.0f);
  // A:[m,n] x B:[k,n]^T with n as the shared width.
  std::vector<float> a2(static_cast<std::size_t>(m * n));
  rng.fill_normal(a2.data(), a2.size(), 1.0f);
  tensor::kernels::mm_nt(a2.data(), b.data(), c_nt.data(), m, n, k);
  out.insert(out.end(), c_nt.begin(), c_nt.end());

  std::vector<float> c_tn(static_cast<std::size_t>(k * n), 0.0f);
  tensor::kernels::mm_tn(a.data(), b.data(), c_tn.data(), m, k, n);
  out.insert(out.end(), c_tn.begin(), c_tn.end());
  return out;
}

/// One tiny training step exercising matmul, layer_norm and cross_entropy
/// in forward AND backward; returns every output and gradient produced.
std::vector<float> run_train_step(int width) {
  ThreadPool::instance().set_num_threads(width);
  util::Rng rng(99);
  const Index batch = 6, dim = 40, vocab = 50;
  Tensor x = testing::random_leaf({batch, dim}, rng, host_device());
  Tensor w = testing::random_leaf({dim, vocab}, rng, host_device());
  Tensor gamma = testing::random_leaf({dim}, rng, host_device());
  Tensor beta = testing::random_leaf({dim}, rng, host_device());
  std::vector<std::int32_t> targets;
  for (Index i = 0; i < batch; ++i) {
    targets.push_back(static_cast<std::int32_t>((i * 17) % vocab));
  }

  Tensor h = tensor::layer_norm(x, gamma, beta);
  Tensor logits = tensor::matmul(h, w);
  Tensor loss = tensor::cross_entropy(logits, targets);
  tensor::backward(loss);

  std::vector<float> out = loss.to_vector();
  for (const Tensor& t : {logits, h}) {
    const std::vector<float> v = t.to_vector();
    out.insert(out.end(), v.begin(), v.end());
  }
  for (const Tensor& t : {x, w, gamma, beta}) {
    const std::vector<float> v = t.grad().to_vector();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": results differ between thread counts";
}

TEST(ParallelDeterminism, MatmulKernelsBitIdenticalAcrossWidths) {
  PoolWidthGuard guard;
  const std::vector<float> serial = run_matmul_kernels(1);
  expect_bit_identical(serial, run_matmul_kernels(2), "kernels @2 threads");
  expect_bit_identical(serial, run_matmul_kernels(8), "kernels @8 threads");
}

TEST(ParallelDeterminism, TrainStepBitIdenticalAcrossWidths) {
  PoolWidthGuard guard;
  const std::vector<float> serial = run_train_step(1);
  expect_bit_identical(serial, run_train_step(2), "train step @2 threads");
  expect_bit_identical(serial, run_train_step(8), "train step @8 threads");
}

}  // namespace
}  // namespace menos
