#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "util/check.h"

namespace menos::data {
namespace {

TEST(CharTokenizer, RoundTrip) {
  CharTokenizer tok;
  const std::string text = "Hello, World! 42\n";
  auto ids = tok.encode(text);
  EXPECT_EQ(ids.size(), text.size());
  EXPECT_EQ(tok.decode(ids), text);
}

TEST(CharTokenizer, UnknownCharsMapToSpace) {
  CharTokenizer tok;
  auto ids = tok.encode("a\tb");
  EXPECT_EQ(tok.decode(ids), "a b");
}

TEST(CharTokenizer, VocabBoundsRespected) {
  CharTokenizer tok;
  auto ids = tok.encode("The quick brown fox; 123!");
  for (auto id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, tok.vocab_size());
  }
  EXPECT_THROW(tok.decode({tok.vocab_size()}), InvalidArgument);
}

TEST(Corpus, DeterministicFromSeed) {
  Corpus a = make_shakespeare_like(1000, 42);
  Corpus b = make_shakespeare_like(1000, 42);
  Corpus c = make_shakespeare_like(1000, 43);
  EXPECT_EQ(a.text, b.text);
  EXPECT_NE(a.text, c.text);
  EXPECT_EQ(a.text.size(), 1000u);
}

TEST(Corpus, WikitextAndShakespeareDiffer) {
  EXPECT_NE(make_shakespeare_like(500, 1).text,
            make_wikitext_like(500, 1).text);
}

TEST(Corpus, TextIsLearnableStructure) {
  // Low entropy: drawn from a small lexicon, so the distinct-word count is
  // bounded (the property that makes perplexity drop under fine-tuning).
  Corpus c = make_shakespeare_like(5000, 7);
  std::set<std::string> words;
  std::string word;
  for (char ch : c.text) {
    if (std::isalpha(static_cast<unsigned char>(ch)) != 0) {
      word.push_back(static_cast<char>(std::tolower(ch)));
    } else if (!word.empty()) {
      words.insert(word);
      word.clear();
    }
  }
  EXPECT_LE(words.size(), 30u);
  EXPECT_GE(words.size(), 10u);
}

TEST(DataLoader, BatchGeometry) {
  CharTokenizer tok;
  auto tokens = tok.encode(make_shakespeare_like(2000, 3).text);
  DataLoader loader(tokens, 4, 16, 9);
  Batch b = loader.next();
  EXPECT_EQ(b.batch_size, 4);
  EXPECT_EQ(b.seq_len, 16);
  EXPECT_EQ(b.inputs.size(), 64u);
  EXPECT_EQ(b.targets.size(), 64u);
}

TEST(DataLoader, TargetsAreNextTokens) {
  std::vector<std::int32_t> tokens;
  for (int i = 0; i < 100; ++i) tokens.push_back(i % 50);
  DataLoader loader(tokens, 2, 8, 1);
  for (int trial = 0; trial < 10; ++trial) {
    Batch b = loader.next();
    for (std::size_t i = 0; i + 1 < 8; ++i) {
      // Within a row, target[t] must equal input[t+1] (contiguous window).
      EXPECT_EQ(b.targets[i], b.inputs[i + 1]);
    }
  }
}

TEST(DataLoader, DeterministicPerSeed) {
  std::vector<std::int32_t> tokens(500, 0);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<std::int32_t>(i % 90);
  }
  DataLoader a(tokens, 2, 8, 42);
  DataLoader b(tokens, 2, 8, 42);
  DataLoader c(tokens, 2, 8, 43);
  Batch ba = a.next(), bb = b.next(), bc = c.next();
  EXPECT_EQ(ba.inputs, bb.inputs);
  EXPECT_NE(ba.inputs, bc.inputs);
}

TEST(DataLoader, RejectsDegenerateConfigs) {
  std::vector<std::int32_t> tokens(10, 1);
  EXPECT_THROW(DataLoader(tokens, 0, 4, 1), InvalidArgument);
  EXPECT_THROW(DataLoader(tokens, 2, 0, 1), InvalidArgument);
  EXPECT_THROW(DataLoader(tokens, 2, 10, 1), InvalidArgument);
}

}  // namespace
}  // namespace menos::data
