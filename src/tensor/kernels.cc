// Cache-blocked packed-panel matmul kernels (see kernels.h for the
// contract, docs/PERF.md for the design).
//
// Structure, outermost to innermost (the GotoBLAS/BLIS decomposition):
//
//   for jc : NC-wide column panels of C
//     for pc : KC-deep contraction panels
//       pack B[pc:pc+KC, jc:jc+NC] into contiguous NR-wide strips
//       parallel_for over output rows              <- the ONLY fork point
//         for ic : MC-tall row blocks of this thread's range
//           pack A[ic:ic+MC, pc:pc+KC] into MR-wide strips (thread scratch)
//           for each (MR x NR) tile: micro-kernel
//
// The micro-kernel keeps an MR x NR accumulator block in vector registers
// and adds one rank-1 update per contraction step p, p ascending. Because C
// round-trips through memory between KC-panels losslessly (float loads and
// stores are exact) and every a*b term is added individually, the value of
// every C element is the result of the SAME sequence of fused
// multiply-adds regardless of MC/NC/KC, chunk boundaries, or thread count
// — which is exactly what the serial *_ref kernels compute.
//
// Scratch never touches the gpusim Device layer: packing buffers are
// per-thread aligned pools from util/aligned.h (the `kernel-scratch` lint
// rule enforces this).
#include "tensor/kernels.h"

#include <algorithm>
#include <cstring>

#include "util/aligned.h"
#include "util/thread_pool.h"

namespace menos::tensor::kernels {
namespace {

// ----- architecture selection -----
//
// GNU vector extensions, not intrinsics: the same source compiles to SSE2,
// AVX2+FMA or AVX-512 depending on -march (see MENOS_NATIVE_ARCH in the
// top-level CMakeLists). Lane arithmetic is element-wise identical to the
// scalar form, so the choice affects speed only within one build; the
// determinism contract is per build, same as any -ffp-contract effect.

#if defined(__AVX512F__)
constexpr int kVecLanes = 16;
constexpr int kMR = 6;        // rows per register tile
constexpr int kNVecs = 2;     // vectors per tile row -> 12 accumulators
constexpr char kArchLabel[] = "avx512";
#elif defined(__AVX__)
constexpr int kVecLanes = 8;
constexpr int kMR = 4;
constexpr int kNVecs = 3;     // 12 ymm accumulators + 3 B + 1 broadcast
constexpr char kArchLabel[] = "avx2";
#else
constexpr int kVecLanes = 4;
constexpr int kMR = 4;
constexpr int kNVecs = 2;     // 8 xmm accumulators
constexpr char kArchLabel[] = "sse2";
#endif
constexpr int kNR = kVecLanes * kNVecs;  // cols per register tile

typedef float Vec __attribute__((vector_size(kVecLanes * sizeof(float))));

// Default cache blocking: A block (MC x KC) ~96 KiB stays in L2, the B
// panel (KC x NC) streams through L3, the B strip (KC x NR) lives in L1.
constexpr Index kDefaultMc = 96;
constexpr Index kDefaultNc = 512;
constexpr Index kDefaultKc = 256;

BlockConfig g_config;  // zeros = defaults; set between kernels only

Index resolved(Index value, Index fallback) {
  return value > 0 ? value : fallback;
}

// The scalar reduction loops (edge tiles, serial references) must make the
// SAME per-element rounding decisions as the vector micro-kernel, and a
// plain `acc += a[p]*b[p]` does not guarantee that: the compiler may
// contract it to an fma, leave it as mul+add, or — worst — partially
// vectorize it into a vmulps + sequential vaddss mix that keeps the
// summation order but rounds some products separately. madd() pins the
// choice explicitly: fused when the target ISA has FMA (what the
// vectorizer emits for the micro-kernel under -ffp-contract=fast), plain
// mul+add otherwise (SSE2 has no fma instruction, so the vector code
// rounds products separately too). One contraction decision per build,
// every path. The functions are additionally kept scalar so the
// vectorizer cannot re-mix them.
inline float madd(float acc, float a, float b) {
#if defined(__FMA__)
  return __builtin_fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

// Vector-lane counterpart of madd() with the SAME pinning rationale. The
// micro-kernel's update used to be written `acc += a * b`, leaving the
// fuse-or-not decision to -ffp-contract: GCC contracts that into vfmaddps
// only at -O2, not at -O0/-O1, so Debug builds rounded products separately
// while madd() stayed fused and the bit-identity suite diverged (the
// CHANGES.md PR 7 "Debug 30/31" failure). Spelling the fuse out per lane
// makes every optimisation level agree; GCC -O2 re-vectorizes this loop
// into the same packed vfmadd231ps the contracted form produced, so the
// Release kernels are unchanged.
inline Vec vmadd(Vec acc, float a, Vec b) {
#if defined(__FMA__)
  for (int l = 0; l < kVecLanes; ++l) acc[l] = __builtin_fmaf(a, b[l], acc[l]);
  return acc;
#else
  return acc + a * b;  // no fma instruction on this target; never contracted
#endif
}

#if defined(__GNUC__) && !defined(__clang__)
#define MENOS_SCALAR_ONLY __attribute__((optimize("no-tree-vectorize")))
#else
#define MENOS_SCALAR_ONLY
#endif

// Scratch slots (per thread, util::scratch_floats): 0 = A panels packed by
// whichever thread runs the row chunk, 1 = the shared B panel packed by
// the dispatching thread (or by each thread in the self-packing batched
// path — still its own slot, never shared).
constexpr int kScratchA = 0;
constexpr int kScratchB = 1;

// ----- packing -----
//
// A is packed contraction-major in MR-wide row strips: ap[s][p*MR + i]
// holds A-element (strip_row s*MR+i, contraction p). B likewise in NR-wide
// column strips: bp[s][p*NR + j]. Partial strips are zero-padded; padded
// lanes are computed and discarded, never stored.

/// `trans == false`: element (i, p) at a[i * lda + p] (A row-major).
/// `trans == true` : element (i, p) at a[p * lda + i] (A^T view).
void pack_a(const float* __restrict__ a, Index lda, bool trans, Index mc,
            Index kc, float* __restrict__ ap) {
  for (Index i0 = 0; i0 < mc; i0 += kMR) {
    const Index mr = std::min<Index>(kMR, mc - i0);
    if (trans) {
      for (Index p = 0; p < kc; ++p) {
        const float* src = a + p * lda + i0;
        for (Index ii = 0; ii < kMR; ++ii) {
          ap[p * kMR + ii] = ii < mr ? src[ii] : 0.0f;
        }
      }
    } else {
      for (Index p = 0; p < kc; ++p) {
        for (Index ii = 0; ii < kMR; ++ii) {
          ap[p * kMR + ii] = ii < mr ? a[(i0 + ii) * lda + p] : 0.0f;
        }
      }
    }
    ap += kc * kMR;
  }
}

/// `trans == false`: element (p, j) at b[p * ldb + j] (B row-major).
/// `trans == true` : element (p, j) at b[j * ldb + p] (B^T view).
void pack_b(const float* __restrict__ b, Index ldb, bool trans, Index kc,
            Index nc, float* __restrict__ bp) {
  for (Index j0 = 0; j0 < nc; j0 += kNR) {
    const Index nr = std::min<Index>(kNR, nc - j0);
    if (trans) {
      for (Index p = 0; p < kc; ++p) {
        for (Index jj = 0; jj < kNR; ++jj) {
          bp[p * kNR + jj] = jj < nr ? b[(j0 + jj) * ldb + p] : 0.0f;
        }
      }
    } else {
      for (Index p = 0; p < kc; ++p) {
        const float* src = b + p * ldb + j0;
        for (Index jj = 0; jj < kNR; ++jj) {
          bp[p * kNR + jj] = jj < nr ? src[jj] : 0.0f;
        }
      }
    }
    bp += kc * kNR;
  }
}

// ----- micro-kernels -----

/// Full MR x NR tile: C_tile += sum_p apack[p][:] (x) bpack[p][:], one
/// rank-1 update per p, kept entirely in vector registers.
void micro(const float* __restrict__ ap, const float* __restrict__ bp,
           float* __restrict__ c, Index ldc, Index kc) {
  Vec acc[kMR][kNVecs];
  for (int i = 0; i < kMR; ++i) {
    for (int v = 0; v < kNVecs; ++v) {
      std::memcpy(&acc[i][v], c + i * ldc + v * kVecLanes, sizeof(Vec));
    }
  }
  for (Index p = 0; p < kc; ++p) {
    Vec b[kNVecs];
    for (int v = 0; v < kNVecs; ++v) {
      std::memcpy(&b[v], bp + p * kNR + v * kVecLanes, sizeof(Vec));
    }
    const float* acol = ap + p * kMR;
    for (int i = 0; i < kMR; ++i) {
      const float a = acol[i];
      for (int v = 0; v < kNVecs; ++v) acc[i][v] = vmadd(acc[i][v], a, b[v]);
    }
  }
  for (int i = 0; i < kMR; ++i) {
    for (int v = 0; v < kNVecs; ++v) {
      std::memcpy(c + i * ldc + v * kVecLanes, &acc[i][v], sizeof(Vec));
    }
  }
}

/// Partial tile at the m/n edges: scalar, same per-element order.
MENOS_SCALAR_ONLY
void micro_edge(const float* __restrict__ ap, const float* __restrict__ bp,
                float* __restrict__ c, Index ldc, Index kc, Index mr,
                Index nr) {
  for (Index i = 0; i < mr; ++i) {
    for (Index j = 0; j < nr; ++j) {
      float acc = c[i * ldc + j];
      for (Index p = 0; p < kc; ++p) {
        acc = madd(acc, ap[p * kMR + i], bp[p * kNR + j]);
      }
      c[i * ldc + j] = acc;
    }
  }
}

// ----- panel drivers -----

/// Compute C rows [r0, r1) against one pre-packed B panel of `nc` columns
/// (kc deep). `a` addresses element (i, p) per `at`; `c` points at column 0
/// of the panel (the jc offset is applied by the caller).
void panel_rows(const float* a, Index lda, bool at, const float* bpack,
                float* c, Index ldc, Index r0, Index r1, Index kc, Index nc,
                Index mc_blk) {
  for (Index ic = r0; ic < r1; ic += mc_blk) {
    const Index mc = std::min(mc_blk, r1 - ic);
    const Index strips = (mc + kMR - 1) / kMR;
    float* apack = util::scratch_floats(
        kScratchA, static_cast<std::size_t>(strips * kMR * kc));
    pack_a(at ? a + ic : a + ic * lda, lda, at, mc, kc, apack);
    for (Index j0 = 0; j0 < nc; j0 += kNR) {
      const Index nr = std::min<Index>(kNR, nc - j0);
      const float* bp = bpack + (j0 / kNR) * kc * kNR;
      for (Index i0 = 0; i0 < mc; i0 += kMR) {
        const Index mr = std::min<Index>(kMR, mc - i0);
        const float* ap = apack + (i0 / kMR) * kc * kMR;
        float* cp = c + (ic + i0) * ldc + j0;
        if (mr == kMR && nr == kNR) {
          micro(ap, bp, cp, ldc, kc);
        } else {
          micro_edge(ap, bp, cp, ldc, kc, mr, nr);
        }
      }
    }
  }
}

/// Minimum rows per parallel chunk: at least one full register tile, and
/// enough flops (~2^18) to be worth shipping to another thread.
Index row_grain(Index k, Index n) {
  const Index flops_per_row = 2 * std::max<Index>(k, 1) * std::max<Index>(n, 1);
  const Index rows = (Index{1} << 18) / flops_per_row;
  return std::max<Index>(kMR, rows);
}

/// One C = A * B product, parallel over output rows. `at`/`bt` select the
/// transposed addressing of pack_a/pack_b; M/K/N are the logical
/// (output rows, contraction, output cols).
void gemm(const float* a, Index lda, bool at, const float* b, Index ldb,
          bool bt, float* c, Index M, Index K, Index N) {
  if (M <= 0 || K <= 0 || N <= 0) return;
  const BlockConfig blk = block_config();
  const Index grain = row_grain(K, N);
  for (Index jc = 0; jc < N; jc += blk.nc) {
    const Index nc = std::min(blk.nc, N - jc);
    const Index bstrips = (nc + kNR - 1) / kNR;
    for (Index pc = 0; pc < K; pc += blk.kc) {
      const Index kc = std::min(blk.kc, K - pc);
      float* bpack = util::scratch_floats(
          kScratchB, static_cast<std::size_t>(bstrips * kNR * kc));
      pack_b(bt ? b + jc * ldb + pc : b + pc * ldb + jc, ldb, bt, kc, nc,
             bpack);
      const float* abase = at ? a + pc * lda : a + pc;
      util::parallel_for(0, M, grain, [&](Index lo, Index hi) {
        panel_rows(abase, lda, at, bpack, c + jc, N, lo, hi, kc, nc, blk.mc);
      });
    }
  }
}

/// Serial single-thread variant computing only C rows [r0, r1), packing
/// its own B panels into this thread's scratch. Used inside the batched
/// fan-out, where the parallel_for already runs one level up.
void gemm_rows_selfpack(const float* a, Index lda, bool at, const float* b,
                        Index ldb, bool bt, float* c, Index r0, Index r1,
                        Index K, Index N) {
  if (r0 >= r1 || K <= 0 || N <= 0) return;
  const BlockConfig blk = block_config();
  for (Index jc = 0; jc < N; jc += blk.nc) {
    const Index nc = std::min(blk.nc, N - jc);
    const Index bstrips = (nc + kNR - 1) / kNR;
    for (Index pc = 0; pc < K; pc += blk.kc) {
      const Index kc = std::min(blk.kc, K - pc);
      float* bpack = util::scratch_floats(
          kScratchB, static_cast<std::size_t>(bstrips * kNR * kc));
      pack_b(bt ? b + jc * ldb + pc : b + pc * ldb + jc, ldb, bt, kc, nc,
             bpack);
      const float* abase = at ? a + pc * lda : a + pc;
      panel_rows(abase, lda, at, bpack, c + jc, N, r0, r1, kc, nc, blk.mc);
    }
  }
}

/// Fan a batch of independent products out over one flattened row space.
/// `fn(bi, i0, i1)` computes output rows [i0, i1) of batch item bi.
template <typename Fn>
void batched_fan_out(Index batch, Index rows, Index k, Index n,
                     const Fn& fn) {
  util::parallel_for(0, batch * rows, row_grain(k, n),
                     [&](Index r0, Index r1) {
    Index r = r0;
    while (r < r1) {
      const Index bi = r / rows;
      const Index i0 = r - bi * rows;
      const Index i1 = std::min(rows, i0 + (r1 - r));
      fn(bi, i0, i1);
      r += i1 - i0;
    }
  });
}

}  // namespace

// ----- public kernels -----

void mm(const float* a, const float* b, float* c, Index m, Index k,
        Index n) {
  gemm(a, k, false, b, n, false, c, m, k, n);
}

void mm_nt(const float* a, const float* b, float* c, Index m, Index n,
           Index k) {
  // C[m,k] = A[m,n] * B[k,n]^T: contraction over n, B addressed transposed.
  gemm(a, n, false, b, n, true, c, m, n, k);
}

void mm_tn(const float* a, const float* b, float* c, Index m, Index k,
           Index n) {
  // C[k,n] = A[m,k]^T * B[m,n]: contraction over m, A addressed transposed.
  gemm(a, k, true, b, n, false, c, k, m, n);
}

void mm_batched(const float* a, const float* b, float* c, Index batch,
                Index m, Index k, Index n, bool shared_b) {
  if (batch <= 0) return;
  if (shared_b) {
    // [batch, m, k] x [k, n] is one [batch*m, k] x [k, n] product.
    mm(a, b, c, batch * m, k, n);
    return;
  }
  if (batch == 1) {
    mm(a, b, c, m, k, n);
    return;
  }
  batched_fan_out(batch, m, k, n, [&](Index bi, Index i0, Index i1) {
    gemm_rows_selfpack(a + bi * m * k, k, false, b + bi * k * n, n, false,
                       c + bi * m * n, i0, i1, k, n);
  });
}

void mm_nt_batched(const float* a, const float* b, float* c, Index batch,
                   Index m, Index n, Index k, bool shared_b) {
  if (batch <= 0) return;
  if (shared_b) {
    mm_nt(a, b, c, batch * m, n, k);
    return;
  }
  if (batch == 1) {
    mm_nt(a, b, c, m, n, k);
    return;
  }
  batched_fan_out(batch, m, n, k, [&](Index bi, Index i0, Index i1) {
    gemm_rows_selfpack(a + bi * m * n, n, false, b + bi * k * n, n, true,
                       c + bi * m * k, i0, i1, n, k);
  });
}

void mm_tn_batched(const float* a, const float* b, float* c, Index batch,
                   Index m, Index k, Index n) {
  if (batch <= 0) return;
  if (batch == 1) {
    mm_tn(a, b, c, m, k, n);
    return;
  }
  batched_fan_out(batch, k, m, n, [&](Index bi, Index p0, Index p1) {
    gemm_rows_selfpack(a + bi * m * k, k, true, b + bi * m * n, n, false,
                       c + bi * k * n, p0, p1, m, n);
  });
}

// ----- serial references -----

MENOS_SCALAR_ONLY
void mm_ref(const float* a, const float* b, float* c, Index m, Index k,
            Index n) {
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      float acc = c[i * n + j];
      for (Index p = 0; p < k; ++p) acc = madd(acc, a[i * k + p], b[p * n + j]);
      c[i * n + j] = acc;
    }
  }
}

MENOS_SCALAR_ONLY
void mm_nt_ref(const float* a, const float* b, float* c, Index m, Index n,
               Index k) {
  for (Index i = 0; i < m; ++i) {
    for (Index p = 0; p < k; ++p) {
      float acc = c[i * k + p];
      for (Index j = 0; j < n; ++j) acc = madd(acc, a[i * n + j], b[p * n + j]);
      c[i * k + p] = acc;
    }
  }
}

MENOS_SCALAR_ONLY
void mm_tn_ref(const float* a, const float* b, float* c, Index m, Index k,
               Index n) {
  for (Index p = 0; p < k; ++p) {
    for (Index j = 0; j < n; ++j) {
      float acc = c[p * n + j];
      for (Index i = 0; i < m; ++i) acc = madd(acc, a[i * k + p], b[i * n + j]);
      c[p * n + j] = acc;
    }
  }
}

// ----- configuration -----

BlockConfig block_config() noexcept {
  BlockConfig out;
  out.mc = resolved(g_config.mc, kDefaultMc);
  out.nc = resolved(g_config.nc, kDefaultNc);
  out.kc = resolved(g_config.kc, kDefaultKc);
  return out;
}

void set_block_config(const BlockConfig& cfg) {
  MENOS_CHECK_MSG(cfg.mc >= 0 && cfg.nc >= 0 && cfg.kc >= 0,
                  "BlockConfig fields must be >= 0 (0 = default)");
  g_config = cfg;
}

Index micro_tile_rows() noexcept { return kMR; }
Index micro_tile_cols() noexcept { return kNR; }
const char* vector_arch() noexcept { return kArchLabel; }

}  // namespace menos::tensor::kernels
