
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_multigpu.cc" "bench/CMakeFiles/fig10_multigpu.dir/fig10_multigpu.cc.o" "gcc" "bench/CMakeFiles/fig10_multigpu.dir/fig10_multigpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/menos_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/menos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/menos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/menos_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/menos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/menos_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/menos_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/menos_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/menos_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/menos_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/menos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
