#include "fleet/router.h"

#include <utility>

#include "util/logging.h"

namespace menos::fleet {

Router::Router(std::vector<core::Server*> shards, PlacementPolicy& policy,
               core::Executor& executor, net::Poller& poller,
               util::EventTrace* trace)
    : shards_(std::move(shards)),
      policy_(&policy),
      executor_(&executor),
      poller_(&poller),
      trace_(trace) {
  MENOS_CHECK_MSG(!shards_.empty(), "router needs at least one shard");
  util::MutexLock lock(mutex_);
  placed_.assign(shards_.size(), 0);
}

Router::~Router() { stop(); }

void Router::start(net::Acceptor& acceptor) {
  MENOS_CHECK_MSG(!accept_thread_.joinable(), "router already started");
  acceptor_ = &acceptor;
  accept_thread_ = std::thread([this] { accept_loop(acceptor_); });  // NOLINT(raw-thread)
}

void Router::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (acceptor_ != nullptr) acceptor_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drop connections still waiting for their first frame. Unwatch happens
  // off the poller thread (here), which is the contract poller::unwatch
  // synchronizes on.
  std::unordered_map<std::uint64_t, PendingConn> pending;
  {
    util::MutexLock lock(mutex_);
    pending.swap(pending_);
  }
  for (auto& [id, p] : pending) {
    if (p.watch != 0) poller_->unwatch(p.watch);
    p.conn->close();
  }
}

void Router::accept_loop(net::Acceptor* acceptor) {
  while (true) {
    std::unique_ptr<net::Connection> accepted = acceptor->accept();
    if (accepted == nullptr) return;  // acceptor closed
    if (stopping_.load()) {
      accepted->close();
      continue;
    }
    std::shared_ptr<net::Connection> conn = std::move(accepted);
    std::uint64_t id = 0;
    {
      util::MutexLock lock(mutex_);
      id = next_pending_++;
      pending_[id].conn = conn;
    }
    // Event-driven first read: the poller signals readiness, an executor
    // task does the (non-blocking) read — the accept loop never waits on a
    // slow connector. Watches start disarmed, so the callback cannot fire
    // before the token is stored below.
    const std::uint64_t watch = poller_->watch(*conn, [this, id] {
      executor_->pool().post([this, id] { handle_first(id); });
    });
    bool keep = false;
    {
      util::MutexLock lock(mutex_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        it->second.watch = watch;
        keep = true;
      }
    }
    if (keep) {
      poller_->rearm(watch);
    } else {
      // stop() swept the map between insert and watch.
      poller_->unwatch(watch);
      conn->close();
    }
  }
}

void Router::remove_pending(std::uint64_t pending_id) {
  std::uint64_t watch = 0;
  {
    util::MutexLock lock(mutex_);
    auto it = pending_.find(pending_id);
    if (it == pending_.end()) return;
    watch = it->second.watch;
    pending_.erase(it);
  }
  if (watch != 0) poller_->unwatch(watch);
}

void Router::handle_first(std::uint64_t pending_id) {
  if (stopping_.load()) return;
  std::shared_ptr<net::Connection> conn;
  std::uint64_t watch = 0;
  {
    util::MutexLock lock(mutex_);
    auto it = pending_.find(pending_id);
    if (it == pending_.end()) return;
    conn = it->second.conn;
    watch = it->second.watch;
  }
  net::Message msg;
  net::RecvStatus status;
  try {
    status = conn->try_receive(&msg);
  } catch (const ProtocolError& e) {
    MENOS_LOG(Warn) << "router dropping corrupt connection: " << e.what();
    conn->close();
    remove_pending(pending_id);
    return;
  }
  if (status == net::RecvStatus::Empty) {
    poller_->rearm(watch);
    return;
  }
  remove_pending(pending_id);
  if (status == net::RecvStatus::Closed) return;
  try {
    switch (msg.type) {
      case net::MessageType::Hello:
        route_hello(std::move(conn), std::move(msg));
        break;
      case net::MessageType::ResumeSession:
        route_resume(std::move(conn), msg.session_token);
        break;
      default:
        conn->send(net::Message::error(
            "expected Hello or ResumeSession, got " +
            std::string(net::message_type_name(msg.type))));
        conn->close();
    }
  } catch (const Error& e) {
    MENOS_LOG(Warn) << "router failed to place a connection: " << e.what();
    conn->send(net::Message::error(e.what()));
    conn->close();
  }
}

void Router::route_hello(std::shared_ptr<net::Connection> conn,
                         net::Message hello) {
  int shard = 0;
  {
    // Placements are serialized here, so every decision sees the loads
    // left by the previous one — LeastLoaded distributes near-perfectly
    // even under a burst of simultaneous connects.
    util::MutexLock lock(mutex_);
    shard = policy_->place(hello.config, gather_loads());
    MENOS_CHECK_MSG(shard >= 0 && shard < static_cast<int>(shards_.size()),
                    "policy returned shard " << shard << " out of range");
  }
  // Hand the shard an intact stream: the Hello we consumed is re-delivered
  // by the prefixed wrapper as the session's first frame.
  std::uint64_t token = shards_[static_cast<std::size_t>(shard)]
                            ->adopt_connection(net::make_prefixed(
                                conn, std::move(hello)));
  if (token == 0) {
    conn->close();  // shard is stopping
    return;
  }
  {
    util::MutexLock lock(mutex_);
    Entry entry;
    entry.shard = shard;
    table_[token] = std::move(entry);
    ++placed_[static_cast<std::size_t>(shard)];
  }
  // The session may have finished between adoption and the insert above
  // (instant handshake failure): its closed hook would have found no entry,
  // so re-check and drop the stale mapping ourselves.
  bool alive = false;
  for (std::uint64_t t :
       shards_[static_cast<std::size_t>(shard)]->session_tokens()) {
    if (t == token) {
      alive = true;
      break;
    }
  }
  if (!alive) {
    util::MutexLock lock(mutex_);
    auto it = table_.find(token);
    if (it != table_.end() && !it->second.migrating) table_.erase(it);
  }
  if (trace_ != nullptr) {
    trace_->record(util::TraceCategory::Session, "router.placed", shard,
                   token);
  }
}

void Router::route_resume(std::shared_ptr<net::Connection> conn,
                          std::uint64_t token) {
  int shard = -1;
  {
    util::MutexLock lock(mutex_);
    auto it = table_.find(token);
    if (it != table_.end()) {
      if (it->second.migrating) {
        // The session is in flight between shards; park the connection
        // until finish_migration knows where it landed.
        it->second.queued.push_back(std::move(conn));
        return;
      }
      shard = it->second.shard;
    }
  }
  if (shard < 0 ||
      !shards_[static_cast<std::size_t>(shard)]->route_resume(token, conn)) {
    conn->send(net::Message::error("unknown or expired session token"));
    conn->close();
  }
}

int Router::begin_migration(std::uint64_t token) {
  util::MutexLock lock(mutex_);
  auto it = table_.find(token);
  if (it == table_.end() || it->second.migrating) return -1;
  it->second.migrating = true;
  return it->second.shard;
}

void Router::finish_migration(std::uint64_t token, int shard) {
  std::vector<std::shared_ptr<net::Connection>> queued;
  {
    util::MutexLock lock(mutex_);
    Entry& entry = table_[token];
    entry.shard = shard;
    entry.migrating = false;
    queued.swap(entry.queued);
  }
  for (auto& conn : queued) {
    if (!shards_[static_cast<std::size_t>(shard)]->route_resume(token,
                                                                conn)) {
      conn->send(net::Message::error("unknown or expired session token"));
      conn->close();
    }
  }
}

void Router::drop_session(std::uint64_t token) {
  std::vector<std::shared_ptr<net::Connection>> queued;
  {
    util::MutexLock lock(mutex_);
    auto it = table_.find(token);
    if (it == table_.end()) return;
    queued.swap(it->second.queued);
    table_.erase(it);
  }
  for (auto& conn : queued) {
    conn->send(net::Message::error("session lost in migration"));
    conn->close();
  }
}

void Router::on_session_closed(int shard, std::uint64_t token) {
  util::MutexLock lock(mutex_);
  auto it = table_.find(token);
  if (it == table_.end()) return;
  // A migrating entry outlives its (exported) source session; an entry
  // already remapped to another shard belongs to the new session there.
  if (it->second.migrating || it->second.shard != shard) return;
  table_.erase(it);
}

std::vector<int> Router::placements() const {
  util::MutexLock lock(mutex_);
  return placed_;
}

std::vector<std::uint64_t> Router::tokens_on(int shard) const {
  util::MutexLock lock(mutex_);
  std::vector<std::uint64_t> tokens;
  for (const auto& [token, entry] : table_) {
    if (entry.shard == shard && !entry.migrating) tokens.push_back(token);
  }
  return tokens;
}

int Router::shard_of(std::uint64_t token) const {
  util::MutexLock lock(mutex_);
  auto it = table_.find(token);
  return it == table_.end() ? -1 : it->second.shard;
}

std::vector<ShardLoad> Router::gather_loads() {
  std::vector<ShardLoad> loads;
  loads.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardLoad load;
    load.shard = static_cast<int>(i);
    load.sessions = shards_[i]->session_count();
    load.reserved_bytes = shards_[i]->persistent_gpu_bytes();
    load.available_bytes = shards_[i]->scheduler().total_available();
    loads.push_back(load);
  }
  return loads;
}

}  // namespace menos::fleet
