#include <atomic>
#include <chrono>
#include <thread>

#include "net/link.h"
#include "net/transport.h"
#include "util/mutex.h"
#include "util/queue.h"
#include "util/thread_annotations.h"

namespace menos::net {
namespace {

/// One direction of the duplex channel.
struct Pipe {
  util::BlockingQueue<Message> queue;

  // Readiness hook for the event-driven core (Connection::set_ready_hook):
  // fired after every push and on close. Invoked *under* hook_mutex so that
  // set_hook(nullptr) synchronizes with in-flight invocations — once it
  // returns, the old hook cannot be entered again (the Poller relies on
  // this to unwatch safely). Hook bodies must therefore not call back into
  // this pipe.
  util::Mutex hook_mutex{"net.inproc.hook", 58};
  std::function<void()> hook MENOS_GUARDED_BY(hook_mutex);

  void set_hook(std::function<void()> h) {
    util::MutexLock lock(hook_mutex);
    hook = std::move(h);
  }

  void fire_hook() {
    util::MutexLock lock(hook_mutex);
    if (hook) hook();
  }
};

class InprocConnection final : public Connection {
 public:
  InprocConnection(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in,
                   NetworkConditioner conditioner)
      : out_(std::move(out)), in_(std::move(in)), conditioner_(conditioner) {}

  ~InprocConnection() override { close(); }

  bool send(const Message& message) override {
    if (out_->queue.closed()) return false;
    // Wire-size accounting uses the real encoded size so the comm-time
    // model sees exactly what TCP would carry.
    const std::size_t frame_bytes =
        frame_message(message).size();
    const double delay =
        conditioner_.transfer_seconds(frame_bytes) * conditioner_.time_scale;
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
    // The peer may have closed while the frame was "on the wire": a push
    // onto a closed queue is dropped, and a dropped frame must not count
    // as sent or the comm accounting reports bytes nobody received.
    if (!out_->queue.push(message)) return false;
    bytes_sent_ += frame_bytes;
    out_->fire_hook();
    return true;
  }

  std::optional<Message> receive() override {
    const double timeout_s = receive_timeout_.load();
    return timeout_s > 0.0 ? in_->queue.pop_for(timeout_s) : in_->queue.pop();
  }

  void set_receive_timeout(double seconds) override {
    receive_timeout_.store(seconds);
  }

  RecvStatus try_receive(Message* out) override {
    if (auto msg = in_->queue.try_pop()) {
      *out = std::move(*msg);
      return RecvStatus::Frame;
    }
    return in_->queue.closed() ? RecvStatus::Closed : RecvStatus::Empty;
  }

  void set_ready_hook(std::function<void()> hook) override {
    in_->set_hook(std::move(hook));
  }

  void close() override {
    out_->queue.close();
    in_->queue.close();
    // Wake both poll loops: each peer's readiness hook hangs off its own
    // inbound pipe, and close makes both directions "readable" (Closed).
    out_->fire_hook();
    in_->fire_hook();
  }

  std::uint64_t bytes_sent() const override { return bytes_sent_; }

 private:
  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
  NetworkConditioner conditioner_;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<double> receive_timeout_{0.0};
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair(const NetworkConditioner& conditioner) {
  return make_inproc_pair(conditioner, conditioner);
}

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_inproc_pair(const NetworkConditioner& a_to_b,
                 const NetworkConditioner& b_to_a) {
  auto ab = std::make_shared<Pipe>();
  auto ba = std::make_shared<Pipe>();
  // The conditioner delay is paid in the SENDER's thread, so each endpoint
  // carries the conditioner of its own outbound direction.
  auto a = std::make_unique<InprocConnection>(ab, ba, a_to_b);
  auto b = std::make_unique<InprocConnection>(ba, ab, b_to_a);
  return {std::move(a), std::move(b)};
}

struct InprocAcceptor::State {
  util::BlockingQueue<std::unique_ptr<Connection>> pending;
  NetworkConditioner uplink;
  NetworkConditioner downlink;
};

InprocAcceptor::InprocAcceptor(const NetworkConditioner& conditioner)
    : InprocAcceptor(conditioner, conditioner) {}

InprocAcceptor::InprocAcceptor(const NetworkConditioner& uplink,
                               const NetworkConditioner& downlink)
    : state_(std::make_shared<State>()) {
  state_->uplink = uplink;
  state_->downlink = downlink;
}

InprocAcceptor::~InprocAcceptor() { close(); }

std::unique_ptr<Connection> InprocAcceptor::connect() {
  auto [client_end, server_end] =
      make_inproc_pair(state_->uplink, state_->downlink);
  state_->pending.push(std::move(server_end));
  return std::move(client_end);
}

std::unique_ptr<Connection> InprocAcceptor::connect(
    const LinkProfile& profile,
    std::shared_ptr<LinkConditioner>* conditioner_out) {
  // The pair is minted UNconditioned: per-connection shaping supersedes the
  // acceptor-wide conditioners, and the delay is paid in the decorator so
  // the same LinkConditioner would work over TCP.
  auto [client_end, server_end] = make_inproc_pair();
  auto conditioner = std::make_shared<LinkConditioner>(profile);
  if (conditioner_out != nullptr) *conditioner_out = conditioner;
  state_->pending.push(
      condition_connection(std::move(server_end), conditioner, LinkDir::Down));
  return condition_connection(std::move(client_end), std::move(conditioner),
                              LinkDir::Up);
}

std::unique_ptr<Connection> InprocAcceptor::accept() {
  auto conn = state_->pending.pop();
  return conn.has_value() ? std::move(*conn) : nullptr;
}

void InprocAcceptor::close() { state_->pending.close(); }

}  // namespace menos::net
