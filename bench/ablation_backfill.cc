// Ablation: FCFS-only vs FCFS+backfilling (Algorithm 2 lines 23-24).
// Backfilling lets small no-grad forwards run alongside big backwards.
#include "bench_common.h"

using namespace menos;

int main() {
  bench::print_header(
      "Ablation — scheduler backfilling (Algorithm 2)",
      "§4.2: \"the backfilling mechanism takes advantage of any remaining "
      "GPU memory to schedule additional requests, even if they arrive "
      "later, thereby improving overall system throughput\"");

  // Backfilling matters when large backward requests block the head of
  // the queue while small forwards could still fit — which needs a
  // heterogeneous tenant mix (§3.1: clients choose their own batch sizes).
  // Half the clients run double-size batches, half run small ones.
  for (const sim::ModelSpec& spec :
       {sim::ModelSpec::opt_1_3b(), sim::ModelSpec::llama2_7b()}) {
    std::printf("\n--- %s (half 1.6x-batch clients, half 0.3x) ---\n",
                spec.name.c_str());
    std::printf("%-8s  %-19s  %-19s  %-19s  %-19s  %-10s\n", "clients",
                "fcfs fwd-wait (s)", "bkfl fwd-wait (s)",
                "fcfs bwd-wait (s)", "bkfl bwd-wait (s)", "backfills");
    for (int n : {4, 6, 8, 12}) {
      sim::SimConfig strict = bench::make_config(
          spec, core::ServingMode::MenosOnDemand, n);
      strict.client_stagger_s = 0.73;  // desynchronize tenants
      for (int i = 0; i < n; ++i) {
        strict.client_scale.push_back(i % 2 == 0 ? 1.6 : 0.3);
      }
      strict.sched_policy = sched::Policy::FcfsOnly;
      auto a = sim::run_split_finetune(strict);
      sim::SimConfig backfill = strict;
      backfill.sched_policy = sched::Policy::FcfsBackfill;
      auto b = sim::run_split_finetune(backfill);
      std::printf("%-8d  %-19s  %-19s  %-19s  %-19s  %-10llu\n", n,
                  bench::cell(a, a.avg_forward_wait_s).c_str(),
                  bench::cell(b, b.avg_forward_wait_s).c_str(),
                  bench::cell(a, a.avg_backward_wait_s).c_str(),
                  bench::cell(b, b.avg_backward_wait_s).c_str(),
                  static_cast<unsigned long long>(
                      b.sched_stats.backfill_grants));
    }
  }
  return 0;
}
