#include "core/batch.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <sstream>
#include <utility>

#include "core/parameter_store.h"
#include "core/session.h"
#include "nn/transformer.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace menos::core {

std::uint64_t compute_batch_key(const ServerConfig& server,
                                const net::FinetuneConfig& client) {
  if (server.sched_policy != sched::Policy::CoalescedBatch) return 0;
  // Only the re-forward modes coalesce: a mode whose allocation spans
  // forward -> backward skips the scheduler on its second op and would
  // never meet the batch in the waiting queue anyway.
  if (!shares_base_model(server.mode) || holds_across_iteration(server.mode)) {
    return 0;
  }
  // LoRA/BitFit inject per-client trainables into the server section; a
  // fused pass through one shared trunk could not apply them. None and
  // Prefix leave the trunk fully frozen (the prefix rows live in the
  // client's input section and arrive pre-concatenated in x_c).
  const nn::AdapterType adapter = client.adapter.type;
  if (adapter != nn::AdapterType::None && adapter != nn::AdapterType::Prefix) {
    return 0;
  }
  const std::int64_t prefix =
      adapter == nn::AdapterType::Prefix ? client.adapter.prefix_len : 0;
  const nn::TransformerConfig& m = client.model;
  std::ostringstream os;
  os << serving_mode_name(server.mode) << '|'
     << nn::model_family_name(m.family) << '|' << m.dim << 'x' << m.n_layers
     << 'h' << m.n_heads << 'k' << m.n_kv_heads << 'f' << m.ffn_hidden << 'v'
     << m.vocab_size << '|' << client.split.front_blocks << '-'
     << client.split.back_blocks << '|' << 't' << client.seq_len + prefix;
  const std::uint64_t key = std::hash<std::string>{}(os.str());
  return key == 0 ? 1 : key;  // 0 is reserved for "never coalesce"
}

BatchCoordinator::BatchCoordinator(const ServerConfig& config,
                                   const ParameterStore& store,
                                   sched::Scheduler& scheduler)
    : config_(config), store_(&store), scheduler_(&scheduler) {}

BatchCoordinator::~BatchCoordinator() = default;

void BatchCoordinator::begin_group(
    const sched::Grant& grant,
    std::vector<std::shared_ptr<ServingSession>> sessions) {
  MENOS_CHECK_MSG(sessions.size() == grant.group.size(),
                  "group grant member/session count mismatch");
  auto group = std::make_shared<BatchGroup>();
  group->grant = grant;
  group->sessions = std::move(sessions);
  group->contributions.resize(grant.group.size());
  group->coordinator = this;
  int live = 0;
  for (const auto& session : group->sessions) {
    if (session != nullptr) ++live;
  }
  group->outstanding.store(live);
  if (live == 0) {
    // Every member left the table before the grant arrived; reclaim the
    // whole charge without a fused pass.
    finish_group(group);
    return;
  }
  for (std::size_t i = 0; i < group->sessions.size(); ++i) {
    if (group->sessions[i] != nullptr) group->sessions[i]->batch_join(group, i);
  }
}

void BatchCoordinator::finish_group(const std::shared_ptr<BatchGroup>& group) {
  run_group(*group);
}

BatchCoordinator::BatchingStats BatchCoordinator::stats() const {
  BatchingStats s;
  s.groups = groups_.load();
  s.members = members_.load();
  s.captures = captures_.load();
  s.replays = replays_.load();
  s.eager = eager_.load();
  return s;
}

BatchCoordinator::Trunk& BatchCoordinator::ensure_trunk_locked(
    const BatchContribution& lead) {
  Trunk& trunk = trunks_[lead.batch_key];
  if (trunk.section == nullptr) {
    // The trunk is built with AdapterSpec::None regardless of the members'
    // (Prefix) adapters: a coalescible trunk is plain frozen blocks either
    // way, and forcing None guarantees it even if the seeding member's
    // config drifts. Frozen + shared parameter handles makes concurrent
    // forwards thread-safe.
    nn::AdapterSpec none;
    none.type = nn::AdapterType::None;
    util::Rng unused_rng(0);  // None injects nothing; the stream is untouched
    nn::SharedSource source = store_->source();
    const std::function<gpusim::Device&(int)> device_for =
        [this](int block) -> gpusim::Device& {
      return store_->device_for_block(block);
    };
    trunk.section = std::make_unique<nn::ServerSection>(
        lead.config.model, lead.config.split, none, source, device_for,
        unused_rng);
    trunk.entry = &trunk.section->entry_device();
    MENOS_CHECK_MSG(trunk.section->trainable_parameters().empty(),
                    "fused trunk must be fully frozen");
  }
  return trunk;
}

void BatchCoordinator::run_group(BatchGroup& group) {
  std::vector<std::size_t> joined;
  for (std::size_t i = 0; i < group.contributions.size(); ++i) {
    if (group.contributions[i].joined) joined.push_back(i);
  }
  std::vector<BatchOutcome> outcomes(group.contributions.size());
  if (!joined.empty()) {
    try {
      compute_group(group, joined, outcomes);
    } catch (const Error& e) {
      MENOS_LOG(Warn) << "fused batch of " << joined.size()
                      << " clients failed: " << e.what();
      for (std::size_t slot : joined) {
        outcomes[slot].ok = false;
        outcomes[slot].error = e.what();
      }
    }
  }
  // One atomic release for the whole group — members torn down mid-pass
  // already freed their own charge and are skipped. Releasing AFTER the
  // compute keeps the grant's memory covered for its whole lifetime, as in
  // the solo path.
  scheduler_->on_complete_group(group.grant.group);
  for (std::size_t slot : joined) {
    BatchOutcome& out = outcomes[slot];
    out.kind = group.grant.kind;
    out.iteration = group.contributions[slot].iteration;
    out.wait_seconds = group.contributions[slot].wait_seconds;
    group.sessions[slot]->batch_complete(std::move(out));
  }
}

void BatchCoordinator::compute_group(BatchGroup& group,
                                     const std::vector<std::size_t>& joined,
                                     std::vector<BatchOutcome>& outcomes) {
  using tensor::Index;
  using tensor::Tensor;
  const bool forward = group.grant.kind == sched::OpKind::Forward;
  const BatchContribution& lead = group.contributions[joined.front()];

  // The batch_key already guarantees stackable shapes; verify anyway —
  // a mismatch here would silently corrupt every member's rows.
  MENOS_CHECK_MSG(lead.activation.shape.size() == 3,
                  "fused batch expects [B, T, C] activations");
  const Index seq = lead.activation.shape[1];
  const Index dim = lead.activation.shape[2];
  Index rows = 0;
  for (std::size_t slot : joined) {
    const BatchContribution& c = group.contributions[slot];
    MENOS_CHECK_MSG(c.batch_key == lead.batch_key,
                    "fused batch mixes incompatible batch keys");
    MENOS_CHECK_MSG(c.activation.shape.size() == 3 &&
                        c.activation.shape[1] == seq &&
                        c.activation.shape[2] == dim,
                    "fused batch member activation shape mismatch");
    rows += c.activation.shape[0];
  }

  Trunk* trunk = nullptr;
  GraphSlot* graph_slot = nullptr;
  {
    util::MutexLock lock(mutex_);
    trunk = &ensure_trunk_locked(lead);
    if (!forward) {
      std::unique_ptr<GraphSlot>& slot = graphs_[{lead.batch_key, rows}];
      if (slot == nullptr) slot = std::make_unique<GraphSlot>();
      if (!slot->in_use) {
        slot->in_use = true;
        graph_slot = slot.get();
      }
    }
  }

  const auto pack_rows = [&](float* dst) {
    for (std::size_t slot : joined) {
      const std::vector<float>& src = group.contributions[slot].activation.data;
      std::memcpy(dst, src.data(), src.size() * sizeof(float));
      dst += src.size();
    }
  };
  const auto unpack_rows = [&](const Tensor& t) {
    const Index out_seq = t.dim(1);
    const Index out_dim = t.dim(2);
    const float* src = t.data();
    for (std::size_t slot : joined) {
      const Index batch = group.contributions[slot].activation.shape[0];
      const std::size_t n =
          static_cast<std::size_t>(batch * out_seq * out_dim);
      BatchOutcome& out = outcomes[slot];
      out.result.shape = {batch, out_seq, out_dim};
      out.result.data.assign(src, src + n);
      out.ok = true;
      src += n;
    }
  };

  util::Stopwatch compute_sw;
  if (forward) {
    // The fused Forward always runs in a non-gradient environment: the
    // coalescible modes either never materialize the graph (OnDemand) or
    // drop it before replying (ReleaseEarly) — the activations returned
    // are bit-identical either way, since tape bookkeeping never changes
    // values.
    tensor::NoGradGuard no_grad;
    Tensor x = Tensor::empty({rows, seq, dim}, *trunk->entry);
    pack_rows(x.data());
    Tensor y = trunk->section->forward(x);
    unpack_rows(y);
    eager_.fetch_add(1);
  } else {
    try {
      Tensor entry;
      Tensor y;
      if (graph_slot != nullptr && graph_slot->ready) {
        // Replay: refill the captured entry leaf in place. Replay
        // dispatches through the public ops, so autograd re-attaches
        // exactly as the eager pass would (see tensor/graph.h).
        entry = graph_slot->entry;
        pack_rows(entry.data());
        entry.zero_grad();
        y = graph_slot->graph.replay({});
        replays_.fetch_add(1);
      } else {
        entry = Tensor::empty({rows, seq, dim}, *trunk->entry,
                              /*requires_grad=*/true);
        pack_rows(entry.data());
        if (graph_slot != nullptr) {
          y = graph_slot->graph.capture(
              {}, [&] { return trunk->section->forward(entry); });
          if (graph_slot->graph.ready()) {
            graph_slot->ready = true;
            graph_slot->entry = entry;
            captures_.fetch_add(1);
          } else {
            eager_.fetch_add(1);
          }
        } else {
          y = trunk->section->forward(entry);
          eager_.fetch_add(1);
        }
      }
      Tensor g;
      {
        tensor::NoGradGuard no_grad;
        g = Tensor::empty(y.shape(), y.device());
      }
      {
        const std::size_t row_numel =
            static_cast<std::size_t>(y.dim(1) * y.dim(2));
        float* dst = g.data();
        for (std::size_t slot : joined) {
          const BatchContribution& c = group.contributions[slot];
          const std::size_t want =
              static_cast<std::size_t>(c.activation.shape[0]) * row_numel;
          MENOS_CHECK_MSG(c.grad.data.size() == want,
                          "gradient size does not match server activations");
          std::memcpy(dst, c.grad.data.data(), want * sizeof(float));
          dst += want;
        }
      }
      tensor::backward(y, g);
      Tensor g_s = entry.grad();
      MENOS_CHECK_MSG(g_s.defined(), "no gradient reached the cut point");
      unpack_rows(g_s);
      // Drop the step's tensors promptly; a cached entry keeps only its
      // leaf storage (no grad, no tape) between groups.
      entry.zero_grad();
    } catch (...) {
      if (graph_slot != nullptr) {
        util::MutexLock lock(mutex_);
        graph_slot->in_use = false;
      }
      throw;
    }
    if (graph_slot != nullptr) {
      util::MutexLock lock(mutex_);
      graph_slot->in_use = false;
    }
  }
  const double compute_s = compute_sw.elapsed_seconds();
  for (std::size_t slot : joined) {
    outcomes[slot].compute_seconds = compute_s;
  }
  groups_.fetch_add(1);
  members_.fetch_add(joined.size());
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Session, "batch.fused",
                          group.grant.client_id, joined.size());
  }
}

}  // namespace menos::core
