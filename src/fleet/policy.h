// Placement policies for fleet::Router: which shard gets a new session.
//
// A policy sees one ShardLoad snapshot per shard and returns an index. The
// Router serializes placement decisions under its own mutex, so policies
// need no internal locking; stateful policies (round-robin counters,
// affinity maps, the power-of-two RNG) can use plain members.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "util/rng.h"

namespace menos::fleet {

/// A shard's load as sampled at placement time.
struct ShardLoad {
  int shard = 0;
  int sessions = 0;                ///< live sessions on the shard
  std::size_t reserved_bytes = 0;  ///< persistent GPU bytes (base + A + O)
  std::size_t available_bytes = 0; ///< schedulable bytes currently free
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Pick a shard for a new session announcing `config`. `loads` is indexed
  /// by shard and never empty; the returned index must be in range.
  virtual int place(const net::FinetuneConfig& config,
                    const std::vector<ShardLoad>& loads) = 0;
};

/// Cycle through the shards in order, ignoring load.
class RoundRobin final : public PlacementPolicy {
 public:
  const char* name() const noexcept override { return "round-robin"; }
  int place(const net::FinetuneConfig& config,
            const std::vector<ShardLoad>& loads) override;

 private:
  std::uint64_t next_ = 0;
};

/// The shard with the least (reserved_bytes, sessions) — a global scan, the
/// strongest balance at O(shards) per placement.
class LeastLoaded final : public PlacementPolicy {
 public:
  const char* name() const noexcept override { return "least-loaded"; }
  int place(const net::FinetuneConfig& config,
            const std::vector<ShardLoad>& loads) override;
};

/// Sample two distinct shards, keep the less loaded — the classic
/// two-choices balancer: near-LeastLoaded quality at O(1), and the
/// comparison stays cheap when shard counts grow.
class PowerOfTwoChoices final : public PlacementPolicy {
 public:
  explicit PowerOfTwoChoices(std::uint64_t seed = 0x70327063ULL /* "p2pc" */)
      : rng_(seed) {}
  const char* name() const noexcept override { return "power-of-two"; }
  int place(const net::FinetuneConfig& config,
            const std::vector<ShardLoad>& loads) override;

 private:
  util::Rng rng_;
};

/// Co-locate sessions that share a base ModelSpec: the first session with a
/// given spec lands least-loaded, later ones stick to that shard (profile
/// cache hits, and a future per-spec store only needs loading once per
/// shard). Falls back to least-loaded when the sticky shard is unknown.
class AdapterAffinity final : public PlacementPolicy {
 public:
  const char* name() const noexcept override { return "adapter-affinity"; }
  int place(const net::FinetuneConfig& config,
            const std::vector<ShardLoad>& loads) override;

  /// The grouping key: base-model architecture only (no adapter/client
  /// fields — those differ between sessions that still share the store).
  static std::string model_key(const net::FinetuneConfig& config);

 private:
  std::unordered_map<std::string, int> sticky_;
};

/// Factory by name ("round-robin", "least-loaded", "power-of-two",
/// "adapter-affinity") for benches/CLIs; throws InvalidArgument otherwise.
std::unique_ptr<PlacementPolicy> make_policy(const std::string& name);

}  // namespace menos::fleet
