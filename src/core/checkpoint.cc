#include "core/checkpoint.h"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "core/parameter_store.h"
#include "net/wire.h"
#include "util/check.h"
#include "util/crc32.h"

namespace menos::core {
namespace {

constexpr std::uint32_t kAdapterMagic = 0x4d41'4450u;  // "MADP"
constexpr std::uint32_t kAdapterVersion = 1;

}  // namespace

namespace {

std::vector<std::uint8_t> serialize_params(
    const std::vector<nn::Parameter>& params) {
  net::Writer w;
  w.put_u32(kAdapterMagic);
  w.put_u32(kAdapterVersion);
  w.put_u64(params.size());
  for (const nn::Parameter& p : params) {
    w.put_string(p.name);
    const tensor::Shape& shape = p.value.shape();
    w.put_u64(shape.size());
    for (tensor::Index d : shape) w.put_i64(d);
    w.put_f32_array(p.value.data(), static_cast<std::size_t>(p.value.numel()));
  }
  std::vector<std::uint8_t> blob = w.take();
  const std::uint32_t crc = util::crc32(blob.data(), blob.size());
  blob.push_back(static_cast<std::uint8_t>(crc));
  blob.push_back(static_cast<std::uint8_t>(crc >> 8));
  blob.push_back(static_cast<std::uint8_t>(crc >> 16));
  blob.push_back(static_cast<std::uint8_t>(crc >> 24));
  return blob;
}

void write_blob(const std::string& path,
                const std::vector<std::uint8_t>& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MENOS_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  MENOS_CHECK_MSG(out.good(), "short write to '" << path << "'");
}

std::vector<std::uint8_t> read_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MENOS_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

std::vector<std::uint8_t> serialize_adapter(
    const std::vector<nn::Parameter>& params) {
  for (const nn::Parameter& p : params) {
    MENOS_CHECK_MSG(p.trainable(),
                    "refusing to export frozen parameter '" << p.name << "'");
  }
  return serialize_params(params);
}

std::vector<std::uint8_t> serialize_adapter(const nn::Module& module) {
  return serialize_adapter(module.trainable_parameters());
}

std::size_t deserialize_adapter(const std::uint8_t* data, std::size_t size,
                                nn::Module& module) {
  return deserialize_adapter(data, size, module.trainable_parameters());
}

std::size_t deserialize_adapter(const std::uint8_t* data, std::size_t size,
                                const std::vector<nn::Parameter>& params) {
  if (size < 4) throw ProtocolError("adapter blob truncated");
  const std::size_t body = size - 4;
  const std::uint32_t expected =
      static_cast<std::uint32_t>(data[body]) |
      static_cast<std::uint32_t>(data[body + 1]) << 8 |
      static_cast<std::uint32_t>(data[body + 2]) << 16 |
      static_cast<std::uint32_t>(data[body + 3]) << 24;
  if (util::crc32(data, body) != expected) {
    throw ProtocolError("adapter checkpoint CRC mismatch");
  }

  net::Reader r(data, body);
  if (r.get_u32() != kAdapterMagic) {
    throw ProtocolError("not an adapter checkpoint");
  }
  const std::uint32_t version = r.get_u32();
  if (version != kAdapterVersion) {
    throw ProtocolError("unsupported adapter checkpoint version " +
                        std::to_string(version));
  }

  std::unordered_map<std::string, tensor::Tensor> targets;
  for (const nn::Parameter& p : params) {
    targets.emplace(p.name, p.value);
  }

  const std::uint64_t count = r.get_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = r.get_string();
    const std::uint64_t ndim = r.get_u64();
    if (ndim > 8) throw ProtocolError("adapter tensor rank too large");
    tensor::Shape shape(ndim);
    for (auto& d : shape) d = r.get_i64();
    const std::vector<float> values = r.get_f32_array();

    auto it = targets.find(name);
    MENOS_CHECK_MSG(it != targets.end(),
                    "checkpoint tensor '"
                        << name
                        << "' has no matching trainable parameter — was the "
                           "module built with the same adapter spec?");
    MENOS_CHECK_MSG(it->second.shape() == shape,
                    "checkpoint tensor '" << name << "' shape "
                                          << tensor::shape_to_string(shape)
                                          << " != parameter shape "
                                          << tensor::shape_to_string(
                                                 it->second.shape()));
    if (static_cast<tensor::Index>(values.size()) != it->second.numel()) {
      throw ProtocolError("adapter tensor payload size mismatch");
    }
    std::memcpy(it->second.data(), values.data(),
                values.size() * sizeof(float));
  }
  if (!r.exhausted()) throw ProtocolError("trailing bytes in adapter blob");
  return count;
}

void save_adapter(const std::string& path, const nn::Module& module) {
  write_blob(path, serialize_adapter(module));
}

std::size_t load_adapter(const std::string& path, nn::Module& module) {
  const std::vector<std::uint8_t> blob = read_blob(path);
  return deserialize_adapter(blob.data(), blob.size(), module);
}

void save_base_checkpoint(const std::string& path,
                          const ParameterStore& store) {
  write_blob(path, serialize_params(store.parameters()));
}

std::size_t load_base_checkpoint(const std::string& path,
                                 ParameterStore& store) {
  const std::vector<std::uint8_t> blob = read_blob(path);
  return deserialize_adapter(blob.data(), blob.size(), store.parameters());
}

}  // namespace menos::core
