#include "fleet/policy.h"

#include <sstream>

#include "nn/transformer.h"
#include "util/check.h"

namespace menos::fleet {
namespace {

/// Load ordering shared by the load-aware policies: persistent bytes
/// first (the paper's contended resource), live sessions as tiebreak, then
/// the index for determinism.
bool lighter(const ShardLoad& a, const ShardLoad& b) {
  if (a.reserved_bytes != b.reserved_bytes) {
    return a.reserved_bytes < b.reserved_bytes;
  }
  if (a.sessions != b.sessions) return a.sessions < b.sessions;
  return a.shard < b.shard;
}

int least_loaded_of(const std::vector<ShardLoad>& loads) {
  MENOS_CHECK_MSG(!loads.empty(), "placement over an empty fleet");
  int best = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (lighter(loads[i], loads[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(i);
    }
  }
  return loads[static_cast<std::size_t>(best)].shard;
}

}  // namespace

int RoundRobin::place(const net::FinetuneConfig& /*config*/,
                      const std::vector<ShardLoad>& loads) {
  MENOS_CHECK_MSG(!loads.empty(), "placement over an empty fleet");
  return static_cast<int>(next_++ % loads.size());
}

int LeastLoaded::place(const net::FinetuneConfig& /*config*/,
                       const std::vector<ShardLoad>& loads) {
  return least_loaded_of(loads);
}

int PowerOfTwoChoices::place(const net::FinetuneConfig& /*config*/,
                             const std::vector<ShardLoad>& loads) {
  MENOS_CHECK_MSG(!loads.empty(), "placement over an empty fleet");
  const std::size_t n = loads.size();
  if (n == 1) return loads[0].shard;
  const std::size_t a = rng_.next_below(n);
  std::size_t b = rng_.next_below(n - 1);
  if (b >= a) ++b;  // distinct second choice, uniform over the rest
  return lighter(loads[a], loads[b]) ? loads[a].shard : loads[b].shard;
}

std::string AdapterAffinity::model_key(const net::FinetuneConfig& config) {
  std::ostringstream os;
  const nn::TransformerConfig& m = config.model;
  os << nn::model_family_name(m.family) << '|' << m.dim << 'x' << m.n_layers
     << 'h' << m.n_heads << 'f' << m.ffn_hidden << 'v' << m.vocab_size << 's'
     << m.max_seq;
  return os.str();
}

int AdapterAffinity::place(const net::FinetuneConfig& config,
                           const std::vector<ShardLoad>& loads) {
  const std::string key = model_key(config);
  auto it = sticky_.find(key);
  if (it != sticky_.end() &&
      it->second < static_cast<int>(loads.size())) {
    return it->second;
  }
  const int shard = least_loaded_of(loads);
  sticky_[key] = shard;
  return shard;
}

std::unique_ptr<PlacementPolicy> make_policy(const std::string& name) {
  if (name == "round-robin") return std::make_unique<RoundRobin>();
  if (name == "least-loaded") return std::make_unique<LeastLoaded>();
  if (name == "power-of-two") return std::make_unique<PowerOfTwoChoices>();
  if (name == "adapter-affinity") return std::make_unique<AdapterAffinity>();
  throw InvalidArgument("unknown placement policy: " + name);
}

}  // namespace menos::fleet
