#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>

#include "net/transport.h"
#include "util/logging.h"
#include "util/mutex.h"

namespace menos::net {
namespace {

/// Deferred-close guard around a POSIX descriptor.
///
/// close() used to ::close(fd) while another thread could still be blocked
/// in recv/send on the same integer; the kernel recycles descriptor
/// numbers immediately, so that stale int could suddenly address an
/// UNRELATED socket and the in-flight I/O would read or corrupt someone
/// else's connection. The guard splits teardown in two: close() only
/// ::shutdown()s (which wakes blocked I/O but keeps the number reserved),
/// and the real ::close() happens once the last in-flight operation
/// drains. The seq_cst handshake (I/O: inflight++ then read closing; close:
/// closing=true then read inflight) guarantees an operation either sees
/// closing and never touches the fd, or is visible to close() and defers
/// the ::close to its own release.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}

  ~FdGuard() {
    close();
    // The fd must be returned to the kernel before the guard dies; anyone
    // still in enter() holds a stale `this`. Owners join their I/O threads
    // before destruction — this spin is the backstop, and shutdown() has
    // already unblocked them.
    while (inflight_.load() != 0) std::this_thread::yield();
    finalize();
  }

  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  /// Begin an I/O operation. Returns false (and records no operation) if
  /// the descriptor is closing.
  bool enter() {
    inflight_.fetch_add(1);
    if (closing_.load()) {
      exit();
      return false;
    }
    return true;
  }

  /// End an I/O operation begun with a successful enter().
  void exit() {
    if (inflight_.fetch_sub(1) == 1) finalize();
  }

  /// Wake any blocked I/O and schedule the ::close for when it drains.
  void close() {
    if (closing_.exchange(true)) return;
    ::shutdown(fd_, SHUT_RDWR);
    finalize();
  }

  int fd() const noexcept { return fd_; }
  bool closing() const noexcept { return closing_.load(); }

 private:
  void finalize() {
    if (!closing_.load() || inflight_.load() != 0) return;
    if (!closed_.exchange(true)) ::close(fd_);
  }

  const int fd_;
  std::atomic<std::uint32_t> inflight_{0};
  std::atomic<bool> closing_{false};
  std::atomic<bool> closed_{false};
};

/// RAII enter/exit pairing for one I/O call.
class FdRef {
 public:
  explicit FdRef(FdGuard& guard) : guard_(guard), ok_(guard.enter()) {}
  ~FdRef() {
    if (ok_) guard_.exit();
  }
  FdRef(const FdRef&) = delete;
  FdRef& operator=(const FdRef&) = delete;

  bool ok() const noexcept { return ok_; }
  int fd() const noexcept { return guard_.fd(); }

 private:
  FdGuard& guard_;
  bool ok_;
};

/// Write the whole buffer; false on peer reset (or send timeout).
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `size` bytes; false on orderly close, reset, or receive
/// timeout (SO_RCVTIMEO surfaces as EAGAIN/EWOULDBLOCK).
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : guard_(fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override = default;  // ~FdGuard drains and closes

  bool send(const Message& message) override {
    const std::vector<std::uint8_t> frame = frame_message(message);
    util::MutexLock lock(send_mutex_);
    FdRef ref(guard_);
    if (!ref.ok()) return false;
    if (!write_all(ref.fd(), frame.data(), frame.size())) return false;
    bytes_sent_ += frame.size();
    return true;
  }

  std::optional<Message> receive() override {
    FdRef ref(guard_);
    if (!ref.ok()) return std::nullopt;
    std::uint8_t header[kFrameHeaderBytes];
    if (!read_all(ref.fd(), header, sizeof(header))) return std::nullopt;
    std::uint32_t magic = 0;
    std::uint64_t payload_len = 0;
    std::memcpy(&magic, header, 4);
    std::memcpy(&payload_len, header + 4, 8);
    if (magic != kFrameMagic) throw ProtocolError("bad frame magic on TCP");
    if (payload_len > kMaxFramePayload) {
      throw ProtocolError("oversized TCP frame");
    }
    std::vector<std::uint8_t> rest(
        sizeof(header) + static_cast<std::size_t>(payload_len) +
        kFrameTrailerBytes);
    std::memcpy(rest.data(), header, sizeof(header));
    if (!read_all(ref.fd(), rest.data() + sizeof(header),
                  rest.size() - sizeof(header))) {
      return std::nullopt;  // peer vanished mid-frame (or receive timeout)
    }
    return parse_frame(rest.data(), rest.size());
  }

  RecvStatus try_receive(Message* out) override {
    FdRef ref(guard_);
    if (!ref.ok()) return RecvStatus::Closed;
    for (;;) {
      if (parse_buffered(out)) return RecvStatus::Frame;
      std::uint8_t chunk[16384];
      const ssize_t n = ::recv(ref.fd(), chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        recv_buffer_.insert(recv_buffer_.end(), chunk,
                            chunk + static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) return RecvStatus::Closed;  // orderly close
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::Empty;
      return RecvStatus::Closed;  // reset etc.: treat as link down
    }
  }

  int poll_fd() const override { return guard_.fd(); }

  void set_receive_timeout(double seconds) override {
    FdRef ref(guard_);
    if (!ref.ok()) return;
    timeval tv{};
    if (seconds > 0.0) {
      tv.tv_sec = static_cast<time_t>(seconds);
      tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                tv.tv_sec)) * 1e6);
      // A zero timeval means "block forever" to the kernel; a tiny
      // positive timeout must stay positive.
      if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    }
    ::setsockopt(ref.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  void close() override { guard_.close(); }

  std::uint64_t bytes_sent() const override { return bytes_sent_; }

 private:
  /// Extract one complete frame from recv_buffer_ into *out. Returns false
  /// when more bytes are needed; throws ProtocolError on corrupt framing
  /// (bad magic / oversized length), same contract as receive().
  bool parse_buffered(Message* out) {
    if (recv_buffer_.size() < kFrameHeaderBytes) return false;
    std::uint32_t magic = 0;
    std::uint64_t payload_len = 0;
    std::memcpy(&magic, recv_buffer_.data(), 4);
    std::memcpy(&payload_len, recv_buffer_.data() + 4, 8);
    if (magic != kFrameMagic) throw ProtocolError("bad frame magic on TCP");
    if (payload_len > kMaxFramePayload) {
      throw ProtocolError("oversized TCP frame");
    }
    const std::size_t total = kFrameHeaderBytes +
                              static_cast<std::size_t>(payload_len) +
                              kFrameTrailerBytes;
    if (recv_buffer_.size() < total) return false;
    *out = parse_frame(recv_buffer_.data(), total);
    recv_buffer_.erase(recv_buffer_.begin(),
                       recv_buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    return true;
  }

  FdGuard guard_;
  // Serializes whole-frame writes on the socket so concurrent senders
  // cannot interleave partial frames; the fd's lifetime is handled by the
  // lock-free FdGuard, so there is no guarded data member.
  // NOLINTNEXTLINE(mutex-annotation)
  util::Mutex send_mutex_{"net.tcp.send", 64};
  std::atomic<std::uint64_t> bytes_sent_{0};
  // try_receive reassembly buffer. A connection has a single-reader
  // contract: blocking receive() and try_receive() must not be mixed from
  // different threads (event-driven sessions drain exclusively through
  // try_receive on their strand, which serializes access).
  std::vector<std::uint8_t> recv_buffer_;
};

class TcpListenerImpl final : public TcpListener {
 public:
  TcpListenerImpl(int fd, int port) : guard_(fd), port_(port) {}
  ~TcpListenerImpl() override = default;

  std::unique_ptr<Connection> accept() override {
    // ::accept fails transiently for reasons that say nothing about the
    // listener's health: EINTR (a signal landed), ECONNABORTED / EPROTO
    // (that one handshake died before we picked it up). Returning nullptr
    // there used to kill the server's whole accept loop on the first
    // hiccup; retry instead, and report nullptr only once the listener is
    // really closed (or irrecoverably broken).
    while (true) {
      FdRef ref(guard_);
      if (!ref.ok()) return nullptr;
      const int client = ::accept(ref.fd(), nullptr, nullptr);
      if (client >= 0) return std::make_unique<TcpConnection>(client);
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO ||
          errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      if (!guard_.closing()) {
        MENOS_LOG(Warn) << "tcp accept failed unrecoverably: "
                        << std::strerror(errno);
      }
      return nullptr;
    }
  }

  void close() override { guard_.close(); }

  int port() const override { return port_; }

 private:
  FdGuard guard_;
  int port_;
};

}  // namespace

std::unique_ptr<TcpListener> tcp_listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpListenerImpl>(fd, ntohs(addr.sin_port));
}

std::unique_ptr<Connection> tcp_connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace menos::net
