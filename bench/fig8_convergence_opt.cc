// Figure 8: convergence of the OPT-family model under split fine-tuning —
// every client reaches the same final perplexity as local fine-tuning.
// (Paper models convergence on wikitext-2; we use the documented synthetic
// wikitext-like corpus — DESIGN.md §1.)
#include "bench_common.h"
#include "convergence_common.h"

using namespace menos;

int main() {
  bench::print_header(
      "Fig 8 — convergence of OPT under split fine-tuning",
      "all clients reach the same final perplexity as local fine-tuning "
      "(the dashed baseline), despite communicating over the network");
  bench::ConvergenceSettings s;
  s.model = nn::TransformerConfig::tiny_opt();
  s.use_wikitext = true;
  bench::run_convergence(s, "Fig 8");
  std::printf("\n--- Tiny-Shakespeare-like dataset (second corpus of §5.2) ---\n");
  bench::ConvergenceSettings shake = s;
  shake.use_wikitext = false;
  bench::run_convergence(shake, "Fig 8 (shakespeare)");
  return 0;
}
