#include "tensor/autograd.h"

#include <unordered_map>
#include <unordered_set>

namespace menos::tensor {
namespace detail {

bool should_record(const std::vector<Tensor>& inputs) {
  if (!grad_enabled()) return false;
  for (const Tensor& t : inputs) {
    if (!t.defined()) continue;
    if (t.requires_grad() || t.impl()->grad_fn != nullptr) return true;
  }
  return false;
}

void attach_node(Tensor& output, std::string name, std::vector<Tensor> inputs,
                 std::function<std::vector<Tensor>(const Tensor&)> backward_fn) {
  MENOS_CHECK_MSG(output.defined(), "attach_node on undefined output");
  output.impl()->grad_fn = std::make_shared<Node>(
      std::move(name), std::move(inputs), std::move(backward_fn));
}

void accumulate_grad(const Tensor& target, const Tensor& delta) {
  if (!target.defined() || !delta.defined()) return;
  MENOS_CHECK_MSG(
      delta.numel() == target.numel(),
      "gradient numel mismatch for node output: " << delta.numel() << " vs "
                                                  << target.numel());
  auto impl = target.impl();
  if (impl->grad == nullptr) {
    Tensor g = delta.clone();
    // Gradients never need their own tape.
    impl->grad = g.impl();
    return;
  }
  float* acc = impl->grad->storage->data();
  const float* d = delta.data();
  const Index n = delta.numel();
  for (Index i = 0; i < n; ++i) acc[i] += d[i];
}

}  // namespace detail

void backward(const Tensor& loss, const Tensor& seed_in) {
  MENOS_CHECK_MSG(loss.defined(), "backward() on undefined tensor");
  if (seed_in.defined()) {
    MENOS_CHECK_MSG(seed_in.numel() == loss.numel(),
                    "backward seed numel " << seed_in.numel()
                                           << " != root numel "
                                           << loss.numel());
  }

  // Topological order over the reachable tape (post-order DFS, iterative to
  // survive deep transformer graphs).
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  {
    std::vector<std::pair<TensorImpl*, std::size_t>> stack;
    stack.emplace_back(loss.impl().get(), 0);
    visited.insert(loss.impl().get());
    while (!stack.empty()) {
      auto& [impl, child] = stack.back();
      const Node* node = impl->grad_fn.get();
      const std::size_t fanin = node != nullptr ? node->inputs().size() : 0;
      if (child < fanin) {
        TensorImpl* next = node->inputs()[child].impl().get();
        ++child;
        if (next != nullptr && visited.insert(next).second) {
          stack.emplace_back(next, 0);
        }
      } else {
        topo.push_back(impl);
        stack.pop_back();
      }
    }
  }

  // Seed: ones for a loss root, or the caller-supplied upstream gradient.
  {
    NoGradGuard no_grad;
    Tensor seed = seed_in.defined()
                      ? seed_in
                      : Tensor::full(loss.shape(), 1.0f, loss.device());
    detail::accumulate_grad(loss, seed);
  }

  // Reverse topological order = forward-pass order reversed.
  NoGradGuard no_grad;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* impl = *it;
    if (impl->grad_fn == nullptr) continue;
    if (impl->grad == nullptr) continue;  // unreachable from the seed
    const Tensor grad_out(impl->grad);
    std::vector<Tensor> input_grads = impl->grad_fn->run_backward(grad_out);
    const auto& inputs = impl->grad_fn->inputs();
    MENOS_CHECK_MSG(input_grads.size() == inputs.size(),
                    "node '" << impl->grad_fn->name() << "' returned "
                             << input_grads.size() << " grads for "
                             << inputs.size() << " inputs");
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const Tensor& input = inputs[i];
      if (!input.defined() || !input_grads[i].defined()) continue;
      // Only tensors on the tape need gradient storage.
      if (input.requires_grad() || input.impl()->grad_fn != nullptr) {
        detail::accumulate_grad(input, input_grads[i]);
      }
    }
    // Non-leaf gradients are scratch: once consumed they can be dropped so
    // activation-gradient memory does not accumulate across the graph.
    if (!impl->requires_grad) impl->grad.reset();
  }
}

}  // namespace menos::tensor
