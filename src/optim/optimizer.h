// Optimizers over the trainable (adapter) parameters.
//
// State buffers (momentum, Adam moments) are allocated on the device that
// holds the parameter, so the optimizer-state component O of the paper's
// §2.3 memory accounting is metered by gpusim like everything else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace menos::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Apply one update from the accumulated gradients. Parameters with no
  /// gradient (unreached by backward) are skipped.
  virtual void step() = 0;

  /// Drop all accumulated gradients.
  void zero_grad();

  /// Adjust the learning rate (for schedules). Other hyper-parameters are
  /// fixed at construction.
  virtual void set_lr(float lr) = 0;
  virtual float lr() const = 0;

  /// Bytes held by optimizer state buffers (the O term).
  virtual std::size_t state_bytes() const = 0;

  /// The state buffers themselves, for host<->GPU task-swap migration.
  virtual std::vector<tensor::Tensor> state_tensors() const = 0;

  /// Steps applied so far, for optimizers whose update depends on time
  /// (Adam's bias correction). Session migration carries this alongside
  /// state_tensors() so a resumed run stays bit-identical; optimizers with
  /// time-independent updates report 0 and ignore the setter.
  virtual std::int64_t step_count() const { return 0; }
  virtual void set_step_count(std::int64_t /*steps*/) {}

  const std::vector<nn::Parameter>& params() const noexcept { return params_; }

 protected:
  std::vector<nn::Parameter> params_;
};

struct SgdOptions {
  float lr = 1e-2f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter> params, const SgdOptions& options);
  void step() override;
  std::size_t state_bytes() const override;
  std::vector<tensor::Tensor> state_tensors() const override;
  void set_lr(float lr) override { options_.lr = lr; }
  float lr() const override { return options_.lr; }

 private:
  SgdOptions options_;
  std::vector<tensor::Tensor> velocity_;  // lazily sized; empty if momentum=0
};

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  ///< decoupled (AdamW) when non-zero
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<nn::Parameter> params, const AdamOptions& options);
  void step() override;
  std::size_t state_bytes() const override;
  std::vector<tensor::Tensor> state_tensors() const override;
  void set_lr(float lr) override { options_.lr = lr; }
  float lr() const override { return options_.lr; }
  std::int64_t step_count() const override { return t_; }
  void set_step_count(std::int64_t steps) override { t_ = steps; }

 private:
  AdamOptions options_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  std::int64_t t_ = 0;
};

/// Named optimizer selection carried in client configs over the wire.
enum class OptimizerKind { Sgd, Adam, AdamW };

const char* optimizer_kind_name(OptimizerKind kind) noexcept;

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<nn::Parameter> params,
                                          float lr);

}  // namespace menos::optim
