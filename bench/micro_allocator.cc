// Allocator throughput tracker (not a paper figure): mem::CachingAllocator
// vs the raw metered device on steady-state and churn workloads.
//
// The number that matters in a real stack is how many cudaMalloc-class
// calls the pool absorbs — here, the inner device's lifetime_allocs — plus
// the pool's hit rate and the fragmentation it leaves behind. Wall time is
// reported too, but on a simulated device both sides are just bookkeeping.
//
// Emits BENCH_allocator.json (or argv[1]); docs/MEMORY.md explains how to
// read it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "mem/caching_allocator.h"
#include "util/rng.h"

namespace {

using menos::gpusim::Device;
using menos::mem::CachingAllocator;

constexpr std::size_t kCapacity = 64u << 20;
constexpr int kReps = 3;

/// An unpooled meter regardless of MENOS_CACHING_ALLOC / the compile-time
/// default — the baseline side must never be pooled, and the cached side
/// must carry exactly one pooling layer.
std::unique_ptr<Device> make_plain(const char* name) {
  const char* saved = std::getenv("MENOS_CACHING_ALLOC");
  const std::string restore = saved == nullptr ? "" : saved;
  setenv("MENOS_CACHING_ALLOC", "0", 1);
  auto device = menos::gpusim::make_sim_gpu(name, kCapacity);
  if (saved == nullptr) {
    unsetenv("MENOS_CACHING_ALLOC");
  } else {
    setenv("MENOS_CACHING_ALLOC", restore.c_str(), 1);
  }
  return device;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Steady-state training loop: the same eight tensor sizes allocated and
/// freed every round, the regime where a pool should serve ~everything.
std::uint64_t steady_state(Device& d) {
  static constexpr std::size_t kSizes[] = {
      16u << 10,        48u << 10, 200u << 10, 512u << 10,
      768u << 10,       (1u << 20) + 4096,     (2u << 20) + 64,
      3u << 20};
  constexpr int kRounds = 400;
  std::vector<void*> live;
  live.reserve(std::size(kSizes));
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t s : kSizes) live.push_back(d.allocate(s));
    for (std::size_t i = 0; i < live.size(); ++i) {
      d.deallocate(live[i], kSizes[i]);
    }
    live.clear();
  }
  return 2ull * std::size(kSizes) * kRounds;
}

/// Randomized churn: interleaved alloc/free with a mixed small/large size
/// distribution — the regime that creates fragmentation. Deterministic.
std::uint64_t churn(Device& d) {
  constexpr int kSteps = 20000;
  constexpr std::size_t kLiveLimit = 24u << 20;
  menos::util::Rng rng(0xbe7c);
  std::vector<std::pair<void*, std::size_t>> live;
  std::size_t live_bytes = 0;
  std::uint64_t ops = 0;
  for (int step = 0; step < kSteps; ++step) {
    const bool alloc =
        live.empty() ||
        (live_bytes < kLiveLimit && rng.next_below(100) < 55);
    if (alloc) {
      const std::size_t bytes = rng.next_below(10) < 9
                                    ? 1 + rng.next_below(128u << 10)
                                    : (1u << 20) + rng.next_below(2u << 20);
      live.emplace_back(d.allocate(bytes), bytes);
      live_bytes += bytes;
    } else {
      const std::size_t i = rng.next_below(live.size());
      d.deallocate(live[i].first, live[i].second);
      live_bytes -= live[i].second;
      live[i] = live.back();
      live.pop_back();
    }
    ++ops;
  }
  for (const auto& [ptr, bytes] : live) d.deallocate(ptr, bytes);
  return ops + live.size();
}

struct WorkloadResult {
  std::string name;
  std::uint64_t ops = 0;
  double plain_ms = 0.0;
  double cached_ms = 0.0;
  std::uint64_t plain_inner_allocs = 0;
  std::uint64_t cached_inner_allocs = 0;
  double hit_rate = 0.0;
  double fragmentation = 0.0;  // taken at the churn peak, before teardown
  double cached_mb = 0.0;      // pool bytes held after the workload
};

template <typename Fn>
WorkloadResult run_workload(const std::string& name, Fn&& fn) {
  WorkloadResult r;
  r.name = name;

  for (int rep = 0; rep < kReps; ++rep) {
    auto plain = make_plain("plain");
    const double t0 = now_seconds();
    r.ops = fn(*plain);
    r.plain_ms = rep == 0 ? 1e3 * (now_seconds() - t0)
                          : std::min(r.plain_ms, 1e3 * (now_seconds() - t0));
    r.plain_inner_allocs = plain->stats().lifetime_allocs;
  }

  for (int rep = 0; rep < kReps; ++rep) {
    CachingAllocator cached(make_plain("cached"));
    const double t0 = now_seconds();
    fn(cached);
    r.cached_ms = rep == 0 ? 1e3 * (now_seconds() - t0)
                           : std::min(r.cached_ms,
                                      1e3 * (now_seconds() - t0));
    r.cached_inner_allocs = cached.inner().stats().lifetime_allocs;
    r.hit_rate = cached.cache_stats().hit_rate();
    r.fragmentation = cached.stats().fragmentation();
    r.cached_mb = static_cast<double>(cached.stats().cached) / (1u << 20);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_allocator.json");

  std::vector<WorkloadResult> results;
  results.push_back(run_workload("steady_state", steady_state));
  results.push_back(run_workload("churn", churn));

  for (const WorkloadResult& r : results) {
    std::printf(
        "%-12s %6llu ops  plain %7.2f ms (%llu inner allocs)  cached "
        "%7.2f ms (%llu inner allocs)  hit %.1f%%  frag %.3f  pool %.1f MB\n",
        r.name.c_str(), static_cast<unsigned long long>(r.ops), r.plain_ms,
        static_cast<unsigned long long>(r.plain_inner_allocs), r.cached_ms,
        static_cast<unsigned long long>(r.cached_inner_allocs),
        100.0 * r.hit_rate, r.fragmentation, r.cached_mb);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_allocator\",\n");
  std::fprintf(f, "  \"capacity_mb\": %zu,\n",
               static_cast<std::size_t>(kCapacity >> 20));
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(
        f,
        "%s    {\"name\": \"%s\", \"ops\": %llu,\n"
        "     \"plain_ms\": %.3f, \"plain_inner_allocs\": %llu,\n"
        "     \"cached_ms\": %.3f, \"cached_inner_allocs\": %llu,\n"
        "     \"hit_rate\": %.4f, \"fragmentation\": %.4f, "
        "\"cached_mb\": %.2f}",
        i == 0 ? "" : ",\n", r.name.c_str(),
        static_cast<unsigned long long>(r.ops), r.plain_ms,
        static_cast<unsigned long long>(r.plain_inner_allocs), r.cached_ms,
        static_cast<unsigned long long>(r.cached_inner_allocs), r.hit_rate,
        r.fragmentation, r.cached_mb);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
