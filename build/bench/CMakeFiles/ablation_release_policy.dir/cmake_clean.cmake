file(REMOVE_RECURSE
  "CMakeFiles/ablation_release_policy.dir/ablation_release_policy.cc.o"
  "CMakeFiles/ablation_release_policy.dir/ablation_release_policy.cc.o.d"
  "ablation_release_policy"
  "ablation_release_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_release_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
