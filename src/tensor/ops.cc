#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "tensor/graph.h"
#include "tensor/kernels.h"
#include "util/fastmath.h"
#include "util/thread_pool.h"

namespace menos::tensor {

namespace gd = graph::detail;
using graph::OpKind;

namespace {

using detail::attach_node;
using detail::should_record;

void check_defined(const Tensor& t, const char* op) {
  MENOS_CHECK_MSG(t.defined(), op << ": undefined tensor operand");
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  MENOS_CHECK_MSG(a.shape() == b.shape(),
                  op << ": shape mismatch " << shape_to_string(a.shape())
                     << " vs " << shape_to_string(b.shape()));
}

/// New impl sharing `t`'s storage with a different shape (detached view).
Tensor view_as(const Tensor& t, Shape shape) {
  MENOS_CHECK_MSG(numel_of(shape) == t.numel(),
                  "view numel mismatch: " << shape_to_string(shape) << " on "
                                          << shape_to_string(t.shape()));
  return Tensor(std::make_shared<TensorImpl>(t.impl()->storage,
                                             std::move(shape), false));
}

// ----- parallel partitioning helpers -----
//
// Grain sizes are the minimum work (indices / output rows) worth shipping
// to another thread. Work is always partitioned so each output element is
// produced by exactly one chunk with a fixed internal loop order, which is
// what makes results bit-identical for any MENOS_THREADS (docs/PERF.md).

constexpr Index kEwGrain = 1 << 15;    // plain elementwise arithmetic
constexpr Index kMathGrain = 1 << 12;  // exp/tanh-heavy elementwise

Index rows_grain(Index row_len, Index grain = kEwGrain) {
  return std::max<Index>(1, grain / std::max<Index>(row_len, 1));
}

// ----- shared elementwise / backward helpers -----
//
// Factored out so each fused op (bias_gelu, fused_add_layer_norm) and the
// ops it replaces run literally the same code in forward and backward —
// bit-identity between the fused and composed forms is by construction,
// not by tolerance. The raw matmul loops live in tensor/kernels.cc (the
// cache-blocked packed-panel implementation).

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

/// gelu(x), tanh approximation, on the deterministic fast_tanh.
inline float gelu_fwd(float x) {
  const float t = util::fast_tanh(kGeluC * (x + kGeluA * x * x * x));
  return 0.5f * x * (1.0f + t);
}

/// d gelu(x) / dx.
inline float gelu_grad(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = util::fast_tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

/// db[j] = sum_r g[r, j]: the bias gradient. Column-partitioned — each
/// thread owns a block of columns and sweeps rows in ascending order, so
/// every db[j] sees the same addition order at any thread count.
Tensor bias_grad_columns(const Tensor& g, Index rows, Index n) {
  Tensor db = Tensor::zeros({n}, g.device());
  const float* pg = g.data();
  float* pdb = db.data();
  util::parallel_for(0, n, rows_grain(rows), [&](Index j0, Index j1) {
    for (Index r = 0; r < rows; ++r) {
      const float* grow = pg + r * n;
      for (Index j = j0; j < j1; ++j) pdb[j] += grow[j];
    }
  });
  return db;
}

/// The layer_norm backward body, shared by layer_norm and
/// fused_add_layer_norm: {dx, dgamma, dbeta} from the saved normalized
/// activations and per-row 1/sigma.
std::vector<Tensor> layer_norm_backward(const Tensor& xhat,
                                        const Tensor& inv_sigma,
                                        const Tensor& gamma_saved, Index n,
                                        Index rows, const Tensor& g) {
  Tensor dx = Tensor::empty(g.shape(), g.device());
  Tensor dgamma = Tensor::zeros({n}, g.device());
  Tensor dbeta = Tensor::zeros({n}, g.device());
  const float* ph2 = xhat.data();
  const float* pis2 = inv_sigma.data();
  const float* pgam = gamma_saved.data();
  const float* pgr = g.data();
  float* pdx = dx.data();
  float* pdg = dgamma.data();
  float* pdb = dbeta.data();
  // Pass 1 (rows): dx, which only needs per-row statistics.
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* hr = ph2 + r * n;
      const float* gr = pgr + r * n;
      float* dxr = pdx + r * n;
      float mean_gy = 0.0f, mean_gyh = 0.0f;
      for (Index j = 0; j < n; ++j) {
        const float gy = gr[j] * pgam[j];
        mean_gy += gy;
        mean_gyh += gy * hr[j];
      }
      mean_gy /= static_cast<float>(n);
      mean_gyh /= static_cast<float>(n);
      const float is = pis2[r];
      for (Index j = 0; j < n; ++j) {
        const float gy = gr[j] * pgam[j];
        dxr[j] = is * (gy - mean_gy - hr[j] * mean_gyh);
      }
    }
  });
  // Pass 2 (columns): dgamma/dbeta. Each thread owns a column block and
  // sweeps rows in ascending order, so the reduction order per parameter
  // is thread-count invariant.
  util::parallel_for(0, n, rows_grain(rows), [&](Index j0, Index j1) {
    for (Index r = 0; r < rows; ++r) {
      const float* hr = ph2 + r * n;
      const float* gr = pgr + r * n;
      for (Index j = j0; j < j1; ++j) {
        pdg[j] += gr[j] * hr[j];
        pdb[j] += gr[j];
      }
    }
  });
  return {dx, dgamma, dbeta};
}

}  // namespace

// ----- elementwise -----

Tensor add(const Tensor& a, const Tensor& b) {
  check_defined(a, "add");
  check_defined(b, "add");
  check_same_shape(a, b, "add");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
  });
  if (should_record({a, b})) {
    attach_node(out, "add", {a, b}, [](const Tensor& g) {
      return std::vector<Tensor>{g, g};
    });
  }
  gd::note(OpKind::Add, {a, b}, out);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_defined(a, "sub");
  check_defined(b, "sub");
  check_same_shape(a, b, "sub");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
  });
  if (should_record({a, b})) {
    attach_node(out, "sub", {a, b}, [](const Tensor& g) {
      return std::vector<Tensor>{g, scale(g, -1.0f)};
    });
  }
  gd::note(OpKind::Sub, {a, b}, out);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_defined(a, "mul");
  check_defined(b, "mul");
  check_same_shape(a, b, "mul");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
  });
  if (should_record({a, b})) {
    Tensor sa = a.detach(), sb = b.detach();
    attach_node(out, "mul", {a, b}, [sa, sb](const Tensor& g) {
      return std::vector<Tensor>{mul(g, sb), mul(g, sa)};
    });
  }
  gd::note(OpKind::Mul, {a, b}, out);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  check_defined(a, "scale");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] * s;
  });
  if (should_record({a})) {
    attach_node(out, "scale", {a}, [s](const Tensor& g) {
      return std::vector<Tensor>{scale(g, s)};
    });
  }
  gd::note(OpKind::Scale, {a}, out, {.f0 = s});
  return out;
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  check_defined(x, "add_bias");
  check_defined(bias, "add_bias");
  MENOS_CHECK_MSG(bias.ndim() == 1, "add_bias: bias must be 1-D, got "
                                        << shape_to_string(bias.shape()));
  const Index n = bias.dim(0);
  MENOS_CHECK_MSG(x.ndim() >= 1 && x.shape().back() == n,
                  "add_bias: last dim of x " << shape_to_string(x.shape())
                                             << " != bias size " << n);
  Tensor out = Tensor::empty(x.shape(), x.device());
  const Index rows = x.numel() / n;
  const float* px = x.data();
  const float* pb = bias.data();
  float* po = out.data();
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) orow[j] = xr[j] + pb[j];
    }
  });
  if (should_record({x, bias})) {
    attach_node(out, "add_bias", {x, bias}, [n, rows](const Tensor& g) {
      return std::vector<Tensor>{g, bias_grad_columns(g, rows, n)};
    });
  }
  gd::note(OpKind::AddBias, {x, bias}, out);
  return out;
}

Tensor relu(const Tensor& a) {
  check_defined(a, "relu");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kEwGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
  });
  if (should_record({a})) {
    Tensor sa = a.detach();
    attach_node(out, "relu", {a}, [sa](const Tensor& g) {
      Tensor dx = Tensor::empty(g.shape(), g.device());
      const float* px = sa.data();
      const float* pg = g.data();
      float* pd = dx.data();
      const Index m = g.numel();
      util::parallel_for(0, m, kEwGrain, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) pd[i] = px[i] > 0.0f ? pg[i] : 0.0f;
      });
      return std::vector<Tensor>{dx};
    });
  }
  gd::note(OpKind::Relu, {a}, out);
  return out;
}

Tensor gelu(const Tensor& a) {
  check_defined(a, "gelu");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  // gelu_fwd is branch-free inline arithmetic (util/fastmath.h), so this
  // loop vectorizes — the libm tanh it replaces pinned gelu at scalar
  // speed regardless of width (the flat scaling in BENCH_tensor_ops.json).
  util::parallel_for(0, n, kMathGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) po[i] = gelu_fwd(pa[i]);
  });
  if (should_record({a})) {
    Tensor sa = a.detach();
    attach_node(out, "gelu", {a}, [sa](const Tensor& g) {
      Tensor dx = Tensor::empty(g.shape(), g.device());
      const float* px = sa.data();
      const float* pg = g.data();
      float* pd = dx.data();
      const Index m = g.numel();
      util::parallel_for(0, m, kMathGrain, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) pd[i] = pg[i] * gelu_grad(px[i]);
      });
      return std::vector<Tensor>{dx};
    });
  }
  gd::note(OpKind::Gelu, {a}, out);
  return out;
}

Tensor bias_gelu(const Tensor& x, const Tensor& bias) {
  check_defined(x, "bias_gelu");
  check_defined(bias, "bias_gelu");
  MENOS_CHECK_MSG(bias.ndim() == 1, "bias_gelu: bias must be 1-D, got "
                                        << shape_to_string(bias.shape()));
  const Index n = bias.dim(0);
  MENOS_CHECK_MSG(x.ndim() >= 1 && x.shape().back() == n,
                  "bias_gelu: last dim of x " << shape_to_string(x.shape())
                                              << " != bias size " << n);
  // One pass computes both the pre-activation t = x + bias (saved for
  // backward, exactly as the composed tape saves it) and gelu(t). The
  // float round-trip of t through memory is lossless, so using v directly
  // matches the composition bit-for-bit.
  Tensor t = Tensor::empty(x.shape(), x.device());
  Tensor out = Tensor::empty(x.shape(), x.device());
  const Index rows = x.numel() / n;
  const float* px = x.data();
  const float* pb = bias.data();
  float* pt = t.data();
  float* po = out.data();
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float* tr = pt + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) {
        const float v = xr[j] + pb[j];
        tr[j] = v;
        orow[j] = gelu_fwd(v);
      }
    }
  });
  if (should_record({x, bias})) {
    attach_node(out, "bias_gelu", {x, bias}, [t, n, rows](const Tensor& g) {
      // dt = g * gelu'(t); dx = dt and db = column sums of dt — the same
      // two steps (same loops) the composed gelu+add_bias tape runs.
      Tensor dt = Tensor::empty(g.shape(), g.device());
      const float* ptt = t.data();
      const float* pg = g.data();
      float* pd = dt.data();
      const Index m = g.numel();
      util::parallel_for(0, m, kMathGrain, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) pd[i] = pg[i] * gelu_grad(ptt[i]);
      });
      return std::vector<Tensor>{dt, bias_grad_columns(dt, rows, n)};
    });
  }
  gd::note(OpKind::BiasGelu, {x, bias}, out);
  return out;
}

Tensor silu(const Tensor& a) {
  check_defined(a, "silu");
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  const Index n = a.numel();
  util::parallel_for(0, n, kMathGrain, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      const float x = pa[i];
      po[i] = x * util::fast_sigmoid(x);
    }
  });
  if (should_record({a})) {
    Tensor sa = a.detach();
    attach_node(out, "silu", {a}, [sa](const Tensor& g) {
      Tensor dx = Tensor::empty(g.shape(), g.device());
      const float* px = sa.data();
      const float* pg = g.data();
      float* pd = dx.data();
      const Index m = g.numel();
      util::parallel_for(0, m, kMathGrain, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) {
          const float x = px[i];
          const float s = util::fast_sigmoid(x);
          pd[i] = pg[i] * s * (1.0f + x * (1.0f - s));
        }
      });
      return std::vector<Tensor>{dx};
    });
  }
  gd::note(OpKind::Silu, {a}, out);
  return out;
}

Tensor dropout(const Tensor& a, float p, util::Rng& rng) {
  check_defined(a, "dropout");
  MENOS_CHECK_MSG(p >= 0.0f && p < 1.0f,
                  "dropout probability must be in [0, 1), got " << p);
  // p == 0 is the identity and consumes no rng state: return before the
  // note_unsupported below so disabled dropout never poisons a StepGraph
  // capture (tests/graph_test.cc pins this).
  if (p == 0.0f) return a;
  const float keep_scale = 1.0f / (1.0f - p);
  Tensor out = Tensor::empty(a.shape(), a.device());
  // The mask is saved (as keep_scale or 0 per element) for backward.
  Tensor mask = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  float* pm = mask.data();
  const Index n = a.numel();
  for (Index i = 0; i < n; ++i) {
    const bool keep = rng.next_double() >= static_cast<double>(p);
    pm[i] = keep ? keep_scale : 0.0f;
    po[i] = pa[i] * pm[i];
  }
  if (should_record({a})) {
    attach_node(out, "dropout", {a}, [mask](const Tensor& g) {
      return std::vector<Tensor>{mul(g, mask)};
    });
  }
  // The mask consumes rng state a replay could not reproduce; a step with
  // active dropout stays eager.
  gd::note_unsupported("dropout");
  return out;
}

// ----- shape manipulation -----

Tensor reshape(const Tensor& a, Shape new_shape) {
  check_defined(a, "reshape");
  Tensor out = view_as(a, std::move(new_shape));
  if (should_record({a})) {
    const Shape original = a.shape();
    attach_node(out, "reshape", {a}, [original](const Tensor& g) {
      return std::vector<Tensor>{view_as(g, original)};
    });
  }
  gd::note(OpKind::Reshape, {a}, out, {.shape = &out.shape()});
  return out;
}

namespace {

/// Raw permutation copy: out[perm(index)] = in[index].
Tensor permute_copy(const Tensor& a, const std::vector<int>& dims) {
  const Shape& in_shape = a.shape();
  const int nd = a.ndim();
  Shape out_shape(static_cast<std::size_t>(nd));
  for (int i = 0; i < nd; ++i) {
    out_shape[static_cast<std::size_t>(i)] =
        in_shape[static_cast<std::size_t>(dims[static_cast<std::size_t>(i)])];
  }
  Tensor out = Tensor::empty(out_shape, a.device());

  // Strides (row-major).
  std::vector<Index> in_strides(static_cast<std::size_t>(nd), 1);
  std::vector<Index> out_strides(static_cast<std::size_t>(nd), 1);
  for (int i = nd - 2; i >= 0; --i) {
    in_strides[static_cast<std::size_t>(i)] =
        in_strides[static_cast<std::size_t>(i + 1)] *
        in_shape[static_cast<std::size_t>(i + 1)];
    out_strides[static_cast<std::size_t>(i)] =
        out_strides[static_cast<std::size_t>(i + 1)] *
        out_shape[static_cast<std::size_t>(i + 1)];
  }

  const float* pin = a.data();
  float* pout = out.data();
  const Index total = a.numel();
  std::vector<Index> idx(static_cast<std::size_t>(nd), 0);
  for (Index flat = 0; flat < total; ++flat) {
    // Decompose flat input index -> coordinates.
    Index rem = flat;
    for (int i = 0; i < nd; ++i) {
      idx[static_cast<std::size_t>(i)] =
          rem / in_strides[static_cast<std::size_t>(i)];
      rem %= in_strides[static_cast<std::size_t>(i)];
    }
    Index out_flat = 0;
    for (int i = 0; i < nd; ++i) {
      out_flat += idx[static_cast<std::size_t>(dims[static_cast<std::size_t>(i)])] *
                  out_strides[static_cast<std::size_t>(i)];
    }
    pout[out_flat] = pin[flat];
  }
  return out;
}

}  // namespace

Tensor permute(const Tensor& a, const std::vector<int>& dims) {
  check_defined(a, "permute");
  MENOS_CHECK_MSG(static_cast<int>(dims.size()) == a.ndim(),
                  "permute: axis list size " << dims.size() << " != ndim "
                                             << a.ndim());
  std::vector<bool> seen(dims.size(), false);
  for (int d : dims) {
    MENOS_CHECK_MSG(d >= 0 && d < a.ndim() && !seen[static_cast<std::size_t>(d)],
                    "permute: invalid axis permutation");
    seen[static_cast<std::size_t>(d)] = true;
  }
  Tensor out = permute_copy(a, dims);
  if (should_record({a})) {
    std::vector<int> inverse(dims.size());
    for (std::size_t i = 0; i < dims.size(); ++i) {
      inverse[static_cast<std::size_t>(dims[i])] = static_cast<int>(i);
    }
    attach_node(out, "permute", {a}, [inverse](const Tensor& g) {
      return std::vector<Tensor>{permute_copy(g, inverse)};
    });
  }
  gd::note(OpKind::Permute, {a}, out, {.dims = &dims});
  return out;
}

Tensor transpose_last(const Tensor& a) {
  check_defined(a, "transpose_last");
  MENOS_CHECK_MSG(a.ndim() >= 2, "transpose_last needs ndim >= 2");
  std::vector<int> dims(static_cast<std::size_t>(a.ndim()));
  for (int i = 0; i < a.ndim(); ++i) dims[static_cast<std::size_t>(i)] = i;
  std::swap(dims[static_cast<std::size_t>(a.ndim() - 1)],
            dims[static_cast<std::size_t>(a.ndim() - 2)]);
  return permute(a, dims);
}

Tensor concat_dim1(const Tensor& a, const Tensor& b) {
  check_defined(a, "concat_dim1");
  check_defined(b, "concat_dim1");
  MENOS_CHECK_MSG(a.ndim() == 3 && b.ndim() == 3,
                  "concat_dim1 expects 3-D tensors");
  MENOS_CHECK_MSG(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2),
                  "concat_dim1: incompatible shapes "
                      << shape_to_string(a.shape()) << " and "
                      << shape_to_string(b.shape()));
  const Index B = a.dim(0), Ta = a.dim(1), Tb = b.dim(1), C = a.dim(2);
  Tensor out = Tensor::empty({B, Ta + Tb, C}, a.device());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (Index i = 0; i < B; ++i) {
    std::memcpy(po + i * (Ta + Tb) * C, pa + i * Ta * C,
                static_cast<std::size_t>(Ta * C) * sizeof(float));
    std::memcpy(po + (i * (Ta + Tb) + Ta) * C, pb + i * Tb * C,
                static_cast<std::size_t>(Tb * C) * sizeof(float));
  }
  if (should_record({a, b})) {
    attach_node(out, "concat_dim1", {a, b}, [B, Ta, Tb, C](const Tensor& g) {
      Tensor ga = Tensor::empty({B, Ta, C}, g.device());
      Tensor gb = Tensor::empty({B, Tb, C}, g.device());
      const float* pg = g.data();
      for (Index i = 0; i < B; ++i) {
        std::memcpy(ga.data() + i * Ta * C, pg + i * (Ta + Tb) * C,
                    static_cast<std::size_t>(Ta * C) * sizeof(float));
        std::memcpy(gb.data() + i * Tb * C, pg + (i * (Ta + Tb) + Ta) * C,
                    static_cast<std::size_t>(Tb * C) * sizeof(float));
      }
      return std::vector<Tensor>{ga, gb};
    });
  }
  gd::note(OpKind::ConcatDim1, {a, b}, out);
  return out;
}

Tensor slice_dim1(const Tensor& a, Index start, Index len) {
  check_defined(a, "slice_dim1");
  MENOS_CHECK_MSG(a.ndim() == 3, "slice_dim1 expects a 3-D tensor");
  const Index B = a.dim(0), T = a.dim(1), C = a.dim(2);
  MENOS_CHECK_MSG(start >= 0 && len >= 0 && start + len <= T,
                  "slice_dim1: range [" << start << ", " << start + len
                                        << ") out of bounds for T=" << T);
  Tensor out = Tensor::empty({B, len, C}, a.device());
  const float* pa = a.data();
  float* po = out.data();
  for (Index i = 0; i < B; ++i) {
    std::memcpy(po + i * len * C, pa + (i * T + start) * C,
                static_cast<std::size_t>(len * C) * sizeof(float));
  }
  if (should_record({a})) {
    attach_node(out, "slice_dim1", {a}, [B, T, C, start, len](const Tensor& g) {
      Tensor gx = Tensor::zeros({B, T, C}, g.device());
      const float* pg = g.data();
      for (Index i = 0; i < B; ++i) {
        std::memcpy(gx.data() + (i * T + start) * C, pg + i * len * C,
                    static_cast<std::size_t>(len * C) * sizeof(float));
      }
      return std::vector<Tensor>{gx};
    });
  }
  gd::note(OpKind::SliceDim1, {a}, out, {.a = start, .b = len});
  return out;
}

Tensor tile_batch(const Tensor& prefix, Index batch) {
  check_defined(prefix, "tile_batch");
  MENOS_CHECK_MSG(prefix.ndim() == 2,
                  "tile_batch expects a 2-D prefix, got ndim "
                      << prefix.ndim());
  MENOS_CHECK_MSG(batch > 0, "tile_batch: batch must be positive");
  const Index p = prefix.dim(0);
  const Index c = prefix.dim(1);
  Tensor out = Tensor::empty({batch, p, c}, prefix.device());
  const float* src = prefix.data();
  float* dst = out.data();
  const std::size_t block = static_cast<std::size_t>(p * c) * sizeof(float);
  for (Index b = 0; b < batch; ++b) std::memcpy(dst + b * p * c, src, block);
  if (should_record({prefix})) {
    attach_node(out, "tile_batch", {prefix},
                [batch, p, c](const Tensor& g) {
                  Tensor dp = Tensor::zeros({p, c}, g.device());
                  const float* pg = g.data();
                  float* pd = dp.data();
                  for (Index b = 0; b < batch; ++b) {
                    const float* gb = pg + b * p * c;
                    for (Index i = 0; i < p * c; ++i) pd[i] += gb[i];
                  }
                  return std::vector<Tensor>{dp};
                });
  }
  gd::note(OpKind::TileBatch, {prefix}, out, {.a = batch});
  return out;
}

Tensor repeat_heads(const Tensor& t, int repeat) {
  check_defined(t, "repeat_heads");
  MENOS_CHECK_MSG(t.ndim() == 4,
                  "repeat_heads expects [B, H, T, D], got ndim " << t.ndim());
  MENOS_CHECK_MSG(repeat >= 1, "repeat_heads: repeat must be >= 1");
  if (repeat == 1) return t;
  const Index batch = t.dim(0), heads = t.dim(1), seq = t.dim(2),
              d = t.dim(3);
  Tensor out = Tensor::empty({batch, heads * repeat, seq, d}, t.device());
  const float* src = t.data();
  float* dst = out.data();
  const Index block = seq * d;
  for (Index bi = 0; bi < batch; ++bi) {
    for (Index h = 0; h < heads; ++h) {
      const float* s = src + (bi * heads + h) * block;
      for (Index r = 0; r < repeat; ++r) {
        float* o = dst + ((bi * heads + h) * repeat + r) * block;
        std::memcpy(o, s, static_cast<std::size_t>(block) * sizeof(float));
      }
    }
  }
  if (should_record({t})) {
    attach_node(out, "repeat_heads", {t},
                [batch, heads, seq, d, repeat](const Tensor& g) {
                  Tensor dt = Tensor::zeros({batch, heads, seq, d},
                                            g.device());
                  const Index block = seq * d;
                  const float* pg = g.data();
                  float* pd = dt.data();
                  for (Index bi = 0; bi < batch; ++bi) {
                    for (Index h = 0; h < heads; ++h) {
                      float* acc = pd + (bi * heads + h) * block;
                      for (Index r = 0; r < repeat; ++r) {
                        const float* gb =
                            pg + ((bi * heads + h) * repeat + r) * block;
                        for (Index i = 0; i < block; ++i) acc[i] += gb[i];
                      }
                    }
                  }
                  return std::vector<Tensor>{dt};
                });
  }
  gd::note(OpKind::RepeatHeads, {t}, out,
           {.a = static_cast<Index>(repeat)});
  return out;
}

// ----- contractions -----

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_defined(a, "matmul");
  check_defined(b, "matmul");
  MENOS_CHECK_MSG(a.ndim() >= 2 && b.ndim() >= 2,
                  "matmul operands need ndim >= 2");
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  const Index m = sa[sa.size() - 2];
  const Index k = sa[sa.size() - 1];
  const bool shared_b = b.ndim() == 2;
  if (shared_b) {
    MENOS_CHECK_MSG(sb[0] == k, "matmul: inner dims " << k << " vs " << sb[0]);
  } else {
    MENOS_CHECK_MSG(a.ndim() == b.ndim(),
                    "matmul: batched operands must have equal ndim");
    for (std::size_t i = 0; i + 2 < sa.size(); ++i) {
      MENOS_CHECK_MSG(sa[i] == sb[i], "matmul: batch dims mismatch at axis "
                                          << i << ": " << sa[i] << " vs "
                                          << sb[i]);
    }
    MENOS_CHECK_MSG(sb[sb.size() - 2] == k,
                    "matmul: inner dims " << k << " vs " << sb[sb.size() - 2]);
  }
  const Index n = sb[sb.size() - 1];
  const Index batch = a.numel() / (m * k);

  Shape out_shape(sa.begin(), sa.end() - 2);
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::zeros(out_shape, a.device());

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // The packed-panel kernels parallelize internally (and flatten the
  // shared-B case into one big product), so deep batches of small
  // matrices saturate the pool as well as one large matmul.
  kernels::mm_batched(pa, pb, po, batch, m, k, n, shared_b);

  if (should_record({a, b})) {
    Tensor saved_a = a.detach();
    Tensor saved_b = b.detach();
    attach_node(out, "matmul", {a, b},
                [saved_a, saved_b, m, k, n, batch, shared_b](const Tensor& g) {
                  Tensor da = Tensor::zeros(saved_a.shape(), g.device());
                  Tensor db = Tensor::zeros(saved_b.shape(), g.device());
                  const float* pg = g.data();
                  const float* pa2 = saved_a.data();
                  const float* pb2 = saved_b.data();
                  float* pda = da.data();
                  float* pdb = db.data();
                  // dA_i = dC_i * B_i^T.
                  kernels::mm_nt_batched(pg, pb2, pda, batch, m, n, k,
                                         shared_b);
                  // dB (+)= A_i^T * dC_i.
                  if (shared_b) {
                    // Every batch accumulates into the same dB, so keep the
                    // batch loop serial (fixed order) and parallelize over
                    // dB's rows inside each contraction.
                    for (Index i = 0; i < batch; ++i) {
                      kernels::mm_tn(pa2 + i * m * k, pg + i * m * n, pdb, m,
                                     k, n);
                    }
                  } else {
                    kernels::mm_tn_batched(pa2, pg, pdb, batch, m, k, n);
                  }
                  return std::vector<Tensor>{da, db};
                });
  }
  gd::note(OpKind::Matmul, {a, b}, out);
  return out;
}

// ----- reductions / normalization -----

Tensor sum(const Tensor& a) {
  check_defined(a, "sum");
  double acc = 0.0;
  const float* pa = a.data();
  const Index n = a.numel();
  for (Index i = 0; i < n; ++i) acc += pa[i];
  Tensor out = Tensor::scalar(static_cast<float>(acc), a.device());
  if (should_record({a})) {
    const Shape in_shape = a.shape();
    attach_node(out, "sum", {a}, [in_shape](const Tensor& g) {
      return std::vector<Tensor>{
          Tensor::full(in_shape, g.item(), g.device())};
    });
  }
  gd::note(OpKind::Sum, {a}, out);
  return out;
}

Tensor mean(const Tensor& a) {
  check_defined(a, "mean");
  MENOS_CHECK_MSG(a.numel() > 0, "mean of empty tensor");
  const float inv = 1.0f / static_cast<float>(a.numel());
  return scale(sum(a), inv);
}

namespace {

/// Shared softmax backward: ds = y * (dy - sum_j dy_j * y_j) per row.
std::vector<Tensor> softmax_backward(const Tensor& y, const Tensor& g,
                                     Index row_len) {
  Tensor dx = Tensor::empty(g.shape(), g.device());
  const Index rows = g.numel() / row_len;
  const float* py = y.data();
  const float* pg = g.data();
  float* pd = dx.data();
  util::parallel_for(0, rows, rows_grain(row_len), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* yr = py + r * row_len;
      const float* gr = pg + r * row_len;
      float* dr = pd + r * row_len;
      float dot = 0.0f;
      for (Index j = 0; j < row_len; ++j) dot += yr[j] * gr[j];
      for (Index j = 0; j < row_len; ++j) dr[j] = yr[j] * (gr[j] - dot);
    }
  });
  return {dx};
}

}  // namespace

Tensor softmax_lastdim(const Tensor& a) {
  check_defined(a, "softmax");
  MENOS_CHECK_MSG(a.ndim() >= 1, "softmax needs ndim >= 1");
  const Index n = a.shape().back();
  const Index rows = a.numel() / n;
  Tensor out = Tensor::empty(a.shape(), a.device());
  const float* pa = a.data();
  float* po = out.data();
  util::parallel_for(0, rows, rows_grain(n, kMathGrain),
                     [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = pa + r * n;
      float* yr = po + r * n;
      float mx = xr[0];
      for (Index j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
      float z = 0.0f;
      for (Index j = 0; j < n; ++j) {
        yr[j] = util::fast_exp(xr[j] - mx);
        z += yr[j];
      }
      const float inv = 1.0f / z;
      for (Index j = 0; j < n; ++j) yr[j] *= inv;
    }
  });
  if (should_record({a})) {
    Tensor saved_y = out.detach();
    attach_node(out, "softmax", {a}, [saved_y, n](const Tensor& g) {
      return softmax_backward(saved_y, g, n);
    });
  }
  gd::note(OpKind::Softmax, {a}, out);
  return out;
}

Tensor causal_masked_softmax(const Tensor& scores) {
  check_defined(scores, "causal_masked_softmax");
  MENOS_CHECK_MSG(scores.ndim() >= 2, "causal softmax needs ndim >= 2");
  const Index t_cols = scores.shape().back();
  const Index t_rows = scores.shape()[scores.shape().size() - 2];
  MENOS_CHECK_MSG(t_rows == t_cols,
                  "causal softmax expects square score blocks, got "
                      << shape_to_string(scores.shape()));
  const Index blocks = scores.numel() / (t_rows * t_cols);
  Tensor out = Tensor::empty(scores.shape(), scores.device());
  const float* pa = scores.data();
  float* po = out.data();
  util::parallel_for(0, blocks * t_rows, rows_grain(t_cols, kMathGrain),
                     [&](Index lo, Index hi) {
    for (Index row = lo; row < hi; ++row) {
      const Index t = row % t_rows;
      const float* xr = pa + row * t_cols;
      float* yr = po + row * t_cols;
      const Index valid = t + 1;  // positions 0..t
      float mx = xr[0];
      for (Index j = 1; j < valid; ++j) mx = std::max(mx, xr[j]);
      float z = 0.0f;
      for (Index j = 0; j < valid; ++j) {
        yr[j] = util::fast_exp(xr[j] - mx);
        z += yr[j];
      }
      const float inv = 1.0f / z;
      for (Index j = 0; j < valid; ++j) yr[j] *= inv;
      for (Index j = valid; j < t_cols; ++j) yr[j] = 0.0f;
    }
  });
  if (should_record({scores})) {
    Tensor saved_y = out.detach();
    attach_node(out, "causal_softmax", {scores},
                [saved_y, t_cols](const Tensor& g) {
                  // Masked positions have y == 0, so the generic softmax
                  // backward already yields zero gradient there.
                  return softmax_backward(saved_y, g, t_cols);
                });
  }
  gd::note(OpKind::CausalSoftmax, {scores}, out);
  return out;
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  check_defined(x, "layer_norm");
  check_defined(gamma, "layer_norm");
  check_defined(beta, "layer_norm");
  MENOS_CHECK_MSG(gamma.ndim() == 1 && beta.ndim() == 1,
                  "layer_norm: gamma/beta must be 1-D");
  const Index n = x.shape().back();
  MENOS_CHECK_MSG(gamma.dim(0) == n && beta.dim(0) == n,
                  "layer_norm: param size mismatch");
  const Index rows = x.numel() / n;
  Tensor out = Tensor::empty(x.shape(), x.device());
  // Saved for backward: normalized activations and per-row 1/sigma.
  Tensor xhat = Tensor::empty(x.shape(), x.device());
  Tensor inv_sigma = Tensor::empty({rows}, x.device());

  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* po = out.data();
  float* ph = xhat.data();
  float* pis = inv_sigma.data();
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float mu = 0.0f;
      for (Index j = 0; j < n; ++j) mu += xr[j];
      mu /= static_cast<float>(n);
      float var = 0.0f;
      for (Index j = 0; j < n; ++j) {
        const float d = xr[j] - mu;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float is = 1.0f / std::sqrt(var + eps);
      pis[r] = is;
      float* hr = ph + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) {
        hr[j] = (xr[j] - mu) * is;
        orow[j] = hr[j] * pg[j] + pb[j];
      }
    }
  });

  if (should_record({x, gamma, beta})) {
    Tensor sg = gamma.detach();
    attach_node(out, "layer_norm", {x, gamma, beta},
                [xhat, inv_sigma, sg, n, rows](const Tensor& g) {
                  return layer_norm_backward(xhat, inv_sigma, sg, n, rows, g);
                });
  }
  gd::note(OpKind::LayerNorm, {x, gamma, beta}, out, {.f0 = eps});
  return out;
}

std::pair<Tensor, Tensor> fused_add_layer_norm(const Tensor& a,
                                               const Tensor& b,
                                               const Tensor& gamma,
                                               const Tensor& beta, float eps) {
  check_defined(a, "fused_add_layer_norm");
  check_defined(b, "fused_add_layer_norm");
  check_defined(gamma, "fused_add_layer_norm");
  check_defined(beta, "fused_add_layer_norm");
  check_same_shape(a, b, "fused_add_layer_norm");
  MENOS_CHECK_MSG(gamma.ndim() == 1 && beta.ndim() == 1,
                  "fused_add_layer_norm: gamma/beta must be 1-D");
  const Index n = a.shape().back();
  MENOS_CHECK_MSG(gamma.dim(0) == n && beta.dim(0) == n,
                  "fused_add_layer_norm: param size mismatch");
  const Index rows = a.numel() / n;
  Tensor h = Tensor::empty(a.shape(), a.device());
  Tensor out = Tensor::empty(a.shape(), a.device());
  Tensor xhat = Tensor::empty(a.shape(), a.device());
  Tensor inv_sigma = Tensor::empty({rows}, a.device());

  const float* pa = a.data();
  const float* pb = b.data();
  const float* pgm = gamma.data();
  const float* pbt = beta.data();
  float* psum = h.data();
  float* po = out.data();
  float* ph = xhat.data();
  float* pis = inv_sigma.data();
  // One pass per row: the residual sum h (which stays available for later
  // consumers) immediately feeds the normalization while it is still hot.
  // Per-element arithmetic is identical to add() followed by layer_norm().
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* ar = pa + r * n;
      const float* br = pb + r * n;
      float* sr = psum + r * n;
      for (Index j = 0; j < n; ++j) sr[j] = ar[j] + br[j];
      float mu = 0.0f;
      for (Index j = 0; j < n; ++j) mu += sr[j];
      mu /= static_cast<float>(n);
      float var = 0.0f;
      for (Index j = 0; j < n; ++j) {
        const float d = sr[j] - mu;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float is = 1.0f / std::sqrt(var + eps);
      pis[r] = is;
      float* hr = ph + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) {
        hr[j] = (sr[j] - mu) * is;
        orow[j] = hr[j] * pgm[j] + pbt[j];
      }
    }
  });

  // The tape is the composition's tape: an "add" node on h and a
  // "layer_norm" node on out (with h as input), running the same backward
  // lambdas — so gradients are bit-identical to the unfused pair.
  if (should_record({a, b})) {
    attach_node(h, "add", {a, b}, [](const Tensor& g) {
      return std::vector<Tensor>{g, g};
    });
  }
  if (should_record({h, gamma, beta})) {
    Tensor sg = gamma.detach();
    attach_node(out, "layer_norm", {h, gamma, beta},
                [xhat, inv_sigma, sg, n, rows](const Tensor& g) {
                  return layer_norm_backward(xhat, inv_sigma, sg, n, rows, g);
                });
  }
  gd::note2(OpKind::FusedAddLayerNorm, {a, b, gamma, beta}, h, out,
            {.f0 = eps});
  return {h, out};
}

Tensor rms_norm(const Tensor& x, const Tensor& gamma, float eps) {
  check_defined(x, "rms_norm");
  check_defined(gamma, "rms_norm");
  MENOS_CHECK_MSG(gamma.ndim() == 1, "rms_norm: gamma must be 1-D");
  const Index n = x.shape().back();
  MENOS_CHECK_MSG(gamma.dim(0) == n, "rms_norm: gamma size mismatch");
  const Index rows = x.numel() / n;
  Tensor out = Tensor::empty(x.shape(), x.device());
  Tensor xhat = Tensor::empty(x.shape(), x.device());
  Tensor inv_rms = Tensor::empty({rows}, x.device());

  const float* px = x.data();
  const float* pg = gamma.data();
  float* po = out.data();
  float* ph = xhat.data();
  float* pir = inv_rms.data();
  util::parallel_for(0, rows, rows_grain(n), [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float ms = 0.0f;
      for (Index j = 0; j < n; ++j) ms += xr[j] * xr[j];
      ms /= static_cast<float>(n);
      const float ir = 1.0f / std::sqrt(ms + eps);
      pir[r] = ir;
      float* hr = ph + r * n;
      float* orow = po + r * n;
      for (Index j = 0; j < n; ++j) {
        hr[j] = xr[j] * ir;
        orow[j] = hr[j] * pg[j];
      }
    }
  });

  if (should_record({x, gamma})) {
    Tensor sg = gamma.detach();
    attach_node(out, "rms_norm", {x, gamma},
                [xhat, inv_rms, sg, n, rows](const Tensor& g) {
                  Tensor dx = Tensor::empty(g.shape(), g.device());
                  Tensor dgamma = Tensor::zeros({n}, g.device());
                  const float* ph2 = xhat.data();
                  const float* pir2 = inv_rms.data();
                  const float* pgam = sg.data();
                  const float* pgr = g.data();
                  float* pdx = dx.data();
                  float* pdg = dgamma.data();
                  util::parallel_for(
                      0, rows, rows_grain(n), [&](Index lo, Index hi) {
                        for (Index r = lo; r < hi; ++r) {
                          const float* hr = ph2 + r * n;
                          const float* gr = pgr + r * n;
                          float* dxr = pdx + r * n;
                          float mean_gh = 0.0f;
                          for (Index j = 0; j < n; ++j) {
                            mean_gh += gr[j] * pgam[j] * hr[j];
                          }
                          mean_gh /= static_cast<float>(n);
                          const float ir = pir2[r];
                          for (Index j = 0; j < n; ++j) {
                            const float gy = gr[j] * pgam[j];
                            dxr[j] = ir * (gy - hr[j] * mean_gh);
                          }
                        }
                      });
                  util::parallel_for(
                      0, n, rows_grain(rows), [&](Index j0, Index j1) {
                        for (Index r = 0; r < rows; ++r) {
                          const float* hr = ph2 + r * n;
                          const float* gr = pgr + r * n;
                          for (Index j = j0; j < j1; ++j) {
                            pdg[j] += gr[j] * hr[j];
                          }
                        }
                      });
                  return std::vector<Tensor>{dx, dgamma};
                });
  }
  gd::note(OpKind::RmsNorm, {x, gamma}, out, {.f0 = eps});
  return out;
}

// ----- token ops -----

Tensor embedding(const Tensor& weight, const std::vector<std::int32_t>& ids,
                 Index batch, Index seq) {
  check_defined(weight, "embedding");
  MENOS_CHECK_MSG(weight.ndim() == 2, "embedding: weight must be [V, D]");
  MENOS_CHECK_MSG(static_cast<Index>(ids.size()) == batch * seq,
                  "embedding: ids size " << ids.size() << " != batch*seq "
                                         << batch * seq);
  const Index vocab = weight.dim(0);
  const Index dim = weight.dim(1);
  for (std::int32_t id : ids) {
    MENOS_CHECK_MSG(id >= 0 && id < vocab,
                    "embedding: id " << id << " outside vocab " << vocab);
  }
  Tensor out = Tensor::empty({batch, seq, dim}, weight.device());
  const float* pw = weight.data();
  float* po = out.data();
  util::parallel_for(0, batch * seq, rows_grain(dim),
                     [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      std::memcpy(po + i * dim,
                  pw + static_cast<Index>(ids[static_cast<std::size_t>(i)]) *
                           dim,
                  static_cast<std::size_t>(dim) * sizeof(float));
    }
  });
  if (should_record({weight})) {
    attach_node(out, "embedding", {weight},
                [ids, vocab, dim, batch, seq](const Tensor& g) {
                  Tensor dw = Tensor::zeros({vocab, dim}, g.device());
                  const float* pg = g.data();
                  float* pdw = dw.data();
                  for (Index i = 0; i < batch * seq; ++i) {
                    float* row = pdw + static_cast<Index>(
                                           ids[static_cast<std::size_t>(i)]) *
                                           dim;
                    const float* grow = pg + i * dim;
                    for (Index j = 0; j < dim; ++j) row[j] += grow[j];
                  }
                  return std::vector<Tensor>{dw};
                });
  }
  gd::note(OpKind::Embedding, {weight}, out,
           {.a = batch, .b = seq, .ids = &ids});
  return out;
}

Tensor cross_entropy(const Tensor& logits,
                     const std::vector<std::int32_t>& targets,
                     std::int32_t ignore_index) {
  check_defined(logits, "cross_entropy");
  MENOS_CHECK_MSG(logits.ndim() == 2, "cross_entropy: logits must be [N, V]");
  const Index rows = logits.dim(0);
  const Index vocab = logits.dim(1);
  MENOS_CHECK_MSG(static_cast<Index>(targets.size()) == rows,
                  "cross_entropy: target count " << targets.size()
                                                 << " != rows " << rows);

  // Probabilities are saved for backward (grad = probs - onehot).
  Tensor probs = Tensor::empty(logits.shape(), logits.device());
  const float* pl = logits.data();
  float* pp = probs.data();
  // Rows are independent: probabilities and per-row losses are computed in
  // parallel, then the scalar loss is reduced serially in ascending row
  // order so the (double) accumulation order never depends on threading.
  std::vector<double> row_loss(static_cast<std::size_t>(rows), 0.0);
  util::parallel_for(0, rows, rows_grain(vocab, kMathGrain),
                     [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      const float* xr = pl + r * vocab;
      float* pr = pp + r * vocab;
      float mx = xr[0];
      for (Index j = 1; j < vocab; ++j) mx = std::max(mx, xr[j]);
      double z = 0.0;
      for (Index j = 0; j < vocab; ++j)
        z += std::exp(static_cast<double>(xr[j] - mx));
      const double lse = mx + std::log(z);
      for (Index j = 0; j < vocab; ++j) {
        pr[j] = static_cast<float>(std::exp(static_cast<double>(xr[j]) - lse));
      }
      const std::int32_t t = targets[static_cast<std::size_t>(r)];
      if (t == ignore_index) continue;
      MENOS_CHECK_MSG(t >= 0 && t < vocab,
                      "cross_entropy: target " << t << " outside vocab "
                                               << vocab);
      row_loss[static_cast<std::size_t>(r)] = lse - static_cast<double>(xr[t]);
    }
  });
  double loss_acc = 0.0;
  Index counted = 0;
  for (Index r = 0; r < rows; ++r) {
    if (targets[static_cast<std::size_t>(r)] == ignore_index) continue;
    loss_acc += row_loss[static_cast<std::size_t>(r)];
    ++counted;
  }
  MENOS_CHECK_MSG(counted > 0, "cross_entropy: all targets ignored");
  Tensor out = Tensor::scalar(
      static_cast<float>(loss_acc / static_cast<double>(counted)),
      logits.device());

  if (should_record({logits})) {
    attach_node(out, "cross_entropy", {logits},
                [probs, targets, rows, vocab, ignore_index,
                 counted](const Tensor& g) {
                  const float go = g.item();
                  Tensor dl = Tensor::empty({rows, vocab}, g.device());
                  const float* pp2 = probs.data();
                  float* pd = dl.data();
                  const float inv = go / static_cast<float>(counted);
                  util::parallel_for(
                      0, rows, rows_grain(vocab), [&](Index lo, Index hi) {
                        for (Index r = lo; r < hi; ++r) {
                          const std::int32_t t =
                              targets[static_cast<std::size_t>(r)];
                          float* dr = pd + r * vocab;
                          if (t == ignore_index) {
                            std::memset(dr, 0,
                                        static_cast<std::size_t>(vocab) *
                                            sizeof(float));
                            continue;
                          }
                          const float* pr = pp2 + r * vocab;
                          for (Index j = 0; j < vocab; ++j)
                            dr[j] = pr[j] * inv;
                          dr[t] -= inv;
                        }
                      });
                  return std::vector<Tensor>{dl};
                });
  }
  gd::note(OpKind::CrossEntropy, {logits}, out,
           {.i0 = ignore_index, .ids = &targets});
  return out;
}

Tensor to_device(const Tensor& a, gpusim::Device& device) {
  check_defined(a, "to_device");
  Tensor out = Tensor::empty(a.shape(), device);
  std::memcpy(out.data(), a.data(), a.bytes());
  if (should_record({a})) {
    gpusim::Device* source = &a.device();
    attach_node(out, "to_device", {a}, [source](const Tensor& g) {
      Tensor back = Tensor::empty(g.shape(), *source);
      std::memcpy(back.data(), g.data(), g.bytes());
      return std::vector<Tensor>{back};
    });
  }
  gd::note(OpKind::ToDevice, {a}, out, {.device = &device});
  return out;
}

std::vector<std::int32_t> argmax_lastdim(const Tensor& a) {
  check_defined(a, "argmax_lastdim");
  gd::note_unsupported("argmax_lastdim");
  MENOS_CHECK_MSG(a.ndim() >= 1 && a.shape().back() > 0,
                  "argmax needs a non-empty last dimension");
  const Index n = a.shape().back();
  const Index rows = a.numel() / n;
  std::vector<std::int32_t> out(static_cast<std::size_t>(rows));
  const float* p = a.data();
  for (Index r = 0; r < rows; ++r) {
    const float* row = p + r * n;
    Index best = 0;
    for (Index j = 1; j < n; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(best);
  }
  return out;
}

}  // namespace menos::tensor
