file(REMOVE_RECURSE
  "libmenos_core.a"
)
