// Readiness demultiplexer for the event-driven serving core
// (docs/ARCHITECTURE.md).
//
// One service thread turns "connection X may have a frame" into a callback
// instead of N sessions blocking in receive(). Two readiness sources are
// unified behind watch():
//
//  * fd transports (TCP): Connection::poll_fd() >= 0 — the service thread
//    includes the fd in one poll(2) set.
//  * push transports (inproc): Connection::set_ready_hook — the transport
//    fires the hook on enqueue/close, which marks the entry signaled and
//    wakes the service thread through a self-pipe.
//
// Readiness is one-shot: after a callback fires, the entry is disarmed and
// the fd leaves the poll set (so a session that is busy computing is not
// re-notified in a hot loop); the consumer drains with try_receive until
// Empty and then rearm()s. Signals arriving while disarmed are latched and
// delivered on rearm, so no frame is ever lost to the race.
//
// The Poller also hosts coarse recurring timers (schedule_every) on the
// same service thread — the session-lease reaper runs here instead of on a
// dedicated thread.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>

#include "net/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::net {

class Poller {
 public:
  using Callback = std::function<void()>;

  Poller();
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void start();
  /// Stop the service thread. Pending callbacks are dropped; watches and
  /// timers stay registered but inert. Idempotent.
  void stop();

  /// Register `conn` and invoke `on_ready` (from the service thread) when
  /// it may be readable. The watch starts DISARMED with a latched signal:
  /// call rearm() once the returned token is stored to begin delivery (the
  /// first callback then fires promptly, covering frames buffered before
  /// the watch). `conn` must stay alive until unwatch() returns. `on_ready`
  /// must not block — it should hand off to an executor.
  std::uint64_t watch(Connection& conn, Callback on_ready);

  /// Deregister and clear the transport's ready hook. After this returns,
  /// `on_ready` will not be *started* again (an invocation already in
  /// flight on the service thread may still be running; callbacks must
  /// tolerate that, e.g. by posting to a strand that checks state).
  void unwatch(std::uint64_t token);

  /// Re-enable readiness delivery after a callback fired. A signal latched
  /// while disarmed (or an fd that is still readable) fires promptly.
  void rearm(std::uint64_t token);

  /// Run `tick` every `period_s` seconds on the service thread. First run
  /// is one period from now.
  std::uint64_t schedule_every(double period_s, Callback tick);
  void cancel_timer(std::uint64_t token);

 private:
  struct Watch {
    Connection* conn;
    Callback on_ready;
    int fd;            ///< -1 for hook-based transports
    bool armed;
    bool signaled;     ///< hook fired (or poll saw readiness) while tracked
  };
  struct Timer {
    double period_s;
    Callback tick;
    double next_due;   ///< seconds on the service thread's monotonic clock
  };

  void service_loop();
  void wake() noexcept;
  void notify_ready(std::uint64_t token);

  mutable util::Mutex mutex_{"net.poller", 60};
  std::unordered_map<std::uint64_t, Watch> watches_ MENOS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, Timer> timers_ MENOS_GUARDED_BY(mutex_);
  std::uint64_t next_token_ MENOS_GUARDED_BY(mutex_) = 1;
  bool stopping_ MENOS_GUARDED_BY(mutex_) = false;
  bool started_ MENOS_GUARDED_BY(mutex_) = false;

  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: [0] read, [1] write
  // The single demux thread shared by all sessions (see start()).
  std::thread service_thread_;  // NOLINT(raw-thread)
};

}  // namespace menos::net
