#include "core/server.h"

#include "util/logging.h"

namespace menos::core {

Server::Server(const ServerConfig& config, gpusim::DeviceManager& devices,
               const nn::TransformerConfig& model)
    : config_(config), devices_(&devices), model_(model) {
  MENOS_CHECK_MSG(devices.gpu_count() >= 1, "server needs at least one GPU");
  model_.validate();
  if (shares_base_model(config_.mode)) {
    // Load the single shared copy up front ("only one copy of the base
    // model is preloaded into the GPU memory in advance" — §3.1). With
    // several GPUs the layers are split contiguously across them.
    store_ = std::make_unique<ParameterStore>(model_, devices,
                                              config_.base_seed);
  }
  // One scheduling pool over the union of all GPUs (Fig 2's "GPU memory"
  // abstraction); the devices themselves remain the hard per-GPU backstop.
  const std::size_t available = devices.total_gpu_available();
  MENOS_CHECK_MSG(available > config_.reserve_bytes,
                  "GPU capacity exhausted by the base model");
  scheduler_ = std::make_unique<sched::Scheduler>(
      available - config_.reserve_bytes, config_.sched_policy);
  if (config_.sched_policy == sched::Policy::SwapOnIdle) {
    // SwapOnIdle evicts per-client A + O through the offload engine; the
    // vanilla baseline swaps whole task copies itself and has no separate
    // persistent unit to evict.
    MENOS_CHECK_MSG(shares_base_model(config_.mode),
                    "SwapOnIdle requires a shared serving mode");
    offload_ = std::make_unique<mem::OffloadEngine>(devices.transfer_model());
    scheduler_->set_reclaim_callback(
        [this](int /*partition*/, std::size_t bytes_needed) {
          // Runs with the scheduler mutex held (reclaim contract); the
          // engine never calls back into the scheduler on this path.
          return offload_->evict_idle(bytes_needed);
        });
  }
  scheduler_->set_grant_callback([this](const sched::Grant& grant) {
    // Sessions never vanish while registered (cleanup unregisters before
    // the session object dies), so the lookup here is safe.
    util::MutexLock lock(sessions_mutex_);
    for (auto& session : sessions_) {
      if (session->id() == grant.client_id) {
        session->on_grant(grant);
        return;
      }
    }
  });
}

Server::~Server() { stop(); }

void Server::start(net::Acceptor& acceptor) {
  MENOS_CHECK_MSG(!accept_thread_.joinable(), "server already started");
  acceptor_ = &acceptor;
  accept_thread_ = std::thread([this] { accept_loop(acceptor_); });
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (acceptor_ != nullptr) acceptor_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<ServingSession>> sessions;
  {
    util::MutexLock lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) session->request_stop();
  for (auto& session : sessions) session->join();
}

void Server::accept_loop(net::Acceptor* acceptor) {
  while (true) {
    std::unique_ptr<net::Connection> connection = acceptor->accept();
    if (connection == nullptr) return;  // acceptor closed
    util::MutexLock lock(sessions_mutex_);
    reap_finished_locked();
    auto session = std::make_unique<ServingSession>(
        next_client_id_++, std::move(connection), config_, store_.get(),
        model_, *scheduler_, *devices_, profiling_mutex_, profile_cache_,
        offload_.get());
    session->start();
    sessions_.push_back(std::move(session));
  }
}

void Server::reap_finished_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      (*it)->join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t Server::persistent_gpu_bytes() const {
  std::size_t total = store_ != nullptr ? store_->bytes() : 0;
  util::MutexLock lock(sessions_mutex_);
  for (const auto& session : sessions_) {
    total += session->persistent_gpu_bytes();
  }
  return total;
}

int Server::session_count() const {
  util::MutexLock lock(sessions_mutex_);
  int live = 0;
  for (const auto& session : sessions_) {
    if (!session->finished()) ++live;
  }
  return live;
}

std::vector<SessionStats> Server::session_stats() const {
  util::MutexLock lock(sessions_mutex_);
  std::vector<SessionStats> out;
  out.reserve(sessions_.size());
  for (const auto& session : sessions_) out.push_back(session->stats());
  return out;
}

}  // namespace menos::core
