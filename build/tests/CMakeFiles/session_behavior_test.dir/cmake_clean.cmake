file(REMOVE_RECURSE
  "CMakeFiles/session_behavior_test.dir/session_behavior_test.cc.o"
  "CMakeFiles/session_behavior_test.dir/session_behavior_test.cc.o.d"
  "session_behavior_test"
  "session_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
