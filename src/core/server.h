// The Menos server (Fig 4): accepts clients, profiles them, and serves
// forward/backward computation under the operation-level scheduler.
//
// Serving is event-driven (docs/ARCHITECTURE.md): sessions are state
// machines multiplexed onto a shared core::Executor, with readiness demuxed
// by one net::Poller service thread. The server's OS thread count is
// therefore O(executor width), not O(clients).
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/session.h"
#include "mem/offload_engine.h"
#include "net/poller.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace menos::core {

class BatchCoordinator;  // core/batch.h

class Server {
 public:
  /// The server hosts exactly one base model (`model`) on
  /// `devices.gpu(0)`. In shared modes the ParameterStore is preloaded
  /// here; the schedulable capacity is whatever the GPU has left.
  Server(const ServerConfig& config, gpusim::DeviceManager& devices,
         const nn::TransformerConfig& model);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start accepting clients on `acceptor` (runs on a background thread).
  /// `acceptor` is borrowed, not owned: it must stay alive until stop()
  /// returns — declare it before the Server (or stop in a destructor) so
  /// exception unwinding cannot destroy it under the accept loop.
  void start(net::Acceptor& acceptor);

  /// Start serving WITHOUT an acceptor: connections arrive only through
  /// adopt_connection / migrate_in. This is the fleet-shard mode, where the
  /// fleet's Router owns the single accept loop.
  void start();

  /// Stop accepting, wind every session down through its state machine,
  /// then stop the poller and executor (owned core only — a shared core is
  /// stopped by its owner after every shard has stopped). Idempotent.
  void stop();

  /// Hand an externally accepted connection to a new session and return
  /// its token (the same identity HelloAck echoes to the client). The
  /// fleet Router calls this after placing a connection on this shard.
  /// Returns 0 while the server is stopping (the caller closes the
  /// connection).
  std::uint64_t adopt_connection(std::unique_ptr<net::Connection> connection);

  /// Route a reconnecting client's fresh connection to the parked session
  /// owning `token`. False -> the session is gone (lease expired or never
  /// existed) and the caller answers Error. Sessions use this through
  /// their ResumeRouter hook; the fleet Router calls it directly.
  bool route_resume(std::uint64_t token,
                    std::shared_ptr<net::Connection> connection);

  /// Live-migration source side: synchronously export the session holding
  /// `token`. Blocks on the session's strand, so it must be called from a
  /// thread OUTSIDE the executor (the fleet's migrator thread). Nullopt if
  /// the token is unknown or the session is not migratable right now.
  std::optional<MigrationTicket> migrate_out(std::uint64_t token);

  /// Live-migration target side: rebuild the exported session here. False
  /// if the import failed (e.g. this shard cannot fit its A + O); the
  /// ticket stays valid for re-import elsewhere (including the source).
  bool migrate_in(const MigrationTicket& ticket);

  /// Observer fired (from a session's strand, with no server locks held)
  /// whenever a session reaches Finished, keyed by its token. Set before
  /// start(); the fleet Router uses it to drop its placement entry.
  using SessionClosedHook = std::function<void(std::uint64_t token)>;
  void set_session_closed_hook(SessionClosedHook hook) {
    session_closed_hook_ = std::move(hook);
  }

  /// Tokens of the live (non-finished) sessions, for migration victim
  /// selection.
  std::vector<std::uint64_t> session_tokens() const;

  // ----- introspection for tests/benches -----

  /// GPU bytes that persist across iterations: shared base model + every
  /// client's adapter and optimizer state (the Fig 5 metric). In vanilla
  /// mode: the sum of resident per-client task copies.
  std::size_t persistent_gpu_bytes() const;

  sched::Scheduler& scheduler() noexcept { return *scheduler_; }
  const ParameterStore* store() const noexcept { return store_.get(); }

  /// Non-null iff sched_policy == Policy::SwapOnIdle.
  mem::OffloadEngine* offload_engine() noexcept { return offload_.get(); }

  /// Non-null iff sched_policy == Policy::CoalescedBatch in a shared mode
  /// (docs/ARCHITECTURE.md "Cross-client batched trunk compute").
  BatchCoordinator* batch_coordinator() noexcept { return batching_.get(); }

  /// The shared serving executor (width = ServerConfig::executor_threads).
  Executor& executor() noexcept { return *executor_; }

  int session_count() const;

  /// Aggregate stats across sessions (live ones only).
  std::vector<SessionStats> session_stats() const;

 private:
  void accept_loop(net::Acceptor* acceptor);
  void reap_finished_locked() MENOS_REQUIRES(sessions_mutex_);

  /// Shared start()/start(acceptor) body: start the owned poller (a shared
  /// one is already running) and schedule the lease reaper.
  void start_core();

  /// Wire a freshly built session into the server: resume router, live
  /// count, and the on_finished hook. Does not start() it.
  void install_session_locked(const std::shared_ptr<ServingSession>& session)
      MENOS_REQUIRES(sessions_mutex_);

  bool owns_core() const noexcept { return owned_executor_ != nullptr; }

  /// Lease-reaper tick, hosted on the poller's timer wheel (lease_seconds
  /// > 0 only): expires sessions whose deadline passed and sweeps finished
  /// ones, so a crashed client's GPU memory is reclaimed without waiting
  /// for the next accept.
  void reap_tick();

  ServerConfig config_;
  gpusim::DeviceManager* devices_;
  nn::TransformerConfig model_;
  std::unique_ptr<ParameterStore> store_;  // null in vanilla mode
  std::unique_ptr<sched::Scheduler> scheduler_;
  // Declared after scheduler_ (engine swap tasks charge the scheduler, so
  // the engine must be destroyed first) and before sessions_ (sessions hold
  // a raw pointer and unregister their units in cleanup()).
  std::unique_ptr<mem::OffloadEngine> offload_;  // SwapOnIdle only
  // Fused cross-client trunk compute (CoalescedBatch only). Declared after
  // scheduler_ (run_group releases group charges into it) and before the
  // serving core + sessions_: in-flight groups transiently hold session
  // pointers, and every group drains before stop() returns.
  std::unique_ptr<BatchCoordinator> batching_;
  // The serving core. Declared before sessions_: a session's destructor
  // may still unwatch itself, so the poller must outlive every session.
  // When ServerConfig::shared_executor/shared_poller are set (fleet mode)
  // the owned pointers stay null and the raw ones alias the shared core.
  std::unique_ptr<Executor> owned_executor_;
  std::unique_ptr<net::Poller> owned_poller_;
  Executor* executor_ = nullptr;
  net::Poller* poller_ = nullptr;
  SessionClosedHook session_closed_hook_;  ///< immutable after start
  // Serializes the profiling runs themselves (device headroom), not a data
  // member — sessions lock it around profile().
  // NOLINTNEXTLINE(mutex-annotation)
  util::Mutex profiling_mutex_{"core.server.profiling", 14};
  ProfileCache profile_cache_;

  mutable util::Mutex sessions_mutex_{"core.server.sessions", 10};
  std::vector<std::shared_ptr<ServingSession>> sessions_
      MENOS_GUARDED_BY(sessions_mutex_);
  int next_client_id_ MENOS_GUARDED_BY(sessions_mutex_) = 0;
  /// Mints session tokens; seeded from base_seed so runs are reproducible
  /// but tokens are not trivially guessable across configurations.
  util::Rng token_rng_ MENOS_GUARDED_BY(sessions_mutex_);

  net::Acceptor* acceptor_ = nullptr;
  std::atomic<bool> started_{false};
  // The accept thread is infrastructure (it blocks in accept(), which the
  // poller cannot demux for every Acceptor flavor), not a per-client thread.
  std::thread accept_thread_;  // NOLINT(raw-thread)
  std::atomic<bool> stopping_{false};
  std::uint64_t reaper_timer_ = 0;  ///< poller timer token (0 = none)

  /// Sessions that exist but have not fired on_finished yet. stop() waits
  /// for this to reach zero before tearing the executor down.
  mutable util::Mutex live_mutex_{"core.server.live", 12};
  util::CondVar live_cv_;
  int live_sessions_ MENOS_GUARDED_BY(live_mutex_) = 0;
};

}  // namespace menos::core
