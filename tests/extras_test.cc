// Tracing, LR schedules (including split/local equivalence under a
// schedule), base-model checkpoints, and the dropout op.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <thread>

#include "core/checkpoint.h"
#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "test_helpers.h"
#include "util/trace.h"

namespace menos {
namespace {

using menos::testing::host_device;

// ----- EventTrace -----

TEST(Trace, RecordsInOrderWithMonotonicTime) {
  util::EventTrace trace(16);
  trace.record(util::TraceCategory::Session, "a", 1, 10);
  trace.record(util::TraceCategory::Scheduler, "b", 2, 20);
  trace.record(util::TraceCategory::Memory, "c");
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "c");
  EXPECT_LE(events[0].t, events[1].t);
  EXPECT_LE(events[1].t, events[2].t);
  EXPECT_EQ(events[0].client_id, 1);
  EXPECT_EQ(events[2].client_id, -1);
  EXPECT_EQ(events[1].value, 20u);
  EXPECT_EQ(trace.recorded(), 3u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, RingEvictsOldest) {
  util::EventTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    // += rather than "e" + to_string(i): the temporary-concat form trips
    // GCC 12's -Wrestrict false positive (PR 105651).
    std::string name = "e";
    name += std::to_string(i);
    trace.record(util::TraceCategory::Session, std::move(name));
  }
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
  EXPECT_EQ(trace.dropped(), 6u);
  trace.clear();
  EXPECT_TRUE(trace.snapshot().empty());
  EXPECT_EQ(trace.recorded(), 0u);
}

TEST(Trace, JsonlFormat) {
  util::EventTrace trace(8);
  trace.record(util::TraceCategory::Scheduler, "grant", 3, 42);
  const std::string line = trace.to_jsonl();
  EXPECT_NE(line.find("\"cat\":\"sched\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"grant\""), std::string::npos);
  EXPECT_NE(line.find("\"client\":3"), std::string::npos);
  EXPECT_NE(line.find("\"value\":42"), std::string::npos);
}

TEST(Trace, ConcurrentWritersLoseNothing) {
  util::EventTrace trace(1u << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < 500; ++i) {
        trace.record(util::TraceCategory::Network, "msg", t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trace.recorded(), 4000u);
  EXPECT_EQ(trace.snapshot().size(), 4000u);
}

TEST(Trace, ServerEmitsSessionLifecycle) {
  util::EventTrace trace(1024);
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  model.dim = 32;
  model.n_heads = 2;
  model.ffn_hidden = 64;
  model.n_layers = 3;
  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  config.trace = &trace;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager cd(1, 256u << 20);
  core::ClientOptions options;
  options.finetune.model = model;
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = 4;
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), cd.gpu(0));
  client.connect();
  data::CharTokenizer tok;
  data::DataLoader loader(
      tok.encode(data::make_shakespeare_like(2000, 1).text), 2, 8, 2);
  client.train_step(loader.next());
  client.disconnect();
  server.stop();

  std::vector<std::string> names;
  for (const auto& e : trace.snapshot()) names.push_back(e.name);
  const auto index_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<long>(i);
    }
    return -1L;
  };
  EXPECT_GE(index_of("handshake"), 0);
  EXPECT_GT(index_of("forward.compute"), index_of("handshake"));
  EXPECT_GT(index_of("backward.compute"), index_of("forward.compute"));
  EXPECT_GT(index_of("disconnect"), index_of("backward.compute"));
  EXPECT_GE(index_of("profile.backward"), 0);
}

// ----- LR schedules -----

TEST(LrSchedule, ConstantIsOne) {
  const auto s = optim::LrSchedule::constant();
  EXPECT_FLOAT_EQ(s.factor_at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.factor_at(1000000), 1.0f);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  const auto s = optim::LrSchedule::warmup_linear(10, 100);
  EXPECT_FLOAT_EQ(s.factor_at(0), 0.1f);
  EXPECT_FLOAT_EQ(s.factor_at(4), 0.5f);
  EXPECT_FLOAT_EQ(s.factor_at(9), 1.0f);
}

TEST(LrSchedule, LinearDecayHitsFloor) {
  const auto s = optim::LrSchedule::warmup_linear(0, 100, 0.2f);
  EXPECT_FLOAT_EQ(s.factor_at(0), 0.8f * 1.0f + 0.2f);  // progress 0 -> 1.0
  EXPECT_NEAR(s.factor_at(50), 0.6f, 1e-5f);
  EXPECT_FLOAT_EQ(s.factor_at(100), 0.2f);
  EXPECT_FLOAT_EQ(s.factor_at(500), 0.2f);
}

TEST(LrSchedule, CosineIsSmoothAndMonotone) {
  const auto s = optim::LrSchedule::warmup_cosine(5, 105, 0.0f);
  float prev = s.factor_at(5);
  EXPECT_NEAR(prev, 1.0f, 1e-5f);
  for (int step = 6; step < 105; ++step) {
    const float f = s.factor_at(step);
    EXPECT_LE(f, prev + 1e-6f);
    prev = f;
  }
  EXPECT_NEAR(s.factor_at(104), 0.0f, 1e-2f);
}

TEST(LrSchedule, InvalidConfigsThrow) {
  optim::LrSchedule s = optim::LrSchedule::warmup_linear(10, 5);
  EXPECT_THROW(s.factor_at(0), InvalidArgument);
  EXPECT_THROW(optim::LrSchedule::constant().factor_at(-1), InvalidArgument);
}

TEST(Optimizer, SetLrTakesEffect) {
  tensor::Tensor w = tensor::Tensor::full({1}, 1.0f, host_device());
  w.set_requires_grad(true);
  optim::SgdOptions o;
  o.lr = 1.0f;
  optim::Sgd opt({nn::Parameter{"w", w}}, o);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  tensor::detail::accumulate_grad(w, tensor::Tensor::full({1}, 1.0f,
                                                          host_device()));
  opt.set_lr(0.25f);
  opt.step();
  EXPECT_FLOAT_EQ(w.to_vector()[0], 0.75f);
}

TEST(LrSchedule, SplitMatchesLocalUnderSchedule) {
  // The schedule rides in the Backward message, so split fine-tuning with
  // warmup+decay must still match the local trajectory exactly.
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  model.dim = 32;
  model.n_heads = 2;
  model.ffn_hidden = 64;
  model.n_layers = 3;
  const auto schedule = optim::LrSchedule::warmup_cosine(2, 8, 0.1f);
  constexpr int kSteps = 5;
  const float base_lr = 5e-3f;

  std::vector<double> reference;
  {
    auto host = gpusim::make_host_device();
    nn::FreshInit init(42);
    nn::AdapterSpec adapter;
    adapter.rank = 4;
    adapter.alpha = 8.0f;
    nn::SplitSpec split;
    nn::LocalModel m(model, split, adapter, init, *host, 3);
    auto opt = optim::make_optimizer(optim::OptimizerKind::Adam,
                                     m.trainable_parameters(), base_lr);
    data::CharTokenizer tok;
    data::DataLoader loader(
        tok.encode(data::make_shakespeare_like(2000, 8).text), 2, 8, 6);
    for (int i = 0; i < kSteps; ++i) {
      data::Batch b = loader.next();
      tensor::Tensor loss = m.loss(b.inputs, b.targets, 2, 8);
      reference.push_back(loss.item());
      tensor::backward(loss);
      opt->set_lr(base_lr * schedule.factor_at(i));
      opt->step();
      opt->zero_grad();
    }
  }

  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  core::Server server(config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::ClientOptions options;
  options.finetune.model = model;
  options.finetune.adapter.rank = 4;
  options.finetune.adapter.alpha = 8.0f;
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.lr = base_lr;
  options.finetune.adapter_seed = 3;
  options.base_seed = 42;
  options.schedule = schedule;
  core::Client client(options, acceptor.connect(), cd.gpu(0));
  client.connect();
  data::CharTokenizer tok;
  data::DataLoader loader(
      tok.encode(data::make_shakespeare_like(2000, 8).text), 2, 8, 6);
  for (int i = 0; i < kSteps; ++i) {
    const auto stats = client.train_step(loader.next());
    EXPECT_NEAR(stats.loss, reference[static_cast<std::size_t>(i)], 2e-4)
        << "step " << i;
  }
  client.disconnect();
  server.stop();
}

// ----- base checkpoints -----

TEST(BaseCheckpoint, SaveLoadRoundTrip) {
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  model.n_layers = 2;
  auto gpu = gpusim::make_sim_gpu("b", 64u << 20);
  core::ParameterStore store(model, *gpu, 42);
  const std::string path = ::testing::TempDir() + "/menos_base.bin";
  core::save_base_checkpoint(path, store);

  // A differently-seeded store loads the checkpoint and becomes identical.
  auto gpu2 = gpusim::make_sim_gpu("b2", 64u << 20);
  core::ParameterStore other(model, *gpu2, 999);
  EXPECT_NE(store.table().at("block0.attn.q.weight").to_vector(),
            other.table().at("block0.attn.q.weight").to_vector());
  const std::size_t loaded = core::load_base_checkpoint(path, other);
  EXPECT_EQ(loaded, other.table().size());
  EXPECT_EQ(store.table().at("block0.attn.q.weight").to_vector(),
            other.table().at("block0.attn.q.weight").to_vector());
  std::remove(path.c_str());
}

TEST(BaseCheckpoint, LiveStructuresSeeLoadedValues) {
  // §3.1's whole point: structures share the store's storage, so loading a
  // checkpoint retargets every client at once.
  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  model.n_layers = 2;
  auto gpu = gpusim::make_sim_gpu("b", 64u << 20);
  core::ParameterStore store(model, *gpu, 42);
  nn::SharedSource src = store.source();
  nn::AdapterSpec none;
  none.type = nn::AdapterType::None;
  util::Rng rng(1);
  nn::SplitSpec split;
  nn::ServerSection section(model, split, none, src, *gpu, rng);

  tensor::Tensor x = tensor::Tensor::empty({1, 4, model.dim}, *gpu);
  util::Rng xrng(5);
  xrng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.5f);
  tensor::NoGradGuard no_grad;
  const auto before = section.forward(x).to_vector();

  const std::string path = ::testing::TempDir() + "/menos_base2.bin";
  {
    auto gpu2 = gpusim::make_sim_gpu("b2", 64u << 20);
    core::ParameterStore donor(model, *gpu2, 7777);
    core::save_base_checkpoint(path, donor);
  }
  core::load_base_checkpoint(path, store);
  const auto after = section.forward(x).to_vector();
  EXPECT_NE(before, after);  // the live structure now runs the new base
  std::remove(path.c_str());
}

// ----- dropout -----

TEST(Dropout, ZeroProbabilityIsIdentity) {
  util::Rng rng(1);
  tensor::Tensor x = tensor::Tensor::full({8}, 2.0f, host_device());
  tensor::Tensor y = tensor::dropout(x, 0.0f, rng);
  EXPECT_EQ(y.to_vector(), x.to_vector());
}

TEST(Dropout, DropsApproximatelyPFraction) {
  util::Rng rng(2);
  tensor::Tensor x = tensor::Tensor::full({10000}, 1.0f, host_device());
  tensor::Tensor y = tensor::dropout(x, 0.3f, rng);
  int zeros = 0;
  double total = 0.0;
  for (float v : y.to_vector()) {
    if (v == 0.0f) ++zeros;
    total += v;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.3, 0.02);
  // Inverted scaling keeps the expectation.
  EXPECT_NEAR(total / 10000.0, 1.0, 0.03);
}

TEST(Dropout, BackwardUsesForwardMask) {
  util::Rng rng(3);
  tensor::Tensor x = tensor::Tensor::full({100}, 1.0f, host_device());
  x.set_requires_grad(true);
  tensor::Tensor y = tensor::dropout(x, 0.5f, rng);
  tensor::backward(tensor::sum(y));
  const auto out = y.to_vector();
  const auto grad = x.grad().to_vector();
  for (std::size_t i = 0; i < out.size(); ++i) {
    // d(sum)/dx_i equals the mask value (0 or 1/(1-p)).
    EXPECT_FLOAT_EQ(grad[i], out[i]);
  }
}

TEST(Dropout, InvalidProbabilityThrows) {
  util::Rng rng(4);
  tensor::Tensor x = tensor::Tensor::zeros({4}, host_device());
  EXPECT_THROW(tensor::dropout(x, 1.0f, rng), InvalidArgument);
  EXPECT_THROW(tensor::dropout(x, -0.1f, rng), InvalidArgument);
}

}  // namespace
}  // namespace menos
