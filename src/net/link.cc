#include "net/link.h"

#include <chrono>
#include <thread>
#include <utility>

namespace menos::net {
namespace {

/// Pays the per-frame link delay in the sender's thread, then forwards to
/// the inner transport. Mirrors InprocConnection's conditioner but lives
/// at the decorator layer so any transport (inproc, TCP) can be shaped
/// per connection.
class ConditionedConnection final : public Connection {
 public:
  ConditionedConnection(std::unique_ptr<Connection> inner,
                        std::shared_ptr<LinkConditioner> conditioner,
                        LinkDir send_dir)
      : inner_(std::move(inner)),
        conditioner_(std::move(conditioner)),
        send_dir_(send_dir) {}

  bool send(const Message& message) override {
    // Wire-size accounting uses the real encoded size so the delay model
    // sees exactly what TCP would carry.
    const std::size_t frame_bytes = frame_message(message).size();
    const double delay = conditioner_->next_delay(send_dir_, frame_bytes);
    const NetworkConditioner& shape = send_dir_ == LinkDir::Up
                                          ? conditioner_->profile().up
                                          : conditioner_->profile().down;
    const double scaled = delay * shape.time_scale;
    if (scaled > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(scaled));
    }
    return inner_->send(message);
  }

  std::optional<Message> receive() override { return inner_->receive(); }

  RecvStatus try_receive(Message* out) override {
    return inner_->try_receive(out);
  }

  void set_ready_hook(std::function<void()> hook) override {
    inner_->set_ready_hook(std::move(hook));
  }

  int poll_fd() const override { return inner_->poll_fd(); }

  void set_receive_timeout(double seconds) override {
    inner_->set_receive_timeout(seconds);
  }

  void close() override { inner_->close(); }

  std::uint64_t bytes_sent() const override { return inner_->bytes_sent(); }

 private:
  std::unique_ptr<Connection> inner_;
  std::shared_ptr<LinkConditioner> conditioner_;
  LinkDir send_dir_;
};

}  // namespace

LinkConditioner::LinkConditioner(const LinkProfile& profile)
    : profile_(profile) {
  // Fork the per-direction jitter streams from one root so the Up sequence
  // is independent of how much the Down side draws (and vice versa), then
  // give loss its own derived seed so enabling loss never shifts jitter.
  util::Rng root(profile.seed);
  {
    util::MutexLock lock(mutex_);
    up_.rng = root.fork();
    down_.rng = root.fork();
  }
  if (profile.loss_prob > 0.0) {
    FaultPlan plan;
    plan.seed = root.fork().next_u64();
    plan.drop_send_prob = profile.loss_prob;
    plan.skip_frames = profile.skip_frames;
    plan.time_scale = 0.0;  // delay is the conditioner's job, not the plan's
    injector_ = std::make_shared<FaultInjector>(plan);
  }
}

double LinkConditioner::next_delay(LinkDir dir, std::size_t bytes) {
  const NetworkConditioner& shape =
      dir == LinkDir::Up ? profile_.up : profile_.down;
  util::MutexLock lock(mutex_);
  DirState& state = dir_state(dir);
  double delay = shape.transfer_seconds(bytes);
  if (profile_.jitter_s > 0.0) {
    delay += state.rng.next_double() * profile_.jitter_s;
  }
  state.log.push_back(delay);
  return delay;
}

std::vector<double> LinkConditioner::delays(LinkDir dir) const {
  util::MutexLock lock(mutex_);
  return dir == LinkDir::Up ? up_.log : down_.log;
}

std::unique_ptr<Connection> condition_connection(
    std::unique_ptr<Connection> inner,
    std::shared_ptr<LinkConditioner> conditioner, LinkDir send_dir) {
  if (inner == nullptr) return nullptr;
  std::shared_ptr<FaultInjector> injector = conditioner->injector();
  auto conditioned = std::make_unique<ConditionedConnection>(
      std::move(inner), std::move(conditioner), send_dir);
  if (injector == nullptr) return conditioned;
  return decorate_with_faults(std::move(conditioned), std::move(injector));
}

}  // namespace menos::net
