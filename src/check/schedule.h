// menos::check — seeded schedule exploration for the event-driven core.
//
// util::TaskPool (the executor under every core::Session strand) normally
// pops its queue FIFO. When a SchedulerHook is installed, the pool instead
// asks the hook which ready task runs next — turning the scheduler into a
// deterministic, seed-driven adversary. Two schedule families are
// provided:
//
//   * RandomWalkSchedule — an unbiased splitmix64 walk over the ready set.
//   * PctSchedule — PCT-style priority scheduling (Burckhardt et al.,
//     "A Randomized Scheduler with Probabilistic Guarantees of Finding
//     Bugs"): each task gets a seed-derived priority, the highest-priority
//     ready task always runs, and at `depth` seed-chosen steps the current
//     front-runner is demoted. Small `depth` values concentrate
//     probability on the rare near-miss interleavings FIFO never hits.
//
// explore() runs a scenario under both families across N seeds and prints
// the exact seed/mode on failure; replay() re-runs one seed so a CI
// failure reproduces locally from its log line alone. The hook seam costs
// one relaxed atomic load per task when no hook is installed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace menos::check {

/// Decides which ready task a TaskPool worker runs next. pick() is invoked
/// under the pool's queue lock with the post-order ids of every queued
/// task (n >= 1); it must return an index < n and must not acquire any
/// instrumented lock or call back into the pool.
class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;
  virtual std::size_t pick(const std::uint64_t* ids, std::size_t n) = 0;
};

/// Install `hook` process-wide (nullptr restores FIFO). The caller must
/// swap hooks only while no TaskPool worker is mid-pick — in practice:
/// before constructing / after destroying the pools under test.
void set_scheduler_hook(SchedulerHook* hook) noexcept;

/// The currently installed hook, or nullptr for FIFO.
SchedulerHook* scheduler_hook() noexcept;

/// RAII hook installation; restores the previous hook on destruction.
class ScopedSchedulerHook {
 public:
  explicit ScopedSchedulerHook(SchedulerHook* hook)
      : previous_(scheduler_hook()) {
    set_scheduler_hook(hook);
  }
  ~ScopedSchedulerHook() { set_scheduler_hook(previous_); }

  ScopedSchedulerHook(const ScopedSchedulerHook&) = delete;
  ScopedSchedulerHook& operator=(const ScopedSchedulerHook&) = delete;

 private:
  SchedulerHook* previous_;
};

/// Uniform random walk over the ready set (splitmix64, fully determined
/// by the seed and the sequence of ready-set sizes).
class RandomWalkSchedule : public SchedulerHook {
 public:
  explicit RandomWalkSchedule(std::uint64_t seed) : state_(seed) {}
  std::size_t pick(const std::uint64_t* ids, std::size_t n) override;

 private:
  std::uint64_t state_;
};

/// PCT-style priority schedule: priority(id) = hash(seed, id); always run
/// the highest-priority ready task; at `depth` seed-derived change points
/// (pick-call counts within kHorizon) the currently highest-priority ready
/// task is demoted below every base priority.
class PctSchedule : public SchedulerHook {
 public:
  PctSchedule(std::uint64_t seed, int depth);
  std::size_t pick(const std::uint64_t* ids, std::size_t n) override;

 private:
  /// Change points are drawn from the first kHorizon pick calls; scenarios
  /// longer than the horizon simply run their tail undisturbed.
  static constexpr std::uint64_t kHorizon = 2048;

  const std::uint64_t seed_;
  std::uint64_t step_ = 0;
  /// Remaining change points, descending (back() is the next one).
  std::vector<std::uint64_t> change_points_;
  /// id -> demotion tier; demoted ids rank below all base priorities,
  /// earlier demotions below later ones.
  std::unordered_map<std::uint64_t, std::uint64_t> demoted_;
  std::uint64_t next_demotion_tier_ = 0;
};

struct ExploreOptions {
  /// Seeds per schedule family. MENOS_CHECK_SEEDS (env) overrides when
  /// set, so CI can widen the sweep without a code change.
  int seeds = 25;
  /// PCT priority-change budget per schedule.
  int pct_depth = 3;
  /// First seed; schedule i uses base_seed + i.
  std::uint64_t base_seed = 1;
};

struct ExploreResult {
  /// False iff some schedule made the scenario throw.
  bool ok = true;
  /// Schedules actually executed (counts the failing one).
  int schedules = 0;
  std::uint64_t failing_seed = 0;
  /// "random-walk" or "pct" (empty when ok).
  std::string failing_mode;
  /// what() of the escaping exception.
  std::string what;
};

/// Run `scenario` under every (family, seed) pair, stopping at the first
/// failure. A scenario signals failure by throwing (MENOS_CHECK throws;
/// tests may throw std::runtime_error directly). On failure the seed and
/// mode are printed to stderr in a grep-able one-line form and returned.
ExploreResult explore(const std::function<void()>& scenario,
                      const ExploreOptions& options = {});

/// Re-run `scenario` under one schedule — `mode` is "random-walk" or
/// "pct" — exactly as explore() ran it. Returns the scenario's exception
/// text, or an empty string if it passed.
std::string replay(const std::function<void()>& scenario, std::uint64_t seed,
                   const std::string& mode, int pct_depth = 3);

}  // namespace menos::check
