// Quickstart: one Menos server, one client, a few split fine-tuning steps.
//
// This is the smallest end-to-end use of the public API:
//   1. stand up a server hosting a shared base model on a (simulated) GPU,
//   2. connect a client that owns the input/output sections + LoRA adapters,
//   3. run the four-step split fine-tuning loop of the paper's §2.2.
#include <cstdio>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "util/bytes.h"

using namespace menos;

int main() {
  // --- server side -------------------------------------------------------
  // A 1 GiB simulated GPU; Menos mode = base-model sharing + on-demand
  // memory allocation (Fig 3(d)).
  gpusim::DeviceManager devices(/*gpu_count=*/1, /*capacity=*/1u << 30);
  core::ServerConfig server_config;
  server_config.mode = core::ServingMode::MenosOnDemand;
  server_config.base_seed = 42;  // stands in for the pre-trained checkpoint

  nn::TransformerConfig model = nn::TransformerConfig::tiny_opt();
  core::Server server(server_config, devices, model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  std::printf("server: loaded shared base model (%s on GPU)\n",
              util::format_bytes(server.store()->bytes()).c_str());

  // --- client side -------------------------------------------------------
  gpusim::DeviceManager client_devices(1, 1u << 30);
  core::ClientOptions options;
  options.finetune.client_name = "quickstart";
  options.finetune.model = model;
  options.finetune.adapter.type = nn::AdapterType::Lora;  // r=8, q/v
  options.finetune.adapter.rank = 8;
  options.finetune.adapter.alpha = 16.0f;
  options.finetune.optimizer = optim::OptimizerKind::Adam;
  options.finetune.lr = 5e-3f;
  options.finetune.batch_size = 4;
  options.finetune.seq_len = 16;
  options.finetune.adapter_seed = 1;
  options.base_seed = 42;

  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();  // handshake + server-side profiling (§3.3)
  std::printf(
      "client: connected; server profiled demands fwd=%s bwd=%s\n",
      util::format_bytes(client.server_forward_bytes()).c_str(),
      util::format_bytes(client.server_backward_bytes()).c_str());

  // --- fine-tune on local private data ------------------------------------
  data::CharTokenizer tokenizer;
  data::Corpus corpus = data::make_shakespeare_like(6000, 7);
  data::DataLoader loader(tokenizer.encode(corpus.text), 4, 16, 3);

  std::printf("\nstep   loss     comm(s)  server-compute(s)  sched-wait(s)\n");
  for (int step = 0; step < 10; ++step) {
    const core::StepStats stats = client.train_step(loader.next());
    std::printf("%-5d  %-7.4f  %-7.4f  %-17.4f  %.6f\n", step, stats.loss,
                stats.comm_s, stats.server_compute_s, stats.server_wait_s);
  }

  client.disconnect();
  server.stop();
  std::printf("\ndone: adapters were trained while the base model stayed "
              "frozen and shared.\n");
  return 0;
}
