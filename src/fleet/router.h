// fleet::Router — the fleet's single front door.
//
// One accept thread takes every inbound connection; the first frame decides
// where it goes (event-driven: the router watches the pending connection on
// the shared net::Poller and reads the frame from an executor task, so a
// silent connector cannot stall other arrivals):
//
//  * Hello          -> ask the PlacementPolicy for a shard, wrap the
//                      connection so the consumed frame is re-delivered
//                      (net::make_prefixed), and adopt it there. The
//                      placement is recorded token -> shard and traced as
//                      "router.placed".
//  * ResumeSession  -> look the token up and hand the connection straight
//                      to that shard's parked session. A token mid-
//                      migration queues the connection; finish_migration
//                      flushes the queue at the target shard.
//  * anything else  -> Error + close.
//
// The token table is maintained by two feeds: placements here, and each
// shard's session-closed hook (a normally finished session drops its entry;
// a session finishing because it was EXPORTED is marked migrating and
// survives until finish_migration remaps it).
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/server.h"
#include "fleet/policy.h"
#include "net/poller.h"
#include "net/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/trace.h"

namespace menos::fleet {

class Router {
 public:
  /// `shards`, `policy`, `executor` and `poller` are borrowed and must
  /// outlive the router. The poller must already be running when start()
  /// is called (the Fleet starts it first).
  Router(std::vector<core::Server*> shards, PlacementPolicy& policy,
         core::Executor& executor, net::Poller& poller,
         util::EventTrace* trace);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Start the accept thread on `acceptor` (borrowed; alive until stop()).
  void start(net::Acceptor& acceptor);

  /// Close the acceptor, join the accept thread, and drop pending
  /// connections. Shards keep running — the Fleet stops them next.
  void stop();

  // ----- migration coordination (called by the Fleet's migrator) -----

  /// Mark `token` migrating so concurrent ResumeSessions queue instead of
  /// racing the move. Returns the current shard, or -1 if the token is
  /// unknown or already migrating.
  int begin_migration(std::uint64_t token);

  /// Record `token` as living on `shard` (the migration target — or the
  /// source again, when the move was aborted) and flush any ResumeSession
  /// connections that queued while the ticket was in flight.
  void finish_migration(std::uint64_t token, int shard);

  /// The session was lost mid-migration (both import attempts failed):
  /// drop the entry and close any queued connections.
  void drop_session(std::uint64_t token);

  /// Shard `shard`'s session-closed hook feed: a session owning `token`
  /// finished there. The entry is dropped unless it is mid-migration (the
  /// EXPORTED source session fires this too) or already remapped.
  void on_session_closed(int shard, std::uint64_t token);

  // ----- introspection -----

  /// Sessions placed per shard since start (placement counters, not live
  /// counts — the distribution tests assert on these).
  std::vector<int> placements() const;

  /// Tokens currently mapped to `shard` (victim selection for rebalance).
  std::vector<std::uint64_t> tokens_on(int shard) const;

  /// Shard currently responsible for `token`, or -1.
  int shard_of(std::uint64_t token) const;

 private:
  struct PendingConn {
    std::shared_ptr<net::Connection> conn;
    std::uint64_t watch = 0;
  };
  struct Entry {
    int shard = -1;
    bool migrating = false;
    /// ResumeSession connections that arrived mid-migration.
    std::vector<std::shared_ptr<net::Connection>> queued;
  };

  void accept_loop(net::Acceptor* acceptor);
  /// Executor task: read the pending connection's first frame and route it.
  void handle_first(std::uint64_t pending_id);
  void route_hello(std::shared_ptr<net::Connection> conn,
                   net::Message hello);
  void route_resume(std::shared_ptr<net::Connection> conn,
                    std::uint64_t token);
  /// Remove a pending entry and unwatch it (never from a poller callback).
  void remove_pending(std::uint64_t pending_id);

  std::vector<ShardLoad> gather_loads() MENOS_REQUIRES(mutex_);

  std::vector<core::Server*> shards_;
  PlacementPolicy* policy_;
  core::Executor* executor_;
  net::Poller* poller_;
  util::EventTrace* trace_;

  net::Acceptor* acceptor_ = nullptr;
  std::thread accept_thread_;  // NOLINT(raw-thread) one per fleet, like Server's
  std::atomic<bool> stopping_{false};

  // Rank below every core/sched lock: gather_loads() queries shards (ranks
  // 10/30) while holding this, and shard hooks take it with nothing held.
  mutable util::Mutex mutex_{"fleet.router", 6};
  std::unordered_map<std::uint64_t, PendingConn> pending_
      MENOS_GUARDED_BY(mutex_);
  std::uint64_t next_pending_ MENOS_GUARDED_BY(mutex_) = 1;
  std::unordered_map<std::uint64_t, Entry> table_ MENOS_GUARDED_BY(mutex_);
  std::vector<int> placed_ MENOS_GUARDED_BY(mutex_);
};

}  // namespace menos::fleet
