#include "gpusim/audit.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>

#include "util/bytes.h"
#include "util/check.h"
#include "util/logging.h"

namespace menos::gpusim {

namespace {

// How many freed pointers to remember for double-free detection. Past the
// window a stale re-free degrades from "double free" to "foreign pointer" —
// still an error, just a vaguer diagnosis.
constexpr std::size_t kFreedHistoryLimit = 1 << 16;

const std::string& untagged() {
  static const std::string tag = "untagged";
  return tag;
}

thread_local std::string t_alloc_tag;  // empty means untagged()

}  // namespace

AllocTagScope::AllocTagScope(std::string tag) : previous_(std::move(t_alloc_tag)) {
  t_alloc_tag = std::move(tag);
}

AllocTagScope::~AllocTagScope() { t_alloc_tag = std::move(previous_); }

const std::string& AllocTagScope::current() noexcept {
  return t_alloc_tag.empty() ? untagged() : t_alloc_tag;
}

AuditDevice::AuditDevice(std::unique_ptr<Device> inner, AuditOptions options)
    : inner_(std::move(inner)),
      options_(options),
      mutex_(decorator_lock_name("gpusim.audit", inner_.get()).c_str(),
             decorator_lock_rank(50, inner_.get())) {}

AuditDevice::~AuditDevice() {
  util::MutexLock lock(mutex_);
  if (!live_.empty()) {
    MENOS_LOG(Error) << "AuditDevice '" << inner_->name() << "' destroyed with "
                     << live_.size() << " live allocation(s):\n"
                     << leak_report_locked();
  }
  // Reclaim everything we still know about so the bytes are not lost (and
  // LeakSanitizer stays quiet about *intentional* leak-table tests).
  for (const auto& [ptr, info] : live_) inner_->deallocate(ptr, info.bytes);
  live_.clear();
  flush_quarantine_locked();
}

void* AuditDevice::allocate(std::size_t bytes) {
  void* ptr = nullptr;
  try {
    ptr = inner_->allocate(bytes);
  } catch (const OutOfMemory&) {
    {
      util::MutexLock lock(mutex_);
      if (quarantine_total_ == 0) throw;
      // The quarantine holds real capacity hostage; release it and retry
      // once so auditing never changes what fits on the device.
      flush_quarantine_locked();
    }
    ptr = inner_->allocate(bytes);
  }
  util::MutexLock lock(mutex_);
  live_[ptr] = Live{bytes, AllocTagScope::current()};
  if (freed_history_.erase(ptr) != 0) {
    // Address reused by the allocator: it no longer identifies the old
    // block, so forget it (freed_order_ lazily skips erased entries).
  }
  return ptr;
}

void AuditDevice::deallocate(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
  util::MutexLock lock(mutex_);
  const auto it = live_.find(ptr);
  if (it == live_.end()) {
    std::ostringstream os;
    os << "device '" << inner_->name() << "': ";
    if (freed_history_.count(ptr) != 0) {
      os << "double free of " << ptr << " (" << bytes << " bytes)";
      report_error(AuditErrorRecord::Kind::DoubleFree, os.str());
    } else {
      os << "deallocate of foreign pointer " << ptr << " (" << bytes
         << " bytes) never allocated here";
      report_error(AuditErrorRecord::Kind::ForeignPointer, os.str());
    }
    return;  // drop the bad free — forwarding it would corrupt the heap
  }
  const std::size_t actual = it->second.bytes;
  if (actual != bytes) {
    std::ostringstream os;
    os << "device '" << inner_->name() << "': deallocate of " << ptr
       << " with size " << bytes << " but it was allocated with size "
       << actual << " (tag '" << it->second.tag << "')";
    report_error(AuditErrorRecord::Kind::SizeMismatch, os.str());
    // Fall through and free with the TRUE size so accounting stays exact.
  }
  live_.erase(it);

  // Poison so any dangling reader sees garbage, not stale tensor data.
  // Zero-byte allocations are a 1-byte sentinel; nothing to poison.
  if (actual > 0) std::memset(ptr, kPoisonByte, actual);

  freed_history_.insert(ptr);
  freed_order_.push_back(ptr);
  while (freed_order_.size() > kFreedHistoryLimit) {
    freed_history_.erase(freed_order_.front());
    freed_order_.pop_front();
  }

  if (options_.quarantine_bytes == 0) {
    inner_->deallocate(ptr, actual);
    return;
  }
  quarantine_.push_back(Quarantined{ptr, actual});
  quarantine_total_ += actual;
  ++deferred_frees_;
  while (quarantine_total_ > options_.quarantine_bytes && !quarantine_.empty()) {
    const Quarantined oldest = quarantine_.front();
    quarantine_.pop_front();
    quarantine_total_ -= oldest.bytes;
    --deferred_frees_;
    inner_->deallocate(oldest.ptr, oldest.bytes);
  }
}

MemoryStats AuditDevice::stats() const {
  MemoryStats s = inner_->stats();
  util::MutexLock lock(mutex_);
  // Quarantined blocks are logically freed; the inner device just has not
  // been told yet. Report them as such so auditing is accounting-neutral.
  s.allocated -= quarantine_total_;
  s.lifetime_frees += deferred_frees_;
  return s;
}

void AuditDevice::report_error(AuditErrorRecord::Kind kind,
                               std::string message) const {
  if (options_.abort_on_error) {
    MENOS_LOG(Error) << "allocation audit: " << message;
    // Also straight to stderr: the log threshold may filter Error in
    // exotic configurations, and this is the last thing the process says.
    std::cerr << "allocation audit: " << message  // NOLINT(iostream-side-channel)
              << std::endl;                       // NOLINT(iostream-side-channel)
    std::abort();
  }
  errors_.push_back(AuditErrorRecord{kind, std::move(message)});
}

void AuditDevice::flush_quarantine_locked() {
  for (const Quarantined& q : quarantine_) inner_->deallocate(q.ptr, q.bytes);
  quarantine_.clear();
  quarantine_total_ = 0;
  deferred_frees_ = 0;
}

std::string AuditDevice::leak_report_locked() const {
  if (live_.empty()) return "";
  // tag -> {bytes, count}, ordered for stable output.
  std::map<std::string, std::pair<std::size_t, std::size_t>> by_tag;
  for (const auto& [ptr, info] : live_) {
    auto& entry = by_tag[info.tag];
    entry.first += info.bytes;
    entry.second += 1;
  }
  std::ostringstream os;
  os << "  leaked allocations by tag:\n";
  for (const auto& [tag, entry] : by_tag) {
    os << "    " << tag << ": " << entry.first << " bytes ("
       << util::format_bytes(entry.first) << ") in " << entry.second
       << " allocation(s)\n";
  }
  return os.str();
}

std::vector<AuditErrorRecord> AuditDevice::errors() const {
  util::MutexLock lock(mutex_);
  return errors_;
}

std::size_t AuditDevice::live_count() const {
  util::MutexLock lock(mutex_);
  return live_.size();
}

std::unordered_map<std::string, std::size_t> AuditDevice::live_bytes_by_tag()
    const {
  util::MutexLock lock(mutex_);
  std::unordered_map<std::string, std::size_t> out;
  for (const auto& [ptr, info] : live_) out[info.tag] += info.bytes;
  return out;
}

std::string AuditDevice::leak_report() const {
  util::MutexLock lock(mutex_);
  return leak_report_locked();
}

std::unique_ptr<Device> make_audit_device(std::unique_ptr<Device> inner,
                                          AuditOptions options) {
  MENOS_CHECK_MSG(inner != nullptr, "make_audit_device needs a device");
  return std::make_unique<AuditDevice>(std::move(inner), options);
}

AuditDevice* as_audit_device(Device& device) noexcept {
  return dynamic_cast<AuditDevice*>(&device);
}

}  // namespace menos::gpusim
