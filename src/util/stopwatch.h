// Wall-clock stopwatch used for runtime measurements (scheduler decision
// latency, real-runtime phase timing). Virtual-time measurements in the
// discrete-event simulator use sim::EventLoop::now() instead.
#pragma once

#include <chrono>

namespace menos::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }
  double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Simple online mean/min/max accumulator for timing tables.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    sum_ += x;
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  double total() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace menos::util
