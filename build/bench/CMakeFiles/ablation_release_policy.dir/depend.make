# Empty dependencies file for ablation_release_policy.
# This may be replaced when dependencies are built.
