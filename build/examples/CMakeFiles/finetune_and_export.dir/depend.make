# Empty dependencies file for finetune_and_export.
# This may be replaced when dependencies are built.
