// Heterogeneous-client coverage (ISSUE S3): SplitFrozen float-for-float
// against an independent frozen reference, scheduler ledger restoration at
// teardown, homogeneous-population bit-identity across scheduling policies,
// and mixed profiles (cut depths / codecs / compute scales) serving
// concurrently.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"

namespace menos {
namespace {

nn::TransformerConfig htest_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  c.max_seq = 32;
  return c;
}

net::FinetuneConfig htest_finetune(const std::string& name,
                                   std::uint64_t adapter_seed) {
  net::FinetuneConfig ft;
  ft.client_name = name;
  ft.model = htest_model();
  ft.adapter.rank = 4;
  ft.adapter.alpha = 8.0f;
  ft.optimizer = optim::OptimizerKind::Adam;
  ft.lr = 3e-3f;
  ft.batch_size = 2;
  ft.seq_len = 8;
  ft.adapter_seed = adapter_seed;
  return ft;
}

data::DataLoader htest_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  auto tokens = tok.encode(data::make_shakespeare_like(4000, 17).text);
  return data::DataLoader(std::move(tokens), 2, 8, seed);
}

/// Independent SplitFrozen reference: the same three sections the split
/// stack builds, constructed with the SAME adapter-stream derivation (#1
/// input — forked but unconsumed, the input half is frozen with
/// AdapterType::None; #2 server; #3 output), driven through the same wire
/// crossings (to_wire/from_wire, codec None) so every float matches the
/// client/server run exactly. The input section tracks no graph and no
/// activation gradient ever crosses back — the defining SplitFrozen
/// property.
std::vector<double> frozen_reference_losses(int steps, std::uint64_t base_seed,
                                            std::uint64_t adapter_seed,
                                            std::uint64_t data_seed) {
  const net::FinetuneConfig ft = htest_finetune("ref", adapter_seed);
  gpusim::DeviceManager devices(1, 512u << 20);
  gpusim::Device& dev = devices.gpu(0);

  util::Rng root(adapter_seed);
  util::Rng rng_in = root.fork();
  util::Rng rng_srv = root.fork();
  util::Rng rng_out = root.fork();
  nn::AdapterSpec frozen_adapter = ft.adapter;
  frozen_adapter.type = nn::AdapterType::None;
  nn::FreshInit init(base_seed);
  nn::InputSection input(ft.model, ft.split, frozen_adapter, init, dev,
                         rng_in);
  nn::ServerSection server(ft.model, ft.split, ft.adapter, init, dev,
                           rng_srv);
  nn::OutputSection output(ft.model, ft.split, ft.adapter, init, dev,
                           rng_out);
  EXPECT_TRUE(input.trainable_parameters().empty())
      << "a frozen input half must have no trainables";
  auto server_opt = optim::make_optimizer(
      ft.optimizer, server.trainable_parameters(), ft.lr);
  auto client_opt = optim::make_optimizer(
      ft.optimizer, output.trainable_parameters(), ft.lr);

  auto loader = htest_loader(data_seed);
  std::vector<double> losses;
  for (int i = 0; i < steps; ++i) {
    data::Batch batch = loader.next();
    tensor::Tensor x_c;
    {
      tensor::NoGradGuard no_grad;
      x_c = input.forward(batch.inputs, 2, 8);
    }
    // Up crossing: the serving session leafs the cut tensor WITHOUT grad
    // tracking for a frozen client.
    tensor::Tensor x_in = core::from_wire(core::to_wire(x_c), dev,
                                          /*requires_grad=*/false);
    tensor::Tensor x_out = server.forward(x_in);
    // Down crossing: the client leafs the server activations with grad.
    tensor::Tensor x_s = core::from_wire(core::to_wire(x_out), dev,
                                         /*requires_grad=*/true);
    tensor::Tensor loss = output.loss(x_s, input.prefix_len(), batch.targets);
    losses.push_back(loss.item());
    tensor::backward(tensor::scale(loss, 1.0f));
    tensor::Tensor g_c = x_s.grad();
    // Up crossing of the cut gradient, then the server-side backward and
    // adapter step. x_in tracked no grad: the backward STOPS at the trunk's
    // first layer, exactly like the serving session.
    tensor::backward(x_out, core::from_wire(core::to_wire(g_c), dev));
    server_opt->step();
    server_opt->zero_grad();
    client_opt->set_lr(ft.lr);
    client_opt->step();
    client_opt->zero_grad();
    x_s.zero_grad();
  }
  return losses;
}

TEST(SplitFrozen, LossCurveMatchesFrozenReferenceFloatForFloat) {
  constexpr int kSteps = 6;
  const std::uint64_t base_seed = 42, adapter_seed = 9, data_seed = 5;
  const std::vector<double> reference =
      frozen_reference_losses(kSteps, base_seed, adapter_seed, data_seed);

  gpusim::DeviceManager devices(1, 512u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = base_seed;
  core::Server server(config, devices, htest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  const std::size_t pool_before = server.scheduler().total_available();

  gpusim::DeviceManager client_devices(1, 512u << 20);
  core::ClientOptions options;
  options.finetune = htest_finetune("frozen", adapter_seed);
  options.finetune.profile.frozen_client_half = true;
  options.base_seed = base_seed;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();
  // The frozen session reserved its persistent server-adapter state.
  EXPECT_LT(server.scheduler().total_available(), pool_before);

  auto loader = htest_loader(data_seed);
  for (int i = 0; i < kSteps; ++i) {
    const core::StepStats stats = client.train_step(loader.next());
    EXPECT_EQ(stats.loss, reference[static_cast<std::size_t>(i)])
        << "SplitFrozen diverged from the frozen reference at step " << i;
  }
  client.disconnect();

  // Teardown ledger: the scheduler's transient pool AND the persistent
  // reservation drain back to exactly the pre-connect level, with nothing
  // left waiting.
  for (int i = 0;
       i < 400 && server.scheduler().total_available() != pool_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.scheduler().total_available(), pool_before);
  EXPECT_EQ(server.scheduler().waiting_count(), 0u);
  server.stop();
}

/// Runs `clients` concurrent homogeneous split fine-tuners under `policy`
/// and returns each client's full loss sequence.
std::vector<std::vector<double>> homogeneous_losses(sched::Policy policy,
                                                    int clients, int steps) {
  gpusim::DeviceManager devices(1, 24u << 20);  // tight: real interleaving
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.sched_policy = policy;
  config.base_seed = 42;
  core::Server server(config, devices, htest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  std::vector<std::vector<double>> losses(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      gpusim::DeviceManager client_devices(1, 512u << 20);
      core::ClientOptions options;
      std::string client_name = "h";
      client_name += std::to_string(i);
      options.finetune = htest_finetune(std::move(client_name),
                                        100 + static_cast<std::uint64_t>(i));
      options.base_seed = 42;
      core::Client client(options, acceptor.connect(), client_devices.gpu(0));
      client.connect();
      auto loader = htest_loader(300 + static_cast<std::uint64_t>(i));
      for (int s = 0; s < steps; ++s) {
        losses[static_cast<std::size_t>(i)].push_back(
            client.train_step(loader.next()).loss);
      }
      client.disconnect();
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  return losses;
}

TEST(HeteroPolicy, HomogeneousLossCurvesBitIdenticalAcrossPolicies) {
  // The acceptance pin: for a homogeneous population StragglerAware may
  // reorder nothing that changes the math — every client's loss sequence
  // is bit-identical to its FcfsBackfill run. Grant timing may differ;
  // the fine-tuning trajectories may not.
  const auto fcfs = homogeneous_losses(sched::Policy::FcfsBackfill, 3, 4);
  const auto sa = homogeneous_losses(sched::Policy::StragglerAware, 3, 4);
  EXPECT_EQ(sa, fcfs);
  for (const auto& curve : fcfs) {
    for (double loss : curve) EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(Hetero, MixedProfilesServeConcurrently) {
  // One server, three very different clients at once: a deep-cut client
  // (front_blocks 2), a frozen thin-link client on the Int8 codec, and a
  // slow device (compute_scale 4). All must train to finite losses and the
  // scheduler pool must drain to its pre-connect level afterwards.
  gpusim::DeviceManager devices(1, 64u << 20);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.sched_policy = sched::Policy::StragglerAware;
  config.base_seed = 42;
  core::Server server(config, devices, htest_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  const std::size_t pool_before = server.scheduler().total_available();

  const auto make_options = [](int i) {
    core::ClientOptions o;
    std::string client_name = "m";
    client_name += std::to_string(i);
    o.finetune = htest_finetune(std::move(client_name),
                                200 + static_cast<std::uint64_t>(i));
    o.base_seed = 42;
    switch (i) {
      case 0:  // deep cut: two of the three blocks on the device
        o.finetune.split.front_blocks = 2;
        o.finetune.profile.cut_depth = 2;
        break;
      case 1:  // frozen half on a thin link
        o.finetune.profile.frozen_client_half = true;
        o.finetune.profile.codec = net::ActivationCodec::Int8;
        o.finetune.profile.uplink_bytes_per_s = 2e6;
        break;
      default:  // slow device
        o.finetune.profile.compute_scale = 4.0;
        break;
    }
    return o;
  };

  constexpr int kClients = 3;
  constexpr int kSteps = 3;
  std::vector<std::thread> threads;
  std::vector<double> final_losses(kClients, -1.0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      gpusim::DeviceManager client_devices(1, 512u << 20);
      core::Client client(make_options(i), acceptor.connect(),
                          client_devices.gpu(0));
      client.connect();
      auto loader = htest_loader(400 + static_cast<std::uint64_t>(i));
      double loss = 0.0;
      for (int s = 0; s < kSteps; ++s) {
        loss = client.train_step(loader.next()).loss;
        EXPECT_TRUE(std::isfinite(loss));
      }
      final_losses[static_cast<std::size_t>(i)] = loss;
      client.disconnect();
    });
  }
  for (auto& t : threads) t.join();
  for (double loss : final_losses) EXPECT_GT(loss, 0.0);

  for (int i = 0;
       i < 400 && server.scheduler().total_available() != pool_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.scheduler().total_available(), pool_before);
  EXPECT_EQ(server.scheduler().waiting_count(), 0u);
  server.stop();
}

TEST(Hetero, ComputeScaleChangesTimingNotMath) {
  // compute_scale is pure think-time emulation: a 4x-slower device walks
  // the identical loss trajectory.
  const auto run = [](double scale) {
    gpusim::DeviceManager devices(1, 512u << 20);
    core::ServerConfig config;
    config.mode = core::ServingMode::MenosOnDemand;
    config.base_seed = 42;
    core::Server server(config, devices, htest_model());
    net::InprocAcceptor acceptor;
    server.start(acceptor);

    gpusim::DeviceManager client_devices(1, 512u << 20);
    core::ClientOptions options;
    options.finetune = htest_finetune("scale", 33);
    options.finetune.profile.compute_scale = scale;
    options.base_seed = 42;
    core::Client client(options, acceptor.connect(), client_devices.gpu(0));
    client.connect();
    auto loader = htest_loader(44);
    std::vector<double> losses;
    for (int i = 0; i < 4; ++i) {
      losses.push_back(client.train_step(loader.next()).loss);
    }
    client.disconnect();
    server.stop();
    return losses;
  };
  EXPECT_EQ(run(4.0), run(1.0));
}

}  // namespace
}  // namespace menos
