// Serving-core concurrency tracker (not a paper figure): sessions/sec and
// peak OS-thread count as the client count scales, for the event-driven
// executor core (docs/ARCHITECTURE.md).
//
// Emits BENCH_server_concurrency.json (or argv[1]). Each point runs N
// in-proc clients — connect, one training step each, disconnect — against a
// fresh server and reports wall time, session throughput, and the peak
// "Threads:" value from /proc/self/status (sampled at 5 ms).
//
// The JSON also records the pre-refactor thread-per-client baseline for the
// same workload. Those numbers were measured once, at the last commit that
// still had the thread-per-session serving core, by compiling this same
// measurement loop against that tree (see "baseline_source"); they are
// constants here because the architecture they measure no longer exists in
// this tree. The headline contrast is peak_os_threads: O(clients) before
// (530 threads at 512 clients), O(executor width) now.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "data/dataset.h"
#include "net/transport.h"

namespace {

using namespace menos;

nn::TransformerConfig bench_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

int os_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Point {
  int clients = 0;
  double sessions_per_sec = 0.0;
  int peak_os_threads = 0;
  double elapsed_s = 0.0;
};

/// N sessions against a fresh server: connect all, one train step each
/// (16 driver threads), disconnect all. Driver threads are client-side
/// load generation; the server side runs on its fixed executor.
Point measure(int count, int* executor_width) {
  gpusim::DeviceManager devices(1, 2ull << 30);
  gpusim::DeviceManager client_devices(1, 2ull << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = 42;
  net::InprocAcceptor acceptor;
  core::Server server(config, devices, bench_model());
  server.start(acceptor);
  *executor_width = server.executor().width();

  std::atomic<bool> sampling{true};
  std::atomic<int> peak{os_thread_count()};
  std::thread sampler([&] {
    while (sampling.load()) {
      const int n = os_thread_count();
      int prev = peak.load();
      while (n > prev && !peak.compare_exchange_weak(prev, n)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const double t0 = now_seconds();
  std::vector<std::unique_ptr<core::Client>> clients;
  clients.reserve(static_cast<std::size_t>(count));
  for (int c = 0; c < count; ++c) {
    core::ClientOptions options;
    options.finetune.model = bench_model();
    options.finetune.batch_size = 2;
    options.finetune.seq_len = 8;
    options.finetune.adapter_seed = 1000 + static_cast<std::uint64_t>(c);
    options.base_seed = 42;
    clients.push_back(std::make_unique<core::Client>(
        options, acceptor.connect(), client_devices.gpu(0)));
    clients.back()->connect();
  }

  const int drivers_n = 16;
  std::vector<std::thread> drivers;
  drivers.reserve(drivers_n);
  for (int t = 0; t < drivers_n; ++t) {
    drivers.emplace_back([&, t] {
      data::CharTokenizer tok;
      for (int c = t; c < count; c += drivers_n) {
        data::DataLoader loader(
            tok.encode(data::make_shakespeare_like(2000, 3).text), 2, 8,
            static_cast<std::uint64_t>(c));
        clients[static_cast<std::size_t>(c)]->train_step(loader.next());
      }
    });
  }
  for (auto& d : drivers) d.join();
  for (auto& c : clients) c->disconnect();
  const double elapsed = now_seconds() - t0;

  sampling.store(false);
  sampler.join();
  server.stop();

  Point p;
  p.clients = count;
  p.elapsed_s = elapsed;
  p.sessions_per_sec = count / elapsed;
  p.peak_os_threads = peak.load();
  return p;
}

/// Thread-per-client numbers for the identical workload, measured once at
/// commit "Add fault-tolerant WAN runtime" (the last thread-per-session
/// tree) on the same container class this bench targets.
constexpr Point kThreadPerClientBaseline[] = {
    {8, 324.30, 19, 0.025},
    {32, 410.91, 51, 0.078},
    {128, 426.38, 147, 0.300},
    {512, 269.59, 530, 1.899},
};

void json_point(std::FILE* f, const Point& p) {
  std::fprintf(f,
               "    {\"clients\": %d, \"sessions_per_sec\": %.2f, "
               "\"peak_os_threads\": %d, \"elapsed_s\": %.3f}",
               p.clients, p.sessions_per_sec, p.peak_os_threads, p.elapsed_s);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_server_concurrency.json");
  std::printf("micro_server_concurrency: hardware_concurrency=%u\n",
              std::thread::hardware_concurrency());

  std::vector<Point> points;
  int executor_width = 0;
  for (int count : {8, 32, 128, 512}) {
    const Point p = measure(count, &executor_width);
    std::printf(
        "clients=%4d  %8.2f sessions/s  peak_threads=%4d  (%.3f s)   "
        "[thread-per-client baseline: peak_threads=%d]\n",
        p.clients, p.sessions_per_sec, p.peak_os_threads, p.elapsed_s,
        kThreadPerClientBaseline[points.size()].peak_os_threads);
    points.push_back(p);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_server_concurrency\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"executor_width\": %d,\n", executor_width);
  std::fprintf(f, "  \"executor\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    json_point(f, points[i]);
    std::fprintf(f, i + 1 < points.size() ? ",\n" : "\n");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"baseline_source\": \"thread-per-session serving core, "
               "measured at the pre-refactor commit with this same "
               "measurement loop\",\n");
  std::fprintf(f, "  \"thread_per_client\": [\n");
  const std::size_t n =
      sizeof(kThreadPerClientBaseline) / sizeof(kThreadPerClientBaseline[0]);
  for (std::size_t i = 0; i < n; ++i) {
    json_point(f, kThreadPerClientBaseline[i]);
    std::fprintf(f, i + 1 < n ? ",\n" : "\n");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
