#include "optim/lr_schedule.h"

#include <cmath>

#include "util/check.h"

namespace menos::optim {

float LrSchedule::factor_at(std::int64_t step) const {
  MENOS_CHECK_MSG(step >= 0, "negative schedule step");
  if (kind == Kind::Constant) return 1.0f;
  MENOS_CHECK_MSG(total_steps > 0 && warmup_steps >= 0 &&
                      warmup_steps <= total_steps,
                  "invalid schedule horizon");
  if (warmup_steps > 0 && step < warmup_steps) {
    // Warm up from factor 0 at step 0 towards 1 (first step uses a small
    // but non-zero rate).
    return static_cast<float>(step + 1) / static_cast<float>(warmup_steps);
  }
  if (step >= total_steps) return min_factor;
  const float progress =
      static_cast<float>(step - warmup_steps) /
      static_cast<float>(total_steps - warmup_steps);
  if (kind == Kind::WarmupLinear) {
    return min_factor + (1.0f - min_factor) * (1.0f - progress);
  }
  const float cosine = 0.5f * (1.0f + std::cos(3.14159265358979323846f *
                                               progress));
  return min_factor + (1.0f - min_factor) * cosine;
}

LrSchedule LrSchedule::constant() { return LrSchedule{}; }

LrSchedule LrSchedule::warmup_linear(std::int64_t warmup, std::int64_t total,
                                     float min_factor) {
  LrSchedule s;
  s.kind = Kind::WarmupLinear;
  s.warmup_steps = warmup;
  s.total_steps = total;
  s.min_factor = min_factor;
  return s;
}

LrSchedule LrSchedule::warmup_cosine(std::int64_t warmup, std::int64_t total,
                                     float min_factor) {
  LrSchedule s;
  s.kind = Kind::WarmupCosine;
  s.warmup_steps = warmup;
  s.total_steps = total;
  s.min_factor = min_factor;
  return s;
}

}  // namespace menos::optim
