// Figure 5: GPU memory consumption for persistent components (base model
// parameters + adapter parameters + optimizer states) as the number of
// clients grows, vanilla split learning vs Menos.
//
// The second half re-measures the same metric on the LIVE server twice —
// MENOS_CACHING_ALLOC off, then on — and fails (exit 1) unless every byte
// matches: pooling must not change what the paper measures (ISSUE 3).
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"

using namespace menos;
using menos::util::to_gb;

namespace {

void run_model(const sim::ModelSpec& spec, double paper_reduction_at_4) {
  std::printf("\n--- %s ---\n", spec.name.c_str());
  std::printf("%-8s  %-14s  %-14s  %-10s\n", "clients", "vanilla (GB)",
              "menos (GB)", "reduction");
  for (int n = 1; n <= 6; ++n) {
    const double vanilla = to_gb(spec.vanilla_persistent_bytes(n));
    const double menos_gb = to_gb(spec.menos_persistent_bytes(n));
    const double reduction = 100.0 * (1.0 - menos_gb / vanilla);
    std::printf("%-8d  %-14.1f  %-14.1f  %9.1f%%\n", n, vanilla, menos_gb,
                reduction);
  }
  const double measured =
      100.0 * (1.0 - static_cast<double>(spec.menos_persistent_bytes(4)) /
                         static_cast<double>(spec.vanilla_persistent_bytes(4)));
  std::printf("paper reduction @4 clients: %.1f%%   measured: %.1f%%\n",
              paper_reduction_at_4, measured);
}

// ----- live pooling cross-check -----

nn::TransformerConfig live_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 2;
  return c;
}

struct LiveSample {
  std::size_t persistent = 0;  ///< Server::persistent_gpu_bytes (Fig 5)
  std::size_t allocated = 0;   ///< server GPU allocated after connect
  std::size_t peak = 0;        ///< server GPU peak (includes profiling)
};

/// Bring up a real server, connect `clients` one at a time (each runs one
/// training step, so vanilla task copies are actually resident), and sample
/// the Fig 5 metric plus raw device accounting after each admission.
std::vector<LiveSample> live_persistent(core::ServingMode mode, int clients) {
  gpusim::DeviceManager devices(1, 256u << 20);
  core::ServerConfig config;
  config.mode = mode;
  core::Server server(config, devices, live_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  gpusim::DeviceManager client_devices(1, 256u << 20);

  std::vector<std::unique_ptr<core::Client>> live;
  std::vector<LiveSample> out;
  for (int i = 0; i < clients; ++i) {
    core::ClientOptions options;
    options.finetune.model = live_model();
    options.finetune.batch_size = 2;
    options.finetune.seq_len = 8;
    options.finetune.adapter_seed = static_cast<std::uint64_t>(i + 1);
    auto c = std::make_unique<core::Client>(options, acceptor.connect(),
                                            client_devices.gpu(0));
    c->connect();
    data::CharTokenizer tok;
    data::DataLoader loader(
        tok.encode(data::make_shakespeare_like(500, 3).text), 2, 8,
        static_cast<std::uint64_t>(i + 1));
    c->train_step(loader.next());
    live.push_back(std::move(c));
    // Let the session finish post-reply bookkeeping before sampling.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    LiveSample s;
    s.persistent = server.persistent_gpu_bytes();
    s.allocated = devices.gpu(0).allocated();
    s.peak = devices.gpu(0).stats().peak;
    out.push_back(s);
  }
  for (auto& c : live) c->disconnect();
  server.stop();
  return out;
}

/// Returns false on any byte mismatch between pooling off and on.
bool live_cross_check() {
  std::printf(
      "\n--- live server: persistent bytes, pooling off vs on ---\n"
      "%-10s %-8s  %-12s %-12s  %-12s %-12s  %s\n",
      "mode", "clients", "persist/off", "persist/on", "alloc/off", "alloc/on",
      "identical");
  bool ok = true;
  for (core::ServingMode mode : {core::ServingMode::MenosOnDemand,
                                 core::ServingMode::VanillaTaskSwap}) {
    setenv("MENOS_CACHING_ALLOC", "0", 1);
    const std::vector<LiveSample> off = live_persistent(mode, 3);
    setenv("MENOS_CACHING_ALLOC", "1", 1);
    const std::vector<LiveSample> on = live_persistent(mode, 3);
    unsetenv("MENOS_CACHING_ALLOC");
    for (std::size_t n = 0; n < off.size(); ++n) {
      const bool same = off[n].persistent == on[n].persistent &&
                        off[n].allocated == on[n].allocated &&
                        off[n].peak == on[n].peak;
      ok = ok && same;
      std::printf("%-10s %-8zu  %-12zu %-12zu  %-12zu %-12zu  %s\n",
                  core::serving_mode_name(mode), n + 1, off[n].persistent,
                  on[n].persistent, off[n].allocated, on[n].allocated,
                  same ? "yes" : "NO");
    }
  }
  std::printf("pooling changes measured bytes: %s\n", ok ? "no" : "YES (BUG)");
  return ok;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 5 — GPU memory for persistent components vs number of clients",
      "Fig 5(a) OPT: 4.7 -> 18.7 GB vanilla vs 6.7 GB Menos at 4 clients "
      "(-64.1%); Fig 5(b) Llama: -72.2% at 4 clients");

  run_model(sim::ModelSpec::opt_1_3b(), 64.1);
  run_model(sim::ModelSpec::llama2_7b(), 72.2);

  // §2.3 measurement study companion numbers.
  const sim::ModelSpec llama = sim::ModelSpec::llama2_7b();
  std::printf(
      "\n§2.3 measurement study (Llama-2-7B, batch 4):\n"
      "  M (base parameters):        %.1f GB (paper: ~24 GB)\n"
      "  A + O (adapter+optimizer):  %.0f MB (paper: 246 MB)\n"
      "  I (intermediate results):   %.1f GB (paper: ~4 GB)\n"
      "  total:                      %.1f GB (paper: ~28.7 GB)\n",
      to_gb(llama.server_param_bytes), util::to_mb(llama.adapter_opt_bytes),
      to_gb(llama.bwd_bytes),
      to_gb(llama.server_param_bytes + llama.adapter_opt_bytes +
            llama.bwd_bytes));

  return live_cross_check() ? 0 : 1;
}
