// A Linear layer whose frozen weight lives in quantized form — the QLoRA
// composition: quantized base + (optionally) a full-precision LoRA path.
#pragma once

#include "nn/adapters.h"
#include "quant/quantize.h"

namespace menos::quant {

/// y = x @ dequant(W_q) (+ b). The float weight is obtained from the
/// ParameterSource once, quantized onto `device`, and the float copy is
/// released — the resident footprint is bytes()/scheme_bits of the
/// original.
class QuantizedLinear : public nn::Module {
 public:
  QuantizedLinear(const std::string& name, tensor::Index in,
                  tensor::Index out, bool bias, Scheme scheme,
                  nn::ParameterSource& source, gpusim::Device& device);

  virtual tensor::Tensor forward(const tensor::Tensor& x);

  const QuantizedTensor& weight() const noexcept { return weight_q_; }

  /// Resident device bytes: quantized weight (codes + scales) + bias.
  std::size_t resident_bytes() const;

 protected:
  tensor::Index in_;
  tensor::Index out_;
  QuantizedTensor weight_q_;
  tensor::Tensor bias_;
};

/// QuantizedLinear with a parallel full-precision LoRA path — the QLoRA
/// recipe: y = x @ dequant(W_q) + s * (x A) B (+ b).
class QLoraLinear final : public QuantizedLinear {
 public:
  QLoraLinear(const std::string& name, tensor::Index in, tensor::Index out,
              bool bias, Scheme scheme, int rank, float alpha,
              nn::ParameterSource& source, gpusim::Device& device,
              util::Rng& adapter_rng);

  tensor::Tensor forward(const tensor::Tensor& x) override;

  const tensor::Tensor& lora_a() const noexcept { return a_; }
  const tensor::Tensor& lora_b() const noexcept { return b_; }

 private:
  tensor::Tensor a_;  // [in, r], trainable
  tensor::Tensor b_;  // [r, out], trainable
  float scale_;
};

}  // namespace menos::quant
