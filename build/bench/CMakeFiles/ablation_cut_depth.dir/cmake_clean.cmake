file(REMOVE_RECURSE
  "CMakeFiles/ablation_cut_depth.dir/ablation_cut_depth.cc.o"
  "CMakeFiles/ablation_cut_depth.dir/ablation_cut_depth.cc.o.d"
  "ablation_cut_depth"
  "ablation_cut_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cut_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
