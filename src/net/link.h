// Per-session link conditioning (the heterogeneous-client refactor of the
// PR 4 fault injector + inproc NetworkConditioner).
//
// PR 4's FaultInjector and the inproc conditioner both shape traffic at the
// wrong granularity for a mixed population: the injector is shared across
// whatever connections it decorates, and InprocAcceptor's conditioners are
// fixed per *acceptor*, so every client crosses the same WAN. A
// LinkProfile describes ONE client's link — asymmetric up/down bandwidth
// and latency, seeded per-frame jitter, and a loss rate — and a
// LinkConditioner instantiates it per connection: both endpoints of one
// session share one conditioner, while different sessions on the same
// acceptor get independent links.
//
// Determinism: each direction owns a seeded util::Rng forked from the
// profile seed, and sends in one direction are serialized (the client's
// thread; the server session's strand), so a given seed yields the same
// per-frame delay sequence on every run regardless of poller timing. The
// conditioner logs every drawn delay per direction so tests can pin this.
#pragma once

#include <memory>
#include <vector>

#include "net/faulty.h"
#include "net/transport.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace menos::net {

/// Direction of a frame relative to the session: Up = client -> server.
enum class LinkDir : std::uint8_t { Up = 0, Down = 1 };

/// One client's link. Defaults are a perfect link: no delay, no jitter, no
/// loss — conditioning a connection with a default profile changes nothing
/// but the per-frame accounting.
struct LinkProfile {
  /// Deterministic base delay per direction (latency + bytes/bandwidth,
  /// scaled by each conditioner's own time_scale — 0 sleeps never, logging
  /// only).
  NetworkConditioner up;
  NetworkConditioner down;

  /// Extra uniform [0, jitter_s) delay per frame, drawn from the seeded
  /// per-direction rng. Scaled by the direction's time_scale like the base
  /// delay; the *unscaled* draw is what the delay log records.
  double jitter_s = 0.0;

  /// Per-frame probability that an outbound frame is lost and the link
  /// dies (composed via a per-connection FaultInjector, so loss consumes a
  /// fault stream independent of the jitter stream).
  double loss_prob = 0.0;

  /// First frames pass unconditioned by loss (handshake grace), mirroring
  /// FaultPlan::skip_frames. Jitter/delay still apply.
  int skip_frames = 0;

  /// Seed for both the jitter rngs (forked per direction) and the loss
  /// injector.
  std::uint64_t seed = 1;
};

/// The shared per-connection link state: seeded jitter streams and delay
/// logs for both directions, plus the loss injector when loss_prob > 0.
/// Both endpoints of a conditioned connection hold the same instance.
class LinkConditioner {
 public:
  explicit LinkConditioner(const LinkProfile& profile);

  const LinkProfile& profile() const noexcept { return profile_; }

  /// Draw the next frame's delay in `dir` for a frame of `bytes`: base
  /// transfer time + jitter, UNscaled. The draw is logged; the caller is
  /// responsible for sleeping delay * time_scale (see
  /// condition_connection).
  double next_delay(LinkDir dir, std::size_t bytes);

  /// Every delay drawn so far in `dir` (unscaled), in send order — the
  /// determinism regression surface.
  std::vector<double> delays(LinkDir dir) const;

  /// Shared loss stream; nullptr when the profile has loss_prob == 0.
  const std::shared_ptr<FaultInjector>& injector() const noexcept {
    return injector_;
  }

 private:
  struct DirState {
    util::Rng rng;
    std::vector<double> log;
  };

  DirState& dir_state(LinkDir dir) MENOS_REQUIRES(mutex_) {
    return dir == LinkDir::Up ? up_ : down_;
  }

  const LinkProfile profile_;
  std::shared_ptr<FaultInjector> injector_;
  mutable util::Mutex mutex_{"net.link", 56};
  DirState up_ MENOS_GUARDED_BY(mutex_);
  DirState down_ MENOS_GUARDED_BY(mutex_);
};

/// Decorate one endpoint of a connection with `conditioner`, where
/// `send_dir` is the direction of THIS endpoint's sends (Up for the client
/// end, Down for the server end). Delay is paid in the sender's thread
/// before the frame enters the inner transport — transport-agnostic, so
/// the inner pair should be minted unconditioned. Loss (when configured)
/// wraps outermost via the conditioner's shared FaultInjector. Returns
/// nullptr if `inner` is nullptr (composes with failing dialers).
std::unique_ptr<Connection> condition_connection(
    std::unique_ptr<Connection> inner,
    std::shared_ptr<LinkConditioner> conditioner, LinkDir send_dir);

}  // namespace menos::net
