#include "core/server.h"

#include "util/logging.h"

namespace menos::core {

Server::Server(const ServerConfig& config, gpusim::DeviceManager& devices,
               const nn::TransformerConfig& model)
    : config_(config),
      devices_(&devices),
      model_(model),
      token_rng_(config.base_seed ^ 0x6d656e6f73ULL /* "menos" */) {
  MENOS_CHECK_MSG(devices.gpu_count() >= 1, "server needs at least one GPU");
  model_.validate();
  if (shares_base_model(config_.mode)) {
    // Load the single shared copy up front ("only one copy of the base
    // model is preloaded into the GPU memory in advance" — §3.1). With
    // several GPUs the layers are split contiguously across them.
    store_ = std::make_unique<ParameterStore>(model_, devices,
                                              config_.base_seed);
  }
  // One scheduling pool over the union of all GPUs (Fig 2's "GPU memory"
  // abstraction); the devices themselves remain the hard per-GPU backstop.
  const std::size_t available = devices.total_gpu_available();
  MENOS_CHECK_MSG(available > config_.reserve_bytes,
                  "GPU capacity exhausted by the base model");
  scheduler_ = std::make_unique<sched::Scheduler>(
      available - config_.reserve_bytes, config_.sched_policy);
  if (config_.sched_policy == sched::Policy::SwapOnIdle) {
    // SwapOnIdle evicts per-client A + O through the offload engine; the
    // vanilla baseline swaps whole task copies itself and has no separate
    // persistent unit to evict.
    MENOS_CHECK_MSG(shares_base_model(config_.mode),
                    "SwapOnIdle requires a shared serving mode");
    offload_ = std::make_unique<mem::OffloadEngine>(devices.transfer_model());
    scheduler_->set_reclaim_callback(
        [this](int /*partition*/, std::size_t bytes_needed) {
          // Runs with the scheduler mutex held (reclaim contract); the
          // engine never calls back into the scheduler on this path.
          return offload_->evict_idle(bytes_needed);
        });
  }
  executor_ = std::make_unique<Executor>(config_.executor_threads);
  poller_ = std::make_unique<net::Poller>();
  scheduler_->set_grant_callback([this](const sched::Grant& grant) {
    // Dispatched after the scheduler mutex drops (see sched::Scheduler).
    // Sessions never vanish while registered (cleanup unregisters before
    // the session leaves the table), so the lookup here is safe.
    util::MutexLock lock(sessions_mutex_);
    for (auto& session : sessions_) {
      if (session->id() == grant.client_id) {
        session->on_grant(grant);
        return;
      }
    }
  });
}

Server::~Server() { stop(); }

void Server::start(net::Acceptor& acceptor) {
  MENOS_CHECK_MSG(!accept_thread_.joinable(), "server already started");
  acceptor_ = &acceptor;
  poller_->start();
  if (config_.lease_seconds > 0.0) {
    const double interval = config_.reaper_interval_s > 0.0
                                ? config_.reaper_interval_s
                                : config_.lease_seconds / 4.0;
    reaper_timer_ = poller_->schedule_every(interval, [this] { reap_tick(); });
  }
  // Infrastructure thread: accept() blocks in ways the poller cannot demux
  // for every Acceptor flavor. One per server, not per client.
  accept_thread_ = std::thread([this] { accept_loop(acceptor_); });  // NOLINT(raw-thread)
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // A concurrent or repeated stop() only needs the accept thread gone;
    // the first caller performs the teardown.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (reaper_timer_ != 0) {
    poller_->cancel_timer(reaper_timer_);
    reaper_timer_ = 0;
  }
  if (acceptor_ != nullptr) acceptor_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wind every session down through its state machine and wait for the
  // executor to run them all to Finished.
  std::vector<std::shared_ptr<ServingSession>> sessions;
  {
    util::MutexLock lock(sessions_mutex_);
    sessions = sessions_;
  }
  for (auto& session : sessions) session->request_stop();
  sessions.clear();
  {
    util::MutexLock lock(live_mutex_);
    while (live_sessions_ > 0) live_cv_.wait(live_mutex_);
  }
  poller_->stop();
  executor_->stop_and_join();
  util::MutexLock lock(sessions_mutex_);
  sessions_.clear();
}

void Server::accept_loop(net::Acceptor* acceptor) {
  while (true) {
    std::unique_ptr<net::Connection> connection = acceptor->accept();
    if (connection == nullptr) return;  // acceptor closed
    util::MutexLock lock(sessions_mutex_);
    reap_finished_locked();
    // `| 1` keeps 0 reserved as "no token" (the Hello/HelloAck default).
    const std::uint64_t token = token_rng_.next_u64() | 1;
    auto session = std::make_shared<ServingSession>(
        next_client_id_++, token, std::move(connection), config_,
        store_.get(), model_, *scheduler_, *devices_, profiling_mutex_,
        profile_cache_, *executor_, *poller_, offload_.get());
    session->set_resume_router(
        [this](std::uint64_t t, std::shared_ptr<net::Connection> conn) {
          return route_resume(t, std::move(conn));
        });
    {
      util::MutexLock live(live_mutex_);
      ++live_sessions_;
    }
    session->set_on_finished([this] {
      util::MutexLock live(live_mutex_);
      --live_sessions_;
      live_cv_.notify_all();
    });
    session->start();
    sessions_.push_back(std::move(session));
  }
}

bool Server::route_resume(std::uint64_t token,
                          std::shared_ptr<net::Connection> connection) {
  if (token == 0) return false;
  util::MutexLock lock(sessions_mutex_);
  for (auto& session : sessions_) {
    if (session->token() == token) {
      return session->attach(std::move(connection));
    }
  }
  return false;
}

void Server::reap_tick() {
  util::MutexLock lock(sessions_mutex_);
  for (auto& session : sessions_) session->expire_if_overdue();
  reap_finished_locked();
}

void Server::reap_finished_locked() {
  // No join: a finished session's strand holds no further work (posted
  // events bail out at Finished), so dropping the table reference is
  // enough — the shared_ptr keeps it alive through any stragglers.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t Server::persistent_gpu_bytes() const {
  std::size_t total = store_ != nullptr ? store_->bytes() : 0;
  util::MutexLock lock(sessions_mutex_);
  for (const auto& session : sessions_) {
    total += session->persistent_gpu_bytes();
  }
  return total;
}

int Server::session_count() const {
  util::MutexLock lock(sessions_mutex_);
  int live = 0;
  for (const auto& session : sessions_) {
    if (!session->finished()) ++live;
  }
  return live;
}

std::vector<SessionStats> Server::session_stats() const {
  util::MutexLock lock(sessions_mutex_);
  std::vector<SessionStats> out;
  out.reserve(sessions_.size());
  for (const auto& session : sessions_) out.push_back(session->stats());
  return out;
}

}  // namespace menos::core
