# Empty dependencies file for table2_compute_time.
# This may be replaced when dependencies are built.
