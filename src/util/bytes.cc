#include "util/bytes.h"

#include <array>
#include <cstdio>

namespace menos::util {

std::string format_bytes(std::size_t bytes) {
  std::array<char, 32> buf{};
  if (bytes >= kGB) {
    std::snprintf(buf.data(), buf.size(), "%.1f GB",
                  static_cast<double>(bytes) / static_cast<double>(kGB));
  } else if (bytes >= kMB) {
    std::snprintf(buf.data(), buf.size(), "%.1f MB",
                  static_cast<double>(bytes) / static_cast<double>(kMB));
  } else if (bytes >= kKB) {
    std::snprintf(buf.data(), buf.size(), "%.1f KB",
                  static_cast<double>(bytes) / static_cast<double>(kKB));
  } else {
    std::snprintf(buf.data(), buf.size(), "%zu B", bytes);
  }
  return std::string(buf.data());
}

double to_gb(std::size_t bytes) noexcept {
  return static_cast<double>(bytes) / static_cast<double>(kGB);
}

double to_mb(std::size_t bytes) noexcept {
  return static_cast<double>(bytes) / static_cast<double>(kMB);
}

}  // namespace menos::util
