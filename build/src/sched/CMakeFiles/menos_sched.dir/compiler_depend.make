# Empty compiler generated dependencies file for menos_sched.
# This may be replaced when dependencies are built.
