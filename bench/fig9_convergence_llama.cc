// Figure 9: convergence of the Llama-family model under split fine-tuning.
#include "bench_common.h"
#include "convergence_common.h"

using namespace menos;

int main() {
  bench::print_header(
      "Fig 9 — convergence of Llama 2 under split fine-tuning",
      "all clients reach the same final perplexity as local fine-tuning");
  bench::ConvergenceSettings s;
  s.model = nn::TransformerConfig::tiny_llama();
  s.use_wikitext = true;
  bench::run_convergence(s, "Fig 9");
  return 0;
}
