// Cross-client fused batched trunk compute (Policy::CoalescedBatch).
//
// When the scheduler coalesces compatible pending requests into one group
// grant (same batch_key: identical model topology, cut point, effective
// sequence length and serving mode), the BatchCoordinator collects each
// member's activations, stacks them along the leading batch axis, runs ONE
// pass through a shared frozen trunk, and hands every member back its own
// row slice. Per-client numerics are bit-identical to the solo run because
// every trunk op is batch-row independent: matmul accumulates K-ascending
// per output element, the norms/softmaxes reduce per row, attention mixes
// only within one (batch, head) pair — so stacking rows and slicing them
// back reproduces each client's reduction order exactly (pinned by
// tests/batching_test.cc, argued in docs/PERF.md).
//
// Concurrency shape: begin_group() posts a join to every member's strand
// (raw posts — a member that finished mid-flight still decrements the
// countdown, so a group can never stall on a dead session). Each member
// copies its contribution OUT of its strand state; the last one to deliver
// runs the fused pass inline on its own strand. The coordinator's mutex
// only guards the trunk/graph caches and is never held across compute or
// scheduler calls.
//
// The backward fused pass reuses a captured tensor::graph::StepGraph per
// (batch_key, total rows): the stacked activation is an entry leaf whose
// storage is refilled in place, so replay re-attaches autograd exactly as
// the eager pass would. A slot in use by a concurrent group falls back to
// eager execution — same bits, no serialization.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "net/message.h"
#include "sched/scheduler.h"
#include "tensor/graph.h"
#include "tensor/tensor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::nn {
class ServerSection;
}  // namespace menos::nn

namespace menos::core {

class BatchCoordinator;
class ParameterStore;
class ServingSession;

/// Coalescing compatibility key for one client, passed to
/// sched::Scheduler::register_client (0 = never coalesce). Non-zero keys
/// hash every property that must match for two clients' trunk passes to
/// stack along the batch axis: model topology (incl. kv heads), cut point,
/// effective sequence length (seq_len + prefix tokens) and serving mode.
/// batch_size is deliberately EXCLUDED — rows stack along dim 0, so
/// clients with different batch sizes still fuse. Only the re-forward
/// modes (OnDemand / ReleaseEarly) with a fully frozen server section
/// (None or Prefix adapters) coalesce; everything else runs solo.
std::uint64_t compute_batch_key(const ServerConfig& server,
                                const net::FinetuneConfig& client);

/// One member's strand-copied inputs to the fused pass. Owned copies only:
/// the fused pass runs on another member's strand, so no references into a
/// foreign session's state may escape its own strand.
struct BatchContribution {
  bool joined = false;
  std::uint64_t batch_key = 0;
  net::FinetuneConfig config;
  /// Forward: the client's x_c. Backward: the cached activation the fused
  /// re-forward starts from (Algorithm 1 line 10, batched).
  net::WireTensor activation;
  /// Backward only: the client's g_c.
  net::WireTensor grad;
  std::uint64_t iteration = 0;
  double wait_seconds = 0.0;
};

/// What the fused pass hands back to one member.
struct BatchOutcome {
  bool ok = false;
  std::string error;  ///< set when !ok; the member fails with it
  sched::OpKind kind = sched::OpKind::Forward;
  /// Forward: this member's x_s rows. Backward: its g_s rows at the cut.
  net::WireTensor result;
  std::uint64_t iteration = 0;
  double wait_seconds = 0.0;
  double compute_seconds = 0.0;  ///< whole fused pass (shared by members)
};

/// Shared state of one in-flight group grant. sessions/contributions are
/// parallel to grant.group; a slot only writes its own contribution (from
/// its own strand), and the fused pass reads them all only after
/// `outstanding` hits zero — the countdown is the synchronization.
struct BatchGroup {
  sched::Grant grant;
  std::vector<std::shared_ptr<ServingSession>> sessions;
  std::vector<BatchContribution> contributions;
  std::atomic<int> outstanding{0};
  BatchCoordinator* coordinator = nullptr;
};

class BatchCoordinator {
 public:
  /// Counters for tests/benches (monotonic, read from any thread).
  struct BatchingStats {
    std::uint64_t groups = 0;    ///< fused passes run
    std::uint64_t members = 0;   ///< member slices served by fused passes
    std::uint64_t captures = 0;  ///< backward StepGraph captures
    std::uint64_t replays = 0;   ///< backward StepGraph replays
    std::uint64_t eager = 0;     ///< fused passes run eagerly (no graph)
  };

  /// `store` hosts the shared frozen parameters the per-key trunks are
  /// built over; both it and `scheduler` must outlive the coordinator.
  BatchCoordinator(const ServerConfig& config, const ParameterStore& store,
                   sched::Scheduler& scheduler);
  ~BatchCoordinator();

  BatchCoordinator(const BatchCoordinator&) = delete;
  BatchCoordinator& operator=(const BatchCoordinator&) = delete;

  /// Start a group grant: post a join to every live member. `sessions` is
  /// parallel to grant.group (null = the member already left the table;
  /// its charge is reclaimed with the group's).
  void begin_group(const sched::Grant& grant,
                   std::vector<std::shared_ptr<ServingSession>> sessions);

  /// Called by the last member to deliver (on that member's strand): run
  /// the fused pass, release the whole group's scheduler charge in one
  /// call, and post each member its outcome.
  void finish_group(const std::shared_ptr<BatchGroup>& group);

  BatchingStats stats() const;

 private:
  /// A lazily built, fully frozen trunk for one batch_key (thread-safe to
  /// forward concurrently: shared parameter handles, no trainable state).
  struct Trunk {
    std::unique_ptr<nn::ServerSection> section;
    gpusim::Device* entry = nullptr;
  };

  /// Captured backward step for one (batch_key, stacked rows) shape. The
  /// entry leaf's storage is refilled in place before each replay;
  /// `in_use` keeps two concurrent groups off the same entry tensor.
  struct GraphSlot {
    tensor::graph::StepGraph graph;
    tensor::Tensor entry;
    bool ready = false;
    bool in_use = false;
  };

  Trunk& ensure_trunk_locked(const BatchContribution& lead)
      MENOS_REQUIRES(mutex_);
  void run_group(BatchGroup& group);
  void compute_group(BatchGroup& group, const std::vector<std::size_t>& joined,
                     std::vector<BatchOutcome>& outcomes);

  ServerConfig config_;
  const ParameterStore* store_;
  sched::Scheduler* scheduler_;

  mutable util::Mutex mutex_{"core.batch", 26};
  std::map<std::uint64_t, Trunk> trunks_ MENOS_GUARDED_BY(mutex_);
  std::map<std::pair<std::uint64_t, tensor::Index>,
           std::unique_ptr<GraphSlot>>
      graphs_ MENOS_GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> groups_{0};
  std::atomic<std::uint64_t> members_{0};
  std::atomic<std::uint64_t> captures_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::uint64_t> eager_{0};
};

}  // namespace menos::core
