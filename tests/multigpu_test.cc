// Multi-GPU runtime: layer splitting across simulated GPUs, cross-device
// activation transport, and the "model too large for any single GPU" case
// §3.1 motivates.
#include <gtest/gtest.h>

#include <cmath>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"
#include "test_helpers.h"

namespace menos {
namespace {

nn::TransformerConfig mg_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 5;
  c.max_seq = 32;
  return c;
}

net::FinetuneConfig mg_finetune(std::uint64_t adapter_seed) {
  net::FinetuneConfig ft;
  ft.client_name = "mg";
  ft.model = mg_model();
  ft.adapter.rank = 4;
  ft.adapter.alpha = 8.0f;
  ft.batch_size = 2;
  ft.seq_len = 8;
  ft.lr = 3e-3f;
  ft.adapter_seed = adapter_seed;
  return ft;
}

TEST(BlockPlacement, ContiguousAndBalanced) {
  // 8 blocks over 4 GPUs -> 2 each, monotone non-decreasing.
  int previous = 0;
  std::vector<int> counts(4, 0);
  for (int b = 0; b < 8; ++b) {
    const int g = core::block_gpu_index(b, 8, 4);
    EXPECT_GE(g, previous);
    EXPECT_LT(g, 4);
    previous = g;
    ++counts[static_cast<std::size_t>(g)];
  }
  for (int c : counts) EXPECT_EQ(c, 2);
  // Uneven split: 5 blocks over 2 GPUs -> 3 + 2.
  EXPECT_EQ(core::block_gpu_index(0, 5, 2), 0);
  EXPECT_EQ(core::block_gpu_index(2, 5, 2), 0);
  EXPECT_EQ(core::block_gpu_index(3, 5, 2), 1);
  EXPECT_THROW(core::block_gpu_index(5, 5, 2), InvalidArgument);
}

TEST(ToDeviceOp, CopiesForwardAndGradBackward) {
  auto a_dev = gpusim::make_sim_gpu("a", 1 << 20);
  auto b_dev = gpusim::make_sim_gpu("b", 1 << 20);
  tensor::Tensor x = tensor::Tensor::from_vector({1, 2, 3}, {3}, *a_dev);
  x.set_requires_grad(true);
  tensor::Tensor y = tensor::to_device(x, *b_dev);
  EXPECT_EQ(&y.device(), b_dev.get());
  EXPECT_EQ(y.to_vector(), x.to_vector());
  tensor::backward(tensor::sum(tensor::mul(y, y)));
  tensor::Tensor g = x.grad();
  ASSERT_TRUE(g.defined());
  // Gradient landed back on the source device with the chain-rule values.
  EXPECT_EQ(&g.device(), a_dev.get());
  EXPECT_EQ(g.to_vector(), (std::vector<float>{2, 4, 6}));
}

TEST(MultiGpuStore, BlocksSpreadAcrossAllGpus) {
  gpusim::DeviceManager devices(3, 64u << 20);
  core::ParameterStore store(mg_model(), devices, 42);
  std::size_t total = 0;
  for (int g = 0; g < 3; ++g) {
    const std::size_t on_gpu = devices.gpu(g).allocated();
    EXPECT_GT(on_gpu, 0u) << "gpu " << g << " holds no layers";
    total += on_gpu;
  }
  EXPECT_EQ(total, store.bytes());
  // Placement is queryable and contiguous.
  EXPECT_EQ(&store.device_for_block(0), &devices.gpu(0));
  EXPECT_EQ(&store.device_for_block(4), &devices.gpu(2));
}

TEST(MultiGpuRuntime, SplitEqualsLocalAcrossGpus) {
  // Device hops must not change the math: the loss trajectory over a
  // 3-GPU server matches the single-device local reference bit-for-bit
  // (within float tolerance).
  constexpr int kSteps = 4;
  const std::uint64_t base_seed = 42, adapter_seed = 5, data_seed = 7;

  // Local reference on one host device.
  std::vector<double> reference;
  {
    auto host = gpusim::make_host_device();
    nn::FreshInit init(base_seed);
    nn::AdapterSpec adapter;
    adapter.rank = 4;
    adapter.alpha = 8.0f;
    nn::SplitSpec split;
    nn::LocalModel model(mg_model(), split, adapter, init, *host,
                         adapter_seed);
    auto optimizer = optim::make_optimizer(
        optim::OptimizerKind::Adam, model.trainable_parameters(), 3e-3f);
    data::CharTokenizer tok;
    data::DataLoader loader(
        tok.encode(data::make_shakespeare_like(3000, 2).text), 2, 8,
        data_seed);
    for (int i = 0; i < kSteps; ++i) {
      data::Batch b = loader.next();
      tensor::Tensor loss = model.loss(b.inputs, b.targets, 2, 8);
      reference.push_back(loss.item());
      tensor::backward(loss);
      optimizer->step();
      optimizer->zero_grad();
    }
  }

  gpusim::DeviceManager devices(3, 64u << 20);
  core::ServerConfig config;
  config.base_seed = base_seed;
  core::Server server(config, devices, mg_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 64u << 20);
  core::ClientOptions options;
  options.finetune = mg_finetune(adapter_seed);
  options.base_seed = base_seed;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();
  data::CharTokenizer tok;
  data::DataLoader loader(
      tok.encode(data::make_shakespeare_like(3000, 2).text), 2, 8, data_seed);
  for (int i = 0; i < kSteps; ++i) {
    const core::StepStats s = client.train_step(loader.next());
    EXPECT_NEAR(s.loss, reference[static_cast<std::size_t>(i)], 2e-4)
        << "step " << i;
  }
  client.disconnect();
  server.stop();
}

TEST(MultiGpuRuntime, ModelTooBigForOneGpuFitsAcrossFour) {
  // A parameter-heavy configuration (wide MLPs, tiny batches) so the base
  // model dominates memory — the Llama-on-a-V100 situation at test scale.
  nn::TransformerConfig model = mg_model();
  model.dim = 64;
  model.n_heads = 4;
  model.ffn_hidden = 512;
  model.n_layers = 8;
  const std::size_t base_bytes = [&] {
    auto probe = gpusim::make_host_device();
    core::ParameterStore store(model, *probe, 42);
    return store.bytes();
  }();
  // Below the full footprint, above a quarter of it + activation headroom.
  const std::size_t per_gpu = base_bytes / 2;

  {
    // One GPU: the base model alone cannot be loaded.
    gpusim::DeviceManager one(1, per_gpu);
    core::ServerConfig config;
    config.base_seed = 42;
    EXPECT_THROW(core::Server(config, one, model), OutOfMemory);
  }
  {
    // Four GPUs of the same size: loads, serves, trains.
    gpusim::DeviceManager four(4, per_gpu);
    core::ServerConfig config;
    config.base_seed = 42;
    core::Server server(config, four, model);
    net::InprocAcceptor acceptor;
    server.start(acceptor);
    gpusim::DeviceManager client_devices(1, 64u << 20);
    core::ClientOptions options;
    options.finetune = mg_finetune(9);
    options.finetune.model = model;
    options.finetune.batch_size = 1;
    options.finetune.seq_len = 4;
    options.base_seed = 42;
    core::Client client(options, acceptor.connect(), client_devices.gpu(0));
    client.connect();
    data::CharTokenizer tok;
    data::DataLoader loader(
        tok.encode(data::make_wikitext_like(3000, 3).text), 1, 4, 4);
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
    }
    client.disconnect();
    server.stop();
  }
}

TEST(MultiGpuRuntime, GenerationAndEvalWork) {
  gpusim::DeviceManager devices(2, 64u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  core::Server server(config, devices, mg_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);
  gpusim::DeviceManager client_devices(1, 64u << 20);
  core::ClientOptions options;
  options.finetune = mg_finetune(11);
  options.base_seed = 42;
  core::Client client(options, acceptor.connect(), client_devices.gpu(0));
  client.connect();
  auto out = client.generate({1, 2, 3}, 6);
  EXPECT_EQ(out.size(), 9u);
  // Multi-GPU generation must match the single-device local model.
  auto host = gpusim::make_host_device();
  nn::FreshInit init(42);
  nn::SplitSpec split;
  nn::AdapterSpec adapter;
  adapter.rank = 4;
  adapter.alpha = 8.0f;
  nn::LocalModel local(mg_model(), split, adapter, init, *host, 11);
  auto local_out = nn::greedy_generate(local.input(), local.server(),
                                       local.output(), {1, 2, 3}, 6);
  EXPECT_EQ(out, local_out);
  client.disconnect();
  server.stop();
}

TEST(MultiGpuRuntime, ConcurrentClientsAcrossGpus) {
  gpusim::DeviceManager devices(2, 32u << 20);
  core::ServerConfig config;
  config.base_seed = 42;
  core::Server server(config, devices, mg_model());
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      gpusim::DeviceManager cd(1, 64u << 20);
      core::ClientOptions o;
      o.finetune = mg_finetune(20 + static_cast<std::uint64_t>(i));
      o.base_seed = 42;
      core::Client c(o, acceptor.connect(), cd.gpu(0));
      c.connect();
      data::CharTokenizer tok;
      data::DataLoader loader(
          tok.encode(data::make_shakespeare_like(3000, 9).text), 2, 8,
          static_cast<std::uint64_t>(i));
      for (int s = 0; s < 3; ++s) {
        EXPECT_TRUE(std::isfinite(c.train_step(loader.next()).loss));
      }
      c.disconnect();
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
}

}  // namespace
}  // namespace menos
