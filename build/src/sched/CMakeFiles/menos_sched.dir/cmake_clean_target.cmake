file(REMOVE_RECURSE
  "libmenos_sched.a"
)
