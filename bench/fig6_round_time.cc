// Figure 6: average time for clients to complete one round of fine-tuning
// as the number of clients grows, vanilla (task-level swap) vs Menos.
#include "bench_common.h"

using namespace menos;

namespace {

void run_model(const sim::ModelSpec& spec, int max_clients,
               const char* paper_note) {
  std::printf("\n--- %s ---\n%s\n", spec.name.c_str(), paper_note);
  std::printf("%-8s  %-16s  %-16s\n", "clients", "vanilla (s/iter)",
              "menos (s/iter)");
  for (int n = 1; n <= max_clients; ++n) {
    auto vanilla = sim::run_split_finetune(
        bench::make_config(spec, core::ServingMode::VanillaTaskSwap, n));
    auto menos_r = sim::run_split_finetune(
        bench::make_config(spec, core::ServingMode::MenosOnDemand, n));
    std::printf("%-8d  %-16s  %-16s\n", n,
                bench::cell(vanilla, vanilla.avg_iteration_s).c_str(),
                bench::cell(menos_r, menos_r.avg_iteration_s).c_str());
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 6 — average time per fine-tuning round vs number of clients",
      "Fig 6(a) OPT: vanilla ~7 s up to 3 clients then 18.2 s at 6; Menos "
      "~8.7 s at 6. Fig 6(b) Llama: vanilla 3.7 -> 63.1 -> 154.4 s, N/A at "
      "5+; Menos 4.7 -> 6.0 s");
  run_model(sim::ModelSpec::opt_1_3b(), 6,
            "(paper: swap starts beyond 3 clients)");
  run_model(sim::ModelSpec::llama2_7b(), 6,
            "(paper: swap starts at 2 clients; N/A from 5 clients)");
  return 0;
}
