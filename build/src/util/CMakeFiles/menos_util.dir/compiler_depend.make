# Empty compiler generated dependencies file for menos_util.
# This may be replaced when dependencies are built.
