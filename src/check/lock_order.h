// menos::check — runtime lock-order (deadlock) detection.
//
// Every named util::Mutex belongs to a *lock class* (interned by name, the
// way Linux's lockdep keys on lock-site classes rather than instances).
// Acquisitions maintain a thread-local stack of held classes; acquiring B
// while holding A records the directed edge A -> B in a process-wide
// lock-order graph. The first time a new edge closes a cycle — the
// classic ABBA inversion, generalized to any length — a diagnostic fires
// with BOTH hold-stacks: the one recorded when the forward edge was first
// seen, and the one performing the inverted acquisition now. Classes may
// additionally carry a *rank* (docs/ANALYSIS.md tabulates the per-
// subsystem convention): acquiring a nonzero-ranked class below the
// highest nonzero rank already held is reported immediately, without
// waiting for the reverse order to ever execute.
//
// This header is dependency-free (menos_util links menos_check, so this
// library must not reach back into util). The instrumentation calls are
// compiled into util::Mutex only under MENOS_DEADLOCK_DETECT (a CMake
// option, default ON in Debug); an unnamed Mutex costs one null check
// when detection is on and nothing at all when it is off.
//
// Reports follow the MENOS_DCHECK philosophy (util/check.h): internal
// invariant breakage aborts, with the diagnostic on stderr so it survives
// even mid-teardown. Tests install a collecting handler instead
// (ScopedLockReportCapture).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace menos::check {

/// Opaque interned lock class; one per distinct name, never deallocated.
struct LockClass;

/// Intern `name` (with ordering rank `rank`; 0 = unranked, graph-only).
/// Re-interning an existing name returns the same class; a conflicting
/// rank for an existing name is itself reported (two subsystems disagree
/// about the discipline).
LockClass* intern_lock_class(const char* name, int rank = 0);

/// Record a blocking acquisition of `cls` by the calling thread. Called by
/// util::Mutex::lock BEFORE the underlying lock is taken, so an inversion
/// that is about to deadlock for real still gets its diagnostic out first.
/// `instance` distinguishes recursive self-deadlock from same-class
/// nesting of distinct objects.
void note_acquire(const LockClass* cls, const void* instance);

/// Record a successful try_lock. A trylock cannot block, hence cannot
/// deadlock: the class joins the held stack (so later acquisitions record
/// edges from it) but records no incoming edge and fires no report.
void note_try_acquire(const LockClass* cls, const void* instance);

/// Record a release (out-of-order releases are fine).
void note_release(const LockClass* cls, const void* instance);

const char* lock_class_name(const LockClass* cls) noexcept;
int lock_class_rank(const LockClass* cls) noexcept;

/// One diagnostic from the detector.
struct LockOrderReport {
  /// "cycle", "rank", "recursive", or "rank-conflict".
  std::string kind;
  /// Human-readable one-line summary (lock names involved).
  std::string summary;
  /// Hold-stack recorded when the *first* direction was established
  /// (empty for non-cycle reports).
  std::string first_stack;
  /// Hold-stack of the acquisition that completed the inversion.
  std::string second_stack;

  std::string to_string() const;
};

/// Replace the report sink. An empty handler restores the default, which
/// prints the report to stderr and aborts (MENOS_DCHECK semantics).
void set_lock_report_handler(std::function<void(const LockOrderReport&)> handler);

/// Reports fired since process start (or the last reset).
std::uint64_t lock_report_count() noexcept;

/// Snapshot of the lock-order graph as (holder, acquired) name pairs —
/// introspection for tests that pin down the verified clean orderings.
std::vector<std::pair<std::string, std::string>> lock_order_edges();

/// True iff the edge holder -> acquired has been observed.
bool lock_order_edge_seen(const std::string& holder,
                          const std::string& acquired);

/// Drop every recorded edge and report (interned classes survive; live
/// mutexes keep their class pointers). Test-only: callers must be
/// single-threaded with respect to lock activity.
void reset_lock_graph_for_test();

/// RAII test helper: resets the graph and collects reports instead of
/// aborting; restores the default handler (and resets again) on exit.
class ScopedLockReportCapture {
 public:
  ScopedLockReportCapture();
  ~ScopedLockReportCapture();

  ScopedLockReportCapture(const ScopedLockReportCapture&) = delete;
  ScopedLockReportCapture& operator=(const ScopedLockReportCapture&) = delete;

  const std::vector<LockOrderReport>& reports() const { return reports_; }

 private:
  std::vector<LockOrderReport> reports_;
};

}  // namespace menos::check
