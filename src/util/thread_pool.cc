#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <string>
#include <utility>

#include "util/check.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::util {

namespace {

// True while this thread is executing chunks of some region (worker or
// submitting thread alike). A parallel_for issued from such a thread runs
// serially: the pool is flat, not recursive.
thread_local bool t_inside_region = false;

// Each chunk is at least `grain` indices; beyond that, aim for a few chunks
// per thread so the atomic chunk cursor load-balances uneven bodies.
constexpr ThreadPool::Index kChunksPerThread = 4;

int env_width() {
  const char* raw = std::getenv("MENOS_THREADS");
  long parsed = 0;
  if (raw != nullptr && *raw != '\0') {
    char* end = nullptr;
    parsed = std::strtol(raw, &end, 10);
    if (end == raw || (end != nullptr && *end != '\0') || parsed < 0) {
      MENOS_CHECK_MSG(false, "MENOS_THREADS must be a non-negative integer, got '"
                                 << raw << "'");
    }
  }
  if (parsed <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    parsed = hw == 0 ? 1 : static_cast<long>(hw);
  }
  return static_cast<int>(std::min<long>(parsed, 256));
}

}  // namespace

/// One fork/join dispatch. Heap-held via shared_ptr so a worker that wakes
/// late and finds every chunk already claimed can still touch the chunk
/// cursor safely after the submitter has moved on.
struct ThreadPool::Region {
  Index begin = 0;
  Index chunk = 1;
  Index end = 0;
  Index nchunks = 0;
  const Body* body = nullptr;  // valid until `completed` reaches nchunks

  std::atomic<Index> next{0};       // next unclaimed chunk
  std::atomic<Index> completed{0};  // chunks fully executed

  Mutex error_mutex{"util.threadpool.error", 48};
  std::exception_ptr first_error MENOS_GUARDED_BY(error_mutex);
};

struct ThreadPool::State {
  // Rank band 44..48 (docs/ANALYSIS.md): below the gpusim/mem allocator
  // locks because parallel_for bodies run with submit_mutex held and may
  // allocate; above mem.offload, whose move callbacks dispatch copies.
  Mutex mutex{"util.threadpool.state", 46};
  CondVar work_cv;      // workers wait here for a new epoch
  CondVar done_cv;      // submitter waits here for completion
  // Serializes whole dispatches (one region in flight at a time); it has
  // no guarded members of its own.
  Mutex submit_mutex{"util.threadpool.submit", 44};  // NOLINT(mutex-annotation)
  std::shared_ptr<Region> region MENOS_GUARDED_BY(mutex);
  std::uint64_t epoch MENOS_GUARDED_BY(mutex) = 0;
  bool stop MENOS_GUARDED_BY(mutex) = false;
  bool started MENOS_GUARDED_BY(mutex) = false;

  // Background task lane (submit): independent of the fork/join fields so
  // a long-running task never interferes with parallel_for dispatch.
  Mutex task_mutex{"util.threadpool.task", 47};
  CondVar task_cv;
  std::deque<std::function<void()>> tasks MENOS_GUARDED_BY(task_mutex);
  bool task_stop MENOS_GUARDED_BY(task_mutex) = false;
  bool task_started MENOS_GUARDED_BY(task_mutex) = false;
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : state_(std::make_unique<State>()) {
  num_threads_ = env_width();
}

ThreadPool::~ThreadPool() {
  stop_task_worker();
  stop_workers();
}

void ThreadPool::set_num_threads(int n) {
  MENOS_CHECK_MSG(n >= 1, "ThreadPool width must be >= 1, got " << n);
  stop_workers();
  num_threads_ = std::min(n, 256);
}

void ThreadPool::submit(std::function<void()> task) {
  MENOS_CHECK_MSG(task != nullptr, "ThreadPool::submit needs a task");
  bool spawn = false;
  {
    MutexLock lock(state_->task_mutex);
    MENOS_CHECK_MSG(!state_->task_stop, "ThreadPool is shutting down");
    state_->tasks.push_back(std::move(task));
    if (!state_->task_started) {
      // Lazy start, mirroring the fork/join workers: programs that never
      // submit() never pay for the extra thread.
      state_->task_started = true;
      spawn = true;
    }
  }
  if (spawn) task_thread_ = std::thread([this] { task_worker_main(); });
  state_->task_cv.notify_one();
}

void ThreadPool::task_worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(state_->task_mutex);
      while (state_->tasks.empty() && !state_->task_stop) {
        state_->task_cv.wait(state_->task_mutex);
      }
      if (state_->tasks.empty()) return;  // stop requested, queue drained
      task = std::move(state_->tasks.front());
      state_->tasks.pop_front();
    }
    try {
      task();
    } catch (const std::exception& e) {
      MENOS_LOG(Error) << "background task failed: " << e.what();
    } catch (...) {
      MENOS_LOG(Error) << "background task failed with a non-exception";
    }
  }
}

void ThreadPool::stop_task_worker() {
  {
    MutexLock lock(state_->task_mutex);
    if (!state_->task_started) return;
    state_->task_stop = true;
  }
  state_->task_cv.notify_all();
  task_thread_.join();
  MutexLock lock(state_->task_mutex);
  state_->task_started = false;
  state_->task_stop = false;
}

void ThreadPool::stop_workers() {
  {
    MutexLock lock(state_->mutex);
    if (!state_->started) return;
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  MutexLock lock(state_->mutex);
  state_->started = false;
  state_->stop = false;
}

void ThreadPool::run_chunks(Region& region) {
  const bool was_inside = t_inside_region;
  t_inside_region = true;
  for (;;) {
    const Index c = region.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= region.nchunks) break;
    const Index b = region.begin + c * region.chunk;
    const Index e = std::min(region.end, b + region.chunk);
    try {
      (*region.body)(b, e);
    } catch (...) {
      MutexLock lock(region.error_mutex);
      if (!region.first_error) region.first_error = std::current_exception();
    }
    region.completed.fetch_add(1, std::memory_order_acq_rel);
  }
  t_inside_region = was_inside;
}

void ThreadPool::worker_main() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      MutexLock lock(state_->mutex);
      while (!state_->stop && state_->epoch == seen_epoch) {
        state_->work_cv.wait(state_->mutex);
      }
      if (state_->stop) return;
      seen_epoch = state_->epoch;
      region = state_->region;
    }
    if (!region) continue;
    run_chunks(*region);
    if (region->completed.load(std::memory_order_acquire) == region->nchunks) {
      // Take the mutex before notifying so the wakeup cannot slip into the
      // window between the submitter's predicate check and its sleep.
      MutexLock lock(state_->mutex);
      state_->done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(Index begin, Index end, Index grain,
                              const Body& body) {
  if (end <= begin) return;
  const Index range = end - begin;
  grain = std::max<Index>(grain, 1);

  // Serial fast paths: tiny range, width-1 pool, nested call, or another
  // thread already mid-dispatch (run our own range instead of queueing).
  if (range <= grain || num_threads_ <= 1 || t_inside_region) {
    body(begin, end);
    return;
  }
  if (!state_->submit_mutex.try_lock()) {
    body(begin, end);
    return;
  }

  std::shared_ptr<Region> region;
  {
    MutexLock submit(state_->submit_mutex, MutexLock::Adopt{});

    const Index target_chunks =
        static_cast<Index>(num_threads_) * kChunksPerThread;
    const Index chunk =
        std::max(grain, (range + target_chunks - 1) / target_chunks);
    const Index nchunks = (range + chunk - 1) / chunk;
    if (nchunks <= 1) {
      body(begin, end);
      return;
    }

    region = std::make_shared<Region>();
    region->begin = begin;
    region->end = end;
    region->chunk = chunk;
    region->nchunks = nchunks;
    region->body = &body;

    {
      MutexLock lock(state_->mutex);
      if (!state_->started) {
        // Lazy start: spawn the workers on the first dispatch that wants
        // them (width-1 pools and purely-serial programs never get here).
        state_->stop = false;
        state_->started = true;
        workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
        for (int i = 0; i < num_threads_ - 1; ++i) {
          workers_.emplace_back([this] { worker_main(); });
        }
      }
      state_->region = region;
      ++state_->epoch;
    }
    state_->work_cv.notify_all();

    run_chunks(*region);  // the submitting thread pulls chunks too

    {
      MutexLock lock(state_->mutex);
      while (region->completed.load(std::memory_order_acquire) !=
             region->nchunks) {
        state_->done_cv.wait(state_->mutex);
      }
      state_->region.reset();
    }
  }

  std::exception_ptr first_error;
  {
    MutexLock lock(region->error_mutex);
    first_error = region->first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace menos::util
