// Deterministic, vectorizable transcendental approximations for the
// elementwise tensor kernels.
//
// Why not libm: a per-element call to std::tanh/std::exp is (a) an opaque
// function call the auto-vectorizer cannot touch, so gelu/silu run scalar
// regardless of thread count, and (b) dependent on the host libm version,
// so "bit-identical" only holds within one machine. These routines are
// plain inline arithmetic — GCC/Clang vectorize the surrounding loops —
// and produce the same bits on every platform for the same input.
//
// Accuracy: fast_exp is the classic Cephes-style range reduction
// (x = n·ln2 + r, e^r by a degree-5 polynomial), good to ~2 ulp over the
// clamped range. fast_tanh / fast_sigmoid are derived from it and carry
// absolute error below ~1e-6, far inside every gradient-check tolerance in
// the test suite. Forward and backward passes use the same functions, so
// autograd stays exactly self-consistent.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

namespace menos::util {

/// e^x for float, clamped to the finite range (|result| never overflows).
inline float fast_exp(float x) {
  // Clamp so the 2^n scale below stays a finite normal number.
  x = x < -87.0f ? -87.0f : x;
  x = x > 88.0f ? 88.0f : x;

  // n = round(x / ln2) without floorf: adding 1.5 * 2^23 forces the value
  // into the integer-spaced float range (round-to-nearest-even), which the
  // vectorizer lowers to plain adds — no libm, no SSE4.1 dependency.
  const float z = x * 1.44269504088896341f;  // log2(e)
  const float magic = 12582912.0f;           // 1.5 * 2^23
  const float nf = (z + magic) - magic;

  // r = x - n*ln2 in two steps (hi/lo split) keeps r accurate near 2^-20.
  const float r = (x - nf * 0.693359375f) - nf * -2.12194440e-4f;

  // e^r on r in [-ln2/2, ln2/2], degree-5 minimax (Cephes coefficients).
  float y = 1.9875691500e-4f;
  y = y * r + 1.3981999507e-3f;
  y = y * r + 8.3334519073e-3f;
  y = y * r + 4.1665795894e-2f;
  y = y * r + 1.6666665459e-1f;
  y = y * r + 5.0000001201e-1f;
  y = y * r * r + r + 1.0f;

  // Scale by 2^n through the exponent bits.
  const std::int32_t n = static_cast<std::int32_t>(nf);
  std::int32_t bits;
  std::memcpy(&bits, &y, sizeof(bits));
  bits += n << 23;
  std::memcpy(&y, &bits, sizeof(y));
  return y;
}

/// tanh(x); odd, monotone, exactly 0 at 0, saturates to ±1.
inline float fast_tanh(float x) {
  const float a = std::fabs(x);
  const float e = fast_exp(2.0f * a);
  const float t = 1.0f - 2.0f / (e + 1.0f);
  return std::copysign(t, x);
}

/// 1 / (1 + e^-x); exactly 0.5 at 0.
inline float fast_sigmoid(float x) {
  return 1.0f / (1.0f + fast_exp(-x));
}

}  // namespace menos::util
