#include "nn/layers.h"

namespace menos::nn {

namespace {
constexpr float kWeightStd = 0.02f;
}

Linear::Linear(const std::string& name, tensor::Index in, tensor::Index out,
               bool bias, ParameterSource& source, gpusim::Device& device,
               bool trainable_bias)
    : in_(in), out_(out) {
  MENOS_CHECK_MSG(in > 0 && out > 0, "Linear dims must be positive");
  weight_ = source.get(name + ".weight", {in, out}, device, kWeightStd);
  register_parameter(name + ".weight", weight_);
  if (bias) {
    bias_ = source.get(name + ".bias", {out}, device, 0.0f);
    if (trainable_bias) {
      // BitFit: the shared bias stays untouched; this client trains a copy.
      bias_ = bias_.clone();
      bias_.set_requires_grad(true);
    }
    register_parameter(name + ".bias", bias_);
  }
}

tensor::Tensor Linear::forward(const tensor::Tensor& x) {
  tensor::Tensor y = tensor::matmul(x, weight_);
  if (bias_.defined()) y = tensor::add_bias(y, bias_);
  return y;
}

Embedding::Embedding(const std::string& name, tensor::Index vocab,
                     tensor::Index dim, ParameterSource& source,
                     gpusim::Device& device)
    : vocab_(vocab), dim_(dim) {
  MENOS_CHECK_MSG(vocab > 0 && dim > 0, "Embedding dims must be positive");
  weight_ = source.get(name + ".weight", {vocab, dim}, device, kWeightStd);
  register_parameter(name + ".weight", weight_);
}

tensor::Tensor Embedding::forward(const std::vector<std::int32_t>& ids,
                                  tensor::Index batch, tensor::Index seq) {
  return tensor::embedding(weight_, ids, batch, seq);
}

LayerNormLayer::LayerNormLayer(const std::string& name, tensor::Index dim,
                               ParameterSource& source, gpusim::Device& device,
                               float eps)
    : eps_(eps) {
  gamma_ = source.get(name + ".gamma", {dim}, device, -1.0f);
  beta_ = source.get(name + ".beta", {dim}, device, 0.0f);
  register_parameter(name + ".gamma", gamma_);
  register_parameter(name + ".beta", beta_);
}

tensor::Tensor LayerNormLayer::forward(const tensor::Tensor& x) {
  return tensor::layer_norm(x, gamma_, beta_, eps_);
}

RMSNormLayer::RMSNormLayer(const std::string& name, tensor::Index dim,
                           ParameterSource& source, gpusim::Device& device,
                           float eps)
    : eps_(eps) {
  gamma_ = source.get(name + ".gamma", {dim}, device, -1.0f);
  register_parameter(name + ".gamma", gamma_);
}

tensor::Tensor RMSNormLayer::forward(const tensor::Tensor& x) {
  return tensor::rms_norm(x, gamma_, eps_);
}

}  // namespace menos::nn
