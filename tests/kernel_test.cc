// The packed-panel matmul kernels' determinism contract: blocked output ==
// serial reference, BIT-identical, for every block configuration, thread
// count, and awkward shape — plus the fused elementwise ops' equivalence
// to their compositions and the fastmath accuracy bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "test_helpers.h"
#include "util/fastmath.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace menos {
namespace {

using menos::testing::host_device;
using tensor::Index;
using tensor::Tensor;
using tensor::kernels::BlockConfig;
using util::ThreadPool;

class KernelGuard {
 public:
  ~KernelGuard() {
    ThreadPool::instance().set_num_threads(1);
    tensor::kernels::set_block_config(BlockConfig{});  // back to defaults
  }
};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  util::Rng rng(seed);
  rng.fill_normal(v.data(), v.size(), 1.0f);
  return v;
}

/// Shapes chosen to hit every edge path: non-multiples of the register
/// tile in both axes, size-1 extents, k == 1 (no accumulation chain), and
/// dimensions larger than the default KC/NC panels.
struct Shape3 {
  Index m, k, n;
};
const Shape3 kShapes[] = {
    {37, 53, 41},  {1, 1, 1},   {1, 64, 1},   {5, 1, 33},
    {64, 64, 64},  {13, 300, 7}, {96, 17, 160}, {61, 613, 129},
};

const BlockConfig kConfigs[] = {
    {},              // defaults
    {8, 16, 8},      // tiles everywhere smaller than one register block
    {32, 48, 32},    // non-multiples of MR/NR
    {64, 512, 128},  // single jc panel, multiple kc panels
};

void expect_same(const std::vector<float>& got, const std::vector<float>& want,
                 const char* what, const Shape3& s) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)),
            0)
      << what << " diverges from serial reference at m=" << s.m
      << " k=" << s.k << " n=" << s.n;
}

TEST(KernelBitIdentity, MmMatchesReferenceForAllBlocksAndWidths) {
  KernelGuard guard;
  for (const Shape3& s : kShapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m * s.k), 7);
    const auto b = random_vec(static_cast<std::size_t>(s.k * s.n), 11);
    std::vector<float> ref(static_cast<std::size_t>(s.m * s.n), 0.0f);
    tensor::kernels::mm_ref(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    for (const BlockConfig& cfg : kConfigs) {
      tensor::kernels::set_block_config(cfg);
      for (int width : {1, 2, 4, 8}) {
        ThreadPool::instance().set_num_threads(width);
        std::vector<float> c(ref.size(), 0.0f);
        tensor::kernels::mm(a.data(), b.data(), c.data(), s.m, s.k, s.n);
        expect_same(c, ref, "mm", s);
      }
    }
  }
}

TEST(KernelBitIdentity, MmNtMatchesReferenceForAllBlocksAndWidths) {
  KernelGuard guard;
  for (const Shape3& s : kShapes) {
    // A:[m,n] x B:[k,n]^T -> C:[m,k]; n is the contraction width.
    const auto a = random_vec(static_cast<std::size_t>(s.m * s.n), 13);
    const auto b = random_vec(static_cast<std::size_t>(s.k * s.n), 17);
    std::vector<float> ref(static_cast<std::size_t>(s.m * s.k), 0.0f);
    tensor::kernels::mm_nt_ref(a.data(), b.data(), ref.data(), s.m, s.n, s.k);
    for (const BlockConfig& cfg : kConfigs) {
      tensor::kernels::set_block_config(cfg);
      for (int width : {1, 2, 4, 8}) {
        ThreadPool::instance().set_num_threads(width);
        std::vector<float> c(ref.size(), 0.0f);
        tensor::kernels::mm_nt(a.data(), b.data(), c.data(), s.m, s.n, s.k);
        expect_same(c, ref, "mm_nt", s);
      }
    }
  }
}

TEST(KernelBitIdentity, MmTnMatchesReferenceForAllBlocksAndWidths) {
  KernelGuard guard;
  for (const Shape3& s : kShapes) {
    // A:[m,k]^T x B:[m,n] -> C:[k,n]; m is the contraction depth.
    const auto a = random_vec(static_cast<std::size_t>(s.m * s.k), 19);
    const auto b = random_vec(static_cast<std::size_t>(s.m * s.n), 23);
    std::vector<float> ref(static_cast<std::size_t>(s.k * s.n), 0.0f);
    tensor::kernels::mm_tn_ref(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    for (const BlockConfig& cfg : kConfigs) {
      tensor::kernels::set_block_config(cfg);
      for (int width : {1, 2, 4, 8}) {
        ThreadPool::instance().set_num_threads(width);
        std::vector<float> c(ref.size(), 0.0f);
        tensor::kernels::mm_tn(a.data(), b.data(), c.data(), s.m, s.k, s.n);
        expect_same(c, ref, "mm_tn", s);
      }
    }
  }
}

TEST(KernelBitIdentity, AccumulationIntoNonZeroOutputIsPreserved) {
  KernelGuard guard;
  // C += A*B must add on top of existing values, and the pre-existing
  // values must not perturb determinism across widths.
  const Index m = 23, k = 31, n = 29;
  const auto a = random_vec(static_cast<std::size_t>(m * k), 29);
  const auto b = random_vec(static_cast<std::size_t>(k * n), 31);
  const auto c0 = random_vec(static_cast<std::size_t>(m * n), 37);
  std::vector<float> ref = c0;
  tensor::kernels::mm_ref(a.data(), b.data(), ref.data(), m, k, n);
  for (int width : {1, 4}) {
    ThreadPool::instance().set_num_threads(width);
    std::vector<float> c = c0;
    tensor::kernels::mm(a.data(), b.data(), c.data(), m, k, n);
    ASSERT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)), 0);
  }
}

TEST(KernelBitIdentity, BatchedFormsMatchPerMatrixCalls) {
  KernelGuard guard;
  const Index batch = 5, m = 9, k = 26, n = 33;
  const auto a = random_vec(static_cast<std::size_t>(batch * m * k), 41);
  const auto bs = random_vec(static_cast<std::size_t>(batch * k * n), 43);
  const auto b1 = random_vec(static_cast<std::size_t>(k * n), 47);

  for (bool shared : {false, true}) {
    const float* bp = shared ? b1.data() : bs.data();
    std::vector<float> ref(static_cast<std::size_t>(batch * m * n), 0.0f);
    for (Index i = 0; i < batch; ++i) {
      tensor::kernels::mm_ref(a.data() + i * m * k,
                              shared ? bp : bp + i * k * n,
                              ref.data() + i * m * n, m, k, n);
    }
    for (int width : {1, 4}) {
      ThreadPool::instance().set_num_threads(width);
      std::vector<float> c(ref.size(), 0.0f);
      tensor::kernels::mm_batched(a.data(), bp, c.data(), batch, m, k, n,
                                  shared);
      ASSERT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)),
                0)
          << "mm_batched shared=" << shared << " width=" << width;
    }
  }
}

TEST(KernelBitIdentity, BatchedTransposedFormsMatchPerMatrixCalls) {
  KernelGuard guard;
  const Index batch = 4, m = 11, n = 27, k = 19;
  const auto a = random_vec(static_cast<std::size_t>(batch * m * n), 53);
  const auto b = random_vec(static_cast<std::size_t>(batch * k * n), 59);
  std::vector<float> ref_nt(static_cast<std::size_t>(batch * m * k), 0.0f);
  for (Index i = 0; i < batch; ++i) {
    tensor::kernels::mm_nt_ref(a.data() + i * m * n, b.data() + i * k * n,
                               ref_nt.data() + i * m * k, m, n, k);
  }
  std::vector<float> ref_tn(static_cast<std::size_t>(batch * k * n), 0.0f);
  const auto a2 = random_vec(static_cast<std::size_t>(batch * m * k), 61);
  const auto g2 = random_vec(static_cast<std::size_t>(batch * m * n), 67);
  for (Index i = 0; i < batch; ++i) {
    tensor::kernels::mm_tn_ref(a2.data() + i * m * k, g2.data() + i * m * n,
                               ref_tn.data() + i * k * n, m, k, n);
  }
  for (int width : {1, 4}) {
    ThreadPool::instance().set_num_threads(width);
    std::vector<float> c(ref_nt.size(), 0.0f);
    tensor::kernels::mm_nt_batched(a.data(), b.data(), c.data(), batch, m, n,
                                   k, /*shared_b=*/false);
    ASSERT_EQ(
        std::memcmp(c.data(), ref_nt.data(), c.size() * sizeof(float)), 0)
        << "mm_nt_batched width=" << width;
    std::vector<float> ctn(ref_tn.size(), 0.0f);
    tensor::kernels::mm_tn_batched(a2.data(), g2.data(), ctn.data(), batch, m,
                                   k, n);
    ASSERT_EQ(
        std::memcmp(ctn.data(), ref_tn.data(), ctn.size() * sizeof(float)), 0)
        << "mm_tn_batched width=" << width;
  }
}

TEST(KernelConfig, RejectsNegativeBlockSizes) {
  KernelGuard guard;
  EXPECT_THROW(tensor::kernels::set_block_config({-1, 0, 0}), Error);
  EXPECT_GT(tensor::kernels::micro_tile_rows(), 0);
  EXPECT_GT(tensor::kernels::micro_tile_cols(), 0);
  EXPECT_NE(tensor::kernels::vector_arch(), nullptr);
}

// ----- fused elementwise ops == their compositions -----

TEST(FusedOps, BiasGeluMatchesCompositionForwardAndBackward) {
  const Index rows = 17, n = 45;
  util::Rng rng(71);
  Tensor x1 = testing::random_leaf({rows, n}, rng, host_device());
  Tensor b1 = testing::random_leaf({n}, rng, host_device());
  Tensor x2 = Tensor::from_vector(x1.to_vector(), x1.shape(), host_device(),
                                  /*requires_grad=*/true);
  Tensor b2 = Tensor::from_vector(b1.to_vector(), b1.shape(), host_device(),
                                  /*requires_grad=*/true);

  Tensor composed = tensor::gelu(tensor::add_bias(x1, b1));
  Tensor fused = tensor::bias_gelu(x2, b2);
  ASSERT_EQ(std::memcmp(composed.data(), fused.data(), composed.bytes()), 0)
      << "bias_gelu forward differs from gelu(add_bias(..))";

  tensor::backward(tensor::sum(tensor::mul(composed, composed)));
  tensor::backward(tensor::sum(tensor::mul(fused, fused)));
  ASSERT_EQ(
      std::memcmp(x1.grad().data(), x2.grad().data(), x1.grad().bytes()), 0)
      << "bias_gelu dx differs";
  ASSERT_EQ(
      std::memcmp(b1.grad().data(), b2.grad().data(), b1.grad().bytes()), 0)
      << "bias_gelu dbias differs";
}

TEST(FusedOps, FusedAddLayerNormMatchesCompositionForwardAndBackward) {
  const Index rows = 13, n = 40;
  util::Rng rng(73);
  Tensor a1 = testing::random_leaf({rows, n}, rng, host_device());
  Tensor b1 = testing::random_leaf({rows, n}, rng, host_device());
  Tensor g1 = testing::random_leaf({n}, rng, host_device());
  Tensor be1 = testing::random_leaf({n}, rng, host_device());
  const auto leaf_copy = [](const Tensor& t) {
    return Tensor::from_vector(t.to_vector(), t.shape(), host_device(),
                               /*requires_grad=*/true);
  };
  Tensor a2 = leaf_copy(a1);
  Tensor b2 = leaf_copy(b1);
  Tensor g2 = leaf_copy(g1);
  Tensor be2 = leaf_copy(be1);

  Tensor h1 = tensor::add(a1, b1);
  Tensor y1 = tensor::layer_norm(h1, g1, be1);
  auto [h2, y2] = tensor::fused_add_layer_norm(a2, b2, g2, be2);
  ASSERT_EQ(std::memcmp(h1.data(), h2.data(), h1.bytes()), 0)
      << "fused residual h differs from add(a, b)";
  ASSERT_EQ(std::memcmp(y1.data(), y2.data(), y1.bytes()), 0)
      << "fused layer_norm output differs";

  // Drive gradients through BOTH outputs, as a transformer block does
  // (h feeds the residual, y feeds the MLP).
  tensor::backward(
      tensor::sum(tensor::add(tensor::mul(y1, y1), tensor::mul(h1, h1))));
  tensor::backward(
      tensor::sum(tensor::add(tensor::mul(y2, y2), tensor::mul(h2, h2))));
  for (auto [lhs, rhs, what] :
       {std::tuple{&a1, &a2, "da"}, std::tuple{&b1, &b2, "db"},
        std::tuple{&g1, &g2, "dgamma"}, std::tuple{&be1, &be2, "dbeta"}}) {
    ASSERT_EQ(std::memcmp(lhs->grad().data(), rhs->grad().data(),
                          lhs->grad().bytes()),
              0)
        << "fused_add_layer_norm " << what << " differs";
  }
}

// ----- fastmath accuracy -----

TEST(FastMath, ExpTanhSigmoidStayWithinAbsoluteBounds) {
  // The fast transcendentals trade exactness for vectorizability; the ops
  // that use them only need ~1e-6 absolute accuracy on the ranges a
  // normalized activation can reach.
  double worst_exp = 0.0, worst_tanh = 0.0, worst_sig = 0.0;
  for (int i = -80000; i <= 80000; ++i) {
    const float x = static_cast<float>(i) / 8000.0f;  // [-10, 10]
    worst_exp = std::max(
        worst_exp,
        std::abs(static_cast<double>(util::fast_exp(x)) -
                 std::exp(static_cast<double>(x))) /
            std::max(1.0, std::exp(static_cast<double>(x))));
    worst_tanh =
        std::max(worst_tanh, std::abs(static_cast<double>(util::fast_tanh(x)) -
                                      std::tanh(static_cast<double>(x))));
    worst_sig = std::max(
        worst_sig,
        std::abs(static_cast<double>(util::fast_sigmoid(x)) -
                 1.0 / (1.0 + std::exp(-static_cast<double>(x)))));
  }
  EXPECT_LT(worst_exp, 1e-6) << "fast_exp relative error too large";
  EXPECT_LT(worst_tanh, 1e-6);
  EXPECT_LT(worst_sig, 1e-6);
  // Saturation: no NaN/inf surprises at the clamp boundaries.
  // fast_exp clamps its argument near the float-denormal boundary, so
  // deeply negative inputs land at a tiny positive value, not exactly 0.
  EXPECT_GE(util::fast_exp(-200.0f), 0.0f);
  EXPECT_LT(util::fast_exp(-200.0f), 1e-37f);
  EXPECT_TRUE(std::isfinite(util::fast_exp(88.0f)));
  EXPECT_FLOAT_EQ(util::fast_tanh(30.0f), 1.0f);
  EXPECT_FLOAT_EQ(util::fast_tanh(-30.0f), -1.0f);
}

}  // namespace
}  // namespace menos
