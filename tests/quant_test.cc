// Quantization: schemes, reconstruction error, streaming matmul (+ its
// activation gradient), QuantizedLinear / QLoraLinear, memory footprints.
#include <gtest/gtest.h>

#include "optim/optimizer.h"
#include "quant/quant_linear.h"
#include "test_helpers.h"

namespace menos::quant {
namespace {

using menos::testing::host_device;
using tensor::Index;
using tensor::Shape;
using tensor::Tensor;

Tensor random_weight(Index rows, Index cols, std::uint64_t seed,
                     float stddev = 0.05f) {
  util::Rng rng(seed);
  Tensor w = Tensor::empty({rows, cols}, host_device());
  rng.fill_normal(w.data(), static_cast<std::size_t>(w.numel()), stddev);
  return w;
}

class SchemeSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeSweep, RoundTripErrorSmall) {
  const Scheme scheme = GetParam();
  Tensor w = random_weight(64, 48, 1);
  QuantizedTensor q = QuantizedTensor::quantize(w, scheme, host_device());
  EXPECT_EQ(q.shape(), (Shape{64, 48}));
  // Relative RMSE: int8 is ~1e-3 of the scale, nf4 a few percent.
  const double rmse = reconstruction_rmse(w, q);
  const double bound = scheme == Scheme::Int8Rowwise ? 5e-4 : 8e-3;
  EXPECT_LT(rmse, bound) << scheme_name(scheme);
}

TEST_P(SchemeSweep, DequantizeMatchesRowwise) {
  const Scheme scheme = GetParam();
  Tensor w = random_weight(5, 70, 2);  // cols not a multiple of the block
  QuantizedTensor q = QuantizedTensor::quantize(w, scheme, host_device());
  Tensor full = q.dequantize(host_device());
  std::vector<float> row(70);
  for (Index r = 0; r < 5; ++r) {
    q.dequantize_row(r, row.data());
    for (Index c = 0; c < 70; ++c) {
      EXPECT_FLOAT_EQ(row[static_cast<std::size_t>(c)],
                      full.data()[r * 70 + c]);
    }
  }
}

TEST_P(SchemeSweep, MatmulMatchesDequantizedReference) {
  const Scheme scheme = GetParam();
  util::Rng rng(3);
  Tensor x = Tensor::empty({4, 32}, host_device());
  rng.fill_normal(x.data(), 4 * 32, 1.0f);
  Tensor w = random_weight(32, 24, 4);
  QuantizedTensor q = QuantizedTensor::quantize(w, scheme, host_device());
  Tensor expected = tensor::matmul(x, q.dequantize(host_device()));
  Tensor actual = quantized_matmul(x, q);
  auto e = expected.to_vector();
  auto a = actual.to_vector();
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_NEAR(a[i], e[i], 1e-4f);
  }
}

TEST_P(SchemeSweep, ActivationGradientMatchesReference) {
  const Scheme scheme = GetParam();
  util::Rng rng(5);
  Tensor x = menos::testing::random_leaf({3, 16}, rng, host_device());
  Tensor w = random_weight(16, 8, 6);
  QuantizedTensor q = QuantizedTensor::quantize(w, scheme, host_device());

  // Quantized path.
  Tensor y = quantized_matmul(x, q);
  tensor::backward(tensor::sum(y));
  auto grad_q = x.grad().to_vector();
  x.zero_grad();

  // Float reference through the dequantized weight.
  Tensor w_dq = q.dequantize(host_device());
  Tensor y_ref = tensor::matmul(x, w_dq);
  tensor::backward(tensor::sum(y_ref));
  auto grad_ref = x.grad().to_vector();
  for (std::size_t i = 0; i < grad_q.size(); ++i) {
    EXPECT_NEAR(grad_q[i], grad_ref[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeSweep,
                         ::testing::Values(Scheme::Int8Rowwise,
                                           Scheme::Nf4Block));

TEST(Quantize, FootprintReductions) {
  auto gpu = gpusim::make_sim_gpu("q", 64u << 20);
  util::Rng rng(7);
  Tensor w = Tensor::empty({256, 256}, *gpu);
  rng.fill_normal(w.data(), 256 * 256, 0.05f);
  const std::size_t float_bytes = w.bytes();

  QuantizedTensor q8 = QuantizedTensor::quantize(w, Scheme::Int8Rowwise, *gpu);
  QuantizedTensor q4 = QuantizedTensor::quantize(w, Scheme::Nf4Block, *gpu);
  // int8: 1/4 + per-row scales; nf4: 1/8 + per-block scales.
  EXPECT_LT(q8.bytes(), float_bytes / 4 + 256 * sizeof(float) + 64);
  EXPECT_GT(q8.bytes(), float_bytes / 5);
  EXPECT_LT(q4.bytes(), float_bytes / 6);
  EXPECT_GT(q4.bytes(), float_bytes / 10);
  // Every quantized byte is metered on the device.
  EXPECT_GE(gpu->allocated(), float_bytes + q8.bytes() + q4.bytes());
}

TEST(Quantize, WeightGradientNeverProduced) {
  // The premise that makes quantizing the base safe: it is frozen.
  util::Rng rng(8);
  Tensor x = menos::testing::random_leaf({2, 8}, rng, host_device());
  Tensor w = random_weight(8, 8, 9);
  QuantizedTensor q = QuantizedTensor::quantize(w, Scheme::Nf4Block,
                                                host_device());
  tensor::backward(tensor::sum(quantized_matmul(x, q)));
  EXPECT_TRUE(x.grad().defined());
  EXPECT_FALSE(w.grad().defined());
}

TEST(Quantize, RejectsNonMatrix) {
  Tensor v = Tensor::zeros({8}, host_device());
  EXPECT_THROW(QuantizedTensor::quantize(v, Scheme::Int8Rowwise, host_device()),
               InvalidArgument);
  Tensor w = Tensor::zeros({4, 4}, host_device());
  QuantizedTensor q = QuantizedTensor::quantize(w, Scheme::Int8Rowwise,
                                                host_device());
  Tensor bad = Tensor::zeros({2, 5}, host_device());
  EXPECT_THROW(quantized_matmul(bad, q), InvalidArgument);
}

TEST(Quantize, ZeroMatrixStable) {
  Tensor w = Tensor::zeros({4, 4}, host_device());
  for (Scheme s : {Scheme::Int8Rowwise, Scheme::Nf4Block}) {
    QuantizedTensor q = QuantizedTensor::quantize(w, s, host_device());
    EXPECT_EQ(reconstruction_rmse(w, q), 0.0);
  }
}

TEST(QuantizedLinear, MatchesFloatLinearClosely) {
  nn::FreshInit src(11);
  nn::FreshInit src2(11);
  nn::Linear ref("l", 32, 16, true, src, host_device());
  QuantizedLinear q("l", 32, 16, true, Scheme::Int8Rowwise, src2,
                    host_device());
  util::Rng rng(12);
  Tensor x = Tensor::empty({4, 32}, host_device());
  rng.fill_normal(x.data(), 4 * 32, 1.0f);
  auto a = ref.forward(x).to_vector();
  auto b = q.forward(x).to_vector();
  double err = 0.0, mag = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    err += (a[i] - b[i]) * (a[i] - b[i]);
    mag += a[i] * a[i];
  }
  EXPECT_LT(std::sqrt(err / mag), 0.01);  // <1% relative output error
}

TEST(QuantizedLinear, ResidentBytesAreQuarterOfFloat) {
  auto gpu = gpusim::make_sim_gpu("ql", 64u << 20);
  nn::FreshInit src(13);
  const std::size_t before = gpu->allocated();
  QuantizedLinear q("l", 128, 128, false, Scheme::Int8Rowwise, src, *gpu);
  const std::size_t resident = gpu->allocated() - before;
  EXPECT_EQ(resident, q.resident_bytes());
  const std::size_t float_equiv = 128 * 128 * sizeof(float);
  EXPECT_LT(resident, float_equiv / 3);
}

TEST(QLora, AdapterTrainsOverQuantizedBase) {
  // The QLoRA loop: frozen 4-bit base, trainable fp32 LoRA, loss drops.
  nn::FreshInit src(14);
  util::Rng arng(15);
  QLoraLinear layer("l", 16, 16, false, Scheme::Nf4Block, 4, 8.0f, src,
                    host_device(), arng);
  ASSERT_EQ(layer.trainable_parameters().size(), 2u);

  util::Rng rng(16);
  Tensor x = Tensor::empty({8, 16}, host_device());
  rng.fill_normal(x.data(), 8 * 16, 1.0f);
  Tensor target = Tensor::empty({8, 16}, host_device());
  rng.fill_normal(target.data(), 8 * 16, 0.5f);

  auto opt = optim::make_optimizer(optim::OptimizerKind::Adam,
                                   layer.trainable_parameters(), 0.05f);
  const auto loss_fn = [&] {
    Tensor diff = tensor::sub(layer.forward(x), target);
    return tensor::mean(tensor::mul(diff, diff));
  };
  const float initial = loss_fn().item();
  for (int i = 0; i < 150; ++i) {
    Tensor loss = loss_fn();
    tensor::backward(loss);
    opt->step();
    opt->zero_grad();
  }
  EXPECT_LT(loss_fn().item(), initial * 0.5f);
}

TEST(QLora, StartsAtQuantizedBaseFunction) {
  nn::FreshInit src(17), src2(17);
  util::Rng arng(18);
  QLoraLinear qlora("l", 12, 12, false, Scheme::Int8Rowwise, 4, 8.0f, src,
                    host_device(), arng);
  QuantizedLinear plain("l", 12, 12, false, Scheme::Int8Rowwise, src2,
                        host_device());
  util::Rng rng(19);
  Tensor x = Tensor::empty({3, 12}, host_device());
  rng.fill_normal(x.data(), 36, 1.0f);
  EXPECT_EQ(qlora.forward(x).to_vector(), plain.forward(x).to_vector());
}

}  // namespace
}  // namespace menos::quant
