// Elementary layers: Linear, Embedding, LayerNorm, RMSNorm.
#pragma once

#include <string>

#include "nn/module.h"
#include "tensor/ops.h"

namespace menos::nn {

/// y = x @ W (+ b). Weight is stored [in, out] so the forward pass is a
/// plain right-multiplication on [*, in] activations.
class Linear : public Module {
 public:
  /// `name` is the parameter prefix ("block3.attn.q"). Base parameters come
  /// from `source` and are frozen; set `trainable_bias` (BitFit) to clone
  /// the bias into a fresh trainable per-client tensor instead.
  Linear(const std::string& name, tensor::Index in, tensor::Index out,
         bool bias, ParameterSource& source, gpusim::Device& device,
         bool trainable_bias = false);

  virtual tensor::Tensor forward(const tensor::Tensor& x);

  tensor::Index in_features() const noexcept { return in_; }
  tensor::Index out_features() const noexcept { return out_; }
  const tensor::Tensor& weight() const noexcept { return weight_; }
  bool has_bias() const noexcept { return bias_.defined(); }

 protected:
  tensor::Index in_;
  tensor::Index out_;
  tensor::Tensor weight_;  // [in, out], frozen
  tensor::Tensor bias_;    // [out] or undefined
};

/// Token or position embedding table.
class Embedding : public Module {
 public:
  Embedding(const std::string& name, tensor::Index vocab, tensor::Index dim,
            ParameterSource& source, gpusim::Device& device);

  /// ids.size() must equal batch*seq; returns [batch, seq, dim].
  tensor::Tensor forward(const std::vector<std::int32_t>& ids,
                         tensor::Index batch, tensor::Index seq);

  const tensor::Tensor& weight() const noexcept { return weight_; }
  tensor::Index vocab() const noexcept { return vocab_; }
  tensor::Index dim() const noexcept { return dim_; }

 private:
  tensor::Index vocab_;
  tensor::Index dim_;
  tensor::Tensor weight_;  // [vocab, dim]
};

class LayerNormLayer : public Module {
 public:
  LayerNormLayer(const std::string& name, tensor::Index dim,
                 ParameterSource& source, gpusim::Device& device,
                 float eps = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& x);

 private:
  tensor::Tensor gamma_;
  tensor::Tensor beta_;
  float eps_;
};

class RMSNormLayer : public Module {
 public:
  RMSNormLayer(const std::string& name, tensor::Index dim,
               ParameterSource& source, gpusim::Device& device,
               float eps = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& x);

 private:
  tensor::Tensor gamma_;
  float eps_;
};

}  // namespace menos::nn
