// Table 2: average computation time (s) per fine-tuning iteration.
// Vanilla stays flat; Menos grows with clients (re-forward + release
// overhead / fragmentation).
#include "bench_common.h"

using namespace menos;

namespace {

void row(const char* label, const sim::ModelSpec& spec,
         core::ServingMode mode, int max_clients) {
  std::printf("%-8s  %-8s", spec.name.c_str(), label);
  for (int n = 1; n <= 6; ++n) {
    if (n > max_clients) {
      std::printf("  %-7s", "N/A");
      continue;
    }
    auto r = sim::run_split_finetune(bench::make_config(spec, mode, n));
    std::printf("  %-7s", bench::cell(r, r.avg_compute_s).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2 — average computation time (s) per iteration",
      "OPT vanilla 0.41-0.54 flat, Menos 0.71 -> 1.68; Llama vanilla "
      "0.46-0.55 flat, Menos 1.15 -> 2.16");
  std::printf("%-8s  %-8s  %-7s  %-7s  %-7s  %-7s  %-7s  %-7s\n", "model",
              "method", "1", "2", "3", "4", "5", "6");
  row("vanilla", sim::ModelSpec::opt_1_3b(),
      core::ServingMode::VanillaTaskSwap, 6);
  row("menos", sim::ModelSpec::opt_1_3b(), core::ServingMode::MenosOnDemand,
      6);
  row("vanilla", sim::ModelSpec::llama2_7b(),
      core::ServingMode::VanillaTaskSwap, 4);
  row("menos", sim::ModelSpec::llama2_7b(), core::ServingMode::MenosOnDemand,
      4);
  return 0;
}
