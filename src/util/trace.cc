#include "util/trace.h"

#include <sstream>

#include "util/check.h"

namespace menos::util {

const char* trace_category_name(TraceCategory category) noexcept {
  switch (category) {
    case TraceCategory::Session:   return "session";
    case TraceCategory::Scheduler: return "sched";
    case TraceCategory::Memory:    return "memory";
    case TraceCategory::Network:   return "net";
  }
  return "?";
}

EventTrace::EventTrace(std::size_t capacity)
    : capacity_(capacity), start_(std::chrono::steady_clock::now()) {
  MENOS_CHECK_MSG(capacity > 0, "trace capacity must be positive");
  ring_.reserve(capacity);
}

void EventTrace::record(TraceCategory category, std::string name,
                        int client_id, std::uint64_t value) {
  TraceEvent event;
  event.t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
  event.category = category;
  event.name = std::move(name);
  event.client_id = client_id;
  event.value = value;

  MutexLock lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<TraceEvent> EventTrace::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t EventTrace::dropped() const {
  MutexLock lock(mutex_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::uint64_t EventTrace::recorded() const {
  MutexLock lock(mutex_);
  return total_;
}

void EventTrace::clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

namespace {

/// JSON string escaping for event names (categories are fixed literals).
/// Without this a name containing `"`, `\` or a control character produced
/// a line no JSON parser accepts.
void append_json_escaped(std::ostringstream& os, const std::string& s) {
  static const char* hex = "0123456789abcdef";
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':  os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << raw;
        }
    }
  }
}

}  // namespace

std::string EventTrace::to_jsonl() const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream os;
  for (const TraceEvent& e : events) {
    os << "{\"t\":" << e.t << ",\"cat\":\""
       << trace_category_name(e.category) << "\",\"name\":\"";
    append_json_escaped(os, e.name);
    os << "\",\"client\":" << e.client_id << ",\"value\":" << e.value
       << "}\n";
  }
  return os.str();
}

}  // namespace menos::util
