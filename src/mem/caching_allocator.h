// Caching (pooling) allocator for simulated devices — the c10
// CUDACachingAllocator pattern scaled to this repo's byte-exact world.
//
// Real training stacks never return freed tensors to cudaFree: they pool
// them, because allocation cost and fragmentation — not raw capacity — are
// what kill steady-state throughput. CachingAllocator reproduces that
// layer as a gpusim::Device decorator:
//
//   * requests are rounded into buckets (multiples of 512 B below 1 MiB,
//     of 64 KiB above) so freed blocks are reusable across nearby sizes,
//   * small buckets are carved out of 2 MiB segments obtained from the
//     inner device; large buckets get a dedicated segment of exactly the
//     rounded size,
//   * freed blocks enter a size-ordered free list (best fit), are split
//     when oversized and coalesced with free address-neighbors on release,
//   * empty_cache() returns fully-idle segments to the inner device, and
//     an inner OutOfMemory triggers an automatic empty_cache() + retry so
//     pooling never changes what fits.
//
// Accounting is deliberately *byte-identical* to an unpooled MeteredDevice:
// stats().allocated / peak report the client's requested bytes, not the
// rounded or segment bytes, so every number the paper's figures measure is
// unchanged by pooling (acceptance criterion of ISSUE 3). The pooling cost
// shows up only in the new fields: stats().cached (segment bytes serving
// no live allocation) and stats().largest_free_block / fragmentation().
//
// Composition order (device.cc factory): audit(cache(meter)). The auditor
// stays outermost so it sees client pointers; the meter stays innermost so
// capacity enforcement is on real segment bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::mem {

/// Pool-level counters, beyond what MemoryStats carries.
struct CacheStats {
  std::uint64_t hits = 0;        ///< allocations served from the pool
  std::uint64_t misses = 0;      ///< allocations that grew a new segment
  std::uint64_t splits = 0;      ///< oversized free blocks split
  std::uint64_t coalesces = 0;   ///< adjacent free blocks merged
  std::uint64_t segments_allocated = 0;
  std::uint64_t segments_released = 0;
  std::size_t segment_bytes = 0;   ///< bytes currently held from the inner
  std::size_t active_bytes = 0;    ///< requested bytes of live allocations
  std::size_t active_rounded = 0;  ///< bucket-rounded bytes of live allocs
  std::size_t cached_bytes = 0;    ///< segment_bytes - active_rounded

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class CachingAllocator final : public gpusim::Device {
 public:
  /// Rounding buckets (see file comment). Exposed for tests/benches.
  static constexpr std::size_t kSmallAlign = 512;
  static constexpr std::size_t kLargeAlign = 64u << 10;
  static constexpr std::size_t kSmallLimit = 1u << 20;  ///< < 1 MiB = small
  static constexpr std::size_t kSmallSegment = 2u << 20;
  /// A free block is split when the remainder is at least this large.
  static constexpr std::size_t kMinSplit = 512;

  explicit CachingAllocator(std::unique_ptr<gpusim::Device> inner);
  ~CachingAllocator() override;

  gpusim::DeviceKind kind() const noexcept override { return inner_->kind(); }
  const std::string& name() const noexcept override { return inner_->name(); }

  void* allocate(std::size_t bytes) override;
  void deallocate(void* ptr, std::size_t bytes) noexcept override;
  gpusim::MemoryStats stats() const override;
  void reset_peak() override;
  void empty_cache() override;

  CacheStats cache_stats() const;

  /// Pre-populate the pool from an allocation plan: allocate every size in
  /// `sizes` (growing segments as needed), then free them all, leaving the
  /// blocks cached. A subsequent pass through the same sizes is then all
  /// pool hits — used by tensor::graph::StepGraph::warm_allocator with a
  /// captured step's activation plan. Best-effort: stops growing at the
  /// first inner OutOfMemory (the pool simply stays partially warmed).
  void warm(const std::vector<std::size_t>& sizes);

  /// Bucket-rounded size for a request (exposed for tests).
  static std::size_t round_size(std::size_t bytes) noexcept;

  Device& inner() noexcept { return *inner_; }
  const Device* unwrap() const noexcept override { return inner_.get(); }

 private:
  struct Segment;

  /// One contiguous run inside a segment. Blocks form an address-ordered
  /// doubly-linked list per segment for O(1) neighbor coalescing.
  struct Block {
    Segment* segment = nullptr;
    void* ptr = nullptr;
    std::size_t size = 0;  ///< rounded bytes
    bool free = false;
    Block* prev = nullptr;
    Block* next = nullptr;
  };

  struct Segment {
    void* base = nullptr;
    std::size_t size = 0;
    Block* first = nullptr;  ///< lowest-address block
  };

  using FreeKey = std::pair<std::size_t, Block*>;  // (size, addr) best-fit

  Block* find_or_grow_locked(std::size_t rounded) MENOS_REQUIRES(mutex_);
  Segment* grow_locked(std::size_t segment_size) MENOS_REQUIRES(mutex_);
  void split_locked(Block* block, std::size_t rounded) MENOS_REQUIRES(mutex_);
  Block* coalesce_locked(Block* block) MENOS_REQUIRES(mutex_);
  void release_idle_segments_locked() MENOS_REQUIRES(mutex_);
  std::size_t largest_free_locked() const MENOS_REQUIRES(mutex_);

  std::unique_ptr<gpusim::Device> inner_;

  // Lock class assigned in the constructor via decorator_lock_name():
  // pooling over an already-decorated device gets a depth-suffixed class.
  mutable util::Mutex mutex_;  // NOLINT(mutex-name)
  std::set<FreeKey> free_blocks_ MENOS_GUARDED_BY(mutex_);
  // Owning storage: segment base -> Segment; block ptr -> Block.
  std::map<void*, std::unique_ptr<Segment>> segments_ MENOS_GUARDED_BY(mutex_);
  std::unordered_map<void*, std::unique_ptr<Block>> blocks_
      MENOS_GUARDED_BY(mutex_);
  /// Live client allocations: ptr -> requested (unrounded) size. A size of
  /// 0 marks a zero-byte sentinel passed straight through to the inner
  /// device (no block exists for it).
  std::unordered_map<void*, std::size_t> active_ MENOS_GUARDED_BY(mutex_);

  CacheStats cache_ MENOS_GUARDED_BY(mutex_);
  std::size_t peak_requested_ MENOS_GUARDED_BY(mutex_) = 0;
  std::uint64_t lifetime_allocs_ MENOS_GUARDED_BY(mutex_) = 0;
  std::uint64_t lifetime_frees_ MENOS_GUARDED_BY(mutex_) = 0;
  std::size_t lifetime_bytes_ MENOS_GUARDED_BY(mutex_) = 0;
};

/// Wrap `inner` (typically a metered SimGpu) in the pooling layer.
std::unique_ptr<gpusim::Device> make_caching_device(
    std::unique_ptr<gpusim::Device> inner);

}  // namespace menos::mem
