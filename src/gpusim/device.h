// Simulated compute devices with byte-exact memory accounting.
//
// Menos' claims are about GPU *memory*: how many bytes each component of a
// split fine-tuning task holds and when. We therefore substitute real CUDA
// devices with SimGpu: allocations are backed by ordinary host heap memory
// (so the tensor engine computes real numbers) but are metered against a
// configurable capacity, throw menos::OutOfMemory when exhausted, and track
// high-water marks. This makes the allocate/release/schedule logic of the
// paper observable and testable without hardware (see DESIGN.md §1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace menos::gpusim {

enum class DeviceKind { Host, SimGpu };

struct MemoryStats {
  std::size_t capacity = 0;        ///< 0 means unlimited (host).
  std::size_t allocated = 0;       ///< live bytes right now
  std::size_t peak = 0;            ///< high-water since last reset_peak()
  std::size_t lifetime_allocs = 0; ///< number of allocate() calls ever
  std::size_t lifetime_frees = 0;  ///< number of deallocate() calls ever
  std::size_t lifetime_bytes = 0;  ///< sum of all bytes ever allocated
  /// Bytes held by a pooling layer (mem::CachingAllocator) that serve no
  /// live allocation but are instantly reusable; 0 on un-pooled devices.
  std::size_t cached = 0;
  /// Largest single request the device can satisfy right now. Equals
  /// capacity - allocated on un-pooled devices (no fragmentation model);
  /// 0 on unlimited devices, where the notion is meaningless.
  std::size_t largest_free_block = 0;

  /// External fragmentation in [0, 1): the share of free capacity NOT
  /// reachable by one maximal allocation. 0 for unlimited or full devices.
  double fragmentation() const noexcept {
    if (capacity == 0 || allocated >= capacity) return 0.0;
    const std::size_t free_total = capacity - allocated;
    if (largest_free_block >= free_total) return 0.0;
    return 1.0 - static_cast<double>(largest_free_block) /
                     static_cast<double>(free_total);
  }
};

/// Abstract device. Thread-safe: serving sessions allocate concurrently.
class Device {
 public:
  virtual ~Device() = default;

  virtual DeviceKind kind() const noexcept = 0;
  virtual const std::string& name() const noexcept = 0;

  /// Allocate `bytes` of device memory. Throws menos::OutOfMemory if the
  /// device capacity would be exceeded. A zero-byte request returns a
  /// non-null unique sentinel so callers need no special case.
  virtual void* allocate(std::size_t bytes) = 0;

  /// Return memory obtained from allocate(). `bytes` must match the
  /// original request (the tensor Storage layer guarantees this). The
  /// contract is enforced: Debug builds MENOS_DCHECK the size against the
  /// original request, and audited builds (gpusim/audit.h, on by default
  /// in Debug) additionally catch double frees and foreign pointers.
  virtual void deallocate(void* ptr, std::size_t bytes) noexcept = 0;

  virtual MemoryStats stats() const = 0;

  /// Reset the high-water mark to the current allocation level. Used by the
  /// profiler to measure the footprint of a single forward/backward pass.
  virtual void reset_peak() = 0;

  /// Release memory a pooling layer holds without a live allocation back to
  /// the underlying device. No-op on devices without a cache.
  virtual void empty_cache() {}

  /// Live bytes right now (shorthand for stats().allocated).
  std::size_t allocated() const { return stats().allocated; }

  /// Pooled-but-idle bytes (shorthand for stats().cached).
  std::size_t cached() const { return stats().cached; }

  /// Remaining capacity; SIZE_MAX for unlimited devices.
  std::size_t available() const;

  /// The device this one decorates, or nullptr for a terminal device.
  /// Lets chain walkers (StepGraph::warm_allocator, the decorator
  /// lock-class helpers below) see through audit/pooling layers.
  virtual const Device* unwrap() const noexcept { return nullptr; }
};

/// Lock-class naming for decorator devices (AuditDevice, the pooling
/// CachingAllocator). The same decorator type can legitimately sit at two
/// depths of one chain — the factory composes audit(cache(meter)) while
/// tests pool over an already-audited device — and acquisition always
/// follows the object graph outer -> inner, so each layer needs its own
/// lock class or the class-level lock-order graph sees a spurious cycle.
/// The class name gains a ".N" suffix per decorator layer below it, and
/// only the innermost layer (depth 0, adjacent to the meter) carries the
/// subsystem rank from docs/ANALYSIS.md.
std::string decorator_lock_name(const char* base, const Device* inner);
int decorator_lock_rank(int base_rank, const Device* inner) noexcept;

/// The host: unlimited capacity, but still metered (swap experiments report
/// host-side footprints too).
std::unique_ptr<Device> make_host_device(std::string name = "host");

/// A capacity-limited simulated GPU. Set MENOS_CACHING_ALLOC=1 in the
/// environment (or configure with -DMENOS_CACHING_ALLOC=ON for that
/// default) to interpose the mem::CachingAllocator pooling layer between
/// clients and the metered capacity; the audit decorator, when enabled,
/// stays outermost so it keeps seeing client pointers.
std::unique_ptr<Device> make_sim_gpu(std::string name, std::size_t capacity_bytes);

/// Cost model for host<->device transfers, used when simulating task swap
/// (vanilla baseline) and when charging virtual time in src/sim.
struct TransferModel {
  double bandwidth_bytes_per_s = 1.4e9;  ///< effective PCIe (DESIGN.md §7)
  double latency_s = 50e-6;              ///< per-transfer fixed cost

  double seconds_for(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

/// Owns the host device plus N simulated GPUs and provides placement
/// helpers. The "GPU memory" box of Fig 2 is an abstraction over all GPUs;
/// DeviceManager is that abstraction.
class DeviceManager {
 public:
  /// Create `gpu_count` GPUs, each with `gpu_capacity_bytes`.
  DeviceManager(int gpu_count, std::size_t gpu_capacity_bytes);

  Device& host() noexcept { return *host_; }
  const Device& host() const noexcept { return *host_; }

  int gpu_count() const noexcept { return static_cast<int>(gpus_.size()); }
  Device& gpu(int index);
  const Device& gpu(int index) const;

  /// The GPU with the most free memory right now (ties -> lowest index).
  Device& least_loaded_gpu();

  /// Total free bytes across all GPUs.
  std::size_t total_gpu_available() const;

  /// Total capacity across all GPUs.
  std::size_t total_gpu_capacity() const;

  const TransferModel& transfer_model() const noexcept { return transfer_; }
  void set_transfer_model(const TransferModel& m) noexcept { transfer_ = m; }

 private:
  std::unique_ptr<Device> host_;
  std::vector<std::unique_ptr<Device>> gpus_;
  TransferModel transfer_;
};

}  // namespace menos::gpusim
