file(REMOVE_RECURSE
  "CMakeFiles/table3_schedule_time.dir/table3_schedule_time.cc.o"
  "CMakeFiles/table3_schedule_time.dir/table3_schedule_time.cc.o.d"
  "table3_schedule_time"
  "table3_schedule_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_schedule_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
