#!/usr/bin/env python3
"""menos_lint — repo-specific invariants the compiler cannot see.

Rules (see docs/ANALYSIS.md for rationale and examples):

  raw-alloc              No malloc/calloc/realloc/free, raw `new T[...]`, or
                         `::operator new` in src/ outside src/gpusim/ — all
                         tensor-sized storage must flow through the Device
                         layer so the byte accounting the paper's claims
                         rest on stays exact.
  iostream-side-channel  No std::cout/std::cerr/std::clog or printf-family
                         calls in src/ outside src/util/logging.* — output
                         goes through MENOS_LOG so it is leveled, atomic,
                         and silenceable in tests.
  raw-mutex              No std::mutex / std::condition_variable /
                         std::lock_guard / std::unique_lock in src/ outside
                         src/util/mutex.h — Clang's thread-safety analysis
                         only sees the annotated util::Mutex wrappers.
  mutex-annotation       Every util::Mutex member must be referenced by at
                         least one MENOS_GUARDED_BY / MENOS_PT_GUARDED_BY /
                         MENOS_REQUIRES in the same file, i.e. the mutex
                         demonstrably guards something. A mutex that
                         legitimately guards no member (it serializes an
                         action) carries a NOLINT with a comment saying so.
  pragma-once            Every header in src/, tests/, bench/ uses
                         `#pragma once`.
  nondeterminism         No std::rand/srand/std::random_device in src/
                         outside src/util/rng.* — every experiment must be
                         reproducible from a single util::Rng seed.
  raw-thread             No std::thread / std::jthread / std::async in src/
                         outside src/util/ — concurrency is owned by the
                         shared serving core (util::TaskPool + Strand, the
                         net::Poller service thread). Per-session threads
                         are exactly what the event-driven refactor removed;
                         the few legitimate infrastructure threads carry a
                         NOLINT with a justification.
  raw-close              No ::close()/::shutdown() in src/ outside src/net/
                         — file descriptors are transport-layer property.
                         The TCP transport defers the real close until
                         blocked receives drain (the fd-reuse race of
                         docs/FAULTS.md); a stray ::close() elsewhere
                         reintroduces exactly that bug.
  check-side-effect      No side effects (++, --, assignment, .pop()/.take())
                         inside MENOS_CHECK/MENOS_DCHECK arguments. DCHECK
                         compiles out in Release builds, so a side effect in
                         its argument makes Debug and Release behave
                         differently — the worst possible heisenbug.
  mutex-name             Every util::Mutex member in src/ carries a lock
                         class name (and usually a rank) for the deadlock
                         detector: `Mutex m_{"area.role", N};`. A mutex
                         named dynamically in its constructor (the device
                         decorators) carries a NOLINT saying so.

Suppression: append `// NOLINT(<rule>)` to the offending line, or put
`// NOLINTNEXTLINE(<rule>)` on the line above it. A bare NOLINT (no rule
list) suppresses every rule on that line. Suppressions should say *why* —
the linter does not check that, reviewers do.

Usage:
  tools/menos_lint.py [--root REPO_ROOT]   lint the tree (exit 1 on findings)
  tools/menos_lint.py --self-test          prove each rule fires on a seeded
                                           violation (exit 1 on regression)
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from pathlib import Path

# ---------------------------------------------------------------------------
# Helpers


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure.

    Lint rules match *code*; prose is allowed to mention std::mutex. String
    literals are not parsed — a rule pattern inside a string would be a
    false positive we accept for a 300-line linter.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif ch == '"':
            # Skip string literals so quoted examples don't trip rules.
            out.append(ch)
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            if i < n:
                out.append('"')
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE)?(?:\(([^)]*)\))?")


def suppressed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    """True if `rule` is NOLINT-suppressed for 1-based line `lineno`."""
    candidates = []
    if lineno - 1 < len(raw_lines):
        candidates.append((raw_lines[lineno - 1], False))
    if lineno - 2 >= 0:
        candidates.append((raw_lines[lineno - 2], True))
    for line, needs_nextline in candidates:
        for m in NOLINT_RE.finditer(line):
            is_nextline = "NOLINTNEXTLINE" in m.group(0)
            if needs_nextline != is_nextline:
                continue
            rules = m.group(1)
            if rules is None or rule in [r.strip() for r in rules.split(",")]:
                return True
    return False


class Finding:
    def __init__(self, path: Path, lineno: int, rule: str, message: str):
        self.path, self.lineno, self.rule, self.message = path, lineno, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"

    def github_annotation(self) -> str:
        """A GitHub Actions `::error` workflow command for this finding, so
        CI failures surface inline on the PR diff. The message data must
        escape %, CR and LF per the workflow-command encoding."""
        msg = f"[{self.rule}] {self.message}"
        msg = msg.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        return f"::error file={self.path},line={self.lineno}::{msg}"


# ---------------------------------------------------------------------------
# Rules. Each rule is a function (path, raw_text) -> list[Finding].

RAW_ALLOC_RE = re.compile(
    r"\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\("
    r"|\bnew\s+[A-Za-z_][\w:<>,* ]*\["
    r"|::operator new\b"
)
IOSTREAM_RE = re.compile(
    r"std::cout\b|std::cerr\b|std::clog\b"
    r"|\b(?:printf|fprintf|puts|fputs|putchar)\s*\("
)
RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|recursive_mutex|shared_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
NONDET_RE = re.compile(r"std::rand\b|\bsrand\s*\(|std::random_device\b")
RAW_THREAD_RE = re.compile(r"std::j?thread\b(?!::)|std::async\s*\(")
RAW_CLOSE_RE = re.compile(r"::close\s*\(|::shutdown\s*\(")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:(?:menos::)?util::)?Mutex\s+(\w+)\s*"
    r"(\{[^}]*\})?\s*;"
)
CHECK_MACRO_RE = re.compile(r"\bMENOS_D?CHECK(?:_MSG)?\s*\(")
# ++/--, assignment or compound assignment (== <= >= != are comparisons),
# and consuming calls: .pop()/.pop_front()/.take()/... via . or ->.
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>])=(?!=)|(?:\.|->)\s*(?:pop\w*|take\w*)\s*\("
)
KERNEL_SCRATCH_RE = re.compile(
    r"std::vector\s*<\s*float\s*>|std::aligned_alloc\s*\("
    r"|std::make_unique\s*<\s*float\s*\[\]|alloca\s*\("
)


def check_pattern_rule(path, raw, rule, regex, exempt, message):
    if exempt(path):
        return []
    raw_lines = raw.splitlines()
    findings = []
    for lineno, line in enumerate(strip_comments(raw).splitlines(), start=1):
        if regex.search(line) and not suppressed(raw_lines, lineno, rule):
            findings.append(Finding(path, lineno, rule, message))
    return findings


def check_raw_alloc(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-alloc", RAW_ALLOC_RE,
        exempt=lambda p: "gpusim" in p.parts or "src" not in p.parts,
        message="raw heap allocation — storage must go through the gpusim "
                "Device layer so byte accounting stays exact")


def check_iostream(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "iostream-side-channel", IOSTREAM_RE,
        exempt=lambda p: "src" not in p.parts or
        (p.parts[-2:] == ("util", "logging.h")) or
        (p.parts[-2:] == ("util", "logging.cc")),
        message="direct console output — use MENOS_LOG (util/logging.h) so "
                "output is leveled, atomic and silenceable")


def check_raw_mutex(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-mutex", RAW_MUTEX_RE,
        exempt=lambda p: "src" not in p.parts or
        p.parts[-2:] == ("util", "mutex.h"),
        message="raw standard-library locking — use util::Mutex/MutexLock/"
                "CondVar so Clang thread-safety analysis sees the lock")


def check_nondeterminism(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "nondeterminism", NONDET_RE,
        exempt=lambda p: "src" not in p.parts or
        (len(p.parts) >= 2 and p.parts[-2] == "util"
         and p.parts[-1].startswith("rng")),
        message="unseeded randomness — all randomness flows through "
                "util::Rng so experiments reproduce from one seed")


def check_raw_thread(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-thread", RAW_THREAD_RE,
        exempt=lambda p: "src" not in p.parts or "util" in p.parts,
        message="raw thread spawn — sessions are event handlers on the "
                "shared executor (util::TaskPool/Strand); infrastructure "
                "threads live in src/util or carry a justified NOLINT")


def check_raw_close(path: Path, raw: str) -> list:
    return check_pattern_rule(
        path, raw, "raw-close", RAW_CLOSE_RE,
        exempt=lambda p: "src" not in p.parts or "net" in p.parts,
        message="raw ::close()/::shutdown() — file descriptors belong to "
                "src/net, whose deferred-close protocol prevents the "
                "fd-reuse race (docs/FAULTS.md)")


def check_mutex_annotation(path: Path, raw: str) -> list:
    if "src" not in path.parts or path.parts[-2:] == ("util", "mutex.h"):
        return []
    # The memory subsystem is all lock-ordering subtlety (allocator inside
    # engine inside scheduler callbacks), so src/mem is held to the strict
    # form of the rule: every mutex must be annotated; NOLINT is no escape.
    strict = len(path.parts) >= 2 and path.parts[0] == "src" and \
        path.parts[1] == "mem"
    raw_lines = raw.splitlines()
    stripped = strip_comments(raw)
    findings = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        m = MUTEX_MEMBER_RE.match(line)
        if not m:
            continue
        name = m.group(1)
        if not strict and suppressed(raw_lines, lineno, "mutex-annotation"):
            continue
        uses = re.compile(
            r"MENOS_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES)\(\s*\*?"
            + re.escape(name))
        if not uses.search(stripped):
            if strict:
                message = (
                    f"mutex '{name}' has no MENOS_GUARDED_BY/MENOS_REQUIRES "
                    f"reference in this file — src/mem mutexes must be "
                    f"annotated (NOLINT does not exempt here)")
            else:
                message = (
                    f"mutex '{name}' has no MENOS_GUARDED_BY/MENOS_REQUIRES "
                    f"reference in this file — annotate what it guards, or "
                    f"NOLINT with a comment saying what it serializes")
            findings.append(Finding(path, lineno, "mutex-annotation", message))
    return findings


def check_kernel_scratch(path: Path, raw: str) -> list:
    # The matmul kernels pack panels on every call; ad-hoc heap scratch
    # there is unaligned (vector loads degrade) and reallocates per call.
    # util/aligned.h::scratch_floats is the sanctioned per-thread buffer.
    return check_pattern_rule(
        path, raw, "kernel-scratch", KERNEL_SCRATCH_RE,
        exempt=lambda p: p.parts[-2:] not in (("tensor", "kernels.cc"),
                                              ("tensor", "kernels.h")),
        message="ad-hoc scratch in the matmul kernels — pack panels into "
                "util::scratch_floats (util/aligned.h) so scratch is "
                "vector-aligned and reused across calls")


def blank_strings(text: str) -> str:
    """Replace the contents of string/char literals with spaces.

    strip_comments keeps literals so quoted examples don't trip line rules;
    the side-effect scan must not match `--flag` or `pop()` inside one.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in "\"'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append(" ")
                    i += 1
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def extract_balanced(text: str, open_idx: int):
    """The argument text between the paren at `open_idx` and its match.

    Skips parens inside string/char literals. Returns None when the file
    ends before the parens balance (macro split by preprocessor games).
    """
    depth = 0
    i, n = open_idx, len(text)
    while i < n:
        ch = text[i]
        if ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:i]
        i += 1
    return None


def check_check_side_effect(path: Path, raw: str) -> list:
    # The macro definitions themselves (do-while plumbing) are exempt; every
    # *use* in src/, tests/ and bench/ is held to the rule.
    if path.parts[-2:] == ("util", "check.h"):
        return []
    raw_lines = raw.splitlines()
    stripped = strip_comments(raw)
    findings = []
    for m in CHECK_MACRO_RE.finditer(stripped):
        macro = m.group(0).rstrip("( \t\n")
        arg = extract_balanced(stripped, m.end() - 1)
        if arg is None:
            continue
        lineno = stripped.count("\n", 0, m.start()) + 1
        if suppressed(raw_lines, lineno, "check-side-effect"):
            continue
        if SIDE_EFFECT_RE.search(blank_strings(arg)):
            findings.append(Finding(
                path, lineno, "check-side-effect",
                f"side effect in {macro}(...) argument — DCHECKs compile "
                f"out in Release, so the effect silently disappears; hoist "
                f"it onto its own statement"))
    return findings


def check_mutex_name(path: Path, raw: str) -> list:
    if "src" not in path.parts or path.parts[-2:] == ("util", "mutex.h"):
        return []
    raw_lines = raw.splitlines()
    findings = []
    for lineno, line in enumerate(strip_comments(raw).splitlines(), start=1):
        m = MUTEX_MEMBER_RE.match(line)
        if not m:
            continue
        init = m.group(2)
        if init is not None and '"' in init:
            continue  # named (and possibly ranked) — what the rule wants
        if suppressed(raw_lines, lineno, "mutex-name"):
            continue
        findings.append(Finding(
            path, lineno, "mutex-name",
            f"mutex '{m.group(1)}' has no lock-class name — the deadlock "
            f"detector needs `Mutex m_{{\"area.role\", rank}};` "
            f"(docs/ANALYSIS.md); constructor-named mutexes carry a "
            f"NOLINT with the reason"))
    return findings


def check_pragma_once(path: Path, raw: str) -> list:
    if path.suffix != ".h":
        return []
    if "#pragma once" in raw:
        return []
    if suppressed(raw.splitlines(), 1, "pragma-once"):
        return []
    return [Finding(path, 1, "pragma-once",
                    "header missing '#pragma once'")]


ALL_RULES = [
    check_raw_alloc,
    check_iostream,
    check_raw_mutex,
    check_nondeterminism,
    check_raw_thread,
    check_raw_close,
    check_mutex_annotation,
    check_kernel_scratch,
    check_check_side_effect,
    check_mutex_name,
    check_pragma_once,
]

LINT_DIRS = ("src", "tests", "bench")
EXTENSIONS = (".h", ".cc", ".cpp")


def lint_tree(root: Path) -> list:
    findings = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS or not path.is_file():
                continue
            raw = path.read_text(encoding="utf-8", errors="replace")
            rel = path.relative_to(root)
            for rule in ALL_RULES:
                findings.extend(rule(rel, raw))
    return findings


# ---------------------------------------------------------------------------
# Self-test: each rule must fire on a seeded violation and stay quiet on the
# suppressed/clean twin. This is what keeps the linter honest as it grows.

SELF_TEST_CASES = [
    # (relative path, contents, expected rule or None)
    ("src/tensor/bad_alloc.cc", "void* p = malloc(128);\n", "raw-alloc"),
    ("src/tensor/bad_new.cc", "float* p = new float[64];\n", "raw-alloc"),
    ("src/gpusim/ok_alloc.cc", "void* p = malloc(128);\n", None),
    ("src/core/bad_print.cc",
     '#include <iostream>\nvoid f() { std::cout << "x"; }\n',
     "iostream-side-channel"),
    ("src/core/ok_log.cc", 'void f() { MENOS_LOG(Info) << "x"; }\n', None),
    ("src/net/bad_mutex.cc", "#include <mutex>\nstd::mutex m;\n", "raw-mutex"),
    ("src/net/ok_mutex.cc",
     'struct S { util::Mutex mu_{"net.s"}; int x MENOS_GUARDED_BY(mu_); };\n',
     None),
    ("src/sched/bad_unannotated.h",
     "#pragma once\nclass C {\n  mutable util::Mutex mutex_;\n  int x_;\n};\n",
     "mutex-annotation"),
    ("src/sched/ok_suppressed.h",
     "#pragma once\nclass C {\n  // serializes connect(), guards nothing\n"
     '  util::Mutex mutex_{"sched.c"};  // NOLINT(mutex-annotation)\n};\n',
     None),
    # src/mem is strict: the same NOLINT that exempts src/sched still fires.
    ("src/mem/bad_nolint.h",
     "#pragma once\nclass C {\n  // serializes something, honest!\n"
     "  util::Mutex mutex_;  // NOLINT(mutex-annotation)\n};\n",
     "mutex-annotation"),
    ("src/mem/ok_annotated.h",
     '#pragma once\nclass C {\n  mutable util::Mutex mutex_{"mem.c", 52};\n'
     "  int x_ MENOS_GUARDED_BY(mutex_);\n};\n", None),
    ("src/util/bad_header.h", "struct X {};\n", "pragma-once"),
    ("src/core/bad_thread.cc",
     "#include <thread>\nstd::thread t([] {});\n", "raw-thread"),
    ("src/sched/bad_jthread.cc",
     "#include <thread>\nstd::jthread t([] {});\n", "raw-thread"),
    ("src/core/bad_async.cc",
     "#include <future>\nauto f = std::async([] {});\n", "raw-thread"),
    ("src/util/ok_pool_thread.cc",
     "#include <thread>\nstd::thread t([] {});\n",
     None),  # src/util is the sanctioned home for thread spawns
    ("src/core/ok_hw_concurrency.cc",
     "int n = (int)std::thread::hardware_concurrency();\n",
     None),  # querying parallelism is not spawning a thread
    ("src/core/ok_thread_nolint.cc",
     "std::thread t([] {});  // NOLINT(raw-thread) accept loop, one/server\n",
     None),
    ("tests/ok_test_thread.cc",
     "#include <thread>\nstd::thread t([] {});\n",
     None),  # test drivers may spawn client threads
    ("src/core/bad_rand.cc", "int r = std::rand();\n", "nondeterminism"),
    ("src/core/bad_close.cc",
     "#include <unistd.h>\nvoid f(int fd) { ::close(fd); }\n", "raw-close"),
    ("src/sched/bad_shutdown.cc",
     "void f(int fd) { ::shutdown(fd, 2); }\n", "raw-close"),
    ("src/net/ok_close.cc",
     "#include <unistd.h>\nvoid f(int fd) { ::close(fd); }\n",
     None),  # the transport layer owns fd lifecycle
    ("src/core/ok_close_comment.cc",
     "// transports must ::close() via FdGuard, see src/net/tcp.cc\n",
     None),  # prose may name the banned call
    ("src/core/ok_close_nolint.cc",
     "void f(int fd) { ::close(fd); }  // NOLINT(raw-close) inherited fd\n",
     None),
    ("src/util/rng_extra.cc", "#include <random>\nstd::random_device rd;\n",
     None),  # rng* files are the sanctioned home for entropy
    ("src/core/ok_comment.cc", "// std::mutex is banned here, use util::Mutex\n",
     None),  # prose may name banned constructs
    ("src/core/ok_nextline.cc",
     "// NOLINTNEXTLINE(nondeterminism)\nint r = std::rand();\n", None),
    ("src/tensor/kernels.cc",
     "void pack() { std::vector<float> tmp(64); }\n", "kernel-scratch"),
    ("src/tensor/kernels.h",
     "#pragma once\nvoid pack() { float* t = util::scratch_floats(0, 64); }\n",
     None),  # the sanctioned scratch API
    ("src/tensor/ops_scratch.cc",
     "void f() { std::vector<float> tmp(8); }\n",
     None),  # rule is scoped to the kernel files
    ("src/core/bad_check_incr.cc",
     "void f(int i) { MENOS_DCHECK(i++ < 4); }\n", "check-side-effect"),
    ("src/core/bad_check_assign.cc",
     'void f(int x) { MENOS_CHECK_MSG(x = next(), "got " << x); }\n',
     "check-side-effect"),
    ("src/sched/bad_check_pop.cc",
     "void f(Queue& q) {\n  MENOS_CHECK(\n      q.pending() != 0 &&\n"
     "      q.take().has_value());\n}\n",
     "check-side-effect"),  # multi-line argument, consuming call
    ("src/core/ok_check_compare.cc",
     "void f(int a, int b) { MENOS_DCHECK(a == b && a <= 4 && b >= -1); }\n",
     None),  # comparisons and unary minus are not side effects
    ("src/core/ok_check_string.cc",
     'void f(bool ok) { MENOS_CHECK_MSG(ok, "pass --retry or q.pop()"); }\n',
     None),  # literals may name side effects
    ("src/core/ok_check_nolint.cc",
     "void f(int i) { MENOS_CHECK(i++ < 4); }"
     "  // NOLINT(check-side-effect) counted probe, Release keeps CHECK\n",
     None),
    ("src/core/bad_unnamed_mutex.h",
     "#pragma once\nclass C {\n  util::Mutex mutex_;\n"
     "  int x_ MENOS_GUARDED_BY(mutex_);\n};\n", "mutex-name"),
    ("src/core/ok_ctor_named_mutex.h",
     "#pragma once\nclass C {\n  // lock class named in the constructor "
     "via decorator_lock_name()\n"
     "  util::Mutex mutex_;  // NOLINT(mutex-name)\n"
     "  int x_ MENOS_GUARDED_BY(mutex_);\n};\n", None),
    ("tests/ok_unnamed_mutex.cc",
     "struct S { util::Mutex mu_; int x MENOS_GUARDED_BY(mu_); };\n",
     None),  # mutex-name is a src/ rule; test fixtures may stay anonymous
]


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="menos_lint_selftest_") as tmp:
        root = Path(tmp)
        for rel, contents, _ in SELF_TEST_CASES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents, encoding="utf-8")
        findings = lint_tree(root)
        by_file = {}
        for f in findings:
            by_file.setdefault(str(f.path), set()).add(f.rule)
        for rel, _, expected in SELF_TEST_CASES:
            got = by_file.get(rel, set())
            if expected is None and got:
                failures.append(f"{rel}: expected clean, got {sorted(got)}")
            elif expected is not None and expected not in got:
                failures.append(f"{rel}: expected [{expected}], got {sorted(got)}")
    # The CI annotation path: exact workflow-command format, data escaped.
    annotation = Finding(
        Path("src/a.cc"), 3, "raw-alloc", "50% worse\nsecond line").github_annotation()
    expected_annotation = (
        "::error file=src/a.cc,line=3::[raw-alloc] 50%25 worse%0Asecond line")
    if annotation != expected_annotation:
        failures.append(
            f"github_annotation: expected {expected_annotation!r}, "
            f"got {annotation!r}")
    if failures:
        print("menos_lint self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"menos_lint self-test OK ({len(SELF_TEST_CASES)} cases)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo this "
                             "script lives in)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    annotate = os.environ.get("GITHUB_ACTIONS") == "true"
    for f in findings:
        print(f)
        if annotate:
            print(f.github_annotation())
    if findings:
        print(f"menos_lint: {len(findings)} finding(s)")
        return 1
    print("menos_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
