// Aligned scratch buffers for compute kernels.
//
// The packed-panel matmul kernels (src/tensor/kernels.cc) stage operand
// panels in contiguous, cache-line/vector aligned scratch. That scratch is
// *working memory of the math itself*, not tensor storage: it must never
// flow through the gpusim Device layer, because device byte accounting is
// the quantity the paper's figures measure and kernel-internal staging
// buffers would perturb every number without representing any modeled
// allocation. The menos_lint `kernel-scratch` rule enforces that kernels
// obtain scratch only through this header.
//
// ScratchPool keeps one lazily grown buffer per (thread, slot): packing
// scratch is reused across kernel invocations with zero steady-state
// allocation, the same role mem::CachingAllocator plays for tensor storage.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <utility>

#include "util/check.h"

namespace menos::util {

/// Alignment of every scratch buffer: one 64-byte cache line, which also
/// satisfies the widest vector unit we compile for (AVX-512).
inline constexpr std::size_t kScratchAlign = 64;

/// RAII over-aligned float buffer that grows geometrically and never
/// shrinks. Contents are NOT preserved across ensure() — it is scratch.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { release(); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Pointer valid for at least the float count of the last ensure().
  float* data() noexcept { return data_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Guarantee room for `n` floats; existing contents are discarded.
  void ensure(std::size_t n) {
    if (n <= capacity_) return;
    release();
    std::size_t grown = capacity_ == 0 ? n : capacity_ * 2;
    if (grown < n) grown = n;
    // Round the byte size up to the alignment, as aligned_alloc requires.
    std::size_t bytes = grown * sizeof(float);
    bytes = (bytes + kScratchAlign - 1) / kScratchAlign * kScratchAlign;
    // Kernel scratch deliberately bypasses the Device layer (file comment);
    // it is bounded per thread by the cache-blocking configuration.
    // NOLINTNEXTLINE(raw-alloc)
    data_ = static_cast<float*>(std::aligned_alloc(kScratchAlign, bytes));
    MENOS_CHECK_MSG(data_ != nullptr,
                    "AlignedBuffer: allocation of " << bytes << " bytes failed");
    capacity_ = bytes / sizeof(float);
  }

 private:
  void release() noexcept {
    // NOLINTNEXTLINE(raw-alloc)
    std::free(data_);
    data_ = nullptr;
    capacity_ = 0;
  }

  float* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Per-thread scratch slots for kernels. Distinct concurrent buffers within
/// one kernel use distinct slots; different threads never share a buffer,
/// so no locking is involved. Buffers persist for the thread's lifetime and
/// are reused by every subsequent kernel call on that thread.
inline float* scratch_floats(int slot, std::size_t n) {
  constexpr int kSlots = 4;
  thread_local AlignedBuffer buffers[kSlots];
  MENOS_CHECK_MSG(slot >= 0 && slot < kSlots,
                  "scratch_floats: slot " << slot << " out of range");
  AlignedBuffer& buf = buffers[slot];
  buf.ensure(n);
  return buf.data();
}

}  // namespace menos::util
