// Connection decorator that re-delivers one already-consumed frame.
//
// The fleet router must read a connection's first message (Hello or
// ResumeSession) to decide WHICH shard gets the connection, but the shard's
// session handshake also needs that frame. make_prefixed() puts it back at
// the head of the stream.

#include <utility>

#include "net/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace menos::net {
namespace {

class PrefixedConnection final : public Connection {
 public:
  PrefixedConnection(std::shared_ptr<Connection> inner, Message first)
      : inner_(std::move(inner)), prefix_(std::move(first)) {}

  bool send(const Message& message) override { return inner_->send(message); }

  std::optional<Message> receive() override {
    if (auto msg = take_prefix()) return msg;
    return inner_->receive();
  }

  void set_receive_timeout(double seconds) override {
    inner_->set_receive_timeout(seconds);
  }

  RecvStatus try_receive(Message* out) override {
    if (auto msg = take_prefix()) {
      *out = std::move(*msg);
      return RecvStatus::Frame;
    }
    return inner_->try_receive(out);
  }

  void set_ready_hook(std::function<void()> hook) override {
    inner_->set_ready_hook(std::move(hook));
  }

  int poll_fd() const override { return inner_->poll_fd(); }

  void close() override { inner_->close(); }

  std::uint64_t bytes_sent() const override { return inner_->bytes_sent(); }

 private:
  std::optional<Message> take_prefix() {
    util::MutexLock lock(mutex_);
    if (!has_prefix_) return std::nullopt;
    has_prefix_ = false;
    return std::move(prefix_);
  }

  std::shared_ptr<Connection> inner_;
  // Leaf lock: held only over the local flag/message, never across inner_.
  util::Mutex mutex_{"net.prefixed", 57};
  Message prefix_ MENOS_GUARDED_BY(mutex_);
  bool has_prefix_ MENOS_GUARDED_BY(mutex_) = true;
};

}  // namespace

std::unique_ptr<Connection> make_prefixed(std::shared_ptr<Connection> inner,
                                          Message first) {
  MENOS_CHECK_MSG(inner != nullptr, "make_prefixed needs a live connection");
  return std::make_unique<PrefixedConnection>(std::move(inner),
                                              std::move(first));
}

}  // namespace menos::net
