# Empty dependencies file for multigpu_server.
# This may be replaced when dependencies are built.
