file(REMOVE_RECURSE
  "CMakeFiles/menos_data.dir/dataset.cc.o"
  "CMakeFiles/menos_data.dir/dataset.cc.o.d"
  "libmenos_data.a"
  "libmenos_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
