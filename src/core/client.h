// Client-side split fine-tuning runtime (§2.2, client perspective).
//
// The client owns the input section f_i (embeddings + leading blocks) and
// the output section f_o (trailing norm + LM head), their adapters, and
// the optimizer over those adapters. fine-tuning iterates:
//   x_c = f_i(x)  -> send ->  x_s = f_s(x_c)  -> recv ->
//   loss = f_o(x_s), backward to g_c -> send -> recv g_s ->
//   finish backward through f_i, step adapters.
#pragma once

#include <memory>

#include "core/runtime.h"
#include "data/dataset.h"
#include "net/transport.h"
#include "nn/transformer.h"
#include "optim/lr_schedule.h"
#include "optim/optimizer.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace menos::core {

struct ClientOptions {
  net::FinetuneConfig finetune;
  /// Must match the server's base-model seed (stands in for both parties
  /// holding the same pre-trained checkpoint halves).
  std::uint64_t base_seed = 42;
  /// Learning-rate schedule over finetune.lr; evaluated per step and
  /// propagated to the server-side optimizer in each Backward message.
  optim::LrSchedule schedule = optim::LrSchedule::constant();

  /// Backoff schedule for reconnect/resume after a dropped link. Only used
  /// when the client was built with a Dialer; without one, any link loss
  /// remains immediately fatal (the pre-fault-tolerance behavior).
  util::RetryPolicy retry;
  /// Seeds the backoff jitter so retry schedules are reproducible.
  std::uint64_t retry_seed = 0x52e7121;
  /// Receive timeout applied to every connection (0 = block forever); lets
  /// the client notice a silently dead link rather than hang in receive().
  double receive_timeout_s = 0.0;
  /// Optional event trace (not owned); records net.retry / net.resume.
  util::EventTrace* trace = nullptr;
};

/// Per-iteration measurements, decomposed the way §5.2 decomposes Fig 6:
/// total = communication + computation + scheduling.
struct StepStats {
  double loss = 0.0;
  double total_s = 0.0;
  double comm_s = 0.0;            ///< total - server compute - wait - client compute
  double client_compute_s = 0.0;
  double server_compute_s = 0.0;
  double server_wait_s = 0.0;     ///< scheduling time (Table 3)
  std::uint64_t iteration = 0;
};

class Client {
 public:
  /// `device` is the client's local compute device (its own GPU, or the
  /// host for the CPU-client experiments of Fig 10). A non-null `dialer`
  /// enables fault tolerance: on link loss the client redials, resumes its
  /// server session via ResumeSession, and replays the in-flight request
  /// under options.retry (docs/FAULTS.md).
  Client(const ClientOptions& options,
         std::unique_ptr<net::Connection> connection, gpusim::Device& device,
         net::Dialer dialer = nullptr);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Handshake: send the fine-tuning configuration, wait for the profiled
  /// HelloAck. Throws Error if the server rejects us.
  void connect();

  /// One optimization step on a batch.
  StepStats train_step(const data::Batch& batch);

  /// One optimization step over several micro-batches (gradient
  /// accumulation): gradients average across the micro-batches on both
  /// sides of the split, and the optimizer step — client adapters here,
  /// server adapter there — applies once, after the last micro-batch.
  /// Matches a single step on the concatenated batch up to float
  /// associativity; uses micro-batch-sized intermediate memory.
  StepStats train_step_accumulated(const std::vector<data::Batch>& micro);

  /// Loss on a batch without updating anything (uses an eval-only forward).
  double evaluate(const data::Batch& batch);

  /// Greedy next-token generation through the split stack: each step runs
  /// the input section locally, an eval-only forward on the server, and
  /// the output section locally. Returns prompt + n_new ids.
  std::vector<std::int32_t> generate(std::vector<std::int32_t> prompt,
                                     int n_new);

  /// Export this client's complete trained adapter — the local phi_i /
  /// phi_o AND the server-side phi_s (fetched over the protocol; the
  /// server adapter is the client's property, unlike the base model).
  /// This is the artifact a user takes home from split fine-tuning.
  std::vector<std::uint8_t> export_adapter();

  /// Restore an adapter exported by a structurally identical client:
  /// loads the local sections and pushes phi_s back to the server.
  std::size_t import_adapter(const std::uint8_t* data, std::size_t size);

  /// Polite shutdown (Bye).
  void disconnect();

  /// Keepalive: refresh the server-side session lease without doing any
  /// work (for gaps between iterations longer than the lease).
  void heartbeat();

  /// Server-profiled memory demands (from HelloAck).
  std::uint64_t server_forward_bytes() const noexcept { return fwd_bytes_; }
  std::uint64_t server_backward_bytes() const noexcept { return bwd_bytes_; }

  /// Fault-tolerance introspection (from HelloAck / the retry loop).
  std::uint64_t session_token() const noexcept { return session_token_; }
  double lease_seconds() const noexcept { return lease_seconds_; }
  std::uint64_t retries() const noexcept { return retries_; }
  std::uint64_t resumes() const noexcept { return resumes_; }

  /// Client-side footprint, for completeness of the §2.3 accounting.
  std::size_t parameter_bytes() const;
  std::size_t adapter_bytes() const;

 private:
  tensor::Tensor input_forward(const data::Batch& batch);

  /// One forward/backward exchange. `defer_update` keeps gradients
  /// accumulating on both sides; `loss_scale` pre-scales the loss so K
  /// accumulated micro-batches average rather than sum.
  StepStats run_round(const data::Batch& batch, bool defer_update,
                      float loss_scale);

  /// One request/reply exchange with at-least-once delivery: on link loss
  /// (send failure, drained receive, or frame corruption) the client
  /// redials, resumes the session, and replays `request`, backing off per
  /// options.retry. Replays are safe: Forward recomputes deterministically
  /// and the server dedups Backward by iteration. Throws StateError when
  /// no dialer is set, attempts are exhausted, or the server answers Error.
  net::Message rpc(const net::Message& request, net::MessageType expected,
                   const char* context);

  /// Dial a fresh connection and re-enter the session with ResumeSession.
  void reestablish();

  /// Pad client_compute_s up to compute_scale x the measured value by
  /// sleeping, emulating a slower device (heterogeneity experiments).
  double emulate_compute(double measured_s);

  ClientOptions options_;
  std::unique_ptr<net::Connection> connection_;
  gpusim::Device* device_;
  net::Dialer dialer_;
  util::Rng retry_rng_;
  std::unique_ptr<nn::InputSection> input_;
  std::unique_ptr<nn::OutputSection> output_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  std::uint64_t iteration_ = 0;
  std::uint64_t fwd_bytes_ = 0;
  std::uint64_t bwd_bytes_ = 0;
  std::uint64_t session_token_ = 0;
  double lease_seconds_ = 0.0;
  std::uint64_t retries_ = 0;
  std::uint64_t resumes_ = 0;
  bool connected_ = false;
  /// Latched from options_.finetune.profile at construction.
  bool frozen_ = false;
};

}  // namespace menos::core
