#include "mem/offload_engine.h"

#include "util/check.h"
#include "util/thread_pool.h"

namespace menos::mem {

const char* residency_name(Residency r) noexcept {
  switch (r) {
    case Residency::OnDevice:  return "on-device";
    case Residency::OnHost:    return "on-host";
    case Residency::MovingIn:  return "moving-in";
    case Residency::MovingOut: return "moving-out";
  }
  return "?";
}

OffloadEngine::OffloadEngine(gpusim::TransferModel transfer)
    : transfer_(transfer) {}

OffloadEngine::~OffloadEngine() {
  util::MutexLock lock(mutex_);
  while (inflight_ > 0) state_cv_.wait(mutex_);
}

OffloadEngine::Unit& OffloadEngine::unit_locked(int id) {
  auto it = units_.find(id);
  MENOS_CHECK_MSG(it != units_.end(), "unknown residency unit " << id);
  return it->second;
}

void OffloadEngine::wait_while_moving_locked(Unit& unit) {
  while (unit.state == Residency::MovingIn ||
         unit.state == Residency::MovingOut) {
    state_cv_.wait(mutex_);
  }
}

void OffloadEngine::register_unit(int id, std::size_t bytes,
                                  UnitCallbacks callbacks) {
  MENOS_CHECK_MSG(callbacks.move != nullptr && callbacks.charge != nullptr,
                  "residency unit needs move and charge callbacks");
  util::MutexLock lock(mutex_);
  MENOS_CHECK_MSG(units_.find(id) == units_.end(),
                  "residency unit " << id << " already registered");
  Unit unit;
  unit.bytes = bytes;
  unit.callbacks = std::move(callbacks);
  unit.state = Residency::OnDevice;
  unit.last_used = ++clock_;
  units_.emplace(id, std::move(unit));
}

bool OffloadEngine::unregister_unit(int id) {
  util::MutexLock lock(mutex_);
  auto it = units_.find(id);
  if (it == units_.end()) return false;
  wait_while_moving_locked(it->second);
  const bool was_resident = it->second.state == Residency::OnDevice;
  units_.erase(it);
  return was_resident;
}

void OffloadEngine::begin_use(int id) {
  util::MutexLock lock(mutex_);
  Unit& unit = unit_locked(id);
  wait_while_moving_locked(unit);
  ++unit.busy;
  unit.last_used = ++clock_;
}

void OffloadEngine::end_use(int id) {
  util::MutexLock lock(mutex_);
  Unit& unit = unit_locked(id);
  MENOS_CHECK_MSG(unit.busy > 0, "end_use without begin_use on unit " << id);
  --unit.busy;
  unit.last_used = ++clock_;
}

void OffloadEngine::ensure_resident(int id) {
  {
    util::MutexLock lock(mutex_);
    Unit& unit = unit_locked(id);
    // A prefetch may already be carrying the unit in; ride on it.
    wait_while_moving_locked(unit);
    if (unit.state == Residency::OnDevice) return;
    unit.state = Residency::MovingIn;
  }
  complete_move_in(id, /*is_prefetch=*/false);
}

void OffloadEngine::prefetch(int id) {
  {
    util::MutexLock lock(mutex_);
    auto it = units_.find(id);
    if (it == units_.end()) return;
    if (it->second.state != Residency::OnHost) return;
    it->second.state = Residency::MovingIn;
    ++inflight_;
  }
  util::ThreadPool::instance().submit([this, id] {
    complete_move_in(id, /*is_prefetch=*/true);
    util::MutexLock lock(mutex_);
    --inflight_;
    state_cv_.notify_all();
  });
}

bool OffloadEngine::complete_move_in(int id, bool is_prefetch) {
  // The caller marked the unit MovingIn, which pins it: unregister_unit
  // waits for the transition to settle, so the unit outlives this call.
  UnitCallbacks callbacks;
  std::size_t bytes = 0;
  {
    util::MutexLock lock(mutex_);
    Unit& unit = unit_locked(id);
    MENOS_DCHECK(unit.state == Residency::MovingIn);
    callbacks = unit.callbacks;
    bytes = unit.bytes;
  }
  // Charge first (scheduler mutex; may evict OTHER units via the reclaim
  // callback — our unit is MovingIn, hence not a candidate), then move.
  // Neither call may happen with the engine mutex held (see header).
  try {
    callbacks.charge();
  } catch (...) {
    util::MutexLock lock(mutex_);
    unit_locked(id).state = Residency::OnHost;
    state_cv_.notify_all();
    if (is_prefetch) return false;  // ensure_resident will retry + rethrow
    throw;
  }
  callbacks.move(/*to_device=*/true);
  util::MutexLock lock(mutex_);
  Unit& unit = unit_locked(id);
  unit.state = Residency::OnDevice;
  unit.last_used = ++clock_;
  ++stats_.swap_ins;
  stats_.bytes_in += bytes;
  stats_.modeled_transfer_s += transfer_.seconds_for(bytes);
  if (is_prefetch) ++stats_.prefetches;
  state_cv_.notify_all();
  return true;
}

ExportedUnit OffloadEngine::release_unit(int id) {
  util::MutexLock lock(mutex_);
  Unit& unit = unit_locked(id);
  wait_while_moving_locked(unit);
  MENOS_CHECK_MSG(unit.busy == 0,
                  "cannot release busy residency unit " << id);
  ExportedUnit out;
  out.bytes = unit.bytes;
  out.was_resident = unit.state == Residency::OnDevice;
  if (out.was_resident) {
    // Synchronous move-out, same rationale as evict_idle: the move
    // callback touches only devices/trace, never the engine or scheduler.
    unit.state = Residency::MovingOut;
    unit.callbacks.move(/*to_device=*/false);
    ++stats_.swap_outs;
    stats_.bytes_out += unit.bytes;
    stats_.modeled_transfer_s += transfer_.seconds_for(unit.bytes);
  }
  units_.erase(id);
  state_cv_.notify_all();
  return out;
}

void OffloadEngine::adopt_unit(int id, const ExportedUnit& unit,
                               UnitCallbacks callbacks) {
  MENOS_CHECK_MSG(callbacks.move != nullptr && callbacks.charge != nullptr,
                  "residency unit needs move and charge callbacks");
  util::MutexLock lock(mutex_);
  MENOS_CHECK_MSG(units_.find(id) == units_.end(),
                  "residency unit " << id << " already registered");
  Unit adopted;
  adopted.bytes = unit.bytes;
  adopted.callbacks = std::move(callbacks);
  adopted.state = Residency::OnHost;  // lands uncharged, like post-eviction
  adopted.last_used = ++clock_;
  units_.emplace(id, std::move(adopted));
}

std::size_t OffloadEngine::evict_idle(std::size_t bytes_needed,
                                      int except_id) {
  util::MutexLock lock(mutex_);
  std::size_t freed = 0;
  while (freed < bytes_needed) {
    // Least-recently-used idle resident unit.
    Unit* victim = nullptr;
    for (auto& [id, unit] : units_) {
      if (id == except_id || unit.state != Residency::OnDevice ||
          unit.busy > 0) {
        continue;
      }
      if (victim == nullptr || unit.last_used < victim->last_used) {
        victim = &unit;
      }
    }
    if (victim == nullptr) break;  // nothing evictable left
    victim->state = Residency::MovingOut;
    // Synchronous move-out with the engine mutex held: the scheduler is
    // mid-reclaim and the move callback touches only devices/trace (the
    // UnitCallbacks contract), so no lock cycle is possible.
    victim->callbacks.move(/*to_device=*/false);
    victim->state = Residency::OnHost;
    freed += victim->bytes;
    ++stats_.swap_outs;
    stats_.bytes_out += victim->bytes;
    stats_.modeled_transfer_s += transfer_.seconds_for(victim->bytes);
  }
  if (freed > 0) state_cv_.notify_all();
  return freed;
}

bool OffloadEngine::resident(int id) const {
  util::MutexLock lock(mutex_);
  auto it = units_.find(id);
  return it != units_.end() && it->second.state == Residency::OnDevice;
}

Residency OffloadEngine::residency(int id) const {
  util::MutexLock lock(mutex_);
  auto it = units_.find(id);
  MENOS_CHECK_MSG(it != units_.end(), "unknown residency unit " << id);
  return it->second.state;
}

std::size_t OffloadEngine::resident_bytes() const {
  util::MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, unit] : units_) {
    if (unit.state == Residency::OnDevice) total += unit.bytes;
  }
  return total;
}

OffloadStats OffloadEngine::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace menos::mem
