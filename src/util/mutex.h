// Annotated mutex primitives — the repo-wide replacement for raw
// std::mutex / std::condition_variable members.
//
// Clang's thread-safety analysis (util/thread_annotations.h) can only
// track locks whose acquire/release points carry attributes. libstdc++'s
// std::mutex has none, so a `std::lock_guard<std::mutex>` is invisible to
// the analysis and every MENOS_GUARDED_BY access would (correctly) be
// flagged as unprotected. Mutex/MutexLock/CondVar below are thin,
// zero-overhead-when-inlined wrappers whose methods are annotated, which
// makes the whole locking discipline machine-checkable. tools/menos_lint.py
// rejects raw std::mutex members in src/ for this reason.
//
// CondVar deliberately exposes only un-predicated wait(Mutex&): write the
// `while (!condition) cv.wait(mu);` loop in the calling function so the
// guarded reads in `condition` sit in an analysis context that can see the
// held lock (a predicate lambda would be analyzed as a separate, lockless
// function).
//
// Under MENOS_DEADLOCK_DETECT (CMake option, default ON in Debug) every
// *named* Mutex additionally reports its acquisitions to the lock-order
// graph in src/check/lock_order.h: a name interns a lock class, an
// optional rank declares its position in the repo-wide acquisition order
// (docs/ANALYSIS.md tabulates the conventions), and the first inverted
// acquisition aborts with both hold-stacks. tools/menos_lint.py rule
// `mutex-name` requires every Mutex member in src/ to be named.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

#ifdef MENOS_DEADLOCK_DETECT
#include "check/lock_order.h"
#endif

namespace menos::util {

class CondVar;

/// Annotated standard mutex.
class MENOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  /// Named mutex: joins lock class `name` for deadlock detection. `rank`
  /// (0 = unranked) places the class in the global acquisition order —
  /// nonzero ranks must be acquired in ascending order.
  explicit Mutex(const char* name, int rank = 0)
#ifdef MENOS_DEADLOCK_DETECT
      : cls_(check::intern_lock_class(name, rank))
#endif
  {
    (void)name;
    (void)rank;
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MENOS_ACQUIRE() {
#ifdef MENOS_DEADLOCK_DETECT
    // Before m_.lock(): if this acquisition is about to deadlock for
    // real, the diagnostic must get out first.
    if (cls_ != nullptr) check::note_acquire(cls_, this);
#endif
    m_.lock();
  }

  void unlock() MENOS_RELEASE() {
#ifdef MENOS_DEADLOCK_DETECT
    if (cls_ != nullptr) check::note_release(cls_, this);
#endif
    m_.unlock();
  }

  bool try_lock() MENOS_TRY_ACQUIRE(true) {
    const bool acquired = m_.try_lock();
#ifdef MENOS_DEADLOCK_DETECT
    // A trylock cannot block, hence records no ordering edge — but the
    // class joins the held stack so later acquisitions order after it.
    if (acquired && cls_ != nullptr) check::note_try_acquire(cls_, this);
#endif
    return acquired;
  }

 private:
  friend class CondVar;
  std::mutex m_;
#ifdef MENOS_DEADLOCK_DETECT
  const check::LockClass* cls_ = nullptr;
#endif
};

/// RAII lock (std::lock_guard shape) understood by the analysis.
class MENOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MENOS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  /// Adopt an already-held mutex; the destructor still releases it.
  struct Adopt {};
  MutexLock(Mutex& mu, Adopt) MENOS_REQUIRES(mu) : mu_(mu) {}

  ~MutexLock() MENOS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. wait() atomically releases and
/// reacquires `mu`; from the analysis' point of view the lock is held
/// throughout, which matches the invariant callers rely on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MENOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Timed wait. Returns false on timeout, true when notified (subject to
  /// spurious wakeups — callers keep their predicate loop either way).
  bool wait_for(Mutex& mu, double seconds) MENOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    const auto status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();  // ownership stays with the caller's MutexLock
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace menos::util
