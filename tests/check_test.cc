// menos::check self-tests (docs/ANALYSIS.md "Concurrency checking").
//
// Two halves, mirroring src/check/:
//
//   * lock-order detection: a deliberately re-introduced ABBA inversion and
//     a rank-discipline violation must each be reported — with both
//     hold-stacks for the cycle — and exactly once per closing edge;
//   * schedule exploration: a deliberately re-introduced order bug in a
//     TaskPool scenario must be found by check::explore() and reproduced
//     from the seed it prints, and the Strand/serving/fault scenarios must
//     survive >= 1000 explored schedules with zero reports.
//
// Test order in this file matters: the lock-order unit tests reset the
// global lock graph (ScopedLockReportCapture), so the regression sweep over
// observed production edges runs LAST, after the serving scenarios have
// rebuilt the graph.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/lock_order.h"
#include "check/schedule.h"
#include "core/client.h"
#include "core/server.h"
#include "data/dataset.h"
#include "net/faulty.h"
#include "net/transport.h"
#include "util/executor.h"
#include "util/mutex.h"
#include "util/queue.h"

namespace menos {
namespace {

/// Schedules explored across every test in this binary; the last test
/// asserts the acceptance floor (>= 1000 under the default seed counts).
std::atomic<long> g_explored{0};

}  // namespace

// ---------------------------------------------------------------------------
// Lock-order detection (compiled out when the detector is off).
// ---------------------------------------------------------------------------
#ifdef MENOS_DEADLOCK_DETECT

TEST(LockOrder, AbbaInversionReportedOnceWithBothHoldStacks) {
  check::ScopedLockReportCapture capture;
  util::Mutex a("test.abba.a");
  util::Mutex b("test.abba.b");

  {
    util::MutexLock la(a);
    util::MutexLock lb(b);
  }
  EXPECT_TRUE(capture.reports().empty()) << "consistent order reported";

  {
    util::MutexLock lb(b);
    util::MutexLock la(a);  // the re-introduced inversion
  }
  ASSERT_EQ(capture.reports().size(), 1u);
  const check::LockOrderReport& r = capture.reports()[0];
  EXPECT_EQ(r.kind, "cycle");
  EXPECT_NE(r.summary.find("test.abba.a"), std::string::npos);
  EXPECT_NE(r.summary.find("test.abba.b"), std::string::npos);
  // Both directions' acquisition contexts: where a -> b was first recorded,
  // and the b -> a acquisition that closed the cycle.
  EXPECT_NE(r.first_stack.find("held [test.abba.a] acquiring test.abba.b"),
            std::string::npos)
      << r.first_stack;
  EXPECT_NE(r.second_stack.find("held [test.abba.b] acquiring test.abba.a"),
            std::string::npos)
      << r.second_stack;

  // The same inversion again is deduplicated: one report per closing edge.
  {
    util::MutexLock lb(b);
    util::MutexLock la(a);
  }
  EXPECT_EQ(capture.reports().size(), 1u);
}

TEST(LockOrder, RankViolationReportedOnFirstExecution) {
  check::ScopedLockReportCapture capture;
  util::Mutex low("test.rank.low", 30);
  util::Mutex high("test.rank.high", 40);

  // Descending ranks are reported immediately — no need to ever run the
  // reverse order (this is what makes ranks stronger than the graph).
  util::MutexLock lh(high);
  util::MutexLock ll(low);
  ASSERT_EQ(capture.reports().size(), 1u);
  EXPECT_EQ(capture.reports()[0].kind, "rank");
  EXPECT_NE(capture.reports()[0].summary.find("test.rank.low"),
            std::string::npos);
  EXPECT_NE(capture.reports()[0].summary.find("test.rank.high"),
            std::string::npos);
}

TEST(LockOrder, AscendingAndEqualRanksAreClean) {
  check::ScopedLockReportCapture capture;
  util::Mutex low("test.clean.low", 30);
  util::Mutex mid_a("test.clean.mid_a", 35);
  util::Mutex mid_b("test.clean.mid_b", 35);
  util::Mutex unranked("test.clean.unranked");

  util::MutexLock l1(low);
  util::MutexLock l2(mid_a);
  util::MutexLock l3(mid_b);  // equal ranks may nest (distinct classes)
  util::MutexLock l4(unranked);
  EXPECT_TRUE(capture.reports().empty());
}

TEST(LockOrder, TryLockRecordsNoOrderEdge) {
  check::ScopedLockReportCapture capture;
  util::Mutex a("test.try.a");
  util::Mutex b("test.try.b");

  {
    util::MutexLock la(a);
    const bool acquired = b.try_lock();  // held, but records no a -> b edge
    EXPECT_TRUE(acquired);
    if (acquired) b.unlock();
  }
  {
    util::MutexLock lb(b);
    util::MutexLock la(a);  // would close a cycle if try_lock made an edge
  }
  EXPECT_TRUE(capture.reports().empty());
  EXPECT_FALSE(check::lock_order_edge_seen("test.try.a", "test.try.b"));
  EXPECT_TRUE(check::lock_order_edge_seen("test.try.b", "test.try.a"));
}

TEST(LockOrder, RecursiveAcquisitionReported) {
  check::ScopedLockReportCapture capture;
  // Exercised through the note_* API: actually calling util::Mutex::lock()
  // twice would deadlock for real on the underlying std::mutex.
  const check::LockClass* cls = check::intern_lock_class("test.recursive");
  int instance = 0;
  check::note_acquire(cls, &instance);
  check::note_acquire(cls, &instance);
  ASSERT_EQ(capture.reports().size(), 1u);
  EXPECT_EQ(capture.reports()[0].kind, "recursive");
  check::note_release(cls, &instance);
  check::note_release(cls, &instance);
}

TEST(LockOrder, ForeignReleaseReported) {
  check::ScopedLockReportCapture capture;
  const check::LockClass* cls = check::intern_lock_class("test.foreign");
  int instance = 0;
  check::note_release(cls, &instance);  // never acquired on this thread
  ASSERT_EQ(capture.reports().size(), 1u);
  EXPECT_NE(capture.reports()[0].summary.find("never acquired"),
            std::string::npos);
}

TEST(LockOrder, RankConflictOnReinternReported) {
  check::ScopedLockReportCapture capture;
  check::intern_lock_class("test.conflict", 5);
  const check::LockClass* again = check::intern_lock_class("test.conflict", 7);
  EXPECT_EQ(check::lock_class_rank(again), 5);  // first nonzero rank wins
  ASSERT_EQ(capture.reports().size(), 1u);
  EXPECT_EQ(capture.reports()[0].kind, "rank-conflict");
}

TEST(LockOrder, EdgeIntrospectionSeesRecordedOrder) {
  check::ScopedLockReportCapture capture;
  util::Mutex x("test.edge.x");
  util::Mutex y("test.edge.y");
  {
    util::MutexLock lx(x);
    util::MutexLock ly(y);
  }
  EXPECT_TRUE(check::lock_order_edge_seen("test.edge.x", "test.edge.y"));
  EXPECT_FALSE(check::lock_order_edge_seen("test.edge.y", "test.edge.x"));
  bool found = false;
  for (const auto& [holder, acquired] : check::lock_order_edges()) {
    found = found || (holder == "test.edge.x" && acquired == "test.edge.y");
  }
  EXPECT_TRUE(found);
}

#endif  // MENOS_DEADLOCK_DETECT

// ---------------------------------------------------------------------------
// Schedule exploration: self-test scenarios.
// ---------------------------------------------------------------------------
namespace {

/// The re-introduced order bug: on a width-1 pool the scenario "works"
/// under FIFO (A posted before B, so A runs first) but breaks under any
/// schedule that picks B from the ready set first — exactly the class of
/// latent bug the exploration driver exists to surface.
void order_bug_scenario() {
  util::TaskPool pool(1);
  std::atomic<int> seq{0};
  std::atomic<int> a_at{-1};
  std::atomic<int> b_at{-1};
  util::WaitGroup wg;
  wg.add(3);
  pool.post([&] {
    // Posted from inside a task so A and B are both queued — and therefore
    // both in the hook's ready set — when the worker picks next.
    pool.post([&] {
      a_at.store(seq.fetch_add(1));
      wg.done();
    });
    pool.post([&] {
      b_at.store(seq.fetch_add(1));
      wg.done();
    });
    wg.done();
  });
  wg.wait();
  pool.stop_and_join();
  if (b_at.load() < a_at.load()) {
    throw std::runtime_error("B ran before A");
  }
}

/// Two strands sharing a pool: per-strand FIFO, mutual exclusion within a
/// strand, and a nested post (re-posting onto your own strand from inside
/// one of its tasks) must all hold under every explored schedule.
void strand_scenario() {
  constexpr int kN = 10;
  util::TaskPool pool(3);
  std::atomic<int> in1{0};
  std::atomic<int> in2{0};
  std::atomic<bool> overlap{false};
  std::vector<int> order1;
  std::vector<int> order2;
  {
    util::Strand s1(pool);
    util::Strand s2(pool);
    util::WaitGroup wg;
    wg.add(2 * kN);
    for (int i = 0; i < kN; ++i) {
      s1.post([&, i] {
        if (in1.fetch_add(1) != 0) overlap.store(true);
        order1.push_back(i);  // serialized by the strand, no lock needed
        if (i == 3) {
          wg.add(1);  // before done() below, so wait() cannot pass early
          s1.post([&] {
            if (in1.fetch_add(1) != 0) overlap.store(true);
            order1.push_back(100);
            in1.fetch_sub(1);
            wg.done();
          });
        }
        in1.fetch_sub(1);
        wg.done();
      });
      s2.post([&, i] {
        if (in2.fetch_add(1) != 0) overlap.store(true);
        order2.push_back(i);
        in2.fetch_sub(1);
        wg.done();
      });
    }
    wg.wait();
  }
  pool.stop_and_join();

  if (overlap.load()) throw std::runtime_error("strand tasks overlapped");
  std::vector<int> base1;
  int pos_3 = -1;
  int pos_100 = -1;
  for (std::size_t i = 0; i < order1.size(); ++i) {
    if (order1[i] == 100) {
      pos_100 = static_cast<int>(i);
    } else {
      if (order1[i] == 3) pos_3 = static_cast<int>(i);
      base1.push_back(order1[i]);
    }
  }
  std::vector<int> expected;
  for (int i = 0; i < kN; ++i) expected.push_back(i);
  if (base1 != expected) throw std::runtime_error("strand 1 broke FIFO");
  if (order2 != expected) throw std::runtime_error("strand 2 broke FIFO");
  if (pos_100 < pos_3) throw std::runtime_error("nested post ran early");
}

/// Posts racing onto one strand from two producer threads: each producer's
/// tasks must still run in its own post order, serialized, none lost.
void strand_cross_thread_scenario() {
  constexpr int kPer = 8;
  util::TaskPool pool(2);
  std::atomic<int> in{0};
  std::atomic<bool> overlap{false};
  std::vector<std::pair<int, int>> order;
  {
    util::Strand strand(pool);
    util::WaitGroup wg;
    wg.add(2 * kPer);
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPer; ++i) {
          strand.post([&, p, i] {
            if (in.fetch_add(1) != 0) overlap.store(true);
            order.emplace_back(p, i);
            in.fetch_sub(1);
            wg.done();
          });
        }
      });
    }
    for (std::thread& t : producers) t.join();
    wg.wait();
  }
  pool.stop_and_join();

  if (overlap.load()) throw std::runtime_error("strand tasks overlapped");
  int last[2] = {-1, -1};
  for (const auto& [p, i] : order) {
    if (i <= last[p]) throw std::runtime_error("per-producer order broke");
    last[p] = i;
  }
  if (last[0] != kPer - 1 || last[1] != kPer - 1) {
    throw std::runtime_error("strand lost a task");
  }
}

}  // namespace

TEST(ScheduleExplore, TaskPoolIsFifoWithoutAHook) {
  // The order-bug scenario is well-behaved under the default FIFO dequeue;
  // only a hooked schedule can break it.
  for (int i = 0; i < 20; ++i) order_bug_scenario();
}

TEST(ScheduleExplore, FindsOrderBugAndReproducesItFromTheSeed) {
  const check::ExploreResult result = check::explore(order_bug_scenario);
  g_explored.fetch_add(result.schedules);
  ASSERT_FALSE(result.ok) << "exploration missed the planted order bug";
  EXPECT_FALSE(result.failing_mode.empty());
  EXPECT_EQ(result.what, "B ran before A");

  // The contract printed on failure: mode + seed replay the exact schedule.
  const std::string replayed =
      check::replay(order_bug_scenario, result.failing_seed,
                    result.failing_mode);
  EXPECT_EQ(replayed, result.what);
  // And the replay is deterministic, not merely likely to fail.
  EXPECT_EQ(check::replay(order_bug_scenario, result.failing_seed,
                          result.failing_mode),
            replayed);
}

TEST(ScheduleExplore, StrandOrderingHoldsAcrossSeeds) {
  check::ExploreOptions options;
  options.seeds = 250;
  const check::ExploreResult result = check::explore(strand_scenario, options);
  g_explored.fetch_add(result.schedules);
  EXPECT_TRUE(result.ok) << result.failing_mode << " seed "
                         << result.failing_seed << ": " << result.what;
}

TEST(ScheduleExplore, CrossThreadStrandPostsHoldAcrossSeeds) {
  check::ExploreOptions options;
  options.seeds = 250;
  options.base_seed = 7000;
  const check::ExploreResult result =
      check::explore(strand_cross_thread_scenario, options);
  g_explored.fetch_add(result.schedules);
  EXPECT_TRUE(result.ok) << result.failing_mode << " seed "
                         << result.failing_seed << ": " << result.what;
}

// ---------------------------------------------------------------------------
// Schedule exploration: the event-driven serving core.
// ---------------------------------------------------------------------------
namespace {

nn::TransformerConfig check_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 16;
  c.n_heads = 2;
  c.ffn_hidden = 32;
  c.n_layers = 2;
  return c;
}

core::ClientOptions check_options(std::uint64_t adapter_seed) {
  core::ClientOptions options;
  options.finetune.model = check_model();
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = adapter_seed;
  options.base_seed = 42;
  return options;
}

data::DataLoader check_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 3).text), 2, 8, seed);
}

/// Server on a 2-worker executor. Member order matters: the acceptor must
/// outlive the server's accept loop, and the destructor stops the server
/// even when a failing scenario unwinds with an exception (the exploration
/// harness found the pure-virtual-call crash of the naive ordering).
struct CheckRig {
  explicit CheckRig(double lease_seconds = 0.0) : devices(1, 256u << 20) {
    config.base_seed = 42;
    config.executor_threads = 2;
    config.lease_seconds = lease_seconds;
    server = std::make_unique<core::Server>(config, devices, check_model());
    server->start(acceptor);
  }
  ~CheckRig() { server->stop(); }

  gpusim::DeviceManager devices;
  core::ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<core::Server> server;
};

/// One client fine-tuning for two steps against a 2-worker executor.
/// Returns the loss trajectory — a pure function of the seeds, so any
/// schedule-dependent divergence is an ordering bug in the serving core.
std::vector<double> serve_once() {
  CheckRig rig;
  std::vector<double> losses;
  gpusim::DeviceManager client_devices(1, 256u << 20);
  core::Client client(check_options(7), rig.acceptor.connect(),
                      client_devices.gpu(0));
  client.connect();
  data::DataLoader loader = check_loader(5);
  for (int s = 0; s < 2; ++s) {
    losses.push_back(client.train_step(loader.next()).loss);
  }
  client.disconnect();
  return losses;
}

/// The PR-4 recovery path under exploration: a seeded fault plan drops and
/// corrupts frames while the executor schedule is being permuted. Leases
/// on, as in tests/failure_test.cc: a fault-dropped connection must park
/// the session for ResumeSession, not destroy it mid-flight.
std::vector<double> faulty_serve_once() {
  CheckRig rig(/*lease_seconds=*/30.0);
  std::vector<double> losses;
  net::Dialer dialer = [&rig] { return rig.acceptor.connect(); };
  net::FaultPlan plan;
  plan.seed = 0xc4ec4;
  plan.drop_send_prob = 0.05;
  plan.drop_receive_prob = 0.05;
  plan.corrupt_receive_prob = 0.03;
  plan.skip_frames = 4;
  auto injector = std::make_shared<net::FaultInjector>(plan);
  dialer = net::faulty_dialer(std::move(dialer), injector);

  core::ClientOptions options = check_options(9);
  options.retry.time_scale = 0.0;
  gpusim::DeviceManager client_devices(1, 256u << 20);
  core::Client client(options, dialer(), client_devices.gpu(0), dialer);
  client.connect();
  data::DataLoader loader = check_loader(6);
  for (int s = 0; s < 3; ++s) {
    losses.push_back(client.train_step(loader.next()).loss);
  }
  client.disconnect();
  return losses;
}

void expect_same_losses(const std::vector<double>& got,
                        const std::vector<double>& reference) {
  // Bit-identical, not approximately equal: determinism under load is the
  // serving core's contract (tests/concurrency_test.cc).
  if (got != reference) {
    throw std::runtime_error("schedule leaked into the loss trajectory");
  }
}

}  // namespace

TEST(ScheduleExplore, ServingCoreIsScheduleInvariant) {
  const std::vector<double> reference = serve_once();  // FIFO baseline
  ASSERT_EQ(reference.size(), 2u);
  check::ExploreOptions options;
  options.seeds = 10;
  options.base_seed = 100;
  const check::ExploreResult result = check::explore(
      [&reference] { expect_same_losses(serve_once(), reference); }, options);
  g_explored.fetch_add(result.schedules);
  EXPECT_TRUE(result.ok) << result.failing_mode << " seed "
                         << result.failing_seed << ": " << result.what;
}

TEST(ScheduleExplore, FaultRecoveryIsScheduleInvariant) {
  const std::vector<double> reference = faulty_serve_once();
  ASSERT_EQ(reference.size(), 3u);
  check::ExploreOptions options;
  options.seeds = 4;
  options.base_seed = 200;
  const check::ExploreResult result = check::explore(
      [&reference] { expect_same_losses(faulty_serve_once(), reference); },
      options);
  g_explored.fetch_add(result.schedules);
  EXPECT_TRUE(result.ok) << result.failing_mode << " seed "
                         << result.failing_seed << ": " << result.what;
}

// ---------------------------------------------------------------------------
// Regression: the tree's observed lock orderings are clean.
// ---------------------------------------------------------------------------
#ifdef MENOS_DEADLOCK_DETECT

// Runs AFTER the serving scenarios rebuilt the lock-order graph (the unit
// tests at the top reset it). Documents the verified-clean ordering of the
// production classes: every observed cross-class edge between two ranked
// classes goes from a lower rank to an equal-or-higher one, and none of
// this binary's thousands of schedules produced a report.
TEST(LockOrderRegression, ObservedProductionEdgesRespectRankBands) {
  const auto edges = check::lock_order_edges();
  ASSERT_FALSE(edges.empty());
  for (const auto& [holder, acquired] : edges) {
    const int h =
        check::lock_class_rank(check::intern_lock_class(holder.c_str()));
    const int a =
        check::lock_class_rank(check::intern_lock_class(acquired.c_str()));
    if (h != 0 && a != 0) {
      EXPECT_LE(h, a) << "inverted edge " << holder << " -> " << acquired;
    }
  }
  // Spot-check a known nesting from the accept path (docs/ANALYSIS.md):
  // the session table is held while the live-connection map is updated,
  // never the reverse.
  EXPECT_TRUE(check::lock_order_edge_seen("core.server.sessions",
                                          "core.server.live"));
  EXPECT_FALSE(check::lock_order_edge_seen("core.server.live",
                                           "core.server.sessions"));
}

#endif  // MENOS_DEADLOCK_DETECT

TEST(ScheduleExplore, AcceptanceFloorOfExploredSchedules) {
  const char* env = std::getenv("MENOS_CHECK_SEEDS");
  if (env != nullptr && std::strtol(env, nullptr, 10) < 250) {
    GTEST_SKIP() << "MENOS_CHECK_SEEDS narrows the sweep below the floor";
  }
  EXPECT_GE(g_explored.load(), 1000);
#ifdef MENOS_DEADLOCK_DETECT
  EXPECT_EQ(check::lock_report_count(), 0u);
#endif
}

}  // namespace menos
