// Synthetic language-modelling data.
//
// The paper fine-tunes on wikitext-2-raw-v1 and Tiny-Shakespeare. Those
// corpora are not available offline, so we substitute deterministic
// synthetic text with similar statistics (DESIGN.md §1): a Markov-chain
// character generator seeded with English-like transition structure
// ("shakespeare-like"), and a repeating-template token stream
// ("wikitext-like"). Both are learnable — a fine-tuned model's perplexity
// drops well below the unigram baseline — which is all the convergence
// experiments (Figs 8/9) require.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace menos::data {

/// Character-level tokenizer over a fixed printable alphabet.
class CharTokenizer {
 public:
  CharTokenizer();

  std::int32_t vocab_size() const noexcept;
  std::vector<std::int32_t> encode(const std::string& text) const;
  std::string decode(const std::vector<std::int32_t>& ids) const;

 private:
  std::string alphabet_;
  std::vector<std::int32_t> char_to_id_;  // indexed by unsigned char
};

/// Word-level tokenizer with a frequency-ranked vocabulary built from a
/// training corpus. Words are lower-cased; punctuation marks are their own
/// tokens; words outside the vocabulary map to <unk>. This is the
/// wikitext-style tokenization, complementing the character-level one.
class WordTokenizer {
 public:
  /// Build the vocabulary from `corpus`, keeping the `max_vocab` most
  /// frequent tokens (plus <unk>).
  explicit WordTokenizer(const std::string& corpus,
                         std::size_t max_vocab = 4096);

  std::int32_t vocab_size() const noexcept;
  std::int32_t unk_id() const noexcept { return 0; }

  std::vector<std::int32_t> encode(const std::string& text) const;
  std::string decode(const std::vector<std::int32_t>& ids) const;

  /// Split text into word/punctuation tokens (the pre-vocabulary step).
  static std::vector<std::string> split(const std::string& text);

 private:
  std::vector<std::string> id_to_word_;
  std::unordered_map<std::string, std::int32_t> word_to_id_;
};

/// Deterministic synthetic corpus generators.
struct Corpus {
  std::string text;
  std::string name;
};

/// Markov-chain character text with word/sentence structure — the
/// Tiny-Shakespeare stand-in.
Corpus make_shakespeare_like(std::size_t length, std::uint64_t seed);

/// Template-expanded prose with a heavier tail of rare words — the
/// wikitext-2 stand-in.
Corpus make_wikitext_like(std::size_t length, std::uint64_t seed);

/// One training example: `inputs[t]`'s target is `targets[t]` (next token).
struct Batch {
  std::vector<std::int32_t> inputs;   // batch*seq
  std::vector<std::int32_t> targets;  // batch*seq
  std::int64_t batch_size = 0;
  std::int64_t seq_len = 0;
};

/// Cyclic next-token-prediction loader over a tokenized corpus. Each client
/// owns one (their "local private dataset"); distinct seeds give distinct
/// sampling orders.
class DataLoader {
 public:
  DataLoader(std::vector<std::int32_t> tokens, std::int64_t batch_size,
             std::int64_t seq_len, std::uint64_t seed);

  Batch next();

  std::int64_t batch_size() const noexcept { return batch_size_; }
  std::int64_t seq_len() const noexcept { return seq_len_; }

 private:
  std::vector<std::int32_t> tokens_;
  std::int64_t batch_size_;
  std::int64_t seq_len_;
  util::Rng rng_;
};

}  // namespace menos::data
