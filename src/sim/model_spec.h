// Analytic model specifications at the paper's scale.
//
// A ModelSpec carries the byte counts and operation durations of one
// evaluation model as measured/quoted by the paper and calibrated in
// DESIGN.md §7. The discrete-event simulator combines these with the real
// sched::Scheduler to regenerate the paper's tables and figures; the byte
// fields also drive the Fig 5 persistent-memory accounting directly.
//
// Context bytes: the paper notes each client is served by its own process
// holding a CUDA context ("Menos uses slightly more GPU memory than
// vanilla [at one client] because it requires an extra process to manage
// the shared base parameters"). context_bytes models that per-process cost.
#pragma once

#include <cstddef>
#include <string>

#include "gpusim/device.h"

namespace menos::sim {

struct ModelSpec {
  std::string name;

  // ----- persistent bytes (§2.3 components) -----
  std::size_t server_param_bytes = 0;   ///< M: server-side base parameters
  std::size_t adapter_opt_bytes = 0;    ///< A + O per client
  std::size_t context_bytes = 0;        ///< per-process GPU context
  // ----- transient bytes -----
  std::size_t fwd_nograd_bytes = 0;     ///< peak of the no-grad forward
  std::size_t bwd_bytes = 0;            ///< I: re-forward + backward peak

  // ----- per-iteration wire volumes (one direction each) -----
  std::size_t activation_up_bytes = 0;    ///< x_c
  std::size_t activation_down_bytes = 0;  ///< x_s
  std::size_t gradient_up_bytes = 0;      ///< g_c
  std::size_t gradient_down_bytes = 0;    ///< g_s

  // ----- server operation durations (seconds) -----
  double fwd_seconds = 0.0;         ///< gradient-tracking forward
  double nograd_fwd_seconds = 0.0;  ///< non-gradient forward (Fig 3(d))
  double bwd_seconds = 0.0;         ///< backward pass proper

  /// Extra per-backward cost Menos pays for constant memory release and
  /// allocator fragmentation, growing with the number of resident clients
  /// (the Table 2 slope): base + per_client * (n - 1).
  double release_overhead_base_s = 0.0;
  double release_overhead_per_client_s = 0.0;

  // ----- client-side compute per iteration -----
  double client_gpu_seconds = 0.0;  ///< client with its own GPU
  double client_cpu_seconds = 0.0;  ///< CPU-only client (Fig 10)

  double release_overhead(int resident_clients) const noexcept {
    if (resident_clients < 1) resident_clients = 1;
    return release_overhead_base_s +
           release_overhead_per_client_s * (resident_clients - 1);
  }

  /// Duration of one Menos backward operation (re-forward + backward +
  /// release overhead).
  double menos_backward_seconds(int resident_clients) const noexcept {
    return fwd_seconds + bwd_seconds + release_overhead(resident_clients);
  }

  /// Per-client resident bytes under vanilla split learning (own copy of
  /// everything, Eq. 2 without I).
  std::size_t vanilla_task_bytes() const noexcept {
    return server_param_bytes + adapter_opt_bytes + context_bytes;
  }

  /// Persistent GPU bytes for N clients — the Fig 5 series.
  std::size_t vanilla_persistent_bytes(int clients) const noexcept {
    return vanilla_task_bytes() * static_cast<std::size_t>(clients);
  }
  std::size_t menos_persistent_bytes(int clients) const noexcept {
    return server_param_bytes + context_bytes /* manager process */ +
           (adapter_opt_bytes + context_bytes) *
               static_cast<std::size_t>(clients);
  }

  /// OPT-1.3B (batch 16, seq as in the paper), calibrated to §2.3/§5.
  static ModelSpec opt_1_3b();
  /// Llama-2-7B (batch 4), calibrated to §2.3/§5.
  static ModelSpec llama2_7b();
};

/// Evaluation environment constants (§5.1 + DESIGN.md §7 calibration).
struct Environment {
  std::size_t gpu_capacity_bytes = 32ull * 1000 * 1000 * 1000;  ///< V100 32 GB
  /// Usable host RAM for swapped-out tasks (128 GB machine minus OS +
  /// framework overhead — the paper's "even main memory is insufficient"
  /// point lands at 5 Llama clients).
  std::size_t host_capacity_bytes = 110ull * 1000 * 1000 * 1000;
  double wan_bandwidth_bytes_per_s = 4.0e6;  ///< ~32 Mbit/s effective
  double wan_latency_s = 0.03;
  /// Host<->device swap cost — the SAME gpusim::TransferModel type the
  /// runtime's vanilla baseline and mem::OffloadEngine price swaps with,
  /// so the simulator and the executable runtime cannot drift apart.
  /// Calibrated to the paper's effective PCIe bandwidth (DESIGN.md §7).
  gpusim::TransferModel transfer{/*bandwidth_bytes_per_s=*/1.6e9,
                                 /*latency_s=*/50e-6};

  double wan_seconds(std::size_t bytes) const noexcept {
    return wan_latency_s +
           static_cast<double>(bytes) / wan_bandwidth_bytes_per_s;
  }
  double swap_seconds(std::size_t bytes) const noexcept {
    return transfer.seconds_for(bytes);
  }
};

}  // namespace menos::sim
