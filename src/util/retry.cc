#include "util/retry.h"

#include <algorithm>
#include <cmath>

namespace menos::util {

double RetryPolicy::backoff_s(int attempt, Rng& rng) const noexcept {
  if (attempt < 0) attempt = 0;
  double base = initial_backoff_s * std::pow(multiplier, attempt);
  base = std::min(base, max_backoff_s);
  if (jitter > 0.0) {
    base *= 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
    base = std::min(base, max_backoff_s);
  }
  return std::max(base, 0.0) * time_scale;
}

}  // namespace menos::util
