// gpusim::AuditDevice: the allocation auditor must catch every class of
// deallocate misuse, poison freed memory, and name leak owners by tag.
//
// The recording tests construct the auditor with abort_on_error=false and
// inspect errors(); the death tests use the default abort_on_error=true
// and assert the diagnostic. Both paths work identically whether or not
// the build already audit-wraps factory devices (MENOS_AUDIT_ALLOC): an
// explicit outer auditor never forwards a detected-bad free, so a Debug
// build's inner auditor stays quiet.
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "gpusim/audit.h"
#include "gpusim/device.h"
#include "test_helpers.h"
#include "util/check.h"

namespace menos::gpusim {
namespace {

AuditOptions recording() {
  AuditOptions options;
  options.abort_on_error = false;
  return options;
}

std::unique_ptr<Device> recording_gpu(std::size_t capacity,
                                      AuditOptions options = recording()) {
  return make_audit_device(make_sim_gpu("audited", capacity), options);
}

TEST(AuditDevice, CleanSessionRecordsNoErrors) {
  auto dev = recording_gpu(1000);
  auto* audit = as_audit_device(*dev);
  ASSERT_NE(audit, nullptr);
  void* a = dev->allocate(128);
  void* b = dev->allocate(256);
  EXPECT_EQ(audit->live_count(), 2u);
  dev->deallocate(b, 256);
  dev->deallocate(a, 128);
  EXPECT_EQ(audit->live_count(), 0u);
  EXPECT_TRUE(audit->errors().empty());
  EXPECT_EQ(dev->allocated(), 0u);
}

TEST(AuditDevice, DoubleFreeIsCaught) {
  auto dev = recording_gpu(1000);
  auto* audit = as_audit_device(*dev);
  void* p = dev->allocate(64);
  dev->deallocate(p, 64);
  dev->deallocate(p, 64);  // second free of the same block
  const auto errors = audit->errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].kind, AuditErrorRecord::Kind::DoubleFree);
  EXPECT_NE(errors[0].message.find("double free"), std::string::npos);
  // The bad free was dropped: accounting is still exact.
  EXPECT_EQ(dev->allocated(), 0u);
}

TEST(AuditDeviceDeathTest, DoubleFreeAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto dev = make_audit_device(make_sim_gpu("fatal", 1000));  // aborts
  void* p = dev->allocate(64);
  dev->deallocate(p, 64);
  EXPECT_DEATH(dev->deallocate(p, 64), "double free");
}

TEST(AuditDevice, SizeMismatchFreeIsCaught) {
  auto dev = recording_gpu(1000);
  auto* audit = as_audit_device(*dev);
  void* p = dev->allocate(100);
  dev->deallocate(p, 60);  // lies about the size
  const auto errors = audit->errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].kind, AuditErrorRecord::Kind::SizeMismatch);
  EXPECT_NE(errors[0].message.find("size 60"), std::string::npos);
  // The free went through with the TRUE size, so nothing leaks and the
  // byte accounting does not drift (the LLMem failure mode).
  EXPECT_EQ(dev->allocated(), 0u);
  EXPECT_EQ(audit->live_count(), 0u);
}

TEST(AuditDeviceDeathTest, SizeMismatchAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto dev = make_audit_device(make_sim_gpu("fatal", 1000));
  void* p = dev->allocate(100);
  EXPECT_DEATH(dev->deallocate(p, 99), "allocated with size 100");
  dev->deallocate(p, 100);
}

TEST(AuditDevice, ForeignPointerFreeIsCaught) {
  auto dev = recording_gpu(1000);
  auto other = make_sim_gpu("other", 1000);
  auto* audit = as_audit_device(*dev);
  void* theirs = other->allocate(32);
  dev->deallocate(theirs, 32);  // belongs to `other`, not `dev`
  const auto errors = audit->errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].kind, AuditErrorRecord::Kind::ForeignPointer);
  EXPECT_NE(errors[0].message.find("foreign pointer"), std::string::npos);
  EXPECT_EQ(dev->allocated(), 0u);  // dropped, not forwarded
  other->deallocate(theirs, 32);    // the rightful owner frees it fine
  EXPECT_EQ(other->allocated(), 0u);
}

TEST(AuditDeviceDeathTest, ForeignPointerAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto dev = make_audit_device(make_sim_gpu("fatal", 1000));
  int local = 0;
  EXPECT_DEATH(dev->deallocate(&local, sizeof(local)), "foreign pointer");
}

TEST(AuditDevice, LeakTableNamesTheOwningTag) {
  auto dev = recording_gpu(4096);
  auto* audit = as_audit_device(*dev);
  void* a = nullptr;
  void* b = nullptr;
  void* c = nullptr;
  {
    AllocTagScope tag("session-7");
    a = dev->allocate(100);
    {
      AllocTagScope inner("profiling");  // innermost scope wins
      b = dev->allocate(200);
    }
    c = dev->allocate(50);
  }
  const auto by_tag = audit->live_bytes_by_tag();
  EXPECT_EQ(by_tag.at("session-7"), 150u);
  EXPECT_EQ(by_tag.at("profiling"), 200u);

  const std::string report = audit->leak_report();
  EXPECT_NE(report.find("session-7: 150 bytes"), std::string::npos);
  EXPECT_NE(report.find("profiling: 200 bytes"), std::string::npos);
  EXPECT_NE(report.find("2 allocation(s)"), std::string::npos);

  dev->deallocate(a, 100);
  dev->deallocate(b, 200);
  dev->deallocate(c, 50);
  EXPECT_TRUE(audit->leak_report().empty());
  // Destroying the device now is leak-free; the destructor logging path
  // (live allocations at end of life) is exercised below.
}

TEST(AuditDevice, DestructionWithLiveAllocationsReclaimsThem) {
  // The destructor must log the per-tag table AND hand the blocks back to
  // the inner device so the bytes (and the host heap backing them) are
  // not lost — this test is ASan/LSan-clean because of that reclaim.
  auto dev = recording_gpu(1000);
  AllocTagScope tag("leaker");
  (void)dev->allocate(300);
  EXPECT_EQ(as_audit_device(*dev)->live_count(), 1u);
  EXPECT_NE(as_audit_device(*dev)->leak_report().find("leaker"),
            std::string::npos);
  dev.reset();  // logs the leak table, reclaims the 300 bytes
}

TEST(AuditDevice, PoisonPatternIsObservableAfterFree) {
  AuditOptions options = recording();
  options.quarantine_bytes = 1 << 20;  // keep freed blocks resident
  auto dev = recording_gpu(4096, options);
  constexpr std::size_t kBytes = 64;
  auto* p = static_cast<std::uint8_t*>(dev->allocate(kBytes));
  std::memset(p, 0xAB, kBytes);
  dev->deallocate(p, kBytes);
  // The block is quarantined: the device still owns the memory, so this
  // read is defined — and must see the poison fill, not stale data.
  for (std::size_t i = 0; i < kBytes; ++i) {
    ASSERT_EQ(p[i], kPoisonByte) << "offset " << i;
  }
  // Quarantined blocks count as freed in the reported accounting.
  EXPECT_EQ(dev->allocated(), 0u);
  EXPECT_EQ(dev->stats().lifetime_frees, 1u);
}

TEST(AuditDevice, QuarantineReleasesUnderCapacityPressure) {
  AuditOptions options = recording();
  options.quarantine_bytes = 1 << 20;
  auto dev = recording_gpu(1000, options);
  void* a = dev->allocate(800);
  dev->deallocate(a, 800);  // parked in quarantine, capacity still held
  // A request that only fits if the quarantine lets go must still succeed:
  // auditing never changes what fits on the device.
  void* b = dev->allocate(900);
  EXPECT_EQ(dev->allocated(), 900u);
  dev->deallocate(b, 900);
  EXPECT_EQ(dev->allocated(), 0u);
  EXPECT_TRUE(as_audit_device(*dev)->errors().empty());
}

TEST(AuditDevice, ZeroByteAllocationsAuditCleanly) {
  auto dev = recording_gpu(100);
  void* a = dev->allocate(0);
  void* b = dev->allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  dev->deallocate(a, 0);
  dev->deallocate(b, 0);
  EXPECT_TRUE(as_audit_device(*dev)->errors().empty());
  EXPECT_EQ(dev->allocated(), 0u);
}

TEST(AuditDevice, AddressReuseIsNotMistakenForDoubleFree) {
  // Free then reallocate until the allocator hands an address back; a
  // legitimate free of the reused address must not be flagged.
  auto dev = recording_gpu(1 << 20);
  auto* audit = as_audit_device(*dev);
  for (int i = 0; i < 64; ++i) {
    void* p = dev->allocate(256);
    dev->deallocate(p, 256);
    void* q = dev->allocate(256);
    dev->deallocate(q, 256);
  }
  EXPECT_TRUE(audit->errors().empty());
  EXPECT_EQ(dev->allocated(), 0u);
}

TEST(AuditDevice, StatsForwardInnerAccounting) {
  auto dev = recording_gpu(1000);
  void* p = dev->allocate(400);
  const MemoryStats s = dev->stats();
  EXPECT_EQ(s.capacity, 1000u);
  EXPECT_EQ(s.allocated, 400u);
  EXPECT_EQ(s.lifetime_allocs, 1u);
  EXPECT_EQ(dev->available(), 600u);
  dev->deallocate(p, 400);
}

// The DeviceTest fixture (tests/test_helpers.h) asserts at TearDown that
// every device it created ends with allocated() == 0 — the suite-wide
// backstop the ISSUE asks for. These two tests exercise the fixture on
// both factory paths (audited in Debug, plain in Release).
using DeviceFixtureTest = menos::testing::DeviceTest;

TEST_F(DeviceFixtureTest, BalancedUseEndsClean) {
  Device& gpu = make_gpu("fixture-gpu", 2048);
  Device& host = make_host("fixture-host");
  void* a = gpu.allocate(512);
  void* b = host.allocate(1024);
  gpu.deallocate(a, 512);
  host.deallocate(b, 1024);
}

TEST_F(DeviceFixtureTest, ManyDevicesAllChecked) {
  for (int i = 0; i < 4; ++i) {
    // Built with += rather than "g" + to_string(i): the temporary-concat
    // form trips GCC 12's -Wrestrict false positive (PR 105651).
    std::string name = "g";
    name += std::to_string(i);
    Device& gpu = make_gpu(std::move(name), 1024);
    void* p = gpu.allocate(128);
    gpu.deallocate(p, 128);
  }
}

}  // namespace
}  // namespace menos::gpusim
