file(REMOVE_RECURSE
  "CMakeFiles/menos_sim.dir/model_spec.cc.o"
  "CMakeFiles/menos_sim.dir/model_spec.cc.o.d"
  "CMakeFiles/menos_sim.dir/split_sim.cc.o"
  "CMakeFiles/menos_sim.dir/split_sim.cc.o.d"
  "libmenos_sim.a"
  "libmenos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
