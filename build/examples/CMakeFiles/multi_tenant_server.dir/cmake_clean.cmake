file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_server.dir/multi_tenant_server.cpp.o"
  "CMakeFiles/multi_tenant_server.dir/multi_tenant_server.cpp.o.d"
  "multi_tenant_server"
  "multi_tenant_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
