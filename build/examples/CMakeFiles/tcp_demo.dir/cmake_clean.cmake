file(REMOVE_RECURSE
  "CMakeFiles/tcp_demo.dir/tcp_demo.cpp.o"
  "CMakeFiles/tcp_demo.dir/tcp_demo.cpp.o.d"
  "tcp_demo"
  "tcp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
