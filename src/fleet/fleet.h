// fleet::Fleet — live multi-GPU sharded serving.
//
// A Fleet owns N server shards, each with its own simulated GPU (a private
// gpusim::DeviceManager) and its own bit-identical copy of the base model
// (all shards share base_seed), all multiplexed onto ONE serving core: a
// shared core::Executor worker pool and a shared net::Poller. Growing the
// fleet therefore adds GPU capacity, not threads — the paper's premise that
// serving is memory-bound, not compute-bound, at the fleet level.
//
// Clients connect to a single front door (fleet::Router): the first Hello is
// placed on a shard by a pluggable PlacementPolicy; ResumeSession frames are
// routed to wherever the session currently lives, which may have changed —
// a shard under memory pressure (sched::PressureEvent) hands idle sessions
// to the fleet's migrator thread, which moves their adapter + optimizer
// state to the least-loaded shard. Because every shard derives the same base
// model and the adapter/optimizer floats travel bit-exactly, a migrated
// session's loss curve is bit-identical to one that never moved.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/executor.h"
#include "core/server.h"
#include "fleet/policy.h"
#include "fleet/router.h"
#include "gpusim/device.h"
#include "net/poller.h"
#include "util/queue.h"

namespace menos::fleet {

struct FleetConfig {
  /// Per-shard server template. base_seed is shared across shards (the
  /// stores must be bit-identical for migration); token_seed, shared core
  /// pointers, and executor_threads are overwritten per shard. Migration
  /// requires lease_seconds > 0 (exported sessions sit Parked under their
  /// lease until the client resumes at the new shard).
  core::ServerConfig server;
  /// Number of shards; each gets `gpus_per_shard` simulated GPUs of
  /// `gpu_bytes_per_shard` each.
  int shards = 1;
  int gpus_per_shard = 1;
  std::size_t gpu_bytes_per_shard = 64ULL << 20;
  /// Placement policy name (see make_policy): "round-robin",
  /// "least-loaded", "power-of-two", "adapter-affinity".
  std::string policy = "round-robin";
  /// Subscribe to each shard's scheduler pressure events and migrate idle
  /// sessions away from pressured shards automatically.
  bool auto_rebalance = false;
  /// Serving-core width shared by ALL shards (<=0: ServerConfig default).
  int executor_threads = 0;
  /// Optional event trace shared by the shards and the router (not owned).
  util::EventTrace* trace = nullptr;
};

class Fleet {
 public:
  Fleet(const FleetConfig& config, const nn::TransformerConfig& model);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Start the serving core, every shard, and the router's front door on
  /// `acceptor` (borrowed; must stay alive until stop()).
  void start(net::Acceptor& acceptor);

  /// Stop in dependency order: router first (no new arrivals), then the
  /// migrator, then every shard, then the shared core. Idempotent.
  void stop();

  /// Move session `token` to shard `dst`. Blocks until the move resolves;
  /// safe to call only from outside the serving executor (the export waits
  /// on the session's strand). Returns false if the session is unknown,
  /// busy (not idle — migration only moves AwaitRequest/Parked sessions),
  /// already migrating, already on `dst`, or the target refuses the import
  /// (the session is then restored on its source shard; only a double
  /// failure loses it).
  bool migrate_session(std::uint64_t token, int dst);

  /// One manual rebalance pass: migrate an idle session from the most
  /// memory-loaded shard to the least, if they differ. Returns true if a
  /// session moved.
  bool rebalance_once();

  int shard_count() const noexcept { return static_cast<int>(servers_.size()); }
  core::Server& shard(int i) { return *servers_[static_cast<std::size_t>(i)]; }
  /// Shard `i`'s simulated GPUs (leak/teardown assertions in tests).
  gpusim::DeviceManager& devices(int i) {
    return *devices_[static_cast<std::size_t>(i)];
  }
  Router& router() noexcept { return *router_; }
  core::Executor& executor() noexcept { return *executor_; }

 private:
  void migrator_loop();
  /// Pressure reaction: try to move one idle session off `shard`.
  void relieve_shard(int shard);
  /// Shard with the most schedulable bytes free, excluding `except`.
  int roomiest_shard_except(int except) const;

  FleetConfig config_;
  std::unique_ptr<core::Executor> executor_;
  std::unique_ptr<net::Poller> poller_;
  std::vector<std::unique_ptr<gpusim::DeviceManager>> devices_;
  std::vector<std::unique_ptr<core::Server>> servers_;
  std::unique_ptr<PlacementPolicy> policy_;
  std::unique_ptr<Router> router_;

  /// Pressured shard indices, fed by scheduler pressure callbacks and
  /// drained by the migrator thread. Migration cannot run on the serving
  /// executor (export_for_migration blocks on the session's strand), hence
  /// the dedicated thread.
  util::BlockingQueue<int> pressured_;
  /// One pending wakeup per shard at a time — pressure events can arrive
  /// far faster than migrations resolve.
  std::vector<std::unique_ptr<std::atomic<bool>>> pressure_pending_;
  std::thread migrator_;  // NOLINT(raw-thread) one per fleet
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace menos::fleet
