// Failure injection against the full stack: abrupt socket death, garbage
// bytes on the wire, half-open protocol states, server resilience across
// repeated client failures — and the fault-tolerance layer: session
// leases, reconnect/resume with backoff, and deterministic fault plans.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/client.h"
#include "core/server.h"
#include "net/faulty.h"
#include "net/transport.h"
#include "util/trace.h"

namespace menos {
namespace {

nn::TransformerConfig fail_model() {
  nn::TransformerConfig c = nn::TransformerConfig::tiny_opt();
  c.dim = 32;
  c.n_heads = 2;
  c.ffn_hidden = 64;
  c.n_layers = 3;
  return c;
}

struct TcpRig {
  TcpRig() : devices(1, 256u << 20) {
    config.base_seed = 42;
    server = std::make_unique<core::Server>(config, devices, fail_model());
    listener = net::tcp_listen(0);
    server->start(*listener);
  }
  ~TcpRig() { server->stop(); }

  int port() const { return listener->port(); }

  gpusim::DeviceManager devices;
  core::ServerConfig config;
  std::unique_ptr<core::Server> server;
  std::unique_ptr<net::TcpListener> listener;
};

core::ClientOptions fail_options(std::uint64_t adapter_seed) {
  core::ClientOptions options;
  options.finetune.model = fail_model();
  options.finetune.batch_size = 2;
  options.finetune.seq_len = 8;
  options.finetune.adapter_seed = adapter_seed;
  options.base_seed = 42;
  return options;
}

data::DataLoader fail_loader(std::uint64_t seed) {
  data::CharTokenizer tok;
  return data::DataLoader(
      tok.encode(data::make_shakespeare_like(2000, 5).text), 2, 8, seed);
}

/// Write raw bytes to the server's port and close.
void blast_bytes(int port, const std::vector<std::uint8_t>& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::close(fd);
}

TEST(TcpFailure, GarbageBytesDoNotKillTheServer) {
  TcpRig rig;
  // A storm of malformed connections: random junk, valid magic with a huge
  // length, an empty connection.
  util::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> junk(64 + rng.next_below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    blast_bytes(rig.port(), junk);
  }
  {
    // Correct magic, absurd payload length.
    std::vector<std::uint8_t> frame(12, 0);
    const std::uint32_t magic = net::kFrameMagic;
    std::memcpy(frame.data(), &magic, 4);
    const std::uint64_t huge = 1ull << 40;
    std::memcpy(frame.data() + 4, &huge, 8);
    blast_bytes(rig.port(), frame);
  }
  blast_bytes(rig.port(), {});

  // A legitimate client still gets served.
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fail_options(3), std::move(conn), cd.gpu(0));
  client.connect();
  auto loader = fail_loader(4);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
}

TEST(TcpFailure, ClientVanishingMidHandshakeIsCleanedUp) {
  TcpRig rig;
  for (int i = 0; i < 3; ++i) {
    // Open, send half a Hello frame, slam the socket.
    const auto frame =
        net::frame_message(net::Message::hello(fail_options(5).finetune));
    std::vector<std::uint8_t> half(frame.begin(),
                                   frame.begin() + frame.size() / 2);
    blast_bytes(rig.port(), half);
  }
  // Server keeps serving.
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fail_options(6), std::move(conn), cd.gpu(0));
  client.connect();
  auto loader = fail_loader(7);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
}

TEST(TcpFailure, ClientVanishingBetweenForwardAndBackward) {
  TcpRig rig;
  const std::size_t baseline = rig.devices.gpu(0).allocated();
  {
    // Handshake + forward by hand, then disappear without the backward.
    auto conn = net::tcp_connect("127.0.0.1", rig.port());
    ASSERT_NE(conn, nullptr);
    conn->send(net::Message::hello(fail_options(8).finetune));
    auto ack = conn->receive();
    ASSERT_TRUE(ack.has_value());
    ASSERT_EQ(ack->type, net::MessageType::HelloAck);
    net::WireTensor x;
    x.shape = {2, 8, 32};
    x.data.assign(2 * 8 * 32, 0.1f);
    conn->send(net::Message::forward(x, 0));
    auto reply = conn->receive();
    ASSERT_TRUE(reply.has_value());
    conn->close();  // vanish with the iteration half done
  }
  // The session must unwind: memory back to the post-store baseline.
  for (int i = 0; i < 400 && rig.devices.gpu(0).allocated() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rig.devices.gpu(0).allocated(), baseline);

  // And a fresh client trains normally afterwards.
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(fail_options(9), std::move(conn), cd.gpu(0));
  client.connect();
  auto loader = fail_loader(10);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
}

TEST(TcpFailure, RepeatedCrashWavesDoNotLeak) {
  TcpRig rig;
  const std::size_t baseline = rig.devices.gpu(0).allocated();
  for (int wave = 0; wave < 5; ++wave) {
    auto conn = net::tcp_connect("127.0.0.1", rig.port());
    ASSERT_NE(conn, nullptr);
    conn->send(net::Message::hello(
        fail_options(20 + static_cast<std::uint64_t>(wave)).finetune));
    auto ack = conn->receive();
    ASSERT_TRUE(ack.has_value());
    conn->close();  // crash immediately after profiling
  }
  for (int i = 0; i < 400 && rig.devices.gpu(0).allocated() > baseline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rig.devices.gpu(0).allocated(), baseline);
}

TEST(TcpFailure, UnexpectedMessageOrderGetsErrorNotCrash) {
  TcpRig rig;
  auto conn = net::tcp_connect("127.0.0.1", rig.port());
  ASSERT_NE(conn, nullptr);
  // Forward before Hello.
  net::WireTensor x;
  x.shape = {1, 1, 32};
  x.data.assign(32, 0.0f);
  conn->send(net::Message::forward(x, 0));
  auto reply = conn->receive();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::Error);
  conn->close();
}

// ---------------------------------------------------------------------------
// Transport-layer regressions.
// ---------------------------------------------------------------------------

// Regression: a signal delivered to a thread blocked in ::accept() makes
// accept() fail with EINTR. The listener used to surface that as nullptr,
// which the Server's accept loop treats as "listener closed" — one stray
// signal killed the server's ability to accept clients forever. accept()
// must retry transient errnos and keep blocking.
TEST(TcpFailure, AcceptRetriesAfterEintr) {
  auto listener = net::tcp_listen(0);
  struct sigaction sa {};
  sa.sa_handler = +[](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: accept() returns EINTR
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  std::atomic<bool> returned{false};
  std::unique_ptr<net::Connection> got;
  std::thread acceptor([&] {
    got = listener->accept();
    returned.store(true);
  });
  // Let the thread block in accept(), then interrupt it repeatedly.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    ::pthread_kill(acceptor.native_handle(), SIGUSR1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(returned.load());  // old code: nullptr after the first EINTR

  auto client = net::tcp_connect("127.0.0.1", listener->port());
  ASSERT_NE(client, nullptr);
  acceptor.join();
  EXPECT_NE(got, nullptr);  // the real connection, not a spurious failure
  ::sigaction(SIGUSR1, &old, nullptr);
}

// Regression: TcpConnection::close() used to ::close() the fd while another
// thread was blocked in receive() on it. The kernel recycles fd numbers
// immediately, so the blocked receive could end up reading a *different*
// connection's stream. close() must shutdown() first and defer the real
// close until in-flight operations drain. Run under TSan this also proves
// the handshake is race-free.
TEST(TcpFailure, CloseRaceNeverCrossesConnections) {
  auto listener = net::tcp_listen(0);
  for (int i = 0; i < 40; ++i) {
    auto a = net::tcp_connect("127.0.0.1", listener->port());
    ASSERT_NE(a, nullptr);
    auto server_a = listener->accept();
    ASSERT_NE(server_a, nullptr);

    std::optional<net::Message> got_a;
    std::thread receiver([&] { got_a = a->receive(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    a->close();  // races the blocked receive; may free a's fd number

    // Immediately open a new connection: with an eager close it would
    // likely reuse a's fd while the receiver is still parked on it.
    auto b = net::tcp_connect("127.0.0.1", listener->port());
    ASSERT_NE(b, nullptr);
    auto server_b = listener->accept();
    ASSERT_NE(server_b, nullptr);
    ASSERT_TRUE(server_b->send(net::Message::heartbeat()));
    auto got_b = b->receive();
    receiver.join();

    EXPECT_FALSE(got_a.has_value());  // never another connection's frame
    ASSERT_TRUE(got_b.has_value());
    EXPECT_EQ(got_b->type, net::MessageType::Heartbeat);
    b->close();
    server_a->close();
    server_b->close();
  }
}

// Regression: the inproc transport counted a frame in bytes_sent() even
// when the peer closed while the frame was "on the wire" (inside the
// conditioner delay), so comm accounting reported bytes nobody received.
TEST(InprocFailure, DroppedSendIsNotCountedAsSent) {
  net::NetworkConditioner conditioner;
  conditioner.latency_s = 0.2;  // hold the frame in flight for 200ms
  auto [a, b] = net::make_inproc_pair(conditioner);
  net::Connection* a_raw = a.get();

  std::atomic<bool> send_ok{true};
  std::thread sender([&] {
    send_ok.store(a_raw->send(net::Message::heartbeat()));
  });
  // Close the peer while the frame is still inside the conditioner sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  b->close();
  sender.join();

  EXPECT_FALSE(send_ok.load());        // the frame was never delivered
  EXPECT_EQ(a->bytes_sent(), 0u);      // ...so it must not be accounted
}

// ---------------------------------------------------------------------------
// Session leases + reconnect/resume (docs/FAULTS.md).
// ---------------------------------------------------------------------------

int count_events(const util::EventTrace& trace, const std::string& name) {
  int n = 0;
  for (const auto& e : trace.snapshot()) {
    if (e.name == name) ++n;
  }
  return n;
}

int fault_rounds(int fallback) {
  const char* env = std::getenv("MENOS_FAULT_ROUNDS");
  if (env == nullptr) return fallback;
  const int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

struct LeaseRig {
  LeaseRig(double lease_s, util::EventTrace* trace)
      : devices(1, 256u << 20) {
    config.base_seed = 42;
    config.lease_seconds = lease_s;
    config.reaper_interval_s = 0.05;
    config.trace = trace;
    server = std::make_unique<core::Server>(config, devices, fail_model());
    server->start(acceptor);
  }
  ~LeaseRig() { server->stop(); }

  gpusim::DeviceManager devices;
  core::ServerConfig config;
  net::InprocAcceptor acceptor;
  std::unique_ptr<core::Server> server;
};

// A client that handshakes (allocating adapter + optimizer state on the
// server GPU) and then dies without Bye must be expired by the reaper: its
// memory returns to the post-store baseline within the lease window.
TEST(SessionLease, ExpiryReclaimsCrashedClientMemory) {
  util::EventTrace trace;
  LeaseRig rig(/*lease_s=*/0.5, &trace);
  const std::size_t baseline = rig.devices.gpu(0).allocated();

  auto conn = rig.acceptor.connect();
  ASSERT_TRUE(conn->send(net::Message::hello(fail_options(8).finetune)));
  auto ack = conn->receive();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, net::MessageType::HelloAck);
  EXPECT_NE(ack->session_token, 0u);
  EXPECT_DOUBLE_EQ(ack->lease_seconds, 0.5);
  EXPECT_GT(rig.devices.gpu(0).allocated(), baseline);  // A + O resident

  conn->close();  // crash: no Bye, no reconnect

  // The reaper must expire the parked session and release every byte. Give
  // sanitizer builds generous slack (poll up to 20x the lease).
  for (int i = 0; i < 2000 && rig.devices.gpu(0).allocated() > baseline;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rig.devices.gpu(0).allocated(), baseline);
  EXPECT_GE(count_events(trace, "session.lease_expired"), 1);
}

// An idle-but-alive client keeps its session by heartbeating: no expiry,
// and training still works after several lease-lengths of idleness.
TEST(SessionLease, HeartbeatKeepsIdleSessionAlive) {
  util::EventTrace trace;
  LeaseRig rig(/*lease_s=*/1.0, &trace);
  core::ClientOptions options = fail_options(11);
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(options, rig.acceptor.connect(), cd.gpu(0));
  client.connect();
  EXPECT_NE(client.session_token(), 0u);
  EXPECT_DOUBLE_EQ(client.lease_seconds(), 1.0);

  // Idle for 2 lease-lengths, heartbeating well inside the lease.
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    client.heartbeat();
  }
  EXPECT_EQ(count_events(trace, "session.lease_expired"), 0);

  auto loader = fail_loader(12);
  EXPECT_TRUE(std::isfinite(client.train_step(loader.next()).loss));
  client.disconnect();
}

// The acceptance bar for the whole recovery path: a seeded fault plan that
// repeatedly kills and corrupts the client's link mid-training must yield a
// loss curve bit-identical to the fault-free run — replayed Forwards
// recompute deterministically and replayed Backwards are deduplicated
// server-side (no double optimizer step).
std::vector<double> lossy_run(const net::FaultPlan* plan, int rounds,
                              std::uint64_t* resumes_out,
                              std::uint64_t* retries_out) {
  util::EventTrace trace;
  LeaseRig rig(/*lease_s=*/30.0, &trace);

  net::Dialer dialer = [&rig] { return rig.acceptor.connect(); };
  std::shared_ptr<net::FaultInjector> injector;
  if (plan != nullptr) {
    injector = std::make_shared<net::FaultInjector>(*plan);
    dialer = net::faulty_dialer(std::move(dialer), injector);
  }

  core::ClientOptions options = fail_options(21);
  options.retry.time_scale = 0.0;  // exercise backoff at zero wall-clock
  gpusim::DeviceManager cd(1, 256u << 20);
  core::Client client(options, dialer(), cd.gpu(0), dialer);
  client.connect();

  auto loader = fail_loader(22);
  std::vector<double> losses;
  for (int i = 0; i < rounds; ++i) {
    losses.push_back(client.train_step(loader.next()).loss);
  }
  if (resumes_out != nullptr) *resumes_out = client.resumes();
  if (retries_out != nullptr) *retries_out = client.retries();
  if (injector != nullptr) {
    EXPECT_GT(injector->stats().faults(), 0u) << "fault plan never fired";
  }
  client.disconnect();
  return losses;
}

TEST(Resume, LossCurveBitIdenticalUnderInjectedFaults) {
  const int rounds = fault_rounds(12);

  const std::vector<double> clean =
      lossy_run(nullptr, rounds, nullptr, nullptr);

  net::FaultPlan plan;
  plan.seed = 0xfa017;
  plan.drop_send_prob = 0.05;
  plan.drop_receive_prob = 0.05;
  plan.corrupt_receive_prob = 0.03;
  plan.skip_frames = 4;  // let the Hello/HelloAck handshake through
  std::uint64_t resumes = 0;
  std::uint64_t retries = 0;
  const std::vector<double> lossy =
      lossy_run(&plan, rounds, &resumes, &retries);

  EXPECT_GT(retries, 0u);
  EXPECT_GT(resumes, 0u) << "no fault actually forced a resume";
  ASSERT_EQ(lossy.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(lossy[i], clean[i]) << "loss diverged at round " << i;
  }
}

// Without a dialer the old contract holds: link loss is immediately fatal.
TEST(Resume, NoDialerMeansLinkLossIsFatal) {
  util::EventTrace trace;
  LeaseRig rig(/*lease_s=*/30.0, &trace);
  core::ClientOptions options = fail_options(31);
  gpusim::DeviceManager cd(1, 256u << 20);
  auto conn = rig.acceptor.connect();
  net::Connection* raw = conn.get();
  core::Client client(options, std::move(conn), cd.gpu(0));
  client.connect();
  raw->close();
  auto loader = fail_loader(32);
  EXPECT_THROW(client.train_step(loader.next()), StateError);
}

}  // namespace
}  // namespace menos
