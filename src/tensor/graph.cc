#include "tensor/graph.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "gpusim/audit.h"
#include "mem/caching_allocator.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace menos::tensor::graph {

const char* op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Scale: return "scale";
    case OpKind::AddBias: return "add_bias";
    case OpKind::Relu: return "relu";
    case OpKind::Gelu: return "gelu";
    case OpKind::Silu: return "silu";
    case OpKind::Reshape: return "reshape";
    case OpKind::Permute: return "permute";
    case OpKind::ConcatDim1: return "concat_dim1";
    case OpKind::SliceDim1: return "slice_dim1";
    case OpKind::TileBatch: return "tile_batch";
    case OpKind::RepeatHeads: return "repeat_heads";
    case OpKind::Matmul: return "matmul";
    case OpKind::Sum: return "sum";
    case OpKind::Softmax: return "softmax";
    case OpKind::CausalSoftmax: return "causal_softmax";
    case OpKind::LayerNorm: return "layer_norm";
    case OpKind::RmsNorm: return "rms_norm";
    case OpKind::Embedding: return "embedding";
    case OpKind::CrossEntropy: return "cross_entropy";
    case OpKind::ToDevice: return "to_device";
    case OpKind::BiasGelu: return "bias_gelu";
    case OpKind::FusedAddLayerNorm: return "fused_add_layer_norm";
    case OpKind::Custom: return "custom";
  }
  return "?";
}

namespace {

/// One value flowing through the graph: a constant captured by handle
/// (weights — in-place optimizer updates stay visible), or a node output.
struct Value {
  Tensor constant;        // defined() <=> captured leaf
  std::size_t bytes = 0;  // output size (allocation plan)
};

struct GNode {
  OpKind kind;
  std::vector<int> in;
  std::vector<int> out;  // one value, or {h, y} for FusedAddLayerNorm
  // Attributes (meaning per kind, mirrors detail::NoteAttrs).
  float f0 = 0.0f;
  std::int32_t i0 = -1;
  Index a = 0;
  Index b = 0;
  Shape shape;
  std::vector<int> dims;
  std::vector<std::int32_t> ids;  // baked id vector when feed < 0
  int feed = -1;                  // index into the replay feeds
  gpusim::Device* device = nullptr;
  // OpKind::Custom only: display name (string literal) + replay closure.
  const char* custom_name = nullptr;
  detail::CustomReplay custom;
  // Replay cost accounting.
  std::int64_t calls = 0;
  double millis = 0.0;
};

}  // namespace

struct StepGraph::Impl {
  std::vector<Value> values;
  std::vector<GNode> nodes;
  int output = -1;
  std::vector<std::size_t> feed_sizes;
  bool is_ready = false;
  const char* failure = "";
  int fused = 0;

  // Valid only while capture() runs fn().
  Feeds capture_feeds;

  void reset() {
    values.clear();
    nodes.clear();
    output = -1;
    feed_sizes.clear();
    is_ready = false;
    failure = "";
    fused = 0;
    capture_feeds.clear();
  }

  void fuse();
};

namespace {

/// Per-thread capture state. The pinned list keeps every recorded output
/// tensor alive for the duration of the capture so TensorImpl addresses
/// (the value-map keys) are never recycled mid-step.
struct Recorder {
  StepGraph::Impl* impl = nullptr;
  bool broken = false;
  const char* why = "";
  std::unordered_map<const TensorImpl*, int> value_of;
  std::vector<Tensor> pinned;
};

thread_local Recorder* t_recorder = nullptr;

int value_for_input(Recorder& r, const Tensor& t) {
  const auto it = r.value_of.find(t.impl().get());
  if (it != r.value_of.end()) return it->second;
  if (t.impl()->grad_fn != nullptr) {
    // Produced by an op that did not note itself (a custom autograd node):
    // replaying would silently drop it from the tape.
    r.broken = true;
    r.why = "input produced by an unrecorded op";
    return -1;
  }
  const int id = static_cast<int>(r.impl->values.size());
  r.impl->values.push_back(Value{t, t.bytes()});
  r.value_of.emplace(t.impl().get(), id);
  return id;
}

int value_for_output(Recorder& r, const Tensor& t) {
  const int id = static_cast<int>(r.impl->values.size());
  r.impl->values.push_back(Value{Tensor{}, t.bytes()});
  r.value_of[t.impl().get()] = id;
  r.pinned.push_back(t);
  return id;
}

void record(OpKind kind, std::initializer_list<Tensor> inputs,
            std::initializer_list<const Tensor*> outputs,
            const detail::NoteAttrs& attrs) {
  Recorder* r = t_recorder;
  if (r == nullptr || r->broken) return;
  GNode node;
  node.kind = kind;
  for (const Tensor& t : inputs) {
    node.in.push_back(value_for_input(*r, t));
    if (r->broken) return;
  }
  for (const Tensor* t : outputs) {
    node.out.push_back(value_for_output(*r, *t));
  }
  node.f0 = attrs.f0;
  node.i0 = attrs.i0;
  node.a = attrs.a;
  node.b = attrs.b;
  if (attrs.shape != nullptr) node.shape = *attrs.shape;
  if (attrs.dims != nullptr) node.dims = *attrs.dims;
  if (attrs.ids != nullptr) {
    const Feeds& feeds = r->impl->capture_feeds;
    for (std::size_t i = 0; i < feeds.size(); ++i) {
      if (feeds[i] == attrs.ids) {
        node.feed = static_cast<int>(i);
        break;
      }
    }
    if (node.feed < 0) node.ids = *attrs.ids;  // bake (e.g. position ids)
  }
  node.device = attrs.device;
  r->impl->nodes.push_back(std::move(node));
}

}  // namespace

namespace detail {

bool capturing() noexcept {
  return t_recorder != nullptr && !t_recorder->broken;
}

void note(OpKind kind, std::initializer_list<Tensor> inputs,
          const Tensor& out, const NoteAttrs& attrs) {
  record(kind, inputs, {&out}, attrs);
}

void note2(OpKind kind, std::initializer_list<Tensor> inputs,
           const Tensor& out0, const Tensor& out1, const NoteAttrs& attrs) {
  record(kind, inputs, {&out0, &out1}, attrs);
}

void note_unsupported(const char* what) {
  Recorder* r = t_recorder;
  if (r == nullptr) return;
  r->broken = true;
  r->why = what;
}

void note_custom(const char* name, std::initializer_list<Tensor> inputs,
                 const Tensor& out, CustomReplay replay) {
  Recorder* r = t_recorder;
  if (r == nullptr || r->broken) return;
  GNode node;
  node.kind = OpKind::Custom;
  node.custom_name = name;
  node.custom = std::move(replay);
  for (const Tensor& t : inputs) {
    node.in.push_back(value_for_input(*r, t));
    if (r->broken) return;
  }
  node.out.push_back(value_for_output(*r, out));
  r->impl->nodes.push_back(std::move(node));
}

}  // namespace detail

// ----- fusion -----
//
// Patterns are matched on the recorded graph, not the source: anything
// that produced the add_bias->gelu / add->layer_norm shape fuses, whatever
// layer it came from. The fused ops attach tapes identical to the
// composition (see ops.cc), so fusion never changes a single bit.

void StepGraph::Impl::fuse() {
  // uses[v] = how many node inputs (plus the step output) consume v.
  std::vector<int> uses(values.size(), 0);
  for (const GNode& n : nodes) {
    for (int v : n.in) ++uses[static_cast<std::size_t>(v)];
  }
  if (output >= 0) ++uses[static_cast<std::size_t>(output)];

  std::vector<char> dead(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (dead[i]) continue;
    GNode& n = nodes[i];
    if (n.kind == OpKind::AddBias) {
      // add_bias -> gelu, intermediate consumed only by the gelu.
      const int t = n.out[0];
      if (uses[static_cast<std::size_t>(t)] != 1) continue;
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (dead[j]) continue;
        GNode& g = nodes[j];
        if (g.kind == OpKind::Gelu && g.in.size() == 1 && g.in[0] == t) {
          n.kind = OpKind::BiasGelu;
          n.out[0] = g.out[0];
          dead[j] = 1;
          ++fused;
          break;
        }
      }
    } else if (n.kind == OpKind::Add) {
      // residual add -> layer_norm. The sum usually has a second consumer
      // (the next residual), so the fused node keeps producing it.
      const int h = n.out[0];
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (dead[j]) continue;
        GNode& ln = nodes[j];
        if (ln.kind == OpKind::LayerNorm && ln.in.size() == 3 &&
            ln.in[0] == h) {
          n.kind = OpKind::FusedAddLayerNorm;
          n.in.push_back(ln.in[1]);  // gamma
          n.in.push_back(ln.in[2]);  // beta
          n.out.push_back(ln.out[0]);
          n.f0 = ln.f0;  // eps
          dead[j] = 1;
          ++fused;
          break;
        }
      }
    }
  }
  std::vector<GNode> kept;
  kept.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(nodes[i]));
  }
  nodes = std::move(kept);
}

// ----- StepGraph -----

StepGraph::StepGraph() : impl_(std::make_unique<Impl>()) {}
StepGraph::~StepGraph() = default;
StepGraph::StepGraph(StepGraph&&) noexcept = default;
StepGraph& StepGraph::operator=(StepGraph&&) noexcept = default;

bool StepGraph::ready() const noexcept { return impl_->is_ready; }

const char* StepGraph::failure_reason() const noexcept {
  return impl_->failure;
}

Tensor StepGraph::capture(const Feeds& feeds,
                          const std::function<Tensor()>& fn) {
  MENOS_CHECK_MSG(t_recorder == nullptr, "nested StepGraph capture");
  impl_->reset();
  if (!grad_enabled()) {
    // The graph exists to replay *training* steps; a no-grad run would
    // capture a tape-free step and replay it where gradients are expected.
    impl_->failure = "capture outside grad mode";
    return fn();
  }
  impl_->capture_feeds = feeds;
  for (const std::vector<std::int32_t>* f : feeds) {
    impl_->feed_sizes.push_back(f == nullptr ? 0 : f->size());
  }
  Recorder rec;
  rec.impl = impl_.get();
  t_recorder = &rec;
  Tensor out;
  try {
    out = fn();
  } catch (...) {
    t_recorder = nullptr;
    impl_->reset();
    impl_->failure = "capture threw";
    throw;
  }
  t_recorder = nullptr;
  impl_->capture_feeds.clear();  // feed pointers die with this call
  if (rec.broken) {
    const char* why = rec.why;
    impl_->reset();
    impl_->failure = why;
    return out;
  }
  const auto it = rec.value_of.find(out.defined() ? out.impl().get() : nullptr);
  if (it == rec.value_of.end()) {
    impl_->reset();
    impl_->failure = "step output not produced by a recorded op";
    return out;
  }
  impl_->output = it->second;
  impl_->fuse();
  impl_->is_ready = true;
  return out;
}

bool StepGraph::accepts(const Feeds& feeds) const noexcept {
  if (!impl_->is_ready) return false;
  if (feeds.size() != impl_->feed_sizes.size()) return false;
  for (std::size_t i = 0; i < feeds.size(); ++i) {
    const std::size_t got = feeds[i] == nullptr ? 0 : feeds[i]->size();
    if (got != impl_->feed_sizes[i]) return false;
  }
  return true;
}

Tensor StepGraph::replay(const Feeds& feeds) {
  MENOS_CHECK_MSG(impl_->is_ready, "StepGraph::replay before capture");
  MENOS_CHECK_MSG(accepts(feeds),
                  "StepGraph::replay feeds incompatible with capture");
  std::vector<Tensor> slot(impl_->values.size());
  for (std::size_t i = 0; i < impl_->values.size(); ++i) {
    if (impl_->values[i].constant.defined()) {
      slot[i] = impl_->values[i].constant;
    }
  }
  const auto in = [&](const GNode& n, int i) -> const Tensor& {
    return slot[static_cast<std::size_t>(n.in[static_cast<std::size_t>(i)])];
  };
  const auto ids_of = [&](const GNode& n) -> const std::vector<std::int32_t>& {
    return n.feed >= 0 ? *feeds[static_cast<std::size_t>(n.feed)] : n.ids;
  };
  for (GNode& n : impl_->nodes) {
    util::Stopwatch sw;
    Tensor out;
    switch (n.kind) {
      case OpKind::Add: out = add(in(n, 0), in(n, 1)); break;
      case OpKind::Sub: out = sub(in(n, 0), in(n, 1)); break;
      case OpKind::Mul: out = mul(in(n, 0), in(n, 1)); break;
      case OpKind::Scale: out = scale(in(n, 0), n.f0); break;
      case OpKind::AddBias: out = add_bias(in(n, 0), in(n, 1)); break;
      case OpKind::Relu: out = relu(in(n, 0)); break;
      case OpKind::Gelu: out = gelu(in(n, 0)); break;
      case OpKind::Silu: out = silu(in(n, 0)); break;
      case OpKind::Reshape: out = reshape(in(n, 0), n.shape); break;
      case OpKind::Permute: out = permute(in(n, 0), n.dims); break;
      case OpKind::ConcatDim1:
        out = concat_dim1(in(n, 0), in(n, 1));
        break;
      case OpKind::SliceDim1: out = slice_dim1(in(n, 0), n.a, n.b); break;
      case OpKind::TileBatch: out = tile_batch(in(n, 0), n.a); break;
      case OpKind::RepeatHeads:
        out = repeat_heads(in(n, 0), static_cast<int>(n.a));
        break;
      case OpKind::Matmul: out = matmul(in(n, 0), in(n, 1)); break;
      case OpKind::Sum: out = sum(in(n, 0)); break;
      case OpKind::Softmax: out = softmax_lastdim(in(n, 0)); break;
      case OpKind::CausalSoftmax:
        out = causal_masked_softmax(in(n, 0));
        break;
      case OpKind::LayerNorm:
        out = layer_norm(in(n, 0), in(n, 1), in(n, 2), n.f0);
        break;
      case OpKind::RmsNorm: out = rms_norm(in(n, 0), in(n, 1), n.f0); break;
      case OpKind::Embedding:
        out = embedding(in(n, 0), ids_of(n), n.a, n.b);
        break;
      case OpKind::CrossEntropy:
        out = cross_entropy(in(n, 0), ids_of(n), n.i0);
        break;
      case OpKind::ToDevice: out = to_device(in(n, 0), *n.device); break;
      case OpKind::BiasGelu: out = bias_gelu(in(n, 0), in(n, 1)); break;
      case OpKind::FusedAddLayerNorm: {
        auto hy = fused_add_layer_norm(in(n, 0), in(n, 1), in(n, 2),
                                       in(n, 3), n.f0);
        slot[static_cast<std::size_t>(n.out[0])] = hy.first;
        out = hy.second;
        break;
      }
      case OpKind::Custom: {
        std::vector<Tensor> ins;
        ins.reserve(n.in.size());
        for (std::size_t k = 0; k < n.in.size(); ++k) {
          ins.push_back(in(n, static_cast<int>(k)));
        }
        out = n.custom(ins);
        break;
      }
    }
    slot[static_cast<std::size_t>(n.out.back())] = out;
    ++n.calls;
    n.millis += sw.elapsed_millis();
  }
  return slot[static_cast<std::size_t>(impl_->output)];
}

std::size_t StepGraph::size() const noexcept { return impl_->nodes.size(); }

int StepGraph::fused_chains() const noexcept { return impl_->fused; }

std::vector<std::size_t> StepGraph::planned_bytes() const {
  std::vector<std::size_t> plan;
  for (const GNode& n : impl_->nodes) {
    for (int v : n.out) {
      const std::size_t bytes = impl_->values[static_cast<std::size_t>(v)].bytes;
      if (bytes > 0) plan.push_back(bytes);
    }
  }
  return plan;
}

void StepGraph::warm_allocator(gpusim::Device& device) const {
  if (!impl_->is_ready) return;
  // Walk the decorator chain (audit(cache(meter)) in the default factory
  // composition) down to the pooling layer, if there is one.
  gpusim::Device* cur = &device;
  while (cur != nullptr) {
    if (auto* cache = dynamic_cast<mem::CachingAllocator*>(cur)) {
      cache->warm(planned_bytes());
      return;
    }
    auto* audit = dynamic_cast<gpusim::AuditDevice*>(cur);
    cur = audit != nullptr ? &audit->inner() : nullptr;
  }
}

std::vector<OpCost> StepGraph::cost_report() const {
  std::vector<OpCost> report;
  for (const GNode& n : impl_->nodes) {
    if (n.calls == 0) continue;
    const char* name = n.kind == OpKind::Custom && n.custom_name != nullptr
                           ? n.custom_name
                           : op_kind_name(n.kind);
    OpCost* entry = nullptr;
    for (OpCost& c : report) {
      if (c.name == name) {
        entry = &c;
        break;
      }
    }
    if (entry == nullptr) {
      report.push_back(OpCost{name, 0, 0.0});
      entry = &report.back();
    }
    entry->calls += n.calls;
    entry->millis += n.millis;
  }
  std::sort(report.begin(), report.end(),
            [](const OpCost& x, const OpCost& y) { return x.millis > y.millis; });
  return report;
}

}  // namespace menos::tensor::graph
