// Ablation: the Fig 3 release-policy ladder (a) preserve-all, (b) release
// after backward, (c) release while waiting for gradients, (d) + no-grad
// first forward (full Menos). Shows iteration time, schedule time, and the
// transient memory demand each policy needs per client.
#include "bench_common.h"

using namespace menos;

namespace {

struct PolicyRow {
  const char* label;
  core::ServingMode mode;
};

}  // namespace

int main() {
  bench::print_header(
      "Ablation — Fig 3 memory release policy ladder (Llama 2, 4 clients)",
      "§3.2: each rung frees memory earlier; (d) adds the cheap no-grad "
      "first forward so the activation cache is never materialized");

  const PolicyRow rows[] = {
      {"(a) preserve all", core::ServingMode::MenosPreserveAll},
      {"(b) release after bwd", core::ServingMode::MenosReleaseAfterBackward},
      {"(c) release waiting g_c", core::ServingMode::MenosReleaseEarly},
      {"(d) + no-grad fwd (Menos)", core::ServingMode::MenosOnDemand},
  };

  for (const sim::ModelSpec& spec :
       {sim::ModelSpec::opt_1_3b(), sim::ModelSpec::llama2_7b()}) {
    const int clients = 4;
    std::printf("\n--- %s, %d clients ---\n", spec.name.c_str(), clients);
    std::printf("%-28s  %-12s  %-12s  %-12s  %-9s\n", "policy", "iter (s)",
                "sched (s)", "compute (s)", "starved");
    for (const PolicyRow& row : rows) {
      auto r = sim::run_split_finetune(
          bench::make_config(spec, row.mode, clients));
      std::printf("%-28s  %-12s  %-12s  %-12s  %-9d\n", row.label,
                  bench::cell(r, r.avg_iteration_s).c_str(),
                  bench::cell(r, r.avg_schedule_s).c_str(),
                  bench::cell(r, r.avg_compute_s).c_str(),
                  r.starved_clients);
    }
  }
  std::printf(
      "\nReading: earlier release (a->d) trades a little extra compute for "
      "dramatically lower scheduling delay, which is the paper's central "
      "time-space argument.\n");
  return 0;
}
