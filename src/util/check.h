// Error-handling primitives for the Menos codebase.
//
// Philosophy (per the C++ Core Guidelines, E.2/E.3): exceptions signal
// violations of function preconditions and unrecoverable runtime failures;
// status-bearing return values are used only on I/O paths where failure is
// part of normal operation (see net/transport.h).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace menos {

/// Root of the Menos exception hierarchy. Everything thrown on purpose by
/// this library derives from Error, so callers can catch one type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad shape, bad argument...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A simulated device ran out of memory. Carries the shortfall so the
/// scheduler and tests can inspect it.
class OutOfMemory : public Error {
 public:
  OutOfMemory(const std::string& what, std::size_t requested,
              std::size_t available)
      : Error(what), requested_(requested), available_(available) {}
  std::size_t requested() const noexcept { return requested_; }
  std::size_t available() const noexcept { return available_; }

 private:
  std::size_t requested_;
  std::size_t available_;
};

/// An operation was attempted in a state that does not permit it.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Wire-format corruption or protocol violation detected by net/.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind,
                                             const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace menos

/// Precondition check: throws menos::InvalidArgument on failure. Always on
/// (these guard API misuse, not internal bugs, so they stay in release
/// builds — the cost is negligible next to tensor math).
#define MENOS_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::menos::detail::throw_check_failure("MENOS_CHECK", #cond, __FILE__, \
                                           __LINE__, "");                  \
    }                                                                      \
  } while (false)

/// Like MENOS_CHECK but with a streamed message:
///   MENOS_CHECK_MSG(a == b, "size mismatch: " << a << " vs " << b);
#define MENOS_CHECK_MSG(cond, stream_expr)                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream menos_check_os_;                                  \
      menos_check_os_ << stream_expr;                                      \
      ::menos::detail::throw_check_failure("MENOS_CHECK", #cond, __FILE__, \
                                           __LINE__, menos_check_os_.str()); \
    }                                                                      \
  } while (false)
