file(REMOVE_RECURSE
  "CMakeFiles/menos_gpusim.dir/device.cc.o"
  "CMakeFiles/menos_gpusim.dir/device.cc.o.d"
  "libmenos_gpusim.a"
  "libmenos_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
