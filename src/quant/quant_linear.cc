#include "quant/quant_linear.h"

namespace menos::quant {

QuantizedLinear::QuantizedLinear(const std::string& name, tensor::Index in,
                                 tensor::Index out, bool bias, Scheme scheme,
                                 nn::ParameterSource& source,
                                 gpusim::Device& device)
    : in_(in), out_(out) {
  MENOS_CHECK_MSG(in > 0 && out > 0, "QuantizedLinear dims must be positive");
  {
    // The float weight is transient: quantize, then let it go out of scope
    // (for a shared store the float master copy stays with its owner; only
    // the quantized form is resident here).
    tensor::Tensor w = source.get(name + ".weight", {in, out}, device, 0.02f);
    weight_q_ = QuantizedTensor::quantize(w, scheme, device);
  }
  if (bias) {
    bias_ = source.get(name + ".bias", {out}, device, 0.0f);
    register_parameter(name + ".bias", bias_);
  }
}

tensor::Tensor QuantizedLinear::forward(const tensor::Tensor& x) {
  tensor::Tensor y = quantized_matmul(x, weight_q_);
  if (bias_.defined()) y = tensor::add_bias(y, bias_);
  return y;
}

std::size_t QuantizedLinear::resident_bytes() const {
  return weight_q_.bytes() + (bias_.defined() ? bias_.bytes() : 0);
}

QLoraLinear::QLoraLinear(const std::string& name, tensor::Index in,
                         tensor::Index out, bool bias, Scheme scheme,
                         int rank, float alpha, nn::ParameterSource& source,
                         gpusim::Device& device, util::Rng& adapter_rng)
    : QuantizedLinear(name, in, out, bias, scheme, source, device),
      scale_(alpha / static_cast<float>(rank)) {
  MENOS_CHECK_MSG(rank > 0, "LoRA rank must be positive");
  a_ = tensor::Tensor::empty({in, rank}, device);
  adapter_rng.fill_normal(a_.data(), static_cast<std::size_t>(a_.numel()),
                          0.02f);
  a_.set_requires_grad(true);
  b_ = tensor::Tensor::zeros({rank, out}, device);
  b_.set_requires_grad(true);
  register_parameter(name + ".lora_a", a_);
  register_parameter(name + ".lora_b", b_);
}

tensor::Tensor QLoraLinear::forward(const tensor::Tensor& x) {
  tensor::Tensor base = QuantizedLinear::forward(x);
  tensor::Tensor delta = tensor::matmul(tensor::matmul(x, a_), b_);
  return tensor::add(base, tensor::scale(delta, scale_));
}

}  // namespace menos::quant
