// Microbenchmark of the scheduler decision path (google-benchmark).
// §4.2 claim: "the scheduler takes less than 0.1 milliseconds to make a
// decision".
#include <benchmark/benchmark.h>

#include "sched/scheduler.h"

namespace {

using menos::sched::ClientDemands;
using menos::sched::Grant;
using menos::sched::OpKind;
using menos::sched::Scheduler;

/// One request->grant->complete decision cycle with a populated client set.
void BM_ScheduleDecision(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  Scheduler s(1u << 30);
  int granted = 0;
  s.set_grant_callback([&](const Grant&) { ++granted; });
  for (int i = 0; i < clients; ++i) {
    s.register_client(i, ClientDemands{1 << 10, 1 << 12});
  }
  int next = 0;
  for (auto _ : state) {
    const int c = next;
    next = (next + 1) % clients;
    s.on_request(c, OpKind::Backward);
    s.on_complete(c);
  }
  benchmark::DoNotOptimize(granted);
  state.SetLabel("paper claim: < 0.1 ms per decision");
}
BENCHMARK(BM_ScheduleDecision)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Decision latency with a deep waiting list (the backfilling scan).
void BM_ScheduleWithWaitingList(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Scheduler s(1u << 20);
    int granted = 0;
    s.set_grant_callback([&](const Grant&) { ++granted; });
    // Client 0 consumes everything; the rest queue behind it.
    s.register_client(0, ClientDemands{1u << 20, 1u << 20});
    for (int i = 1; i <= waiters; ++i) {
      s.register_client(i, ClientDemands{1 << 8, 1 << 10});
    }
    s.on_request(0, OpKind::Backward);
    for (int i = 1; i <= waiters; ++i) s.on_request(i, OpKind::Backward);
    state.ResumeTiming();
    // The measured decision: one release that must scan all waiters.
    s.on_complete(0);
    benchmark::DoNotOptimize(granted);
  }
}
BENCHMARK(BM_ScheduleWithWaitingList)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
