// Shared harness for the convergence figures (Figs 8 and 9): real split
// fine-tuning of a tiny model from the target family, multiple clients
// against one Menos server, compared with local (single-device)
// fine-tuning — the dashed baseline in the paper's plots.
#pragma once

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "net/transport.h"

namespace menos::bench {

struct ConvergenceSettings {
  nn::TransformerConfig model;
  int clients = 3;
  int steps = 60;
  int report_every = 10;
  float lr = 1e-2f;
  std::uint64_t base_seed = 42;
  bool use_wikitext = true;  ///< false -> tiny-shakespeare-like corpus
};

inline data::DataLoader make_loader(bool wikitext, std::uint64_t seed) {
  data::CharTokenizer tok;
  const data::Corpus corpus = wikitext
                                  ? data::make_wikitext_like(6000, 123)
                                  : data::make_shakespeare_like(6000, 123);
  return data::DataLoader(tok.encode(corpus.text), 2, 16, seed);
}

inline net::FinetuneConfig make_finetune(const ConvergenceSettings& s,
                                         const std::string& name,
                                         std::uint64_t adapter_seed) {
  net::FinetuneConfig ft;
  ft.client_name = name;
  ft.model = s.model;
  ft.adapter.rank = 8;
  ft.adapter.alpha = 16.0f;  // the paper's PEFT-derived LoRA configuration
  // Our base is randomly initialized rather than pretrained, so the LoRA
  // targets are extended to the client-side LM head for visible
  // convergence (documented substitution, DESIGN.md §1).
  ft.adapter.target_lm_head = true;
  ft.optimizer = optim::OptimizerKind::Adam;
  ft.lr = s.lr;
  ft.batch_size = 2;
  ft.seq_len = 16;
  ft.adapter_seed = adapter_seed;
  return ft;
}

inline void run_convergence(const ConvergenceSettings& s,
                            const char* figure_name) {
  // Local fine-tuning baseline (the dashed blue line).
  std::vector<double> local_losses;
  {
    auto host = gpusim::make_host_device();
    nn::FreshInit init(s.base_seed);
    nn::AdapterSpec adapter;
    adapter.rank = 8;
    adapter.alpha = 16.0f;
    adapter.target_lm_head = true;
    nn::SplitSpec split;
    nn::LocalModel model(s.model, split, adapter, init, *host, 9000);
    auto optimizer = optim::make_optimizer(optim::OptimizerKind::Adam,
                                           model.trainable_parameters(), s.lr);
    auto loader = make_loader(s.use_wikitext, 500);
    for (int i = 0; i < s.steps; ++i) {
      data::Batch b = loader.next();
      tensor::Tensor loss = model.loss(b.inputs, b.targets, 2, 16);
      local_losses.push_back(loss.item());
      tensor::backward(loss);
      optimizer->step();
      optimizer->zero_grad();
    }
  }

  // Split fine-tuning: N clients, one Menos server, shared base model.
  gpusim::DeviceManager devices(1, 1u << 30);
  core::ServerConfig config;
  config.mode = core::ServingMode::MenosOnDemand;
  config.base_seed = s.base_seed;
  core::Server server(config, devices, s.model);
  net::InprocAcceptor acceptor;
  server.start(acceptor);

  gpusim::DeviceManager client_devices(1, 1u << 30);
  std::vector<std::unique_ptr<core::Client>> clients;
  std::vector<data::DataLoader> loaders;
  for (int c = 0; c < s.clients; ++c) {
    core::ClientOptions options;
    options.finetune = make_finetune(s, "client" + std::to_string(c),
                                     9000 + static_cast<std::uint64_t>(c));
    options.base_seed = s.base_seed;
    clients.push_back(std::make_unique<core::Client>(
        options, acceptor.connect(), client_devices.gpu(0)));
    clients.back()->connect();
    loaders.push_back(make_loader(s.use_wikitext,
                                  500 + static_cast<std::uint64_t>(c) * 97));
  }

  std::vector<std::vector<double>> client_losses(
      static_cast<std::size_t>(s.clients));
  for (int step = 0; step < s.steps; ++step) {
    for (int c = 0; c < s.clients; ++c) {
      const auto stats =
          clients[static_cast<std::size_t>(c)]->train_step(
              loaders[static_cast<std::size_t>(c)].next());
      client_losses[static_cast<std::size_t>(c)].push_back(stats.loss);
    }
  }

  std::printf("%-6s  %-18s", "step", "local ppl (dashed)");
  for (int c = 0; c < s.clients; ++c) std::printf("  client%d ppl", c);
  std::printf("\n");
  const auto window_ppl = [&](const std::vector<double>& losses, int upto) {
    double acc = 0.0;
    int n = 0;
    for (int i = std::max(0, upto - s.report_every + 1); i <= upto; ++i) {
      acc += losses[static_cast<std::size_t>(i)];
      ++n;
    }
    return std::exp(acc / n);
  };
  for (int step = s.report_every - 1; step < s.steps;
       step += s.report_every) {
    std::printf("%-6d  %-18.2f", step + 1, window_ppl(local_losses, step));
    for (int c = 0; c < s.clients; ++c) {
      std::printf("  %11.2f",
                  window_ppl(client_losses[static_cast<std::size_t>(c)], step));
    }
    std::printf("\n");
  }

  const double local_final = window_ppl(local_losses, s.steps - 1);
  double worst_gap = 0.0;
  for (int c = 0; c < s.clients; ++c) {
    const double ppl =
        window_ppl(client_losses[static_cast<std::size_t>(c)], s.steps - 1);
    worst_gap = std::max(worst_gap, std::fabs(ppl - local_final));
  }
  std::printf(
      "\n%s verdict: all %d split clients end within %.2f perplexity of the "
      "local baseline (%.2f) — \"all clients reached the same final "
      "perplexities as local fine-tuning\".\n",
      figure_name, s.clients, worst_gap, local_final);

  for (auto& c : clients) c->disconnect();
  server.stop();
}

}  // namespace menos::bench
