file(REMOVE_RECURSE
  "CMakeFiles/menos_tensor.dir/autograd.cc.o"
  "CMakeFiles/menos_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/menos_tensor.dir/ops.cc.o"
  "CMakeFiles/menos_tensor.dir/ops.cc.o.d"
  "CMakeFiles/menos_tensor.dir/tensor.cc.o"
  "CMakeFiles/menos_tensor.dir/tensor.cc.o.d"
  "libmenos_tensor.a"
  "libmenos_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/menos_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
