file(REMOVE_RECURSE
  "CMakeFiles/ablation_reforward.dir/ablation_reforward.cc.o"
  "CMakeFiles/ablation_reforward.dir/ablation_reforward.cc.o.d"
  "ablation_reforward"
  "ablation_reforward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reforward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
