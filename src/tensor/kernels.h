// Raw row-major matmul kernels behind tensor::matmul and its backward.
//
// All three ACCUMULATE into C (callers zero-fill or reuse running sums) and
// are parallelized internally over output rows via util::parallel_for. The
// determinism contract (docs/PERF.md): every output element is produced by
// exactly one thread, and its floating-point reduction order is fixed —
// ascending over the contraction index — so results are bit-identical for
// any MENOS_THREADS setting.
#pragma once

#include "tensor/tensor.h"

namespace menos::tensor::kernels {

/// C[m,n] += A[m,k] * B[k,n]
void mm(const float* a, const float* b, float* c, Index m, Index k, Index n);

/// C[m,k] += A[m,n] * B[k,n]^T   (i.e. C[i,p] += sum_j A[i,j] * B[p,j])
void mm_nt(const float* a, const float* b, float* c, Index m, Index n,
           Index k);

/// C[k,n] += A[m,k]^T * B[m,n]   (i.e. C[p,j] += sum_i A[i,p] * B[i,j])
void mm_tn(const float* a, const float* b, float* c, Index m, Index k,
           Index n);

}  // namespace menos::tensor::kernels
