#include "core/session.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "core/batch.h"
#include "core/checkpoint.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace menos::core {

std::optional<sched::ClientDemands> ProfileCache::find(
    const std::string& key) const {
  util::MutexLock lock(mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

void ProfileCache::insert(const std::string& key,
                          const sched::ClientDemands& demands) {
  util::MutexLock lock(mutex_);
  cache_[key] = demands;
}

ServingSession::ServingSession(int id, std::uint64_t token,
                               std::unique_ptr<net::Connection> connection,
                               const ServerConfig& config,
                               const ParameterStore* store,
                               const nn::TransformerConfig& model,
                               sched::Scheduler& scheduler,
                               gpusim::DeviceManager& devices,
                               util::Mutex& profiling_mutex,
                               ProfileCache& profile_cache,
                               Executor& executor, net::Poller& poller,
                               mem::OffloadEngine* offload)
    : id_(id),
      token_(token),
      config_(config),
      store_(store),
      model_(model),
      scheduler_(&scheduler),
      devices_(&devices),
      gpu_(&devices.gpu(0)),
      host_(&devices.host()),
      profiling_mutex_(&profiling_mutex),
      profile_cache_(&profile_cache),
      executor_(&executor),
      poller_(&poller),
      offload_(offload),
      strand_(executor.pool()) {
  MENOS_CHECK_MSG(!shares_base_model(config.mode) || store_ != nullptr,
                  "shared serving modes require a ParameterStore");
  util::MutexLock lock(conn_mutex_);
  connection_ = std::move(connection);
  serving_conn_ = connection_;
  // Arm the lease immediately: a connection that never completes its
  // handshake must still be reaped, or an attacker (or a crashed client)
  // could strand a session slot forever.
  touch_lease_locked();
}

ServingSession::~ServingSession() {
  // Normal teardown unwatches on the strand (finish_now/finish_session);
  // this is the backstop for a session destroyed without ever starting.
  if (watch_token_ != 0) poller_->unwatch(watch_token_);
}

void ServingSession::start() {
  watch_conn(serving_conn_);
}

void ServingSession::request_stop() {
  stop_requested_.store(true);
  {
    util::MutexLock lock(conn_mutex_);
    if (connection_ != nullptr) connection_->close();
  }
  post_event([](ServingSession& s) { s.stop_event(); });
}

void ServingSession::on_grant(const sched::Grant& grant) {
  (void)grant;  // single-GPU runtime: partition is always 0
  if (unit_registered_.load()) {
    // Prefetch-on-grant: start the swap-in on the background task lane so
    // it overlaps other clients' compute; the strand's ensure_resident()
    // joins it (or retries a failed charge).
    offload_->prefetch(id_);
  }
  post_event([](ServingSession& s) { s.grant_event(); });
}

std::size_t ServingSession::persistent_gpu_bytes() const {
  if (config_.mode == ServingMode::VanillaTaskSwap) {
    return on_gpu_.load() ? task_bytes_.load() : 0;
  }
  if (unit_registered_.load() && !offload_->resident(id_)) {
    return 0;  // A + O currently evicted to host memory
  }
  return persistent_bytes_.load();
}

SessionStats ServingSession::stats() const {
  util::MutexLock lock(stats_mutex_);
  return stats_;
}

// ----- event plumbing --------------------------------------------------

void ServingSession::post_event(std::function<void(ServingSession&)> event) {
  strand_.post([self = shared_from_this(), event = std::move(event)] {
    if (self->state_ == State::Finished) return;
    try {
      event(*self);
    } catch (const Error& e) {
      // The serve loop's error contract: surface the failure to the client
      // and tear the session down through cleanup.
      MENOS_LOG(Warn) << "session " << self->id_ << " failed: " << e.what();
      self->send_reply(net::Message::error(e.what()));
      self->finish_session();
    }
  });
}

void ServingSession::watch_conn(
    const std::shared_ptr<net::Connection>& conn) {
  std::weak_ptr<ServingSession> weak = weak_from_this();
  watch_token_ = poller_->watch(*conn, [weak] {
    if (auto self = weak.lock()) {
      self->post_event([](ServingSession& s) { s.pump(); });
    }
  });
  // Watches start disarmed with a latched signal; delivery (including the
  // initial "there may be buffered frames" kick) begins here, after
  // watch_token_ is safely stored for rearm_watch().
  poller_->rearm(watch_token_);
}

void ServingSession::unwatch_conn() {
  if (watch_token_ == 0) return;
  poller_->unwatch(watch_token_);
  watch_token_ = 0;
}

void ServingSession::rearm_watch() {
  if (watch_token_ != 0) poller_->rearm(watch_token_);
}

void ServingSession::pump() {
  while (state_ == State::Handshake || state_ == State::AwaitRequest) {
    std::shared_ptr<net::Connection> conn = serving_conn_;
    if (conn == nullptr) {
      if (!handle_link_down()) return;
      continue;
    }
    net::Message msg;
    net::RecvStatus status;
    try {
      status = conn->try_receive(&msg);
    } catch (const ProtocolError& e) {
      // A frame failed CRC/length checks: the stream cannot be
      // resynchronized. Without leases this stays fatal to the session
      // (pre-fault-tolerance behavior); with leases only the link dies and
      // the client reconnects with ResumeSession.
      if (!lease_enabled() || state_ == State::Handshake) throw;
      MENOS_LOG(Warn) << "session " << id_
                      << " dropping corrupt link: " << e.what();
      conn->close();
      continue;
    }
    if (status == net::RecvStatus::Empty) {
      rearm_watch();
      return;
    }
    if (status == net::RecvStatus::Closed) {
      if (!handle_link_down()) return;
      continue;
    }
    {
      util::MutexLock lock(conn_mutex_);
      touch_lease_locked();
    }
    if (msg.type == net::MessageType::Heartbeat) {
      conn->send(net::Message::heartbeat_ack());
      continue;
    }
    handle_frame(msg);
  }
}

void ServingSession::handle_frame(const net::Message& msg) {
  if (state_ == State::Handshake) {
    if (msg.type == net::MessageType::ResumeSession) {
      // A reconnecting client: hand the connection to the parked session
      // that minted the token. This session existed only to read the first
      // frame and never registered anything, so no cleanup is needed.
      route_resume(msg.session_token);
      finish_now();
      return;
    }
    if (msg.type != net::MessageType::Hello) {
      send_reply(net::Message::error(
          "expected Hello, got " +
          std::string(net::message_type_name(msg.type))));
      finish_now();
      return;
    }
    handshake(msg);
    return;
  }
  switch (msg.type) {
    case net::MessageType::Forward:
      start_forward(msg);
      break;
    case net::MessageType::Backward:
      start_backward(msg);
      break;
    case net::MessageType::FetchAdapter:
      // The server-side adapter phi_s belongs to the client: hand over a
      // serialized copy (never the frozen base parameters). Busy-pin the
      // residency unit so an eviction cannot migrate the adapter tensors
      // mid-serialize.
      offload_begin_use();
      send_reply(net::Message::adapter_blob(serialize_adapter(*section_)));
      offload_end_use();
      break;
    case net::MessageType::PushAdapter:
      offload_begin_use();
      deserialize_adapter(msg.blob.data(), msg.blob.size(), *section_);
      offload_end_use();
      send_reply(net::Message::push_ack());
      break;
    case net::MessageType::Bye:
      finish_session();
      break;
    default:
      throw ProtocolError("unexpected message in serve loop: " +
                          std::string(net::message_type_name(msg.type)));
  }
}

void ServingSession::route_resume(std::uint64_t token) {
  // Clear our readiness hook before handing the connection over: the
  // parked session installs its own watch on attach.
  unwatch_conn();
  std::shared_ptr<net::Connection> conn;
  {
    // Disown the connection either way: on success the parked session owns
    // it, and on failure it is closed below — never by our destructor.
    util::MutexLock lock(conn_mutex_);
    conn = std::move(connection_);
    connection_ = nullptr;
  }
  serving_conn_.reset();
  if (conn == nullptr) return;
  if (resume_router_ != nullptr && resume_router_(token, conn)) return;
  conn->send(net::Message::error("unknown or expired session token"));
  conn->close();
}

bool ServingSession::handle_link_down() {
  unwatch_conn();
  if (state_ == State::Handshake) {
    // The peer vanished before its first frame; nothing was registered, so
    // no cleanup is needed.
    finish_now();
    return false;
  }
  std::shared_ptr<net::Connection> conn;
  bool expired = false;
  {
    util::MutexLock lock(conn_mutex_);
    conn = connection_;
    expired = expired_;
  }
  const bool stopped = stop_requested_.load();
  if (conn != nullptr && conn != serving_conn_ && !stopped && !expired) {
    // attach() already delivered a resumed link (possibly while we were
    // computing); switch to it and keep serving.
    serving_conn_ = conn;
    watch_conn(conn);
    return true;
  }
  if (!lease_enabled() || stopped || expired) {
    finish_session();
    return false;
  }
  // Park across link loss until attach() posts a resume event or the lease
  // reaper expires us (docs/FAULTS.md).
  state_ = State::Parked;
  serving_conn_.reset();
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Session, "session.parked",
                          id_);
  }
  return false;
}

void ServingSession::grant_event() {
  if (state_ == State::AwaitForwardGrant) {
    holding_allocation_ = true;
    state_ = State::Forward;
    net::Message msg = std::move(pending_msg_);
    pending_msg_ = net::Message();
    finish_forward(msg, wait_sw_.elapsed_seconds());
  } else if (state_ == State::AwaitBackwardGrant) {
    holding_allocation_ = true;
    state_ = State::Backward;
    net::Message msg = std::move(pending_msg_);
    pending_msg_ = net::Message();
    finish_backward(msg, wait_sw_.elapsed_seconds());
  }
  // Any other state: a stale grant that raced a stop/expiry; cleanup's
  // allocated_to() check reclaims the allocation.
}

// ----- fused-batch path (core/batch.h) ----------------------------------

void ServingSession::batch_join(const std::shared_ptr<BatchGroup>& group,
                                std::size_t slot) {
  // Raw strand post, not post_event: the delivery countdown must reach
  // zero even when this member finished between the grant and this post —
  // otherwise the whole group (and every other member's memory) would
  // stall forever on one dead session.
  strand_.post([self = shared_from_this(), group, slot] {
    try {
      self->batch_join_event(*group, slot);
    } catch (const Error& e) {
      MENOS_LOG(Warn) << "session " << self->id_ << " failed: " << e.what();
      if (self->state_ != State::Finished) {
        self->send_reply(net::Message::error(e.what()));
        self->finish_session();
      }
    }
    if (group->outstanding.fetch_sub(1) == 1) {
      // Last member to deliver runs the fused pass inline on its strand.
      group->coordinator->finish_group(group);
    }
  });
}

void ServingSession::batch_join_event(BatchGroup& group, std::size_t slot) {
  if (state_ == State::Finished) return;
  BatchContribution& c = group.contributions[slot];
  const bool forward = group.grant.kind == sched::OpKind::Forward;
  // Join only from the matching grant-wait state; anything else is a stale
  // group grant that raced a stop/expiry — contribute nothing, the
  // coordinator's group release reclaims the member's charge.
  if (forward && state_ != State::AwaitForwardGrant) return;
  if (!forward && state_ != State::AwaitBackwardGrant) return;

  holding_allocation_ = true;
  state_ = forward ? State::Forward : State::Backward;
  net::Message msg = std::move(pending_msg_);
  pending_msg_ = net::Message();
  c.batch_key = batch_key_;
  c.config = client_config_;
  c.iteration = msg.iteration;
  c.wait_seconds = wait_sw_.elapsed_seconds();
  if (forward) {
    // Mirror finish_forward's re-forward modes: cache x_c for the later
    // Backward before handing it to the fused pass.
    if (!msg.eval_only) cached_activation_ = msg.tensor;
    c.activation = std::move(msg.tensor);
  } else {
    if (cached_activation_.data.empty()) {
      throw ProtocolError("Backward with no preceding Forward");
    }
    c.activation = cached_activation_;
    c.grad = std::move(msg.tensor);
  }
  // Owned copies only from here: the fused pass runs on another member's
  // strand and must not reach back into this session's state.
  c.joined = true;
}

void ServingSession::batch_complete(BatchOutcome outcome) {
  auto carried = std::make_shared<BatchOutcome>(std::move(outcome));
  post_event([carried](ServingSession& s) {
    s.batch_complete_event(*carried);
  });
}

void ServingSession::batch_complete_event(BatchOutcome& outcome) {
  const bool forward = outcome.kind == sched::OpKind::Forward;
  if (forward && state_ != State::Forward) return;
  if (!forward && state_ != State::Backward) return;
  // The coordinator released the whole group's scheduler charge in one
  // on_complete_group call — drop the local claim without a round trip.
  holding_allocation_ = false;
  offload_end_use();  // balances start_forward/start_backward's pin
  if (!outcome.ok) {
    throw StateError("fused batch failed: " + outcome.error);
  }
  {
    util::MutexLock lock(stats_mutex_);
    stats_.schedule_wait_s.add(outcome.wait_seconds);
    stats_.compute_s.add(outcome.compute_seconds);
    if (!forward) {
      ++stats_.iterations;
      ++stats_.reforwards;  // the fused Backward re-forwards the trunk
    }
  }
  if (config_.trace != nullptr) {
    config_.trace->record(
        util::TraceCategory::Scheduler,
        forward ? "forward.wait" : "backward.wait", id_,
        static_cast<std::uint64_t>(outcome.wait_seconds * 1e6));
    config_.trace->record(
        util::TraceCategory::Session,
        forward ? "forward.compute" : "backward.compute", id_,
        static_cast<std::uint64_t>(outcome.compute_seconds * 1e6));
  }
  net::Message reply =
      forward ? net::Message::forward_result(std::move(outcome.result),
                                             outcome.iteration)
              : net::Message::backward_result(std::move(outcome.result),
                                              outcome.iteration);
  reply.compute_seconds = outcome.compute_seconds;
  reply.schedule_wait_seconds = outcome.wait_seconds;
  if (!forward) {
    // No optimizer step: a coalescible session's server section is fully
    // frozen (checked at handshake), so the solo path's step/zero_grad
    // would have been a no-op anyway.
    backwards_applied_.store(outcome.iteration + 1);
    if (lease_enabled()) last_backward_reply_ = reply;
  }
  send_reply(reply);
  state_ = State::AwaitRequest;
  pump();  // drain frames that buffered while the fused pass ran
}

void ServingSession::resume_event() {
  std::shared_ptr<net::Connection> conn;
  {
    util::MutexLock lock(conn_mutex_);
    conn = connection_;
  }
  if (conn == nullptr || conn == serving_conn_) return;
  if (state_ == State::Parked || state_ == State::AwaitRequest) {
    state_ = State::AwaitRequest;
    unwatch_conn();
    serving_conn_ = conn;
    watch_conn(conn);
    pump();
  }
  // Grant-wait states keep replying on the connection the in-flight
  // request arrived on; the switch happens through handle_link_down once
  // that reply fails.
}

void ServingSession::stop_event() {
  switch (state_) {
    case State::Handshake:
      finish_now();
      return;
    case State::AwaitForwardGrant:
    case State::AwaitBackwardGrant:
      // The grant never arrives for a stopped/expired session; surface the
      // same error the blocking acquire() used to throw, then tear down
      // (cleanup's unregister drops the pending request).
      fail_session("session stopped while waiting to be scheduled");
      return;
    default:
      finish_session();
  }
}

void ServingSession::expire_event() { stop_event(); }

void ServingSession::finish_now() {
  if (finished_.exchange(true)) return;
  state_ = State::Finished;
  unwatch_conn();
  if (on_finished_) on_finished_();
}

void ServingSession::finish_session() {
  if (finished_.load()) return;
  state_ = State::Finished;
  unwatch_conn();
  cleanup();  // sets finished_
  if (on_finished_) on_finished_();
}

void ServingSession::fail_session(const std::string& reason) {
  MENOS_LOG(Warn) << "session " << id_ << " failed: " << reason;
  send_reply(net::Message::error(reason));
  finish_session();
}

// ----- handshake + profiling -------------------------------------------

void ServingSession::handshake(const net::Message& hello) {
  state_ = State::Profiling;
  client_config_ = hello.config;
  client_config_.model.validate();
  client_config_.split.validate(client_config_.model);
  if (!same_model(client_config_.model, model_)) {
    throw InvalidArgument("client requested a model this server does not host");
  }
  MENOS_CHECK_MSG(client_config_.batch_size > 0 &&
                      client_config_.seq_len > 0 &&
                      client_config_.seq_len <= model_.max_seq,
                  "invalid batch/sequence configuration");
  // Heterogeneity profile (net::ClientProfile): the declared cut depth must
  // agree with the split actually sent — a disagreement means the client is
  // confused about where its half ends, and serving the wrong trunk would
  // corrupt training silently.
  const net::ClientProfile& hello_profile = client_config_.profile;
  if (hello_profile.cut_depth != 0 &&
      hello_profile.cut_depth != client_config_.split.front_blocks) {
    throw InvalidArgument(
        "client profile cut_depth disagrees with split.front_blocks");
  }
  frozen_ = hello_profile.frozen_client_half;
  codec_ = hello_profile.codec;

  // Adapter RNG derivation shared with nn::LocalModel: stream #1 is the
  // client's input section, #2 ours, #3 the client's output section.
  util::Rng root(client_config_.adapter_seed);
  (void)root.fork();
  util::Rng server_rng = root.fork();

  const bool vanilla = config_.mode == ServingMode::VanillaTaskSwap;
  if (vanilla) {
    // Vanilla duplicates the base parameters per client. Build on the host
    // and swap in for profiling so an occupied GPU cannot OOM mid-build.
    // (Vanilla is single-GPU: it swaps whole tasks through gpu(0).)
    nn::FreshInit init(config_.base_seed);
    section_ = std::make_unique<nn::ServerSection>(
        client_config_.model, client_config_.split, client_config_.adapter,
        init, *host_, server_rng);
    gpu_ = &devices_->gpu(0);
    on_gpu_.store(false);
  } else {
    // The structure follows the store's block-to-GPU layer assignment, so
    // a multi-GPU server splits every client's section the same way.
    nn::SharedSource source = store_->source();
    const std::function<gpusim::Device&(int)> device_for =
        [this](int block) -> gpusim::Device& {
      return store_->device_for_block(block);
    };
    section_ = std::make_unique<nn::ServerSection>(
        client_config_.model, client_config_.split, client_config_.adapter,
        source, device_for, server_rng);
    gpu_ = &section_->entry_device();
    on_gpu_.store(true);
  }

  optimizer_ = optim::make_optimizer(client_config_.optimizer,
                                     section_->trainable_parameters(),
                                     client_config_.lr);

  if (vanilla) {
    task_bytes_.store(section_->parameter_bytes() +
                      optimizer_->state_bytes());
  } else {
    const std::size_t wanted =
        section_->trainable_parameter_bytes() + optimizer_->state_bytes();
    scheduler_->reserve_persistent(0, wanted);  // throws OutOfMemory if full
    persistent_bytes_.store(wanted);
  }

  demands_ = profile();
  // Frozen-half sessions stay out of coalescing: the fused batched
  // backward materializes per-member cut gradients, which a SplitFrozen
  // session must never produce or ship.
  batch_key_ =
      (vanilla || frozen_) ? 0 : compute_batch_key(config_, client_config_);
  // A coalescible session's trunk pass runs on the coordinator's shared
  // frozen trunk — there must be no per-client server-side trainables for
  // it to miss (compute_batch_key only admits None/Prefix adapters, which
  // guarantee this by construction).
  MENOS_CHECK_MSG(batch_key_ == 0 ||
                      section_->trainable_parameters().empty(),
                  "coalescible sessions require a frozen server section");
  scheduler_->register_client(id_, demands_, batch_key_);
  if (!vanilla && offload_ != nullptr) register_residency_unit();
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Session, "handshake", id_);
    config_.trace->record(util::TraceCategory::Memory, "profile.forward",
                          id_, demands_.forward_bytes);
    config_.trace->record(util::TraceCategory::Memory, "profile.backward",
                          id_, demands_.backward_bytes);
  }
  send_reply(net::Message::hello_ack(demands_.forward_bytes,
                                     demands_.backward_bytes, token_,
                                     config_.lease_seconds));
  state_ = State::AwaitRequest;
}

std::string ServingSession::profile_key() const {
  std::ostringstream os;
  const auto& c = client_config_;
  os << serving_mode_name(config_.mode) << '|'
     << nn::model_family_name(c.model.family) << '|' << c.model.dim << 'x'
     << c.model.n_layers << 'h' << c.model.n_heads << 'f'
     << c.model.ffn_hidden << 'v' << c.model.vocab_size << '|'
     << c.split.front_blocks << '-' << c.split.back_blocks << '|'
     << nn::adapter_type_name(c.adapter.type) << 'r' << c.adapter.rank << 'p'
     << c.adapter.prefix_len << '|'
     << optim::optimizer_kind_name(c.optimizer) << '|' << c.batch_size << 'x'
     << c.seq_len;
  // Frozen sessions profile with a no-grad cut input, which changes the
  // measured backward peak — they must not share cache entries with
  // trainable-half sessions of the same config.
  if (frozen_) os << "|frozen";
  return os.str();
}

sched::ClientDemands ServingSession::profile() {
  using tensor::Index;
  using tensor::Tensor;

  const bool vanilla = config_.mode == ServingMode::VanillaTaskSwap;
  const std::string key = profile_key();
  if (auto cached = profile_cache_->find(key)) {
    if (vanilla) {
      // Activation demands transfer between identical configs; the task
      // residency component is this session's own.
      sched::ClientDemands d = *cached;
      d.forward_bytes += task_bytes_.load();
      d.backward_bytes += task_bytes_.load();
      return d;
    }
    return *cached;
  }

  // §3.3: "the server generates random input sequences based on the
  // reported configurations ... passed through forward and backward
  // computations to measure the GPU memory demands."
  util::MutexLock lock(*profiling_mutex_);
  if (vanilla) swap_to(*gpu_);

  const Index batch = client_config_.batch_size;
  const Index prefix = client_config_.adapter.type == nn::AdapterType::Prefix
                           ? client_config_.adapter.prefix_len
                           : 0;
  const Index seq = client_config_.seq_len + prefix;
  const Index dim = client_config_.model.dim;
  util::Rng rng(0x9ec0ffee ^ static_cast<std::uint64_t>(id_));

  const auto make_input = [&](bool requires_grad) {
    Tensor x = Tensor::empty({batch, seq, dim}, *gpu_);
    rng.fill_normal(x.data(), static_cast<std::size_t>(x.numel()), 0.5f);
    x.set_requires_grad(requires_grad);
    return x;
  };

  // Demands aggregate across every GPU the section's layers touch (the
  // scheduler manages the Fig 2 "GPU memory" abstraction — the union of
  // all GPUs).
  const int gpus = devices_->gpu_count();
  std::vector<std::size_t> bases(static_cast<std::size_t>(gpus));
  const auto mark = [&] {
    for (int g = 0; g < gpus; ++g) {
      bases[static_cast<std::size_t>(g)] = devices_->gpu(g).allocated();
      devices_->gpu(g).reset_peak();
    }
  };
  const auto measure = [&] {
    std::size_t total = 0;
    for (int g = 0; g < gpus; ++g) {
      total += devices_->gpu(g).stats().peak -
               bases[static_cast<std::size_t>(g)];
    }
    return total;
  };

  sched::ClientDemands d;
  {
    mark();
    if (config_.mode == ServingMode::MenosOnDemand) {
      tensor::NoGradGuard no_grad;
      Tensor x = make_input(false);
      Tensor y = section_->forward(x);
    } else {
      // SplitFrozen: the cut input never tracks gradients, shrinking the
      // held graph — profile what the serving path will actually allocate.
      Tensor x = make_input(!frozen_);
      Tensor y = section_->forward(x);
    }
    d.forward_bytes = measure();
  }
  {
    mark();
    {
      Tensor x = make_input(!frozen_);
      Tensor y = section_->forward(x);
      Tensor seed;
      {
        tensor::NoGradGuard no_grad;
        seed = Tensor::zeros(y.shape(), *gpu_);
      }
      // Optimizer.step() allocates nothing (state is pre-allocated), so the
      // peak here covers the full backward path. No step is taken: profiling
      // must not perturb the adapter.
      tensor::backward(y, seed);
      optimizer_->zero_grad();
      if (!frozen_) x.zero_grad();
    }
    d.backward_bytes = measure();
  }

  if (holds_across_iteration(config_.mode)) {
    // The allocation spans forward -> backward, so its size must cover the
    // backward peak from the start.
    d.forward_bytes = d.backward_bytes;
  }

  profile_cache_->insert(key, d);
  if (vanilla) {
    swap_to(*host_);
    d.forward_bytes += task_bytes_.load();
    d.backward_bytes += task_bytes_.load();
  }
  return d;
}

// ----- scheduler + residency helpers -----------------------------------

void ServingSession::release() {
  if (!holding_allocation_) return;
  holding_allocation_ = false;
  // Under a group grant the BatchCoordinator releases the whole group's
  // charge itself (on_complete_group); a member failing or tearing down
  // mid-pass must only hand back what the scheduler still holds for it.
  if (scheduler_->allocated_to(id_) == 0) return;
  try {
    scheduler_->on_complete(id_);
  } catch (const Error&) {
    // Lost the race to the group release between the check above and the
    // call — the charge is already free.
  }
}

void ServingSession::swap_to(gpusim::Device& device) {
  const bool to_gpu = &device == gpu_;
  if (on_gpu_.load() == to_gpu) return;
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Memory,
                          to_gpu ? "swap.in" : "swap.out", id_,
                          task_bytes_.load());
  }
  for (nn::Parameter& p : section_->parameters()) {
    p.value.migrate(device);
  }
  for (tensor::Tensor t : optimizer_->state_tensors()) {
    t.migrate(device);
  }
  on_gpu_.store(to_gpu);
}

mem::UnitCallbacks ServingSession::make_unit_callbacks() {
  // Snapshot the unit's tensors with their home devices: the trainable
  // adapter parameters plus the optimizer state (exactly the A + O the
  // scheduler charge covers). Tensors are shared handles, so migrating
  // these copies moves the live storage the section and optimizer use.
  std::vector<std::pair<tensor::Tensor, gpusim::Device*>> homed;
  for (nn::Parameter& p : section_->trainable_parameters()) {
    homed.emplace_back(p.value, &p.value.device());
  }
  for (tensor::Tensor t : optimizer_->state_tensors()) {
    homed.emplace_back(t, &t.device());
  }
  mem::UnitCallbacks callbacks;
  callbacks.move = [this, homed](bool to_device) mutable {
    if (config_.trace != nullptr) {
      config_.trace->record(util::TraceCategory::Memory,
                            to_device ? "swap.in" : "swap.out", id_,
                            persistent_bytes_.load());
    }
    for (auto& [t, home] : homed) t.migrate(to_device ? *home : *host_);
  };
  callbacks.charge = [this] {
    // SwapOnIdle: reserve_persistent runs its own reclaim pass before
    // giving up, so a move-in can in turn evict somebody idler.
    scheduler_->reserve_persistent(0, persistent_bytes_.load());
  };
  return callbacks;
}

void ServingSession::register_residency_unit() {
  offload_->register_unit(id_, persistent_bytes_.load(),
                          make_unit_callbacks());
  unit_registered_.store(true);
}

void ServingSession::offload_begin_use() {
  if (unit_registered_.load()) offload_->begin_use(id_);
}

void ServingSession::offload_end_use() {
  if (unit_registered_.load()) offload_->end_use(id_);
}

void ServingSession::offload_ensure_resident() {
  if (unit_registered_.load()) offload_->ensure_resident(id_);
}

// ----- lease + resume ---------------------------------------------------

bool ServingSession::send_reply(const net::Message& message) {
  if (serving_conn_ == nullptr) return false;
  return serving_conn_->send(message);
}

void ServingSession::touch_lease_locked() {
  if (!lease_enabled()) return;
  lease_deadline_ =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.lease_seconds));
}

void ServingSession::expire_locked() {
  if (expired_) return;
  expired_ = true;
  if (connection_ != nullptr) connection_->close();
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Session,
                          "session.lease_expired", id_);
  }
}

void ServingSession::expire_if_overdue() {
  if (!lease_enabled() || finished_.load()) return;
  bool fired = false;
  {
    util::MutexLock lock(conn_mutex_);
    if (expired_ || stop_requested_.load()) return;
    if (std::chrono::steady_clock::now() >= lease_deadline_) {
      expire_locked();
      fired = true;
    }
  }
  // The expiry event tears the state machine down on the strand — in
  // particular a session waiting on a grant, which no longer has a watch
  // to notice the closed connection.
  if (fired) post_event([](ServingSession& s) { s.expire_event(); });
}

bool ServingSession::attach(std::shared_ptr<net::Connection> connection) {
  {
    util::MutexLock lock(conn_mutex_);
    if (!lease_enabled() || expired_ || stop_requested_.load() ||
        finished_.load()) {
      return false;
    }
    if (connection_ != nullptr) connection_->close();
    connection_ = std::move(connection);
    touch_lease_locked();
    // ResumeAck carries how many Backwards actually landed, so the client
    // knows whether its in-flight optimizer step applied before the link
    // died (at-least-once dedup — docs/FAULTS.md).
    connection_->send(
        net::Message::resume_ack(token_, backwards_applied_.load()));
    resumes_.fetch_add(1);
    if (config_.trace != nullptr) {
      config_.trace->record(util::TraceCategory::Session, "session.resumed",
                            id_);
    }
  }
  post_event([](ServingSession& s) { s.resume_event(); });
  return true;
}

// ----- forward / backward ----------------------------------------------

void ServingSession::start_forward(const net::Message& msg) {
  // Busy-pin before requesting so eviction cannot race the computation;
  // swap the adapter + optimizer back in (if evicted) once granted.
  offload_begin_use();
  if (holding_allocation_) {
    // holds_across_iteration modes still own the allocation from the
    // previous grant — no scheduler round trip.
    state_ = State::Forward;
    finish_forward(msg, 0.0);
    return;
  }
  pending_msg_ = msg;
  state_ = State::AwaitForwardGrant;
  wait_sw_.reset();
  scheduler_->on_request(id_, sched::OpKind::Forward);
  // The grant arrives as a strand event (possibly already queued if the
  // scheduler granted synchronously).
}

void ServingSession::finish_forward(const net::Message& msg, double wait_s) {
  using tensor::Tensor;
  const bool eval = msg.eval_only;
  const bool keep = !eval && holds_across_iteration(config_.mode);
  offload_ensure_resident();

  util::Stopwatch compute_sw;
  if (!on_gpu_.load()) {
    swap_to(*gpu_);
    util::MutexLock lock(stats_mutex_);
    ++stats_.swaps;
  }

  net::WireTensor result;
  if (keep) {
    // Fig 3(a)/(b) + vanilla: gradient-tracking forward, graph retained
    // until the matching Backward. PreserveAll may still be holding last
    // iteration's graph; drop it now, at the last possible moment.
    held_input_ = tensor::Tensor();
    held_output_ = tensor::Tensor();
    // SplitFrozen: the frozen client half will never consume a cut
    // gradient, so the cut input does not track one.
    held_input_ = from_wire(msg.tensor, *gpu_, /*requires_grad=*/!frozen_);
    held_output_ = section_->forward(held_input_);
    result = to_wire(held_output_);
  } else if (!eval && config_.mode == ServingMode::MenosReleaseEarly) {
    // Fig 3(c): full forward, but the graph is dropped right away (scope
    // exit) and a re-forward happens at Backward.
    cached_activation_ = msg.tensor;
    Tensor x = from_wire(msg.tensor, *gpu_, /*requires_grad=*/!frozen_);
    Tensor y = section_->forward(x);
    result = to_wire(y);
  } else {
    // Fig 3(d) / evaluation: non-gradient environment — the activation
    // cache (I) is never materialized (Algorithm 1 line 6).
    if (!eval) cached_activation_ = msg.tensor;
    tensor::NoGradGuard no_grad;
    Tensor x = from_wire(msg.tensor, *gpu_, /*requires_grad=*/false);
    Tensor y = section_->forward(x);
    result = to_wire(y);
  }
  const double compute_s = compute_sw.elapsed_seconds();

  // Unpin before release() so the reclaim pass the release may trigger
  // already sees this unit as an eviction candidate. A kept graph keeps
  // the pin until the matching Backward (PreserveAll: forever — an evicted
  // adapter under a live tape could not be migrated).
  if (!keep) offload_end_use();
  if (!keep && config_.mode != ServingMode::MenosPreserveAll) {
    // Release GPU memory (Algorithm 1 line 7): vanilla additionally swaps
    // the task out when other clients are queued for the capacity.
    if (config_.mode == ServingMode::VanillaTaskSwap &&
        scheduler_->waiting_count() > 0) {
      swap_to(*host_);
    }
    release();
  }

  {
    util::MutexLock lock(stats_mutex_);
    stats_.schedule_wait_s.add(wait_s);
    stats_.compute_s.add(compute_s);
  }
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Scheduler, "forward.wait",
                          id_, static_cast<std::uint64_t>(wait_s * 1e6));
    config_.trace->record(util::TraceCategory::Session, "forward.compute",
                          id_, static_cast<std::uint64_t>(compute_s * 1e6));
  }
  net::Message reply = net::Message::forward_result(std::move(result),
                                                    msg.iteration);
  reply.tensor_codec = codec_;
  reply.compute_seconds = compute_s;
  reply.schedule_wait_seconds = wait_s;
  send_reply(reply);
  state_ = State::AwaitRequest;
  pump();  // drain frames that buffered while we were computing
}

void ServingSession::start_backward(const net::Message& msg) {
  // At-least-once redelivery: if this Backward's optimizer step already
  // landed but the BackwardResult was lost with the link, resend the cached
  // reply. Re-applying would double-step the adapter and fork the loss
  // curve from the fault-free run.
  if (lease_enabled() && msg.iteration + 1 == backwards_applied_.load() &&
      last_backward_reply_.type == net::MessageType::BackwardResult) {
    send_reply(last_backward_reply_);
    return;
  }
  // Modes that hold the graph across the iteration are still pinned from
  // their Forward; the re-forward modes pin afresh here.
  if (!holds_across_iteration(config_.mode)) offload_begin_use();
  if (holding_allocation_) {
    state_ = State::Backward;
    finish_backward(msg, 0.0);
    return;
  }
  pending_msg_ = msg;
  state_ = State::AwaitBackwardGrant;
  wait_sw_.reset();
  scheduler_->on_request(id_, sched::OpKind::Backward);
}

void ServingSession::finish_backward(const net::Message& msg, double wait_s) {
  using tensor::Tensor;
  offload_ensure_resident();

  util::Stopwatch compute_sw;
  if (!on_gpu_.load()) {
    swap_to(*gpu_);
    util::MutexLock lock(stats_mutex_);
    ++stats_.swaps;
  }

  Tensor x_in;
  Tensor x_out;
  if (held_output_.defined()) {
    x_in = held_input_;
    x_out = held_output_;
  } else {
    if (cached_activation_.data.empty()) {
      throw ProtocolError("Backward with no preceding Forward");
    }
    // The on-demand re-forward (Algorithm 1 line 10).
    x_in = from_wire(cached_activation_, *gpu_, /*requires_grad=*/!frozen_);
    x_out = section_->forward(x_in);
    util::MutexLock lock(stats_mutex_);
    ++stats_.reforwards;
  }

  Tensor g_c = from_wire(msg.tensor, *gpu_);
  MENOS_CHECK_MSG(g_c.numel() == x_out.numel(),
                  "gradient size does not match server activations");
  tensor::backward(x_out, g_c);
  // Algorithm 1 line 12: optimize the server adapter. Under gradient
  // accumulation the client defers the step: gradients keep accumulating
  // in the adapter's .grad buffers (A-sized, negligible) until a
  // non-deferred Backward applies them. A client-evaluated LR schedule
  // rides along in the message so both halves of the adapter step at the
  // same rate.
  if (msg.lr_override > 0.0f) optimizer_->set_lr(msg.lr_override);
  if (!msg.defer_update) optimizer_->step();

  net::WireTensor result;
  if (frozen_) {
    // SplitFrozen: the backward stops at the server's first layer — the
    // cut input tracked no gradient, and the client has nothing upstream
    // to apply one to. The reply carries an explicitly empty tensor
    // (shape {0}) so the client can assert the server honored the mode.
    result.shape = {0};
  } else {
    Tensor g_s = x_in.grad();
    MENOS_CHECK_MSG(g_s.defined(), "no gradient reached the cut point");
    result = to_wire(g_s);
  }

  // Release GPU memory (Algorithm 1 line 13): dropping every tensor and
  // graph reference frees the intermediate results I. PreserveAll is the
  // exception (Fig 3(a)): it keeps the graph allocated through the waiting
  // phases and only replaces it at the next forward.
  if (!msg.defer_update) optimizer_->zero_grad();
  if (!frozen_) x_in.zero_grad();
  if (config_.mode != ServingMode::MenosPreserveAll) {
    held_input_ = Tensor();
    held_output_ = Tensor();
  }
  x_in = Tensor();
  x_out = Tensor();
  g_c = Tensor();
  const double compute_s = compute_sw.elapsed_seconds();

  if (config_.mode != ServingMode::MenosPreserveAll) {
    // Unpin before release() — see finish_forward. PreserveAll keeps the
    // pin: its graph stays live, so its adapter must stay on device.
    offload_end_use();
    if (config_.mode == ServingMode::VanillaTaskSwap &&
        scheduler_->waiting_count() > 0) {
      swap_to(*host_);
    }
    release();
  }

  {
    util::MutexLock lock(stats_mutex_);
    stats_.schedule_wait_s.add(wait_s);
    stats_.compute_s.add(compute_s);
    ++stats_.iterations;
  }
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Scheduler, "backward.wait",
                          id_, static_cast<std::uint64_t>(wait_s * 1e6));
    config_.trace->record(util::TraceCategory::Session, "backward.compute",
                          id_, static_cast<std::uint64_t>(compute_s * 1e6));
  }
  net::Message reply = net::Message::backward_result(std::move(result),
                                                     msg.iteration);
  reply.tensor_codec = codec_;
  reply.compute_seconds = compute_s;
  reply.schedule_wait_seconds = wait_s;
  backwards_applied_.store(msg.iteration + 1);
  if (lease_enabled()) last_backward_reply_ = reply;
  send_reply(reply);
  state_ = State::AwaitRequest;
  pump();  // drain frames that buffered while we were computing
}

// ----- live migration (fleet) -------------------------------------------

std::optional<MigrationTicket> ServingSession::export_for_migration() {
  // Raw strand post, not post_event: the export must answer even when it
  // loses a race with Finished, and its failure mode is "return nullopt",
  // never "error-reply and tear down".
  auto result = std::make_shared<
      util::BlockingQueue<std::optional<MigrationTicket>>>();
  strand_.post([self = shared_from_this(), result] {
    std::optional<MigrationTicket> ticket;
    try {
      ticket = self->export_event();
    } catch (const Error& e) {
      MENOS_LOG(Warn) << "session " << self->id_
                      << " export failed: " << e.what();
    }
    result->push(std::move(ticket));
  });
  auto out = result->pop();
  return out.has_value() ? std::move(*out) : std::nullopt;
}

std::optional<MigrationTicket> ServingSession::export_event() {
  // Only an idle, fully handshaken session in a shared mode migrates: no
  // live allocation, no held graph (PreserveAll's pinned tape and the
  // holds-across-iteration window both decline), not already finishing.
  if (state_ != State::AwaitRequest && state_ != State::Parked) {
    return std::nullopt;
  }
  if (finished_.load() || stop_requested_.load()) return std::nullopt;
  if (holding_allocation_ || held_output_.defined() || held_input_.defined()) {
    return std::nullopt;
  }
  if (section_ == nullptr || !shares_base_model(config_.mode)) {
    return std::nullopt;
  }
  // The client can only follow the move through ResumeSession, so a
  // leaseless session has nowhere to go.
  if (!lease_enabled()) return std::nullopt;
  {
    util::MutexLock lock(conn_mutex_);
    if (expired_) return std::nullopt;
  }

  MigrationTicket ticket;
  ticket.token = token_;
  ticket.client_config = client_config_;
  ticket.demands = demands_;
  ticket.adapter_blob = serialize_adapter(*section_);
  for (const tensor::Tensor& t : optimizer_->state_tensors()) {
    ticket.optimizer_state.push_back(t.to_vector());
  }
  ticket.optimizer_steps = optimizer_->step_count();
  ticket.backwards_applied = backwards_applied_.load();
  ticket.last_backward_reply = last_backward_reply_;
  ticket.cached_activation = cached_activation_;
  ticket.resumes = resumes_.load();
  ticket.persistent_bytes = persistent_bytes_.load();

  // Hand this shard's claims back. The engine path swaps the unit out
  // through the source's OffloadEngine (the satellite API this PR adds),
  // so the move is metered like any other eviction; a unit already evicted
  // had its charge credited back by the reclaim pass, so only a resident
  // one releases the scheduler reservation here.
  if (unit_registered_.load()) {
    ticket.unit = offload_->release_unit(id_);
    ticket.had_unit = true;
    unit_registered_.store(false);
    if (ticket.unit.was_resident) {
      scheduler_->release_persistent(0, ticket.persistent_bytes);
    }
  } else if (ticket.persistent_bytes != 0) {
    ticket.unit.bytes = ticket.persistent_bytes;
    ticket.unit.was_resident = true;
    scheduler_->release_persistent(0, ticket.persistent_bytes);
  }
  persistent_bytes_.store(0);
  scheduler_->unregister_client(id_);
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Session, "session.exported",
                          id_, ticket.persistent_bytes);
  }
  finish_migrated();
  return ticket;
}

void ServingSession::finish_migrated() {
  // Terminal path for a session whose state now lives in a ticket: drop
  // everything WITHOUT the releases cleanup() performs — the scheduler and
  // engine claims were already transferred by export_event.
  state_ = State::Finished;
  unwatch_conn();
  held_input_ = tensor::Tensor();
  held_output_ = tensor::Tensor();
  cached_activation_ = net::WireTensor();
  pending_msg_ = net::Message();
  last_backward_reply_ = net::Message();
  section_.reset();
  optimizer_.reset();
  {
    util::MutexLock lock(conn_mutex_);
    if (connection_ != nullptr) connection_->close();
    connection_ = nullptr;
  }
  serving_conn_.reset();
  finished_.store(true);
  if (on_finished_) on_finished_();
}

void ServingSession::import_migrated(const MigrationTicket& ticket) {
  MENOS_CHECK_MSG(shares_base_model(config_.mode) && store_ != nullptr,
                  "session migration requires a shared serving mode");
  MENOS_CHECK_MSG(lease_enabled(),
                  "session migration requires session leases");
  client_config_ = ticket.client_config;
  frozen_ = client_config_.profile.frozen_client_half;
  codec_ = client_config_.profile.codec;
  demands_ = ticket.demands;
  batch_key_ = frozen_ ? 0 : compute_batch_key(config_, client_config_);
  // Cheapest-to-roll-back first: validate demands against this shard's
  // partitions before building anything on the GPU.
  scheduler_->register_client(id_, demands_, batch_key_);
  try {
    // Same derivation as handshake(): the fresh adapters are overwritten
    // by the blob below, but building them identically keeps the section
    // layout (and RNG stream consumption) in lockstep with the source.
    util::Rng root(client_config_.adapter_seed);
    (void)root.fork();
    util::Rng server_rng = root.fork();
    nn::SharedSource source = store_->source();
    const std::function<gpusim::Device&(int)> device_for =
        [this](int block) -> gpusim::Device& {
      return store_->device_for_block(block);
    };
    section_ = std::make_unique<nn::ServerSection>(
        client_config_.model, client_config_.split, client_config_.adapter,
        source, device_for, server_rng);
    gpu_ = &section_->entry_device();
    on_gpu_.store(true);
    optimizer_ = optim::make_optimizer(client_config_.optimizer,
                                       section_->trainable_parameters(),
                                       client_config_.lr);
    deserialize_adapter(ticket.adapter_blob.data(),
                        ticket.adapter_blob.size(), *section_);
    std::vector<tensor::Tensor> state = optimizer_->state_tensors();
    MENOS_CHECK_MSG(state.size() == ticket.optimizer_state.size(),
                    "migrated optimizer state layout mismatch");
    for (std::size_t i = 0; i < state.size(); ++i) {
      const std::vector<float>& src = ticket.optimizer_state[i];
      MENOS_CHECK_MSG(
          static_cast<std::size_t>(state[i].numel()) == src.size(),
          "migrated optimizer state size mismatch at buffer " << i);
      std::copy(src.begin(), src.end(), state[i].data());
    }
    optimizer_->set_step_count(ticket.optimizer_steps);

    persistent_bytes_.store(ticket.persistent_bytes);
    if (offload_ != nullptr) {
      // Land as an adopted unit: OnHost and uncharged, exactly like a
      // post-eviction unit — the charge is paid on first use through the
      // charge callback, which may in turn evict idler units here.
      mem::UnitCallbacks callbacks = make_unit_callbacks();  // homes = GPU
      for (nn::Parameter& p : section_->trainable_parameters()) {
        p.value.migrate(*host_);
      }
      for (tensor::Tensor t : optimizer_->state_tensors()) {
        t.migrate(*host_);
      }
      mem::ExportedUnit unit;
      unit.bytes = ticket.persistent_bytes;
      unit.was_resident = false;
      offload_->adopt_unit(id_, unit, std::move(callbacks));
      unit_registered_.store(true);
    } else if (ticket.persistent_bytes != 0) {
      // No engine: the A + O lands resident, charged up front. This is the
      // one call that can refuse (OutOfMemory) — last, so rollback is easy.
      scheduler_->reserve_persistent(0, ticket.persistent_bytes);
    }
  } catch (...) {
    try {
      scheduler_->unregister_client(id_);
    } catch (const Error&) {
      // Rollback is best-effort; the registration may not have happened.
    }
    section_.reset();
    optimizer_.reset();
    persistent_bytes_.store(0);
    unit_registered_.store(false);
    throw;
  }
  backwards_applied_.store(ticket.backwards_applied);
  last_backward_reply_ = ticket.last_backward_reply;
  cached_activation_ = ticket.cached_activation;
  resumes_.store(ticket.resumes);
  // Park until the client's ResumeSession attaches a connection; the lease
  // armed in the constructor reaps the session if it never does.
  state_ = State::Parked;
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Session, "session.imported",
                          id_, ticket.persistent_bytes);
  }
}

// ----- teardown ---------------------------------------------------------

void ServingSession::cleanup() {
  // Drop any still-queued request FIRST: with the waiting entry gone no
  // fresh grant can land between the release below and the unregister.
  // (Previously a grant landing in that window made unregister_client
  // throw StateError — swallowed below — and the allocation leaked for
  // the server's lifetime.)
  scheduler_->cancel_pending(id_);
  // A grant may have raced the stop notification; reclaim it either way.
  if (!holding_allocation_ && scheduler_->allocated_to(id_) > 0) {
    holding_allocation_ = true;
  }
  release();
  if (section_ != nullptr) {
    // Only registered sessions appear in the scheduler; a failed handshake
    // may not have gotten that far.
    try {
      scheduler_->unregister_client(id_);
    } catch (const Error&) {
      // Never registered — nothing to undo.
    }
  }
  if (unit_registered_.load()) {
    // unregister_unit waits out any in-flight swap and reports whether the
    // scheduler charge is still held; an evicted unit's bytes were already
    // credited back to the pool by the reclaim path.
    const bool was_resident = offload_->unregister_unit(id_);
    unit_registered_.store(false);
    if (!was_resident) persistent_bytes_.store(0);
  }
  if (persistent_bytes_.load() != 0) {
    scheduler_->release_persistent(0, persistent_bytes_.load());
    persistent_bytes_.store(0);
  }
  // Free the client's GPU state promptly.
  held_input_ = tensor::Tensor();
  held_output_ = tensor::Tensor();
  cached_activation_ = net::WireTensor();
  pending_msg_ = net::Message();
  section_.reset();
  optimizer_.reset();
  {
    util::MutexLock lock(conn_mutex_);
    if (connection_ != nullptr) connection_->close();
  }
  serving_conn_.reset();
  if (config_.trace != nullptr) {
    config_.trace->record(util::TraceCategory::Session, "disconnect", id_);
  }
  finished_.store(true);
}

}  // namespace menos::core
