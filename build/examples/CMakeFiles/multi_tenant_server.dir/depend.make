# Empty dependencies file for multi_tenant_server.
# This may be replaced when dependencies are built.
