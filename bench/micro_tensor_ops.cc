// Tensor-kernel throughput tracker (not a paper figure): the serial seed
// matmul kernels vs the tiled parallel kernels in tensor/kernels.h, plus
// op-level activation/normalization timings, at several pool widths.
//
// Emits BENCH_tensor_ops.json (or argv[1]) so perf PRs have a tracked
// trajectory; docs/PERF.md explains how to read it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using menos::tensor::Index;
using menos::tensor::Tensor;
using menos::util::ThreadPool;

// ----- the seed kernels, verbatim, as the fixed baseline -----

void seed_mm(const float* a, const float* b, float* c, Index m, Index k,
             Index n) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (Index p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void seed_mm_nt(const float* a, const float* b, float* c, Index m, Index n,
                Index k) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    float* crow = c + i * k;
    for (Index p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (Index j = 0; j < n; ++j) acc += arow[j] * brow[j];
      crow[p] += acc;
    }
  }
}

void seed_mm_tn(const float* a, const float* b, float* c, Index m, Index k,
                Index n) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (Index p = 0; p < k; ++p) {
      const float av = arow[p];
      float* crow = c + p * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-reps wall time of `fn`, in seconds.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

struct ThreadSample {
  int threads = 1;
  double ms = 0.0;
  double gflops = 0.0;
  double speedup_vs_seed = 0.0;
};

struct MatmulResult {
  std::string op;
  Index m = 0, k = 0, n = 0;
  double seed_ms = 0.0;
  double seed_gflops = 0.0;
  std::vector<ThreadSample> parallel;
};

std::vector<int> bench_widths() {
  std::vector<int> widths = {1, 2, 4};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 4) widths.push_back(static_cast<int>(hw));
  return widths;
}

using RawKernel = void (*)(const float*, const float*, float*, Index, Index,
                           Index);

MatmulResult bench_matmul(const std::string& op, RawKernel seed,
                          RawKernel tuned, Index m, Index k, Index n,
                          Index a_elems, Index b_elems, Index c_elems,
                          int reps) {
  menos::util::Rng rng(42);
  std::vector<float> a(static_cast<std::size_t>(a_elems));
  std::vector<float> b(static_cast<std::size_t>(b_elems));
  std::vector<float> c(static_cast<std::size_t>(c_elems));
  rng.fill_normal(a.data(), a.size(), 1.0f);
  rng.fill_normal(b.data(), b.size(), 1.0f);

  MatmulResult res;
  res.op = op;
  res.m = m;
  res.k = k;
  res.n = n;

  const double flops = 2.0 * static_cast<double>(m) * k * n;
  res.seed_ms = 1e3 * time_best(reps, [&] {
    std::fill(c.begin(), c.end(), 0.0f);
    seed(a.data(), b.data(), c.data(), m, k, n);
  });
  res.seed_gflops = flops / (res.seed_ms * 1e6);

  for (int width : bench_widths()) {
    ThreadPool::instance().set_num_threads(width);
    ThreadSample s;
    s.threads = width;
    s.ms = 1e3 * time_best(reps, [&] {
      std::fill(c.begin(), c.end(), 0.0f);
      tuned(a.data(), b.data(), c.data(), m, k, n);
    });
    s.gflops = flops / (s.ms * 1e6);
    s.speedup_vs_seed = res.seed_ms / s.ms;
    res.parallel.push_back(s);
  }
  ThreadPool::instance().set_num_threads(1);
  return res;
}

struct OpResult {
  std::string op;
  std::string shape;
  std::vector<ThreadSample> parallel;  // speedup is vs the 1-thread run
};

template <typename Fn>
OpResult bench_op(const std::string& op, const std::string& shape, int reps,
                  Fn&& fn) {
  OpResult res;
  res.op = op;
  res.shape = shape;
  double serial_ms = 0.0;
  for (int width : bench_widths()) {
    ThreadPool::instance().set_num_threads(width);
    ThreadSample s;
    s.threads = width;
    s.ms = 1e3 * time_best(reps, fn);
    if (width == 1) serial_ms = s.ms;
    s.speedup_vs_seed = serial_ms > 0.0 ? serial_ms / s.ms : 0.0;
    res.parallel.push_back(s);
  }
  ThreadPool::instance().set_num_threads(1);
  return res;
}

void json_samples(std::FILE* f, const std::vector<ThreadSample>& samples) {
  std::fprintf(f, "[");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const ThreadSample& s = samples[i];
    std::fprintf(f,
                 "%s\n      {\"threads\": %d, \"ms\": %.3f, \"gflops\": "
                 "%.3f, \"speedup_vs_seed\": %.3f}",
                 i == 0 ? "" : ",", s.threads, s.ms, s.gflops,
                 s.speedup_vs_seed);
  }
  std::fprintf(f, "\n    ]");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_tensor_ops.json";
  double check_floor = -1.0;  // GFLOPS the 512^3 mm must reach, or exit 1
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-floor") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--check-floor needs a GFLOPS value\n");
        return 2;
      }
      check_floor = std::atof(argv[++i]);
    } else {
      out_path = arg;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("micro_tensor_ops: hardware_concurrency=%u arch=%s tile=%lldx%lld (%s)\n",
              hw, menos::tensor::kernels::vector_arch(),
              static_cast<long long>(menos::tensor::kernels::micro_tile_rows()),
              static_cast<long long>(menos::tensor::kernels::micro_tile_cols()),
              __VERSION__);

  // Matmul kernels on the 512-class shape (the fig8/fig9 training regime)
  // and a squatter attention-style contraction.
  std::vector<MatmulResult> matmuls;
  matmuls.push_back(bench_matmul("mm", seed_mm, menos::tensor::kernels::mm,
                                 512, 512, 512, 512 * 512, 512 * 512,
                                 512 * 512, 3));
  matmuls.push_back(bench_matmul("mm_nt", seed_mm_nt,
                                 menos::tensor::kernels::mm_nt, 512, 512, 512,
                                 512 * 512, 512 * 512, 512 * 512, 3));
  matmuls.push_back(bench_matmul("mm_tn", seed_mm_tn,
                                 menos::tensor::kernels::mm_tn, 512, 512, 512,
                                 512 * 512, 512 * 512, 512 * 512, 3));
  matmuls.push_back(bench_matmul("mm", seed_mm, menos::tensor::kernels::mm,
                                 256, 64, 256, 256 * 64, 64 * 256, 256 * 256,
                                 20));

  for (const MatmulResult& r : matmuls) {
    std::printf("%-6s %4lldx%4lldx%4lld  seed %8.2f ms (%.2f GF/s)",
                r.op.c_str(), static_cast<long long>(r.m),
                static_cast<long long>(r.k), static_cast<long long>(r.n),
                r.seed_ms, r.seed_gflops);
    for (const ThreadSample& s : r.parallel) {
      std::printf("  | t=%d %.2f ms %.2fx", s.threads, s.ms,
                  s.speedup_vs_seed);
    }
    std::printf("\n");
  }

  // Op-level elementwise / normalization paths (speedup vs 1 thread).
  auto device = menos::gpusim::make_host_device("bench-host");
  menos::util::Rng rng(7);
  menos::tensor::NoGradGuard no_grad;
  Tensor act = Tensor::empty({1 << 21}, *device);
  rng.fill_normal(act.data(), static_cast<std::size_t>(act.numel()), 1.0f);
  Tensor lnx = Tensor::empty({4096, 512}, *device);
  rng.fill_normal(lnx.data(), static_cast<std::size_t>(lnx.numel()), 1.0f);
  Tensor gamma = Tensor::full({512}, 1.0f, *device);
  Tensor beta = Tensor::full({512}, 0.0f, *device);

  std::vector<OpResult> ops;
  ops.push_back(bench_op("gelu", "[2097152]", 5,
                         [&] { menos::tensor::gelu(act); }));
  ops.push_back(bench_op("layer_norm", "[4096,512]", 5, [&] {
    menos::tensor::layer_norm(lnx, gamma, beta);
  }));

  for (const OpResult& r : ops) {
    std::printf("%-10s %-12s", r.op.c_str(), r.shape.c_str());
    for (const ThreadSample& s : r.parallel) {
      std::printf("  | t=%d %.2f ms %.2fx", s.threads, s.ms,
                  s.speedup_vs_seed);
    }
    std::printf("\n");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  const auto blocks = menos::tensor::kernels::block_config();
  std::fprintf(f, "{\n  \"bench\": \"micro_tensor_ops\",\n");
  std::fprintf(f, "  \"environment\": {\n");
  std::fprintf(f, "    \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "    \"thread_widths\": [");
  {
    const std::vector<int> widths = bench_widths();
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::fprintf(f, "%s%d", i == 0 ? "" : ", ", widths[i]);
    }
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "    \"compiler\": \"%s\",\n", __VERSION__);
#ifdef NDEBUG
  std::fprintf(f, "    \"build\": \"release\",\n");
#else
  std::fprintf(f, "    \"build\": \"debug\",\n");
#endif
  std::fprintf(f, "    \"vector_arch\": \"%s\",\n",
               menos::tensor::kernels::vector_arch());
  std::fprintf(f, "    \"micro_tile\": [%lld, %lld],\n",
               static_cast<long long>(
                   menos::tensor::kernels::micro_tile_rows()),
               static_cast<long long>(
                   menos::tensor::kernels::micro_tile_cols()));
  std::fprintf(f, "    \"block_config\": {\"mc\": %lld, \"nc\": %lld, "
               "\"kc\": %lld}\n",
               static_cast<long long>(blocks.mc),
               static_cast<long long>(blocks.nc),
               static_cast<long long>(blocks.kc));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"matmul_kernels\": [\n");
  for (std::size_t i = 0; i < matmuls.size(); ++i) {
    const MatmulResult& r = matmuls[i];
    std::fprintf(f,
                 "%s    {\"op\": \"%s\", \"m\": %lld, \"k\": %lld, \"n\": "
                 "%lld,\n     \"seed_serial_ms\": %.3f, "
                 "\"seed_serial_gflops\": %.3f,\n     \"parallel\": ",
                 i == 0 ? "" : ",\n", r.op.c_str(),
                 static_cast<long long>(r.m), static_cast<long long>(r.k),
                 static_cast<long long>(r.n), r.seed_ms, r.seed_gflops);
    json_samples(f, r.parallel);
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ],\n  \"tensor_ops\": [\n");
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OpResult& r = ops[i];
    std::fprintf(f,
                 "%s    {\"op\": \"%s\", \"shape\": \"%s\", \"parallel\": ",
                 i == 0 ? "" : ",\n", r.op.c_str(), r.shape.c_str());
    json_samples(f, r.parallel);
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_floor > 0.0) {
    // CI smoke: the blocked 512^3 mm must clear the floor at SOME width
    // (best-of keeps the check robust to a noisy shared runner).
    double best = 0.0;
    for (const MatmulResult& r : matmuls) {
      if (r.op != "mm" || r.m != 512) continue;
      for (const ThreadSample& s : r.parallel) best = std::max(best, s.gflops);
    }
    if (best < check_floor) {
      std::fprintf(stderr,
                   "FAIL: mm 512^3 peaked at %.2f GFLOPS, below the "
                   "--check-floor of %.2f\n",
                   best, check_floor);
      return 1;
    }
    std::printf("check-floor ok: mm 512^3 best %.2f GFLOPS >= %.2f\n", best,
                check_floor);
  }
  return 0;
}
