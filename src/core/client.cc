#include "core/client.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "net/wire.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace menos::core {

Client::Client(const ClientOptions& options,
               std::unique_ptr<net::Connection> connection,
               gpusim::Device& device)
    : options_(options), connection_(std::move(connection)), device_(&device) {
  const net::FinetuneConfig& ft = options_.finetune;
  ft.model.validate();
  ft.split.validate(ft.model);
  // Adapter stream derivation shared with nn::LocalModel and the serving
  // session: #1 input, #2 server (skipped here), #3 output.
  util::Rng root(ft.adapter_seed);
  util::Rng rng_in = root.fork();
  (void)root.fork();
  util::Rng rng_out = root.fork();
  nn::FreshInit init(options_.base_seed);
  input_ = std::make_unique<nn::InputSection>(ft.model, ft.split, ft.adapter,
                                              init, device, rng_in);
  output_ = std::make_unique<nn::OutputSection>(ft.model, ft.split, ft.adapter,
                                                init, device, rng_out);
  std::vector<nn::Parameter> trainable = input_->trainable_parameters();
  for (nn::Parameter& p : output_->trainable_parameters()) {
    trainable.push_back(std::move(p));
  }
  optimizer_ = optim::make_optimizer(ft.optimizer, std::move(trainable), ft.lr);
}

Client::~Client() {
  if (connected_) disconnect();
}

void Client::connect() {
  MENOS_CHECK_MSG(!connected_, "client already connected");
  if (!connection_->send(net::Message::hello(options_.finetune))) {
    throw StateError("connection closed before handshake");
  }
  auto reply = connection_->receive();
  if (!reply.has_value()) {
    throw StateError("server closed the connection during handshake");
  }
  if (reply->type == net::MessageType::Error) {
    throw StateError("server rejected client: " + reply->text);
  }
  MENOS_CHECK_MSG(reply->type == net::MessageType::HelloAck,
                  "unexpected handshake reply: "
                      << net::message_type_name(reply->type));
  fwd_bytes_ = reply->forward_bytes;
  bwd_bytes_ = reply->backward_bytes;
  connected_ = true;
}

tensor::Tensor Client::input_forward(const data::Batch& batch) {
  MENOS_CHECK_MSG(batch.batch_size == options_.finetune.batch_size &&
                      batch.seq_len == options_.finetune.seq_len,
                  "batch geometry differs from the profiled configuration");
  return input_->forward(batch.inputs, batch.batch_size, batch.seq_len);
}

StepStats Client::train_step(const data::Batch& batch) {
  return run_round(batch, /*defer_update=*/false, /*loss_scale=*/1.0f);
}

StepStats Client::train_step_accumulated(
    const std::vector<data::Batch>& micro) {
  MENOS_CHECK_MSG(!micro.empty(), "need at least one micro-batch");
  const float scale = 1.0f / static_cast<float>(micro.size());
  StepStats total;
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const bool last = i + 1 == micro.size();
    const StepStats s = run_round(micro[i], /*defer_update=*/!last, scale);
    total.loss += s.loss * scale;
    total.total_s += s.total_s;
    total.comm_s += s.comm_s;
    total.client_compute_s += s.client_compute_s;
    total.server_compute_s += s.server_compute_s;
    total.server_wait_s += s.server_wait_s;
    total.iteration = s.iteration;
  }
  return total;
}

StepStats Client::run_round(const data::Batch& batch, bool defer_update,
                            float loss_scale) {
  MENOS_CHECK_MSG(connected_, "train_step before connect()");
  using tensor::Tensor;
  StepStats stats;
  stats.iteration = iteration_;
  util::Stopwatch total_sw;

  // Step 1: local input-section forward (grad-tracked for the adapters).
  util::Stopwatch client_sw;
  Tensor x_c = input_forward(batch);
  net::WireTensor x_c_wire = to_wire(x_c);
  stats.client_compute_s += client_sw.elapsed_seconds();

  if (!connection_->send(net::Message::forward(std::move(x_c_wire),
                                               iteration_))) {
    throw StateError("connection lost sending activations");
  }
  auto fwd_reply = connection_->receive();
  if (!fwd_reply.has_value()) throw StateError("connection lost awaiting x_s");
  if (fwd_reply->type == net::MessageType::Error) {
    throw StateError("server error: " + fwd_reply->text);
  }
  MENOS_CHECK_MSG(fwd_reply->type == net::MessageType::ForwardResult,
                  "expected ForwardResult");
  stats.server_compute_s += fwd_reply->compute_seconds;
  stats.server_wait_s += fwd_reply->schedule_wait_seconds;

  // Steps 2-3: output section, loss, local backward down to g_c.
  client_sw.reset();
  Tensor x_s = from_wire(fwd_reply->tensor, *device_, /*requires_grad=*/true);
  Tensor loss = output_->loss(x_s, input_->prefix_len(), batch.targets);
  stats.loss = loss.item();
  tensor::backward(tensor::scale(loss, loss_scale));
  Tensor g_c = x_s.grad();
  MENOS_CHECK_MSG(g_c.defined(), "no gradient reached the cut point x_s");
  net::WireTensor g_c_wire = to_wire(g_c);
  stats.client_compute_s += client_sw.elapsed_seconds();

  const float step_lr =
      options_.finetune.lr *
      options_.schedule.factor_at(static_cast<std::int64_t>(iteration_));
  net::Message backward_msg =
      net::Message::backward(std::move(g_c_wire), iteration_);
  backward_msg.defer_update = defer_update;
  backward_msg.lr_override = step_lr;
  if (!connection_->send(backward_msg)) {
    throw StateError("connection lost sending gradients");
  }
  auto bwd_reply = connection_->receive();
  if (!bwd_reply.has_value()) throw StateError("connection lost awaiting g_s");
  if (bwd_reply->type == net::MessageType::Error) {
    throw StateError("server error: " + bwd_reply->text);
  }
  MENOS_CHECK_MSG(bwd_reply->type == net::MessageType::BackwardResult,
                  "expected BackwardResult");
  stats.server_compute_s += bwd_reply->compute_seconds;
  stats.server_wait_s += bwd_reply->schedule_wait_seconds;

  // Step 4: finish back-propagation through the input section and update
  // the client-side adapters.
  client_sw.reset();
  Tensor g_s = from_wire(bwd_reply->tensor, *device_);
  tensor::backward(x_c, g_s);
  if (!defer_update) {
    optimizer_->set_lr(step_lr);
    optimizer_->step();
    optimizer_->zero_grad();
  }
  x_s.zero_grad();
  stats.client_compute_s += client_sw.elapsed_seconds();

  stats.total_s = total_sw.elapsed_seconds();
  stats.comm_s = stats.total_s - stats.client_compute_s -
                 stats.server_compute_s - stats.server_wait_s;
  if (stats.comm_s < 0.0) stats.comm_s = 0.0;
  ++iteration_;
  return stats;
}

double Client::evaluate(const data::Batch& batch) {
  MENOS_CHECK_MSG(connected_, "evaluate before connect()");
  using tensor::Tensor;
  tensor::NoGradGuard no_grad;
  Tensor x_c = input_forward(batch);
  net::Message msg = net::Message::forward(to_wire(x_c), iteration_);
  msg.eval_only = true;
  if (!connection_->send(msg)) {
    throw StateError("connection lost sending eval activations");
  }
  auto reply = connection_->receive();
  if (!reply.has_value()) throw StateError("connection lost awaiting eval x_s");
  if (reply->type == net::MessageType::Error) {
    throw StateError("server error: " + reply->text);
  }
  MENOS_CHECK_MSG(reply->type == net::MessageType::ForwardResult,
                  "expected ForwardResult");
  Tensor x_s = from_wire(reply->tensor, *device_);
  return output_->loss(x_s, input_->prefix_len(), batch.targets).item();
}

std::vector<std::int32_t> Client::generate(std::vector<std::int32_t> prompt,
                                           int n_new) {
  MENOS_CHECK_MSG(connected_, "generate before connect()");
  MENOS_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  using tensor::Tensor;
  tensor::NoGradGuard no_grad;
  const tensor::Index max_seq = options_.finetune.model.max_seq;
  for (int step = 0; step < n_new; ++step) {
    const std::size_t window = std::min<std::size_t>(
        prompt.size(), static_cast<std::size_t>(max_seq));
    const std::vector<std::int32_t> context(prompt.end() - window,
                                            prompt.end());
    Tensor x_c =
        input_->forward(context, 1, static_cast<tensor::Index>(window));
    net::Message msg = net::Message::forward(to_wire(x_c), iteration_);
    msg.eval_only = true;
    if (!connection_->send(msg)) {
      throw StateError("connection lost during generation");
    }
    auto reply = connection_->receive();
    if (!reply.has_value()) throw StateError("connection lost during generation");
    if (reply->type == net::MessageType::Error) {
      throw StateError("server error: " + reply->text);
    }
    MENOS_CHECK_MSG(reply->type == net::MessageType::ForwardResult,
                    "expected ForwardResult");
    Tensor x_s = from_wire(reply->tensor, *device_);
    Tensor logits = output_->logits(x_s, input_->prefix_len());
    prompt.push_back(tensor::argmax_lastdim(logits).back());
  }
  return prompt;
}

namespace {

std::vector<nn::Parameter> local_adapter_params(nn::InputSection& input,
                                                nn::OutputSection& output) {
  std::vector<nn::Parameter> params = input.trainable_parameters();
  for (nn::Parameter& p : output.trainable_parameters()) {
    params.push_back(std::move(p));
  }
  return params;
}

}  // namespace

std::vector<std::uint8_t> Client::export_adapter() {
  MENOS_CHECK_MSG(connected_, "export_adapter before connect()");
  // Fetch the server-side adapter phi_s.
  if (!connection_->send(net::Message::fetch_adapter())) {
    throw StateError("connection lost fetching the server adapter");
  }
  auto reply = connection_->receive();
  if (!reply.has_value()) throw StateError("connection lost fetching adapter");
  if (reply->type == net::MessageType::Error) {
    throw StateError("server error: " + reply->text);
  }
  MENOS_CHECK_MSG(reply->type == net::MessageType::AdapterBlob,
                  "expected AdapterBlob");

  const std::vector<std::uint8_t> local =
      serialize_adapter(local_adapter_params(*input_, *output_));
  net::Writer w;
  w.put_bytes(local);
  w.put_bytes(reply->blob);
  return w.take();
}

std::size_t Client::import_adapter(const std::uint8_t* data,
                                   std::size_t size) {
  MENOS_CHECK_MSG(connected_, "import_adapter before connect()");
  net::Reader r(data, size);
  const std::vector<std::uint8_t> local = r.get_bytes();
  const std::vector<std::uint8_t> remote = r.get_bytes();
  if (!r.exhausted()) throw ProtocolError("trailing bytes in adapter export");

  const std::size_t loaded = deserialize_adapter(
      local.data(), local.size(), local_adapter_params(*input_, *output_));

  if (!connection_->send(net::Message::push_adapter(remote))) {
    throw StateError("connection lost pushing the server adapter");
  }
  auto ack = connection_->receive();
  if (!ack.has_value()) throw StateError("connection lost pushing adapter");
  if (ack->type == net::MessageType::Error) {
    throw StateError("server rejected adapter: " + ack->text);
  }
  MENOS_CHECK_MSG(ack->type == net::MessageType::PushAck, "expected PushAck");
  return loaded;
}

void Client::disconnect() {
  if (!connected_) return;
  connection_->send(net::Message::bye());
  connection_->close();
  connected_ = false;
}

std::size_t Client::parameter_bytes() const {
  return input_->parameter_bytes() + output_->parameter_bytes();
}

std::size_t Client::adapter_bytes() const {
  return input_->trainable_parameter_bytes() +
         output_->trainable_parameter_bytes();
}

}  // namespace menos::core
