#include "fleet/fleet.h"

#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace menos::fleet {

Fleet::Fleet(const FleetConfig& config, const nn::TransformerConfig& model)
    : config_(config) {
  MENOS_CHECK_MSG(config_.shards >= 1, "fleet needs at least one shard");
  MENOS_CHECK_MSG(core::shares_base_model(config_.server.mode),
                  "fleet shards require a shared serving mode");
  executor_ = std::make_unique<core::Executor>(config_.executor_threads);
  poller_ = std::make_unique<net::Poller>();
  for (int i = 0; i < config_.shards; ++i) {
    // Each shard gets a private DeviceManager: its scheduler partition must
    // budget only its own GPUs, not the fleet total.
    devices_.push_back(std::make_unique<gpusim::DeviceManager>(
        config_.gpus_per_shard, config_.gpu_bytes_per_shard));
    core::ServerConfig sc = config_.server;
    sc.shared_executor = executor_.get();
    sc.shared_poller = poller_.get();
    sc.trace = config_.trace;
    // Same base_seed everywhere (bit-identical stores enable migration),
    // so the token streams must be decorrelated explicitly.
    sc.token_seed =
        config_.server.base_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    servers_.push_back(
        std::make_unique<core::Server>(sc, *devices_.back(), model));
    pressure_pending_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  policy_ = make_policy(config_.policy);
  std::vector<core::Server*> shards;
  shards.reserve(servers_.size());
  for (auto& s : servers_) shards.push_back(s.get());
  router_ = std::make_unique<Router>(std::move(shards), *policy_, *executor_,
                                     *poller_, config_.trace);
  for (int i = 0; i < config_.shards; ++i) {
    servers_[static_cast<std::size_t>(i)]->set_session_closed_hook(
        [this, i](std::uint64_t token) {
          router_->on_session_closed(i, token);
        });
  }
}

Fleet::~Fleet() { stop(); }

void Fleet::start(net::Acceptor& acceptor) {
  MENOS_CHECK_MSG(!started_.exchange(true), "fleet already started");
  poller_->start();
  for (auto& server : servers_) server->start();
  router_->start(acceptor);
  if (config_.auto_rebalance) {
    MENOS_CHECK_MSG(config_.server.lease_seconds > 0.0,
                    "auto_rebalance requires leases (exported sessions park)");
    for (int i = 0; i < config_.shards; ++i) {
      servers_[static_cast<std::size_t>(i)]
          ->scheduler()
          .set_pressure_callback([this, i](const sched::PressureEvent&) {
            // Called after the scheduler mutex drops, possibly from a
            // session strand: only flag and enqueue here. Coalesce so a
            // burst of reclaim passes wakes the migrator once.
            if (!pressure_pending_[static_cast<std::size_t>(i)]->exchange(
                    true)) {
              pressured_.push(i);
            }
          });
    }
    migrator_ = std::thread([this] { migrator_loop(); });  // NOLINT(raw-thread)
  }
}

void Fleet::stop() {
  if (stopping_.exchange(true)) return;
  if (!started_.load()) return;
  router_->stop();
  pressured_.close();
  if (migrator_.joinable()) migrator_.join();
  // Unhook pressure before shard teardown: session cleanup runs reclaim
  // passes that would otherwise push into the closed queue harmlessly but
  // noisily.
  for (auto& server : servers_) {
    server->scheduler().set_pressure_callback(nullptr);
  }
  for (auto& server : servers_) server->stop();
  poller_->stop();
  executor_->stop_and_join();
}

bool Fleet::migrate_session(std::uint64_t token, int dst) {
  MENOS_CHECK_MSG(dst >= 0 && dst < shard_count(),
                  "migration target " << dst << " out of range");
  const int src = router_->begin_migration(token);
  if (src < 0) return false;  // unknown or already migrating
  if (src == dst) {
    router_->finish_migration(token, src);
    return false;
  }
  auto ticket = servers_[static_cast<std::size_t>(src)]->migrate_out(token);
  if (!ticket.has_value()) {
    // Busy, expired, or already gone — nothing moved, mapping unchanged.
    router_->finish_migration(token, src);
    return false;
  }
  if (servers_[static_cast<std::size_t>(dst)]->migrate_in(*ticket)) {
    router_->finish_migration(token, dst);
    if (config_.trace != nullptr) {
      // src/dst shard pair rides in dedicated events (one int slot each);
      // the headline event carries the payload size.
      config_.trace->record(util::TraceCategory::Session, "session.migrated",
                            dst, ticket->persistent_bytes);
      config_.trace->record(util::TraceCategory::Session, "migrate.src", src,
                            token);
      config_.trace->record(util::TraceCategory::Session, "migrate.dst", dst,
                            token);
    }
    return true;
  }
  // Target refused (out of memory, stopping): put the session back where it
  // came from — the ticket is still intact.
  if (servers_[static_cast<std::size_t>(src)]->migrate_in(*ticket)) {
    router_->finish_migration(token, src);
    return false;
  }
  MENOS_LOG(Error) << "session token " << token
                   << " lost in migration: both import attempts failed";
  router_->drop_session(token);
  return false;
}

bool Fleet::rebalance_once() {
  // Most persistent bytes = most pressure on the shared partition.
  int busiest = 0;
  std::size_t busiest_bytes = 0;
  for (int i = 0; i < shard_count(); ++i) {
    const std::size_t bytes =
        servers_[static_cast<std::size_t>(i)]->persistent_gpu_bytes();
    if (i == 0 || bytes > busiest_bytes) {
      busiest = i;
      busiest_bytes = bytes;
    }
  }
  const int target = roomiest_shard_except(busiest);
  if (target < 0 || target == busiest) return false;
  for (std::uint64_t token : router_->tokens_on(busiest)) {
    if (migrate_session(token, target)) return true;
  }
  return false;
}

void Fleet::migrator_loop() {
  while (true) {
    std::optional<int> shard = pressured_.pop();
    if (!shard.has_value()) return;  // queue closed: fleet stopping
    pressure_pending_[static_cast<std::size_t>(*shard)]->store(false);
    if (stopping_.load()) continue;  // drain without acting
    relieve_shard(*shard);
  }
}

void Fleet::relieve_shard(int shard) {
  const int target = roomiest_shard_except(shard);
  if (target < 0) return;
  // migrate_out declines sessions that are mid-iteration, so walk the
  // shard's tokens until one idle session moves (or none can).
  for (std::uint64_t token : router_->tokens_on(shard)) {
    if (migrate_session(token, target)) return;
  }
}

int Fleet::roomiest_shard_except(int except) const {
  int best = -1;
  std::size_t best_free = 0;
  for (int i = 0; i < shard_count(); ++i) {
    if (i == except) continue;
    const std::size_t free =
        servers_[static_cast<std::size_t>(i)]->scheduler().total_available();
    if (best < 0 || free > best_free) {
      best = i;
      best_free = free;
    }
  }
  return best;
}

}  // namespace menos::fleet
