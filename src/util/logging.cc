#include "util/logging.h"

#include <atomic>
#include <cstring>
#include <iomanip>

#include "util/mutex.h"

namespace menos::util {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::Warn};
// Serializes stream emission; no guarded members. Highest rank: logging
// happens under arbitrary locks and takes none itself.
Mutex g_emit_mutex{"util.logging", 95};  // NOLINT(mutex-annotation)

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO";
    case LogLevel::Warn:  return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const auto now = std::chrono::system_clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      now.time_since_epoch())
                      .count();
  stream_ << "[" << log_level_name(level) << " " << std::fixed
          << std::setprecision(6) << static_cast<double>(us) / 1e6 << " "
          << basename_of(file) << ":" << line << "] ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  MutexLock lock(g_emit_mutex);
  (level_ >= LogLevel::Warn ? std::cerr : std::clog) << stream_.str();
}

}  // namespace detail
}  // namespace menos::util
