file(REMOVE_RECURSE
  "CMakeFiles/finetune_and_export.dir/finetune_and_export.cpp.o"
  "CMakeFiles/finetune_and_export.dir/finetune_and_export.cpp.o.d"
  "finetune_and_export"
  "finetune_and_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_and_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
