// The shared base-model parameter store (§3.1, Fig 2).
//
// One copy of every transformer block's frozen parameters is loaded onto
// the GPU up front. Per-client serving sessions build their own
// ServerSection *structures* over a SharedSource view of this table, so N
// clients share a single M instead of N copies — the base-model sharing
// mechanism that turns Eq. (2) into Eq. (3).
//
// The store deliberately loads ALL blocks (0..n_layers-1) even though the
// paper's default split leaves block 0 on the client: clients choose their
// own cut points (§3.1's privacy-efficiency trade-off), and any block a
// client leaves to the server must already be resident.
#pragma once

#include <unordered_map>

#include "gpusim/device.h"
#include "nn/transformer.h"

namespace menos::core {

/// Contiguous block-to-GPU assignment for multi-GPU layer splitting:
/// block i of L layers on g GPUs lands on GPU floor(i*g/L).
int block_gpu_index(int block, int n_layers, int gpu_count);

class ParameterStore {
 public:
  /// Load one shared copy of the blocks onto `device`, initialized from
  /// `base_seed` (the stand-in for reading a checkpoint from disk).
  ParameterStore(const nn::TransformerConfig& config, gpusim::Device& device,
                 std::uint64_t base_seed);

  /// Multi-GPU form: blocks are split contiguously across all GPUs of
  /// `devices` ("we can manually assign different layers across multiple
  /// GPUs while loading the model" — §3.1).
  ParameterStore(const nn::TransformerConfig& config,
                 gpusim::DeviceManager& devices, std::uint64_t base_seed);

  /// The device hosting a given global block index.
  gpusim::Device& device_for_block(int block) const;

  const std::unordered_map<std::string, tensor::Tensor>& table() const noexcept {
    return table_;
  }

  /// A ParameterSource view for building per-client structures.
  nn::SharedSource source() const { return nn::SharedSource(&table_); }

  /// Bytes of the shared base model (the M term of §2.3).
  std::size_t bytes() const noexcept { return bytes_; }

  /// All base parameters as a (frozen) parameter list, sorted by name —
  /// the checkpointing surface.
  std::vector<nn::Parameter> parameters() const;

  const nn::TransformerConfig& config() const noexcept { return config_; }

 private:
  ParameterStore(const nn::TransformerConfig& config,
                 std::vector<gpusim::Device*> placement,
                 std::uint64_t base_seed);

  nn::TransformerConfig config_;
  std::vector<gpusim::Device*> placement_;  // one entry per block
  std::unordered_map<std::string, tensor::Tensor> table_;
  std::size_t bytes_ = 0;
};

/// Structural equality of model configs — a client must request exactly the
/// model the server hosts.
bool same_model(const nn::TransformerConfig& a, const nn::TransformerConfig& b);

}  // namespace menos::core
