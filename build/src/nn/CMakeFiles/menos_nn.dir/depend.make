# Empty dependencies file for menos_nn.
# This may be replaced when dependencies are built.
