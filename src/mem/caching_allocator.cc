#include "mem/caching_allocator.h"

#include <algorithm>

#include "util/check.h"

namespace menos::mem {

CachingAllocator::CachingAllocator(std::unique_ptr<gpusim::Device> inner)
    : inner_(std::move(inner)),
      mutex_(
          gpusim::decorator_lock_name("mem.caching_alloc", inner_.get())
              .c_str(),
          gpusim::decorator_lock_rank(52, inner_.get())) {
  MENOS_CHECK_MSG(inner_ != nullptr, "CachingAllocator needs an inner device");
}

CachingAllocator::~CachingAllocator() {
  util::MutexLock lock(mutex_);
  // Live client allocations (a leak upstream) keep their segments pinned;
  // returning them to the inner device would free memory still in use. Only
  // fully idle segments go back — the inner/audit layers then report any
  // genuine leak with their own diagnostics.
  release_idle_segments_locked();
}

std::size_t CachingAllocator::round_size(std::size_t bytes) noexcept {
  if (bytes == 0) return 0;
  const std::size_t align = bytes < kSmallLimit ? kSmallAlign : kLargeAlign;
  return (bytes + align - 1) / align * align;
}

void* CachingAllocator::allocate(std::size_t bytes) {
  if (bytes == 0) {
    // Keep the inner device's unique-sentinel contract; no pooling value.
    void* ptr = inner_->allocate(0);
    util::MutexLock lock(mutex_);
    active_[ptr] = 0;
    ++lifetime_allocs_;
    return ptr;
  }
  const std::size_t rounded = round_size(bytes);
  util::MutexLock lock(mutex_);
  Block* block = find_or_grow_locked(rounded);
  split_locked(block, rounded);
  block->free = false;
  active_[block->ptr] = bytes;
  cache_.active_bytes += bytes;
  cache_.active_rounded += block->size;
  cache_.cached_bytes = cache_.segment_bytes - cache_.active_rounded;
  peak_requested_ = std::max(peak_requested_, cache_.active_bytes);
  ++lifetime_allocs_;
  lifetime_bytes_ += bytes;
  return block->ptr;
}

CachingAllocator::Block* CachingAllocator::find_or_grow_locked(
    std::size_t rounded) {
  // Best fit: the smallest free block that covers the request.
  auto it = free_blocks_.lower_bound(FreeKey{rounded, nullptr});
  if (it != free_blocks_.end()) {
    Block* block = it->second;
    free_blocks_.erase(it);
    ++cache_.hits;
    return block;
  }
  ++cache_.misses;
  // Small requests share 2 MiB segments; large ones get an exact segment.
  // If even the small segment does not fit the inner capacity (tiny test
  // devices), fall back to an exact-size segment before giving up.
  std::size_t segment_size =
      rounded < kSmallLimit ? std::max<std::size_t>(kSmallSegment, rounded)
                            : rounded;
  Segment* segment = nullptr;
  try {
    segment = grow_locked(segment_size);
  } catch (const OutOfMemory&) {
    if (segment_size == rounded) throw;
    segment = grow_locked(rounded);
    segment_size = rounded;
  }
  Block* block = segment->first;
  // grow_locked registered the whole segment as one free block; claim it.
  free_blocks_.erase(FreeKey{block->size, block});
  return block;
}

CachingAllocator::Segment* CachingAllocator::grow_locked(
    std::size_t segment_size) {
  void* base = nullptr;
  try {
    base = inner_->allocate(segment_size);
  } catch (const OutOfMemory&) {
    // Cached-but-idle segments hold capacity hostage; flush and retry once
    // so pooling never changes what fits on the device.
    if (cache_.cached_bytes == 0) throw;
    release_idle_segments_locked();
    base = inner_->allocate(segment_size);
  }
  auto segment = std::make_unique<Segment>();
  segment->base = base;
  segment->size = segment_size;
  auto block = std::make_unique<Block>();
  block->segment = segment.get();
  block->ptr = base;
  block->size = segment_size;
  block->free = true;
  segment->first = block.get();
  free_blocks_.insert(FreeKey{segment_size, block.get()});
  Segment* out = segment.get();
  segments_[base] = std::move(segment);
  blocks_[base] = std::move(block);
  ++cache_.segments_allocated;
  cache_.segment_bytes += segment_size;
  cache_.cached_bytes = cache_.segment_bytes - cache_.active_rounded;
  return out;
}

void CachingAllocator::split_locked(Block* block, std::size_t rounded) {
  MENOS_DCHECK(block->size >= rounded);
  if (block->size - rounded < kMinSplit) return;
  auto rest = std::make_unique<Block>();
  rest->segment = block->segment;
  rest->ptr = static_cast<char*>(block->ptr) + rounded;
  rest->size = block->size - rounded;
  rest->free = true;
  rest->prev = block;
  rest->next = block->next;
  if (block->next != nullptr) block->next->prev = rest.get();
  block->next = rest.get();
  block->size = rounded;
  free_blocks_.insert(FreeKey{rest->size, rest.get()});
  blocks_[rest->ptr] = std::move(rest);
  ++cache_.splits;
}

void CachingAllocator::deallocate(void* ptr, std::size_t bytes) noexcept {
  (void)bytes;  // only checked against the recorded request (Debug builds)
  if (ptr == nullptr) return;
  util::MutexLock lock(mutex_);
  const auto it = active_.find(ptr);
  MENOS_DCHECK_MSG(it != active_.end(),
                   "caching allocator '" << inner_->name()
                                         << "': free of unknown pointer "
                                         << ptr);
  if (it == active_.end()) return;  // Release builds: drop the bad free
  MENOS_DCHECK_MSG(it->second == bytes,
                   "caching allocator '" << inner_->name() << "': free size "
                                         << bytes << " != requested size "
                                         << it->second);
  const std::size_t requested = it->second;
  active_.erase(it);
  ++lifetime_frees_;
  if (requested == 0) {
    inner_->deallocate(ptr, 0);
    return;
  }
  const auto bit = blocks_.find(ptr);
  MENOS_DCHECK(bit != blocks_.end());
  Block* block = bit->second.get();
  cache_.active_bytes -= requested;
  cache_.active_rounded -= block->size;
  block->free = true;
  block = coalesce_locked(block);
  free_blocks_.insert(FreeKey{block->size, block});
  cache_.cached_bytes = cache_.segment_bytes - cache_.active_rounded;
}

CachingAllocator::Block* CachingAllocator::coalesce_locked(Block* block) {
  // Merge with the free next neighbor, then with the free previous one;
  // both are O(1) thanks to the per-segment address links.
  const auto absorb = [this](Block* keep, Block* gone) {
    free_blocks_.erase(FreeKey{gone->size, gone});
    keep->size += gone->size;
    keep->next = gone->next;
    if (gone->next != nullptr) gone->next->prev = keep;
    blocks_.erase(gone->ptr);
    ++cache_.coalesces;
  };
  if (block->next != nullptr && block->next->free) absorb(block, block->next);
  if (block->prev != nullptr && block->prev->free) {
    Block* prev = block->prev;
    free_blocks_.erase(FreeKey{prev->size, prev});
    prev->size += block->size;
    prev->next = block->next;
    if (block->next != nullptr) block->next->prev = prev;
    blocks_.erase(block->ptr);
    ++cache_.coalesces;
    // prev was re-inserted conceptually; caller adds it to the free list.
    return prev;
  }
  return block;
}

void CachingAllocator::release_idle_segments_locked() {
  for (auto it = segments_.begin(); it != segments_.end();) {
    Segment* segment = it->second.get();
    Block* first = segment->first;
    // A fully idle segment has exactly one block: free and spanning it.
    if (first->free && first->next == nullptr && first->prev == nullptr &&
        first->size == segment->size) {
      free_blocks_.erase(FreeKey{first->size, first});
      blocks_.erase(first->ptr);
      inner_->deallocate(segment->base, segment->size);
      cache_.segment_bytes -= segment->size;
      ++cache_.segments_released;
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  cache_.cached_bytes = cache_.segment_bytes - cache_.active_rounded;
}

void CachingAllocator::empty_cache() {
  util::MutexLock lock(mutex_);
  release_idle_segments_locked();
}

std::size_t CachingAllocator::largest_free_locked() const {
  // The pool's biggest block, or untouched inner headroom — whichever
  // single contiguous grant is larger.
  std::size_t best =
      free_blocks_.empty() ? 0 : free_blocks_.rbegin()->first;
  const gpusim::MemoryStats inner = inner_->stats();
  if (inner.capacity != 0) {
    best = std::max(best, inner.capacity - inner.allocated);
  }
  return best;
}

gpusim::MemoryStats CachingAllocator::stats() const {
  util::MutexLock lock(mutex_);
  gpusim::MemoryStats s;
  s.capacity = inner_->stats().capacity;
  // Byte-identical accounting: report the client's requested bytes, exactly
  // as an unpooled MeteredDevice would (see file comment).
  s.allocated = cache_.active_bytes;
  s.peak = peak_requested_;
  s.lifetime_allocs = lifetime_allocs_;
  s.lifetime_frees = lifetime_frees_;
  s.lifetime_bytes = lifetime_bytes_;
  s.cached = cache_.cached_bytes;
  s.largest_free_block = largest_free_locked();
  return s;
}

void CachingAllocator::reset_peak() {
  util::MutexLock lock(mutex_);
  peak_requested_ = cache_.active_bytes;
  inner_->reset_peak();
}

CacheStats CachingAllocator::cache_stats() const {
  util::MutexLock lock(mutex_);
  return cache_;
}

void CachingAllocator::warm(const std::vector<std::size_t>& sizes) {
  // Run the plan through the normal allocate path so segments grow exactly
  // as a real step would, then free everything back into the pool.
  std::vector<std::pair<void*, std::size_t>> held;
  held.reserve(sizes.size());
  for (std::size_t bytes : sizes) {
    if (bytes == 0) continue;
    try {
      held.emplace_back(allocate(bytes), bytes);
    } catch (const OutOfMemory&) {
      break;  // partial warm-up is fine; replay will grow the rest
    }
  }
  for (auto& [ptr, bytes] : held) deallocate(ptr, bytes);
}

std::unique_ptr<gpusim::Device> make_caching_device(
    std::unique_ptr<gpusim::Device> inner) {
  return std::make_unique<CachingAllocator>(std::move(inner));
}

}  // namespace menos::mem
