// Shared runtime definitions: serving modes, server configuration, and
// tensor<->wire conversion helpers.
#pragma once

#include <cstdint>

#include "gpusim/device.h"
#include "net/message.h"
#include "sched/scheduler.h"
#include "tensor/tensor.h"
#include "util/trace.h"

namespace menos::net {
class Poller;
}  // namespace menos::net

namespace menos::core {

class Executor;

/// How a serving session manages GPU memory across the four-step loop of
/// §2.2. The first four are the optimization ladder of Fig 3; the last is
/// the task-level-sharing vanilla baseline of §5.1.
enum class ServingMode : std::uint8_t {
  /// Fig 3(d) — the Menos default: no-grad first forward, release, then
  /// re-forward with gradients when g_c arrives.
  MenosOnDemand,
  /// Fig 3(c): full (gradient-tracking) first forward, but intermediates
  /// are released while waiting for g_c, requiring a re-forward.
  MenosReleaseEarly,
  /// Fig 3(b): intermediates held from forward to backward, released only
  /// after the backward pass completes.
  MenosReleaseAfterBackward,
  /// Fig 3(a): memory preserved across the whole fine-tuning lifetime.
  MenosPreserveAll,
  /// §5.1 baseline: per-client copy of the base model (no sharing); the
  /// whole task swaps between GPU and host memory when capacity is
  /// exceeded.
  VanillaTaskSwap,
};

const char* serving_mode_name(ServingMode mode) noexcept;

/// The per-session heterogeneity profile rides the Hello frame, so its
/// canonical definition lives with the protocol; core is its main consumer.
using ClientProfile = net::ClientProfile;
using ActivationCodec = net::ActivationCodec;

/// True for modes that keep the shared base model (everything but vanilla).
bool shares_base_model(ServingMode mode) noexcept;

/// True for modes whose scheduler allocation spans forward -> backward.
bool holds_across_iteration(ServingMode mode) noexcept;

struct ServerConfig {
  ServingMode mode = ServingMode::MenosOnDemand;
  sched::Policy sched_policy = sched::Policy::FcfsBackfill;
  /// Seed standing in for the base-model checkpoint contents.
  std::uint64_t base_seed = 42;
  /// Safety margin subtracted from the schedulable partition capacity, as
  /// headroom for serialization scratch.
  std::size_t reserve_bytes = 0;

  /// Session lease (docs/FAULTS.md): a session silent for longer than this
  /// — no traffic and no Heartbeat — is expired by the reaper, releasing
  /// its GPU memory and cancelling its scheduler reservations so a crashed
  /// client cannot strand capacity. With leases enabled a dropped
  /// connection parks the session for ResumeSession reattach instead of
  /// destroying it. 0 disables leases (the pre-fault-tolerance behavior:
  /// sessions die with their connection).
  double lease_seconds = 0.0;
  /// Reaper wake-up period; <= 0 derives lease_seconds / 4.
  double reaper_interval_s = 0.0;

  /// Width of the shared serving executor (the worker pool every session's
  /// state machine runs on). <= 0 resolves through the MENOS_EXECUTOR_THREADS
  /// environment variable, then min(8, hardware_concurrency).
  int executor_threads = 0;

  /// Optional event trace (not owned; must outlive the server). Sessions
  /// record lifecycle, scheduling-wait, compute, and swap events into it.
  util::EventTrace* trace = nullptr;

  /// Fleet mode: run this server on an externally owned serving core
  /// instead of creating its own executor/poller. Both must outlive the
  /// server, and the owner starts the poller before Server::start() and
  /// stops it after Server::stop() (the server then only schedules/cancels
  /// its own reaper timer on it). Null (the default) = the server owns a
  /// private core, as before.
  Executor* shared_executor = nullptr;
  net::Poller* shared_poller = nullptr;

  /// Seed for minting session tokens; 0 derives one from base_seed. Fleet
  /// shards share base_seed (their ParameterStores must be bit-identical)
  /// and so MUST set distinct token seeds, or every shard would mint the
  /// same token sequence and resume routing could not tell them apart.
  std::uint64_t token_seed = 0;

  /// Upper bound on how many compatible clients one CoalescedBatch group
  /// grant may cover (docs/ARCHITECTURE.md "Cross-client batched trunk
  /// compute"). Only consulted when sched_policy == Policy::CoalescedBatch.
  std::size_t batch_max_group = 32;
};

/// Copy a device tensor into a wire carrier.
net::WireTensor to_wire(const tensor::Tensor& t);

/// Materialize a wire tensor on `device`.
tensor::Tensor from_wire(const net::WireTensor& w, gpusim::Device& device,
                         bool requires_grad = false);

}  // namespace menos::core
