# Empty dependencies file for table3_schedule_time.
# This may be replaced when dependencies are built.
